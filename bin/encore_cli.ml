(* encore-cli: command-line interface to the EnCore reproduction.

   Subcommands:
     generate     synthesize an image population and dump one config
                  (--out DIR: write per-image dumps for fleet checking)
     learn        learn a model from a population and print its rules
     check        learn, misconfigure a held-out image, and report
                  (--fleet DIR / --targets FILE: batch-check image dumps
                  through the compiled engine, streaming a JSONL report)
     inject       run a ConfErr-style campaign and show the ground truth
     chaos        storm a population with pipeline faults, learn resiliently
                  (--durability: kill-and-resume + snapshot-damage drill;
                  --serve-storm: request-storm replay against the daemon)
     serve        resident check daemon: JSONL requests (check, watch,
                  reload, status, shutdown) over stdio or a Unix socket
     experiment   regenerate one (or all) of the paper's tables
     ablation     run a design-choice ablation study
     case         reproduce one of the ten Table 9 real-world cases
     study        print the Table 1 catalog study
     export       write the assembled attribute table as CSV
     save         learn a model and serialize it to a file
     load-check   load a serialized model and check an image (--advise)
     testgen      generate rule-violating configuration test cases
     trace        summarize a JSONL trace (per-stage time breakdown)

   learn, check and chaos accept --trace FILE (JSONL span/event export)
   and --metrics (print the metric registry after the run). *)

module Population = Encore_workloads.Population
module Profile = Encore_workloads.Profile
module Detector = Encore_detect.Detector
module Report = Encore_detect.Report
module Image = Encore_sysenv.Image
module Conferr = Encore_inject.Conferr
module Fault = Encore_inject.Fault

open Cmdliner

(* --- shared arguments --------------------------------------------------- *)

let app_conv =
  let parse s =
    match Image.app_of_string s with
    | Some app -> Ok app
    | None -> Error (`Msg (Printf.sprintf "unknown application %S" s))
  in
  Arg.conv (parse, fun fmt app -> Format.pp_print_string fmt (Image.app_to_string app))

let app_arg =
  Arg.(value & opt app_conv Image.Mysql
       & info [ "a"; "app" ] ~docv:"APP" ~doc:"Application: apache, mysql, php or sshd.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Deterministic master seed.")

let count_arg default =
  Arg.(value & opt int default
       & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of images.")

let profile_conv =
  let parse = function
    | "ec2" -> Ok Profile.ec2
    | "private-cloud" | "cloud" -> Ok Profile.private_cloud
    | "uniform" -> Ok Profile.uniform
    | s -> Error (`Msg (Printf.sprintf "unknown profile %S" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt p.Profile.label)

let profile_arg =
  Arg.(value & opt profile_conv Profile.ec2
       & info [ "profile" ] ~docv:"PROFILE" ~doc:"Population profile: ec2, private-cloud or uniform.")

let custom_arg =
  Arg.(value & opt (some file) None
       & info [ "custom" ] ~docv:"FILE" ~doc:"Customization file (Figure 6 format).")

let jobs_arg =
  Arg.(value & opt int (Domain.recommended_domain_count ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the learning pipeline (default: the \
                 machine's recommended domain count; 1 = sequential). \
                 Learned models are identical for every value.")

let chunk_arg =
  Arg.(value & opt (some int) None
       & info [ "chunk" ] ~docv:"K"
           ~doc:"Chunks per worker for one pool round (default 4). \
                 Lower values cut queue/GC synchronization on few-core \
                 hosts; scheduling only, results are identical for \
                 every value.")

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let learn_model ?custom ~seed ~profile ~jobs app n =
  let images = Population.clean (Population.generate ~profile ~seed app ~n) in
  let custom = Option.map read_file custom in
  let config = { Encore.Config.default with Encore.Config.seed; jobs } in
  (Encore.Pipeline.learn ~config ?custom images, List.length images)

(* --- telemetry plumbing -------------------------------------------------- *)

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Export spans and events of the run as JSONL to $(docv) \
                 (inspect with 'trace summarize').")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the telemetry metric registry (counters, gauges, \
                 latency histograms) after the run.")

(* Wire the global telemetry sinks around [f].  With --trace, spans and
   events stream to a JSONL file; with --metrics alone, spans are still
   timed (into the span_us.* histograms) but discarded.  [f] returns the
   exit code, passed through so teardown — closing the trace file —
   happens before the process exits. *)
let with_telemetry ~trace ~metrics f =
  let oc = Option.map open_out trace in
  (match oc with
   | Some oc ->
       Encore_obs.Events.set_sink (Encore_obs.Events.Channel oc);
       Encore_obs.Events.stream_spans ()
   | None ->
       if metrics then
         Encore_obs.Trace.set_sink (Encore_obs.Trace.Stream (fun _ -> ())));
  let code =
    Fun.protect
      ~finally:(fun () ->
        Encore_obs.Trace.set_sink Encore_obs.Trace.Nil;
        Encore_obs.Events.set_sink Encore_obs.Events.Nil;
        Option.iter close_out oc)
      f
  in
  (* stdout may be a pipe whose reader already went away (a scraper
     disconnecting from `serve`); the epilogue is best-effort *)
  (try
     if metrics then begin
       print_newline ();
       print_string
         (Encore_util.Texttab.render ~title:"telemetry metrics"
            ~header:[ "metric"; "kind"; "value" ]
            (Encore_obs.Metrics.rows (Encore_obs.Metrics.snapshot ())))
     end;
     (match trace with
      | Some path -> Printf.printf "trace written to %s\n" path
      | None -> ());
     flush stdout
   with Sys_error _ -> close_out_noerr stdout);
  code

(* --- generate ------------------------------------------------------------ *)

let generate seed profile app n out =
  let pop = Population.generate ~profile ~seed app ~n in
  let clean = Population.clean pop in
  Printf.printf "generated %d %s images under profile %s (%d clean, %d with a latent fault)\n\n"
    n (Image.app_to_string app) profile.Profile.label (List.length clean)
    (n - List.length clean);
  (match out with
   | None -> ()
   | Some dir ->
       if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
       List.iter
         (fun { Population.image; _ } ->
           let path = Filename.concat dir (image.Image.image_id ^ ".img") in
           let oc = open_out path in
           Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
               output_string oc (Encore_sysenv.Collector.image_to_text image)))
         pop;
       Printf.printf "wrote %d image dump(s) under %s (check them with \
                      'check --fleet %s')\n\n"
         (List.length pop) dir dir);
  match pop with
  | { Population.image; latent } :: _ ->
      (match Image.config_for image app with
       | Some cf ->
           Printf.printf "--- %s (%s) ---\n%s" image.Image.image_id cf.Image.path cf.Image.text
       | None -> ());
      List.iter
        (fun inj -> Printf.printf "\nlatent fault: %s\n" (Fault.injection_to_string inj))
        latent;
      0
  | [] -> 0

let generate_cmd =
  let doc = "Synthesize a deterministic image population and print one configuration." in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const generate $ seed_arg $ profile_arg $ app_arg $ count_arg 10
          $ Arg.(value & opt (some string) None
                 & info [ "out" ] ~docv:"DIR"
                     ~doc:"Also write every generated image (clean and \
                           faulted) as a collector dump $(docv)/<id>.img — \
                           the on-disk targets of 'check --fleet'."))

(* --- learn ---------------------------------------------------------------- *)

let mode_arg =
  Arg.(value
       & vflag Encore.Pipeline.Keep_going
           [ (Encore.Pipeline.Keep_going,
              info [ "keep-going" ]
                ~doc:"Quarantine damaged images and train on the survivors \
                      (default).");
             (Encore.Pipeline.Fail_fast,
              info [ "fail-fast" ]
                ~doc:"Abort on the first damaged image.") ])

let max_retries_arg =
  Arg.(value & opt int 3
       & info [ "max-retries" ] ~docv:"N"
           ~doc:"Probe retries per image before it is quarantined.")

let chaos_frac_arg =
  Arg.(value & opt float 0.0
       & info [ "chaos" ] ~docv:"FRAC"
           ~doc:"Storm this fraction of the training population with \
                 pipeline faults (truncation, garbage bytes, probe flaps) \
                 before learning.")

let checkpoint_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"DIR"
           ~doc:"Persist a checkpoint under $(docv) after each completed \
                 pipeline stage (ingest, assemble, model), through the \
                 atomic snapshot writer.")

let resume_arg =
  Arg.(value & opt (some string) None
       & info [ "resume" ] ~docv:"DIR"
           ~doc:"Resume from checkpoints under $(docv): stages whose \
                 checkpoint verifies and matches this run's population and \
                 parameters are restored instead of recomputed.  The final \
                 model is byte-identical to an uninterrupted run.")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SECS"
           ~doc:"Execution budget in seconds.  On expiry the run stops at a \
                 clean boundary, keeps the checkpoints it has written, \
                 reports its status as timed-out and exits with code 3.")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"K"
           ~doc:"Partition the corpus into $(docv) shards, learn each \
                 shard's sufficient statistics on the worker pool and \
                 recombine them with an order-preserving merge.  The model \
                 is byte-identical for every shard count.")

let stats_arg =
  Arg.(value & opt (some string) None
       & info [ "stats" ] ~docv:"DIR"
           ~doc:"Persist the run's sufficient statistics as a snapshot \
                 under $(docv) (versioned envelope, atomic write); a later \
                 $(b,--append) run or the serve daemon's $(b,--learn-stats) \
                 extends them without retraining.")

let append_arg =
  Arg.(value & opt (some string) None
       & info [ "append" ] ~docv:"DIR"
           ~doc:"Incremental learning: load the newest statistics snapshot \
                 under $(docv), fold this run's population into it in \
                 sublinear time, write the grown statistics back and print \
                 the refreshed model — byte-identical to retraining on the \
                 union corpus.")

(* the suffstats face of learn: shard-merge batch learning and
   incremental append, both byte-identical to the batch pipeline *)
let learn_mergeable ~config ~custom ~shards ~stats_dir ~append_dir images =
  let module Suffstats = Encore_rules.Suffstats in
  let save_stats learner =
    match stats_dir with
    | None -> ()
    | Some dir ->
        let store = Encore.Stats_io.Store.create ~dir () in
        let path = Encore.Stats_io.Store.save store (Suffstats.stats learner) in
        Printf.printf "statistics snapshot: %s (%d image(s))\n" path
          (Suffstats.n_images (Suffstats.stats learner))
  in
  let learned =
    match append_dir with
    | None ->
        Result.map
          (fun (model, learner) -> (model, learner, 0))
          (Encore.Pipeline.learn_sharded_result ~config ?custom ~shards images)
    | Some dir -> (
        let store = Encore.Stats_io.Store.create ~dir () in
        match Encore.Stats_io.Store.load_latest store with
        | Error e ->
            Error
              (Encore_util.Resilience.diag Encore_util.Resilience.Corrupt_image
                 ~subject:dir
                 ("cannot load statistics: "
                 ^ Encore.Stats_io.load_error_to_string e))
        | Ok (stats, _) -> (
            let before = Suffstats.n_images stats in
            match Encore.Pipeline.learner_result ~config ?custom stats with
            | Error d -> Error d
            | Ok learner ->
                let learner =
                  Encore.Pipeline.learn_append ~config learner images
                in
                let path =
                  Encore.Stats_io.Store.save store (Suffstats.stats learner)
                in
                Printf.printf "statistics snapshot: %s\n" path;
                Ok (Encore.Pipeline.model_of_learner learner, learner, before)))
  in
  match learned with
  | Error d ->
      prerr_endline
        ("learning failed: " ^ Encore_util.Resilience.diagnostic_to_string d);
      1
  | Ok (model, learner, before) ->
      save_stats learner;
      if before > 0 then
        Printf.printf "appended %d image(s) to a %d-image corpus\n"
          (List.length images) before
      else if shards > 1 then
        Printf.printf "merged %d shard(s)\n" shards;
      Printf.printf "\nlearned from %d image(s): %d types, %d rules\n\n"
        model.Detector.training_count
        (List.length model.Detector.types)
        (List.length model.Detector.rules);
      List.iter
        (fun r -> print_endline (Encore_rules.Template.rule_to_string r))
        model.Detector.rules;
      (* same exit contract as the batch path: mining overflow degrades *)
      if model.Detector.overflowed then begin
        print_endline
          "degraded: itemset mining overflowed; correlation rules may be \
           incomplete";
        3
      end
      else 0

let learn seed profile app n custom mode max_retries chaos_frac jobs chunk
    shards stats_dir append_dir checkpoint_dir resume_dir deadline_s trace
    metrics =
  with_telemetry ~trace ~metrics @@ fun () ->
  let config =
    { Encore.Config.default with Encore.Config.seed; jobs; chunk }
  in
  let images = Population.clean (Population.generate ~profile ~seed app ~n) in
  let images, stormed =
    if chaos_frac > 0.0 then begin
      let rng = Encore_util.Prng.create (seed + 31) in
      let s = Encore_inject.Chaos.storm ~fraction:chaos_frac ~rng images in
      (s.Encore_inject.Chaos.images,
       List.length s.Encore_inject.Chaos.victims)
    end
    else (images, 0)
  in
  let custom = Option.map read_file custom in
  if shards > 1 || stats_dir <> None || append_dir <> None then
    learn_mergeable ~config ~custom ~shards ~stats_dir ~append_dir images
  else begin
  let checkpoint =
    Option.map (fun dir -> Encore.Checkpoint.create ~dir) checkpoint_dir
  in
  let resume =
    Option.map (fun dir -> Encore.Checkpoint.create ~dir) resume_dir
  in
  let deadline = Option.map Encore_util.Deadline.of_budget_s deadline_s in
  let result =
    Encore.Pipeline.learn_durable ~config ?custom ~mode ~max_retries
      ?checkpoint ?resume ?deadline images
  in
  (match result with
   | Error d ->
       prerr_endline
         ("learning failed: " ^ Encore_util.Resilience.diagnostic_to_string d)
   | Ok o ->
       if stormed > 0 then Printf.printf "chaos: stormed %d image(s)\n" stormed;
       (match o.Encore.Pipeline.resumed with
        | [] -> ()
        | stages ->
            Printf.printf "resumed from checkpoint: %s\n"
              (String.concat ", "
                 (List.map Encore.Checkpoint.stage_to_string stages)));
       let report = o.Encore.Pipeline.report in
       print_string (Encore.Pipeline.report_to_string report);
       (match o.Encore.Pipeline.model with
        | Some model ->
            Printf.printf "\nlearned from %d image(s): %d types, %d rules\n\n"
              report.Encore.Pipeline.ok
              (List.length model.Detector.types)
              (List.length model.Detector.rules);
            List.iter
              (fun r -> print_endline (Encore_rules.Template.rule_to_string r))
              model.Detector.rules
        | None -> ()));
  Encore.Pipeline.exit_code result
  end

let learn_cmd =
  let doc = "Learn configuration rules from a generated population." in
  Cmd.v (Cmd.info "learn" ~doc)
    Term.(const learn $ seed_arg $ profile_arg $ app_arg $ count_arg 100 $ custom_arg
          $ mode_arg $ max_retries_arg $ chaos_frac_arg $ jobs_arg $ chunk_arg
          $ shards_arg $ stats_arg $ append_arg
          $ checkpoint_arg $ resume_arg $ deadline_arg
          $ trace_arg $ metrics_arg)

(* --- chaos ----------------------------------------------------------------- *)

let chaos seed app n fraction max_retries jobs durability serve_storm
    transport_storm clients requests dir trace metrics =
  with_telemetry ~trace ~metrics @@ fun () ->
  let config = { Encore.Config.default with Encore.Config.jobs = jobs } in
  if transport_storm then
    begin match
      Encore.Chaosrun.transport_storm ~config ~requests ~clients ~n ~app ~dir
        ~seed ()
    with
    | Error msg ->
        prerr_endline ("transport storm failed: " ^ msg);
        1
    | Ok o ->
        print_string (Encore.Chaosrun.transport_outcome_to_string o);
        if Encore.Chaosrun.transport_ok o then 0 else 1
    end
  else if serve_storm then
    begin match
      Encore.Chaosrun.serve_storm ~config ~requests ~n ~app ~seed ()
    with
    | Error d ->
        prerr_endline
          ("serve storm failed: " ^ Encore_util.Resilience.diagnostic_to_string d);
        1
    | Ok o ->
        print_string (Encore.Chaosrun.serve_outcome_to_string o);
        if
          o.Encore.Chaosrun.serve_notes = []
          && o.Encore.Chaosrun.serve_all_answered
          && o.Encore.Chaosrun.serve_ring_bound_ok
          && o.Encore.Chaosrun.serve_watch_identical
          && o.Encore.Chaosrun.serve_drained
        then 0
        else 1
    end
  else if durability then
    begin match Encore.Chaosrun.durability ~config ~fraction ~app ~dir ~seed () with
    | Error d ->
        prerr_endline
          ("durability drill failed: "
           ^ Encore_util.Resilience.diagnostic_to_string d);
        1
    | Ok o ->
        print_string (Encore.Chaosrun.durability_outcome_to_string o);
        if
          o.Encore.Chaosrun.durability_notes = []
          && List.for_all snd o.Encore.Chaosrun.kill_stages
          && o.Encore.Chaosrun.truncate_detected
          && o.Encore.Chaosrun.bitflip_detected
          && o.Encore.Chaosrun.rollback_ok
        then 0
        else 1
    end
  else
    match Encore.Chaosrun.run ~config ~n ~fraction ~max_retries ~app ~seed () with
    | Error d ->
        prerr_endline
          ("chaos run failed: " ^ Encore_util.Resilience.diagnostic_to_string d);
        1
    | Ok o ->
        print_string (Encore.Chaosrun.outcome_to_string o);
        0

let chaos_cmd =
  let doc =
    "Storm a training population with the pipeline fault set — truncated \
     files, garbage bytes, permanently flapping probes — learn through the \
     resilient path and compare detection against an undamaged model.  With \
     $(b,--durability): the crash-safety drill (kill-at-checkpoint then \
     resume, truncate-snapshot, bitflip-snapshot, rollback to the newest \
     good snapshot).  With $(b,--serve-storm): replay a request storm — \
     queue-overflow bursts, malformed and oversized lines, crash-injection \
     ops, a mid-storm reload — against the resident serve daemon."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(const chaos $ seed_arg $ app_arg $ count_arg 50
          $ Arg.(value & opt float 0.3
                 & info [ "fraction" ] ~docv:"FRAC"
                     ~doc:"Fraction of the population to damage.")
          $ max_retries_arg $ jobs_arg
          $ Arg.(value & flag
                 & info [ "durability" ]
                     ~doc:"Run the durability drill (kill-at-checkpoint \
                           then resume, truncate-snapshot, bitflip-snapshot, \
                           rollback-to-latest-good) instead of the ingestion \
                           storm.  Exit code 0 only when every kill point \
                           resumed and every damaged snapshot was detected. \
                           $(b,-n) and $(b,--max-retries) apply to the storm \
                           only and are ignored here.")
          $ Arg.(value & flag
                 & info [ "serve-storm" ]
                     ~doc:"Replay $(b,--requests) request lines (>= 5% \
                           malformed, >= 5% oversized, crash-injection ops, \
                           a mid-storm reload) against the serve daemon and \
                           check its contract: load is shed but nothing \
                           crashes, every queued request is answered, the \
                           alert ring stays inside its bound, incremental \
                           watch verdicts match full checks byte-for-byte, \
                           and shutdown drains cleanly.  Exit code 0 only \
                           when every invariant holds.")
          $ Arg.(value & flag
                 & info [ "transport-storm" ]
                     ~doc:"Drive the multiplexed transport with \
                           $(b,--clients) concurrent clients injecting \
                           transport faults (torn frames with mid-write \
                           disconnects, unterminated floods, \
                           one-byte-per-poll slow writers), then the \
                           crash-replay drill: journal a request storm, \
                           kill the daemon mid-processing, tear the journal \
                           tail, restart and replay.  Exit code 0 only when \
                           no committed response is lost or misrouted, \
                           health verdicts stay truthful, every client gets \
                           its bye, the torn tail is truncated, and the \
                           replayed responses and alert ring are \
                           byte-identical to an uninterrupted reference \
                           run.")
          $ Arg.(value & opt int 6
                 & info [ "clients" ] ~docv:"N"
                     ~doc:"Concurrent clients for $(b,--transport-storm) \
                           (minimum 2).")
          $ Arg.(value & opt int 10_000
                 & info [ "requests" ] ~docv:"N"
                     ~doc:"Request lines to replay with $(b,--serve-storm) \
                           or to journal with $(b,--transport-storm).")
          $ Arg.(value & opt string "_chaos-durability"
                 & info [ "dir" ] ~docv:"DIR"
                     ~doc:"Working directory for the durability drill's \
                           checkpoints and snapshot store, and the \
                           transport storm's journals.")
          $ trace_arg $ metrics_arg)

(* --- serve ----------------------------------------------------------------- *)

(* Line source over a file descriptor for [Server.run]'s [recv]: polls
   with select so a signal-initiated drain is noticed within [tick],
   splits reads into lines, and delivers a trailing unterminated line
   before EOF. *)
let fd_line_reader ?(tick = 0.25) fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let lines = Queue.create () in
  let eof = ref false in
  let split_lines () =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    let rec feed = function
      | [] -> ()
      | [ tail ] -> Buffer.add_string buf tail
      | line :: rest ->
          Queue.push line lines;
          feed rest
    in
    feed (String.split_on_char '\n' s)
  in
  let pull ~wait =
    match Unix.select [ fd ] [] [] (if wait then tick else 0.0) with
    | [], _, _ -> ()
    | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> eof := true
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            split_lines ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  fun ~wait ->
    if Queue.is_empty lines && not !eof then pull ~wait;
    match Queue.take_opt lines with
    | Some line -> `Line line
    | None ->
        if !eof then
          if Buffer.length buf > 0 then begin
            let line = Buffer.contents buf in
            Buffer.clear buf;
            `Line line
          end
          else `Eof
        else `Idle

let response_line resp = Encore_obs.Jsonenc.to_string resp ^ "\n"

(* Unix-socket transport: the select-driven multiplexer serves every
   connected client concurrently — per-connection line readers, write
   buffers that survive short writes, round-robin admission into the
   bounded queue, slowloris/flood eviction — and the daemon stays
   resident until a shutdown request or a signal drains it.  Responses
   with no live origin (a SIGHUP reload, filesystem-watcher deltas, the
   bye of a clientless daemon) go to stdout. *)
let serve_socket ?watch ?(learn_feed = false) srv path max_connections =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sfd (Unix.ADDR_UNIX path);
  Unix.listen sfd 16;
  let orphan resp =
    print_string (response_line resp);
    flush stdout
  in
  let mconfig =
    {
      Encore_serve.Mux.default_config with
      Encore_serve.Mux.max_connections =
        Option.value
          ~default:Encore_serve.Mux.default_config
                     .Encore_serve.Mux.max_connections max_connections;
    }
  in
  let mux = Encore_serve.Mux.create ~config:mconfig ~listen_fd:sfd ~orphan srv in
  Fun.protect
    ~finally:(fun () ->
      Encore_serve.Mux.shutdown_fds mux;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let rec loop () =
        if Encore_serve.Mux.stopped mux then Encore_serve.Server.exit_code srv
        else begin
          (match watch with
          | Some w ->
              List.iter
                (fun d ->
                  List.iter orphan
                    (Encore_serve.Server.offer srv
                       (Encore_serve.Fswatch.watch_request d)))
                (Encore_serve.Fswatch.poll w);
              if learn_feed then
                List.iter
                  (fun p ->
                    List.iter orphan
                      (Encore_serve.Server.offer srv
                         (Encore_serve.Fswatch.learn_request p)))
                  (Encore_serve.Fswatch.poll_images w)
          | None -> ());
          Encore_serve.Mux.step mux;
          loop ()
        end
      in
      loop ())

let serve model_path store_dir learn_stats_dir socket_path journal_path
    watch_dir max_connections seed profile n jobs queue_capacity
    max_request_bytes ring_capacity deadline_s alert_score trace metrics =
  with_telemetry ~trace ~metrics @@ fun () ->
  (* Continuous learning: a resident suffstats learner backed by a
     statistics store.  The learn-append hook folds one image into the
     statistics in sublinear time, persists the grown snapshot and
     refreshes [model_ref]; the provider below serves that refreshed
     model, so the server's shadow-validated reload adopts it. *)
  let learner_hook, model_ref =
    match learn_stats_dir with
    | None -> (None, ref None)
    | Some dir ->
        let module Suffstats = Encore_rules.Suffstats in
        let config = { Encore.Config.default with Encore.Config.seed; jobs } in
        let store = Encore.Stats_io.Store.create ~dir () in
        let model_ref = ref None in
        let learner_ref = ref None in
        (match Encore.Stats_io.Store.load_latest store with
        | Ok (stats, path) -> (
            match Encore.Pipeline.learner_result ~config stats with
            | Ok l ->
                learner_ref := Some l;
                model_ref := Some (Encore.Pipeline.model_of_learner l);
                Printf.eprintf
                  "serve: learner restored from %s (%d image(s))\n%!" path
                  (Suffstats.n_images stats)
            | Error d ->
                Printf.eprintf "serve: cannot finalize statistics: %s\n%!"
                  (Encore_util.Resilience.diagnostic_to_string d))
        | Error _ -> () (* empty store: the learner starts cold *));
        let hook img =
          match
            match !learner_ref with
            | Some l -> Ok (Encore.Pipeline.learn_append ~config l [ img ])
            | None ->
                Encore.Pipeline.learner_result ~config
                  (Encore.Pipeline.stats_of_images ~config [ img ])
          with
          | Error d -> Error (Encore_util.Resilience.diagnostic_to_string d)
          | exception e -> Error (Printexc.to_string e)
          | Ok l ->
              learner_ref := Some l;
              model_ref := Some (Encore.Pipeline.model_of_learner l);
              let stats = Suffstats.stats l in
              let (_ : string) = Encore.Stats_io.Store.save store stats in
              Ok
                (Printf.sprintf "corpus grew to %d image(s)"
                   (Suffstats.n_images stats))
        in
        (Some hook, model_ref)
  in
  let provider ~app:name =
    match !model_ref with
    | Some m -> Ok m
    | None -> (
    match (model_path, store_dir) with
    | Some path, _ -> (
        match Encore_detect.Model_io.load path with
        | Ok m -> Ok m
        | Error e -> Error (Encore_detect.Model_io.load_error_to_string e))
    | None, Some dir -> (
        let store = Encore_detect.Model_io.Store.create ~dir () in
        match Encore_detect.Model_io.Store.load_latest store with
        | Ok (m, _) -> Ok m
        | Error e -> Error (Encore_detect.Model_io.load_error_to_string e))
    | None, None -> (
        match Image.app_of_string name with
        | None -> Error (Printf.sprintf "unknown application %S" name)
        | Some app -> Ok (fst (learn_model ~seed ~profile ~jobs app n))))
  in
  let dc = Encore_serve.Server.default_config in
  let config =
    { dc with
      Encore_serve.Server.queue_capacity =
        Option.value ~default:dc.Encore_serve.Server.queue_capacity
          queue_capacity;
      max_request_bytes =
        Option.value ~default:dc.Encore_serve.Server.max_request_bytes
          max_request_bytes;
      ring_capacity =
        Option.value ~default:dc.Encore_serve.Server.ring_capacity
          ring_capacity;
      deadline_s =
        (match deadline_s with
         | None -> dc.Encore_serve.Server.deadline_s
         | some -> some);
      alert_score =
        Option.value ~default:dc.Encore_serve.Server.alert_score alert_score;
    }
  in
  match
    match journal_path with
    | None -> Ok None
    | Some path -> (
        match Encore_serve.Journal.open_ ~path with
        | Ok (j, recovery) -> Ok (Some (j, recovery))
        | Error e -> Error e)
  with
  | Error e ->
      prerr_endline ("serve: cannot open journal: " ^ e);
      1
  | Ok journal ->
      let srv =
        Encore_serve.Server.create ~config
          ?journal:(Option.map fst journal)
          ?learner:learner_hook
          (Encore_serve.Cache.create ~provider)
      in
      (* crash recovery before the transport opens: rebuild committed
         state from the journal and re-emit the responses the crash
         swallowed (to stdout — the clients that asked are gone) *)
      (match journal with
      | Some (_, recovery)
        when recovery.Encore_serve.Journal.entries <> [] ->
          let replayed =
            Encore_serve.Server.replay srv
              ~entries:recovery.Encore_serve.Journal.entries
              ~emit:(fun (e : Encore_serve.Journal.entry) resps ->
                if not e.completed then
                  List.iter
                    (fun resp -> print_string (response_line resp))
                    resps)
          in
          flush stdout;
          Printf.eprintf "serve: replayed %d journaled request(s)%s\n%!"
            replayed
            (match recovery.Encore_serve.Journal.truncated_at with
            | Some off -> Printf.sprintf " (torn tail cut at byte %d)" off
            | None -> "")
      | _ -> ());
      let watch = Option.map (fun dir -> Encore_serve.Fswatch.create ~dir) watch_dir in
      let drain _ = Encore_serve.Server.request_shutdown srv in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
      Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
      Sys.set_signal Sys.sighup
        (Sys.Signal_handle (fun _ -> Encore_serve.Server.request_reload srv));
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      (match socket_path with
      | Some path ->
          serve_socket ?watch
            ~learn_feed:(Option.is_some learner_hook)
            srv path max_connections
      | None ->
          let stdin_recv = fd_line_reader Unix.stdin in
          (* the watcher feeds synthesized watch requests between client
             lines; polled only on waiting reads so a request storm is
             never stalled behind directory stats *)
          let pending_watch = Queue.create () in
          let recv ~wait =
            (match watch with
            | Some w when wait && Queue.is_empty pending_watch ->
                List.iter
                  (fun d ->
                    Queue.push (Encore_serve.Fswatch.watch_request d)
                      pending_watch)
                  (Encore_serve.Fswatch.poll w);
                if Option.is_some learner_hook then
                  List.iter
                    (fun p ->
                      Queue.push (Encore_serve.Fswatch.learn_request p)
                        pending_watch)
                    (Encore_serve.Fswatch.poll_images w)
            | _ -> ());
            match Queue.take_opt pending_watch with
            | Some line -> `Line line
            | None -> stdin_recv ~wait
          in
          (* a scraper spliced onto our pipes (e.g. `encore-cli top`) may
             disconnect while the drain is still flushing; dropping the
             remaining responses beats dying on the closed pipe *)
          let peer_gone = ref false in
          let send resp =
            if not !peer_gone then
              try
                print_string (response_line resp);
                flush stdout
              with Sys_error _ ->
                peer_gone := true;
                (* leave nothing buffered: the at-exit flush of the
                   standard formatters would re-raise on the dead pipe
                   (flush on a closed channel is defined as a no-op) *)
                close_out_noerr stdout
          in
          Encore_serve.Server.run srv ~recv ~send)

let serve_cmd =
  let doc =
    "Run the resident check daemon: JSONL requests ($(b,check), \
     $(b,learn-append), $(b,watch), $(b,reload), $(b,status), $(b,metrics), \
     $(b,health), $(b,shutdown)) over stdio or a Unix socket (concurrent \
     clients via a select multiplexer).  \
     Oversized lines are rejected before queueing, a full queue sheds with \
     an $(i,overloaded) response, malformed requests get typed errors, \
     detections land in a bounded drop-oldest alert ring, and SIGTERM (or a \
     shutdown request) drains gracefully: in-flight requests finish, the \
     ring is flushed, every client gets the bye summary, and the exit code \
     follows the 0/1/2/3 contract (3 when load was shed, the worker \
     restarted, or alerts were dropped).  SIGHUP (or $(b,reload)) swaps the \
     model only after shadow-validating the candidate against recent \
     checks; with $(b,--journal) admitted requests survive kill -9 and are \
     replayed on restart."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const serve
          $ Arg.(value & opt (some file) None
                 & info [ "model" ] ~docv:"FILE"
                     ~doc:"Serve the model snapshot at $(docv) for every \
                           application; $(b,reload) re-reads it.")
          $ Arg.(value & opt (some string) None
                 & info [ "store" ] ~docv:"DIR"
                     ~doc:"Serve the newest verifiable snapshot of the model \
                           store under $(docv) (written by 'save --store'); \
                           $(b,reload) picks up new snapshots.")
          $ Arg.(value & opt (some string) None
                 & info [ "learn-stats" ] ~docv:"DIR"
                     ~doc:"Continuous learning: keep a resident learner \
                           whose sufficient statistics persist as snapshots \
                           under $(docv) (restored at startup when \
                           present).  Each $(b,learn-append) request — or \
                           $(i,<name>.img) dump dropped into \
                           $(b,--watch-dir) — folds one observed image into \
                           the statistics in sublinear time and adopts the \
                           refreshed model through the shadow-validated \
                           reload.")
          $ Arg.(value & opt (some string) None
                 & info [ "socket" ] ~docv:"PATH"
                     ~doc:"Listen on a Unix socket at $(docv) instead of \
                           stdio; connected clients are served \
                           concurrently.")
          $ Arg.(value & opt (some string) None
                 & info [ "journal" ] ~docv:"FILE"
                     ~doc:"Write-ahead request journal: every admitted \
                           check/watch request is fsynced to $(docv) before \
                           it is queued, and on restart the journal is \
                           replayed — committed state is rebuilt and \
                           unanswered responses re-emitted — so a kill -9 \
                           mid-storm loses nothing that was accepted.")
          $ Arg.(value & opt (some string) None
                 & info [ "watch-dir" ] ~docv:"DIR"
                     ~doc:"Poll $(docv) for config files named \
                           $(i,<image-id>@<app>.conf) and feed each change \
                           as an incremental watch request against that \
                           image's session.")
          $ Arg.(value & opt (some int) None
                 & info [ "max-connections" ] ~docv:"N"
                     ~doc:"Concurrent socket clients served; further \
                           connections wait in the listen backlog.")
          $ seed_arg $ profile_arg $ count_arg 100 $ jobs_arg
          $ Arg.(value & opt (some int) None
                 & info [ "queue-capacity" ] ~docv:"N"
                     ~doc:"Pending requests before the daemon sheds load.")
          $ Arg.(value & opt (some int) None
                 & info [ "max-request-bytes" ] ~docv:"N"
                     ~doc:"Longer request lines are rejected unqueued, so \
                           queue memory stays bounded.")
          $ Arg.(value & opt (some int) None
                 & info [ "ring-capacity" ] ~docv:"N"
                     ~doc:"Alert ring bound (drop-oldest beyond it).")
          $ Arg.(value & opt (some float) None
                 & info [ "request-deadline" ] ~docv:"SECS"
                     ~doc:"Per-request budget; on expiry the response \
                           carries the ranked partial verdict and \
                           $(i,partial: true).")
          $ Arg.(value & opt (some float) None
                 & info [ "alert-score" ] ~docv:"S"
                     ~doc:"Warnings at or above $(docv) count as detections \
                           and enter the alert ring.")
          $ trace_arg $ metrics_arg)

(* --- top ------------------------------------------------------------------ *)

module Jx = Encore_obs.Jsonenc

(* Counters named detect.rule_fired{rule="..."} from the metrics JSON,
   as (rule label, count) descending — the "top-firing rules" panel. *)
let top_firing_rules counters =
  let prefix = "detect.rule_fired{rule=\"" in
  let plen = String.length prefix in
  List.filter_map
    (fun (name, v) ->
      if String.length name > plen + 2 && String.sub name 0 plen = prefix then
        match Jx.to_int_opt v with
        | Some n -> Some (String.sub name plen (String.length name - plen - 2), n)
        | None -> None
      else None)
    counters
  |> List.sort (fun (a, va) (b, vb) ->
         match compare (vb : int) va with 0 -> compare (a : string) b | c -> c)

let obj_fields = function Jx.Obj fields -> fields | _ -> []

let render_frame ~frame health metrics =
  let buf = Buffer.create 2048 in
  let str j k = Option.bind (Jx.member k j) Jx.to_string_opt in
  let num j k = Option.bind (Jx.member k j) Jx.to_float_opt in
  let verdict = Option.value ~default:"?" (str health "health") in
  let reasons =
    match Jx.member "reasons" health with
    | Some (Jx.Arr rs) -> List.filter_map Jx.to_string_opt rs
    | _ -> []
  in
  Buffer.add_string buf
    (Printf.sprintf "encore top — frame %d — health: %s\n" frame verdict);
  List.iter
    (fun r -> Buffer.add_string buf (Printf.sprintf "  reason: %s\n" r))
    reasons;
  (match Jx.member "window" metrics with
   | Some w ->
       let f k = Option.value ~default:0.0 (num w k) in
       Buffer.add_string buf
         (Printf.sprintf
            "window %.0fs: %d req (%.1f/s)  p50 %.0fus  p90 %.0fus  p99 \
             %.0fus  max %.0fus\n"
            (f "window_s")
            (int_of_float (f "count"))
            (f "rate") (f "p50") (f "p90") (f "p99") (f "max"))
   | None -> ());
  let registry = Option.value ~default:Jx.Null (Jx.member "metrics" metrics) in
  let gauges = obj_fields (Option.value ~default:Jx.Null (Jx.member "gauges" registry)) in
  let counters =
    obj_fields (Option.value ~default:Jx.Null (Jx.member "counters" registry))
  in
  let gauge name =
    match List.assoc_opt name gauges with
    | Some v -> Option.value ~default:0.0 (Jx.to_float_opt v)
    | None -> 0.0
  in
  let counter name =
    match List.assoc_opt name counters with
    | Some v -> Option.value ~default:0 (Jx.to_int_opt v)
    | None -> 0
  in
  Buffer.add_string buf
    (Encore_util.Texttab.render ~title:"daemon"
       ~header:[ "signal"; "value" ]
       [
         [ "requests"; string_of_int (counter "serve.requests") ];
         [ "shed"; string_of_int (counter "serve.shed") ];
         [ "errors"; string_of_int (counter "serve.errors") ];
         [ "restarts"; string_of_int (counter "serve.restarts") ];
         [ "breaker denied"; string_of_int (counter "serve.breaker_denied") ];
         [ "queue depth"; Printf.sprintf "%.0f" (gauge "serve.sampled.queue_depth") ];
         [ "queue occupancy"; Printf.sprintf "%.0f%%" (100.0 *. gauge "serve.sampled.queue_occupancy") ];
         [ "breaker state"; Option.value ~default:"?" (str health "breaker") ];
         [ "sessions"; Printf.sprintf "%.0f" (gauge "serve.sampled.sessions") ];
         [ "ring dropped"; Printf.sprintf "%.0f" (gauge "serve.sampled.ring_dropped") ];
         [ "gc major heap words"; Printf.sprintf "%.0f" (gauge "runtime.gc.heap_words") ];
       ]);
  (match top_firing_rules counters with
   | [] -> ()
   | rules ->
       Buffer.add_string buf
         (Encore_util.Texttab.render ~title:"top-firing rules"
            ~header:[ "rule"; "fired" ]
            (List.filteri (fun i _ -> i < 10) rules
            |> List.map (fun (r, n) -> [ r; string_of_int n ]))));
  Buffer.contents buf

(* Connect to a daemon socket with capped exponential backoff — a
   restarting daemon (journal replay, supervisor respawn) comes back
   within a few seconds, so a resident top should outwait it rather
   than die on the first ECONNREFUSED. *)
let connect_with_backoff ?(attempts = 8) path =
  let rec go k delay last_err =
    if k >= attempts then
      Error
        (Printf.sprintf "top: cannot connect to %s after %d attempt(s): %s"
           path attempts (Unix.error_message last_err))
    else begin
      if k > 0 then Unix.sleepf delay;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          go (k + 1) (Float.min 4.0 (delay *. 2.0)) e
    end
  in
  go 0 0.25 Unix.ECONNREFUSED

(* Poll a running daemon: send a metrics (json) and a health request,
   collect the two responses (skipping unrelated lines, e.g. drained
   alerts), render one frame.  Transport is a Unix socket — connected
   with backoff, reconnected if the daemon goes away between frames —
   or stdio: requests on stdout, responses on stdin, frames on stderr,
   so a harness can splice [top] onto a daemon's pipes. *)
let top socket_path interval frames raw =
  let collect recv =
    let rec go ~idle_budget acc =
      if idle_budget <= 0 then acc
      else
        match recv ~wait:true with
        | `Eof -> acc
        | `Idle -> go ~idle_budget:(idle_budget - 1) acc
        | `Line line -> (
            match Jx.of_string line with
            | Error _ -> go ~idle_budget acc
            | Ok json ->
                let acc =
                  match Option.bind (Jx.member "op" json) Jx.to_string_opt with
                  | Some "metrics" -> (Some json, snd acc)
                  | Some "health" -> (fst acc, Some json)
                  | _ -> acc
                in
                if fst acc <> None && snd acc <> None then acc
                else go ~idle_budget acc)
    in
    (* ~10s of idle ticks before giving up on the daemon *)
    go ~idle_budget:40 (None, None)
  in
  let probes =
    [
      "{\"op\":\"metrics\",\"format\":\"json\",\"id\":\"top-m\"}\n";
      "{\"op\":\"health\",\"id\":\"top-h\"}\n";
    ]
  in
  match socket_path with
  | None ->
      (* stdio splice: the pipes cannot be re-established, so an
         unanswered probe is fatal, as before *)
      let send line =
        print_string line;
        flush stdout
      in
      let recv = fd_line_reader Unix.stdin in
      let rec loop frame =
        List.iter send probes;
        match collect recv with
        | Some metrics, Some health ->
            prerr_string
              ((if raw then "" else "\027[2J\027[H")
              ^ render_frame ~frame health metrics);
            if frames > 0 && frame >= frames then 0
            else begin
              Unix.sleepf interval;
              loop (frame + 1)
            end
        | _ ->
            prerr_endline "top: daemon did not answer metrics/health probes";
            1
      in
      loop 1
  | Some path ->
      let conn = ref None in
      let close_conn () =
        match !conn with
        | Some (fd, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            conn := None
        | None -> ()
      in
      Fun.protect ~finally:close_conn @@ fun () ->
      let rec loop frame ~retried =
        match
          match !conn with
          | Some c -> Ok c
          | None -> (
              match connect_with_backoff path with
              | Ok fd ->
                  let c = (fd, fd_line_reader fd) in
                  conn := Some c;
                  Ok c
              | Error msg -> Error msg)
        with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok (fd, reader) -> (
            let sent =
              try
                List.iter
                  (fun line ->
                    let rec put off =
                      if off < String.length line then
                        put
                          (off
                          + Unix.write_substring fd line off
                              (String.length line - off))
                    in
                    put 0)
                  probes;
                true
              with Unix.Unix_error _ -> false
            in
            match (if sent then collect reader else (None, None)) with
            | Some metrics, Some health ->
                if not raw then print_string "\027[2J\027[H";
                print_string (render_frame ~frame health metrics);
                flush stdout;
                if frames > 0 && frame >= frames then 0
                else begin
                  Unix.sleepf interval;
                  loop (frame + 1) ~retried:false
                end
            | _ ->
                (* daemon went away mid-frame: reconnect (with backoff)
                   and retry this frame once *)
                close_conn ();
                if retried then begin
                  prerr_endline
                    "top: daemon did not answer metrics/health probes";
                  1
                end
                else begin
                  prerr_endline "top: connection lost, reconnecting";
                  loop frame ~retried:true
                end)
      in
      loop 1 ~retried:false

let top_cmd =
  let doc =
    "Live terminal view over a running serve daemon: rolling latency \
     windows (p50/p90/p99, rate), the health verdict with its reasons, \
     saturation gauges and the top-firing detection rules, polled via \
     $(b,metrics)/$(b,health) requests.  Connects to $(b,--socket), or \
     speaks the protocol over stdio (requests on stdout, responses on \
     stdin, frames on stderr) so it can be spliced onto a daemon's pipes."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const top
          $ Arg.(value & opt (some string) None
                 & info [ "socket" ] ~docv:"PATH"
                     ~doc:"Unix socket of the daemon (see 'serve --socket').")
          $ Arg.(value & opt float 2.0
                 & info [ "interval" ] ~docv:"SECS"
                     ~doc:"Seconds between polls.")
          $ Arg.(value & opt int 0
                 & info [ "frames" ] ~docv:"N"
                     ~doc:"Render $(docv) frames and exit (0 = poll until \
                           the daemon goes away).")
          $ Arg.(value & flag
                 & info [ "raw" ]
                     ~doc:"Do not clear the screen between frames (append \
                           them instead)."))

(* --- check ---------------------------------------------------------------- *)

(* Load every fleet target: *.img dumps under --fleet DIR (sorted by
   file name) plus the dump paths listed in --targets FILE, in file
   order.  Total: a bad dump is reported, not raised. *)
let load_fleet_targets ~fleet ~targets =
  match
    ( (match fleet with
       | Some dir when not (Sys.file_exists dir && Sys.is_directory dir) ->
           Error (dir ^ ": not a directory")
       | _ -> Ok ()),
      match targets with
      | Some file when not (Sys.file_exists file) ->
          Error (file ^ ": no such file")
      | _ -> Ok () )
  with
  | Error e, _ | _, Error e -> Error e
  | Ok (), Ok () ->
  let dump_paths =
    (match fleet with
     | None -> []
     | Some dir ->
         Sys.readdir dir |> Array.to_list
         |> List.filter (fun f -> Filename.check_suffix f ".img")
         |> List.sort compare
         |> List.map (Filename.concat dir))
    @
    match targets with
    | None -> []
    | Some file -> Encore_util.Strutil.trim_lines (read_file file)
  in
  let rec load acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest -> (
        match
          if Sys.file_exists path then
            Encore_sysenv.Collector.image_of_text (read_file path)
          else Error "no such file"
        with
        | Ok img -> load ((path, img) :: acc) rest
        | Error e -> Error (Printf.sprintf "%s: %s" path e))
  in
  load [] dump_paths

let check_fleet_mode ~seed ~profile ~app ~n ~custom ~threshold ~jobs ~fleet
    ~targets ~report_path ~deadline_s =
  match load_fleet_targets ~fleet ~targets with
  | Error e ->
      prerr_endline ("cannot load fleet target " ^ e);
      1
  | Ok [] ->
      prerr_endline "fleet check: no *.img dumps found";
      1
  | Ok loaded ->
      let model, trained = learn_model ?custom ~seed ~profile ~jobs app n in
      Printf.printf "model: %d rules from %d images; checking %d target(s)\n"
        (List.length model.Detector.rules) trained (List.length loaded);
      let config =
        { Encore.Config.default with
          Encore.Config.seed; jobs; detection_score = threshold }
      in
      let deadline = Option.map Encore_util.Deadline.of_budget_s deadline_s in
      let report_oc = Option.map open_out report_path in
      let stream =
        Option.map
          (fun oc line ->
            output_string oc line;
            output_char oc '\n')
          report_oc
      in
      let fleet_report =
        Fun.protect
          ~finally:(fun () -> Option.iter close_out report_oc)
          (fun () ->
            Encore.Pipeline.check_fleet ~config ?deadline ?stream model
              (List.map snd loaded))
      in
      print_string (Encore.Pipeline.fleet_report_to_string fleet_report);
      (match report_path with
       | Some path -> Printf.printf "JSONL report written to %s\n" path
       | None -> ());
      Encore.Pipeline.fleet_exit_code fleet_report

let check seed profile app n custom threshold jobs fleet targets report_path
    deadline_s trace metrics =
  with_telemetry ~trace ~metrics @@ fun () ->
  if fleet <> None || targets <> None then
    check_fleet_mode ~seed ~profile ~app ~n ~custom ~threshold ~jobs ~fleet
      ~targets ~report_path ~deadline_s
  else begin
    let model, trained = learn_model ?custom ~seed ~profile ~jobs app n in
    Printf.printf "model: %d rules from %d images\n" (List.length model.Detector.rules) trained;
    let rng = Encore_util.Prng.create (seed + 10_000) in
    let target = Population.generator_for app profile rng ~id:"held-out" in
    let campaign = Conferr.inject ~env_fault_fraction:0.4 rng app target ~n:3 in
    print_endline "\ninjected ground truth:";
    List.iter
      (fun inj -> Printf.printf "  %s\n" (Fault.injection_to_string inj))
      campaign.Conferr.injections;
    let warnings =
      List.filter
        (fun w -> w.Encore_detect.Warning.score >= threshold)
        (Detector.check model campaign.Conferr.image)
    in
    print_endline "\nranked warnings:";
    print_string (Report.to_string warnings);
    0
  end

let threshold_arg =
  Arg.(value & opt float 0.45
       & info [ "threshold" ] ~docv:"S" ~doc:"Minimum warning score to report.")

let check_cmd =
  let doc =
    "Misconfigure a held-out image and run the detector against it; or, \
     with $(b,--fleet) / $(b,--targets), batch-check collector image dumps \
     through the compiled engine."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const check $ seed_arg $ profile_arg $ app_arg $ count_arg 100 $ custom_arg
          $ threshold_arg $ jobs_arg
          $ Arg.(value & opt (some string) None
                 & info [ "fleet" ] ~docv:"DIR"
                     ~doc:"Check every *.img collector dump under $(docv) \
                           (written by 'generate --out'), in file-name \
                           order.  The model is compiled once and shared by \
                           $(b,--jobs) workers; exit code 3 when \
                           $(b,--deadline) expires mid-fleet.")
          $ Arg.(value & opt (some string) None
                 & info [ "targets" ] ~docv:"FILE"
                     ~doc:"Check the image dumps listed in $(docv) (one path \
                           per line), after any $(b,--fleet) dumps.")
          $ Arg.(value & opt (some string) None
                 & info [ "report" ] ~docv:"FILE"
                     ~doc:"Stream one JSON line per checked image to $(docv), \
                           in target order.")
          $ deadline_arg
          $ trace_arg $ metrics_arg)

(* --- inject ---------------------------------------------------------------- *)

let inject seed app n_faults =
  let rng = Encore_util.Prng.create seed in
  let target = Population.generator_for app Profile.ec2 rng ~id:"victim" in
  let campaign = Conferr.inject ~env_fault_fraction:0.3 rng app target ~n:n_faults in
  Printf.printf "%d faults injected into a fresh %s image:\n"
    (List.length campaign.Conferr.injections) (Image.app_to_string app);
  List.iter
    (fun inj -> Printf.printf "  %s\n" (Fault.injection_to_string inj))
    campaign.Conferr.injections;
  (match Image.config_for campaign.Conferr.image app with
   | Some cf -> Printf.printf "\nresulting configuration:\n%s" cf.Image.text
   | None -> ());
  0

let inject_cmd =
  let doc = "Run a ConfErr-style fault-injection campaign and show the result." in
  Cmd.v (Cmd.info "inject" ~doc)
    Term.(const inject $ seed_arg $ app_arg
          $ Arg.(value & opt int 5 & info [ "faults" ] ~docv:"N" ~doc:"Faults to inject."))

(* --- experiment ------------------------------------------------------------- *)

let experiment which scale_name seed =
  let config = { Encore.Config.default with Encore.Config.seed } in
  let scale =
    match scale_name with
    | "paper" -> Encore.Experiments.paper_scale
    | _ -> Encore.Experiments.test_scale
  in
  let tables =
    match which with
    | "all" -> Some (Encore.Experiments.all ~config ~scale ())
    | "table1" -> Some [ Encore.Experiments.table1 () ]
    | "table2" -> Some [ Encore.Experiments.table2 ~config ~scale () ]
    | "table3" -> Some [ Encore.Experiments.table3 ~config ~scale () ]
    | "table8" -> Some [ Encore.Experiments.table8 ~config ~scale () ]
    | "table9" -> Some [ Encore.Experiments.table9 ~config ~scale () ]
    | "table10" -> Some [ Encore.Experiments.table10 ~config ~scale () ]
    | "table11" -> Some [ Encore.Experiments.table11 ~config ~scale () ]
    | "table12" -> Some [ Encore.Experiments.table12 ~config ~scale () ]
    | "table13" -> Some [ Encore.Experiments.table13 ~config ~scale () ]
    | _ -> None
  in
  match tables with
  | None ->
      prerr_endline ("unknown experiment: " ^ which);
      2
  | Some tables ->
      List.iter (fun t -> print_endline (Encore.Experiments.render t)) tables;
      0

let experiment_cmd =
  let doc = "Regenerate one of the paper's evaluation tables (or 'all')." in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(const experiment
          $ Arg.(value & pos 0 string "all" & info [] ~docv:"TABLE")
          $ Arg.(value & opt string "paper"
                 & info [ "scale" ] ~docv:"SCALE" ~doc:"'paper' or 'test'.")
          $ seed_arg)

(* --- save / load-check -------------------------------------------------------- *)

let save seed profile app n custom jobs output store_dir keep =
  match (output, store_dir) with
  | None, None ->
      prerr_endline "save: pass --output FILE and/or --store DIR";
      2
  | _ ->
      let model, trained = learn_model ?custom ~seed ~profile ~jobs app n in
      let describe dest =
        Printf.printf
          "saved a model learned from %d images (%d rules, %d typed columns) \
           to %s\n"
          trained
          (List.length model.Detector.rules)
          (List.length model.Detector.types)
          dest
      in
      Option.iter
        (fun path ->
          Encore_detect.Model_io.save path model;
          describe path)
        output;
      Option.iter
        (fun dir ->
          let store = Encore_detect.Model_io.Store.create ~keep ~dir () in
          let path = Encore_detect.Model_io.Store.save store model in
          describe path)
        store_dir;
      0

let save_cmd =
  let doc = "Learn a model and serialize it to a file or a snapshot store." in
  Cmd.v (Cmd.info "save" ~doc)
    Term.(const save $ seed_arg $ profile_arg $ app_arg $ count_arg 100 $ custom_arg
          $ jobs_arg
          $ Arg.(value & opt (some string) None
                 & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Model output path.")
          $ Arg.(value & opt (some string) None
                 & info [ "store" ] ~docv:"DIR"
                     ~doc:"Save into a versioned snapshot store under $(docv) \
                           (atomic write, latest pointer, keeps the last \
                           $(b,--keep) snapshots).")
          $ Arg.(value & opt int 5
                 & info [ "keep" ] ~docv:"K"
                     ~doc:"Snapshots to retain in the store (default 5)."))

let load_check model_path seed app threshold advise =
  match Encore_detect.Model_io.load model_path with
  | Error e ->
      prerr_endline
        ("cannot load model: " ^ Encore_detect.Model_io.load_error_to_string e);
      1
  | Ok model ->
      Printf.printf "loaded model: %d rules, trained on %d images\n"
        (List.length model.Detector.rules) model.Detector.training_count;
      let rng = Encore_util.Prng.create (seed + 20_000) in
      let target = Population.generator_for app Profile.ec2 rng ~id:"target" in
      let campaign = Conferr.inject ~env_fault_fraction:0.4 rng app target ~n:2 in
      print_endline "injected ground truth:";
      List.iter
        (fun inj -> Printf.printf "  %s\n" (Fault.injection_to_string inj))
        campaign.Conferr.injections;
      let warnings =
        List.filter
          (fun w -> w.Encore_detect.Warning.score >= threshold)
          (Detector.check model campaign.Conferr.image)
      in
      print_endline "\nranked warnings:";
      print_string (Report.to_string warnings);
      if advise then begin
        print_endline "\nsuggested remediations:";
        print_string
          (Encore_detect.Advisor.to_string
             (Encore_detect.Advisor.advise model campaign.Conferr.image warnings))
      end;
      0

let load_cmd =
  let doc = "Load a serialized model and check a faulted image against it." in
  Cmd.v (Cmd.info "load-check" ~doc)
    Term.(const load_check
          $ Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL")
          $ seed_arg $ app_arg $ threshold_arg
          $ Arg.(value & flag & info [ "advise" ] ~doc:"Also print remediation advice."))

(* --- testgen -------------------------------------------------------------------- *)

let testgen seed profile app n jobs =
  let model, _ = learn_model ~seed ~profile ~jobs app n in
  let rng = Encore_util.Prng.create (seed + 30_000) in
  let img = Population.generator_for app profile rng ~id:"seed-image" in
  let cases = Encore.Testgen.generate model img in
  Printf.printf "%d rule-violating test cases generated from %d learned rules:\n"
    (List.length cases) (List.length model.Detector.rules);
  let verified = ref 0 in
  List.iter
    (fun (c : Encore.Testgen.test_case) ->
      let ok = Encore.Testgen.verify_detected model c in
      if ok then incr verified;
      Printf.printf "  [%s] %s\n    target rule: %s\n"
        (if ok then "re-detected" else "silent     ")
        c.Encore.Testgen.description
        (Encore_rules.Template.rule_to_string c.Encore.Testgen.rule))
    cases;
  Printf.printf "\n%d/%d cases re-detected by the checker\n" !verified
    (List.length cases);
  0

let testgen_cmd =
  let doc = "Generate rule-violating configuration test cases (paper section 8)." in
  Cmd.v (Cmd.info "testgen" ~doc)
    Term.(const testgen $ seed_arg $ profile_arg $ app_arg $ count_arg 100 $ jobs_arg)

(* --- ablation --------------------------------------------------------------------- *)

let ablation which scale_name seed =
  let config = { Encore.Config.default with Encore.Config.seed } in
  let scale =
    match scale_name with
    | "paper" -> Encore.Experiments.paper_scale
    | _ -> Encore.Experiments.test_scale
  in
  let tables =
    match which with
    | "all" -> Some (Encore.Ablation.all ~config ~scale ())
    | "training-size" -> Some [ Encore.Ablation.training_size ~config () ]
    | "confidence" -> Some [ Encore.Ablation.confidence_sweep ~config ~scale () ]
    | "type-selection" -> Some [ Encore.Ablation.type_selection ~config ~scale () ]
    | "checks" -> Some [ Encore.Ablation.check_breakdown ~config ~scale () ]
    | "miners" -> Some [ Encore.Ablation.miners ~config ~scale () ]
    | _ -> None
  in
  match tables with
  | None ->
      prerr_endline ("unknown ablation: " ^ which);
      2
  | Some tables ->
      List.iter (fun t -> print_endline (Encore.Experiments.render t)) tables;
      0

let ablation_cmd =
  let doc =
    "Run an ablation study: training-size, confidence, type-selection, \
     checks or all."
  in
  Cmd.v (Cmd.info "ablation" ~doc)
    Term.(const ablation
          $ Arg.(value & pos 0 string "all" & info [] ~docv:"STUDY")
          $ Arg.(value & opt string "paper"
                 & info [ "scale" ] ~docv:"SCALE" ~doc:"'paper' or 'test'.")
          $ seed_arg)

(* --- case ----------------------------------------------------------------- *)

let run_case case_id seed jobs =
  let cases = Encore_workloads.Cases.all ~seed:(seed + 900) in
  match List.find_opt (fun c -> c.Encore_workloads.Cases.case_id = case_id) cases with
  | None ->
      prerr_endline "case id must be between 1 and 10";
      2
  | Some case ->
      Printf.printf "case %d (%s, needs %s):\n  %s\n\n" case.Encore_workloads.Cases.case_id
        (Image.app_to_string case.Encore_workloads.Cases.app)
        (Encore_workloads.Cases.info_to_string case.Encore_workloads.Cases.info)
        case.Encore_workloads.Cases.description;
      let n =
        Option.value ~default:100
          (List.assoc_opt case.Encore_workloads.Cases.app Population.paper_training_sizes)
      in
      let model, _ =
        learn_model ~seed ~profile:Profile.ec2 ~jobs
          case.Encore_workloads.Cases.app n
      in
      let warnings =
        List.filter
          (fun w -> w.Encore_detect.Warning.score >= 0.55)
          (Detector.check model case.Encore_workloads.Cases.target)
      in
      (if warnings = [] then
         print_endline
           (if case.Encore_workloads.Cases.expect_miss then
              "no warnings - the paper misses this case too (no hardware data \
               in EC2-style training)"
            else "no warnings")
       else begin
         print_endline "ranked warnings:";
         print_string (Report.to_string (Report.merge_by_attr warnings));
         print_endline "\nsuggested remediations:";
         print_string
           (Encore_detect.Advisor.to_string
              (Encore_detect.Advisor.advise model case.Encore_workloads.Cases.target
                 (Report.merge_by_attr warnings)))
       end);
      0

let case_cmd =
  let doc = "Reproduce one of the ten real-world cases of paper Table 9." in
  Cmd.v (Cmd.info "case" ~doc)
    Term.(const run_case
          $ Arg.(value & pos 0 int 3 & info [] ~docv:"ID")
          $ seed_arg $ jobs_arg)

(* --- study ------------------------------------------------------------------ *)

let study () =
  print_endline (Encore.Experiments.render (Encore.Experiments.table1 ()));
  0

let study_cmd =
  let doc = "Print the configuration-parameter study (Table 1)." in
  Cmd.v (Cmd.info "study" ~doc) Term.(const study $ const ())

(* --- export ------------------------------------------------------------------- *)

let export seed profile app n output =
  let images = Population.clean (Population.generate ~profile ~seed app ~n) in
  let assembled = Encore_dataset.Assemble.assemble_training images in
  let csv = Encore_dataset.Table.to_csv assembled.Encore_dataset.Assemble.table in
  (match output with
   | Some path ->
       let oc = open_out path in
       Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc csv);
       Printf.printf "wrote %d rows x %d columns to %s\n"
         (Encore_dataset.Table.row_count assembled.Encore_dataset.Assemble.table)
         (Encore_dataset.Table.column_count assembled.Encore_dataset.Assemble.table)
         path
   | None -> print_string csv);
  0

let export_cmd =
  let doc = "Assemble a population and export the attribute table as CSV." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const export $ seed_arg $ profile_arg $ app_arg $ count_arg 50
          $ Arg.(value & opt (some string) None
                 & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path (stdout if absent)."))

(* --- trace ------------------------------------------------------------------- *)

let trace_summarize file top =
  match Encore_obs.Summary.of_file ~top file with
  | Ok summary ->
      print_string (Encore_obs.Summary.to_string summary);
      0
  | Error msg ->
      prerr_endline ("trace summarize: " ^ msg);
      1

let trace_summarize_cmd =
  let doc = "Summarize a JSONL trace: per-stage time breakdown, slowest spans, \
             event counts." in
  Cmd.v (Cmd.info "summarize" ~doc)
    Term.(const trace_summarize
          $ Arg.(required & pos 0 (some string) None
                 & info [] ~docv:"FILE" ~doc:"JSONL trace written by --trace.")
          $ Arg.(value & opt int 10
                 & info [ "top" ] ~docv:"N"
                     ~doc:"How many of the slowest spans to list."))

let trace_cmd =
  let doc = "Inspect JSONL traces exported with --trace." in
  Cmd.group (Cmd.info "trace" ~doc) [ trace_summarize_cmd ]

(* Exit-code contract (documented in README): 0 = success, 1 = failure,
   2 = usage error (cmdliner's term_err), 3 = degraded or timed-out run.
   Each command term evaluates to its exit code. *)
let () =
  let doc = "EnCore misconfiguration detection (ASPLOS 2014 reproduction)" in
  let info = Cmd.info "encore-cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval' ~term_err:2
       (Cmd.group info
          [ generate_cmd; learn_cmd; check_cmd; inject_cmd; experiment_cmd;
            study_cmd; export_cmd; save_cmd; load_cmd; testgen_cmd; case_cmd;
            ablation_cmd; chaos_cmd; serve_cmd; top_cmd; trace_cmd ]))
