(** Fixed domain pool with a chunked task queue.

    One pool owns [jobs] worker domains for its whole lifetime, so
    consecutive parallel stages (ingest parse, dataset augmentation,
    candidate-rule evaluation) reuse the same domains instead of paying
    a spawn/join per stage — the ad-hoc [Domain.spawn] fan-out this
    module replaces.  [Domain.spawn] elsewhere in [lib/] is banned by
    the lint gate.

    Determinism contract: {!map} and {!map_reduce} return results in
    input order regardless of which worker ran which chunk, and an
    exception raised by [f] is re-raised in the caller for the
    {e lowest} input index that failed.  A pool created with
    [jobs <= 1] spawns no domains and runs everything inline in the
    caller, making [jobs = 1] exactly the sequential path.

    Work is queued as chunks (several items per task) to amortize queue
    synchronization; chunk boundaries are invisible in the results.

    Telemetry: every submitted chunk increments the [pool.tasks]
    counter, and [pool.domains_busy] records the high-water mark of
    concurrently busy workers.

    Pools are not reentrant: calling {!map} on a pool from inside one
    of its own tasks would deadlock with every worker waiting.  Submit
    only from outside the pool. *)

type t

val create : ?chunk:int -> jobs:int -> unit -> t
(** Spawn the workers.  [jobs <= 1] spawns none (inline execution).
    The worker count is capped at [Domain.recommended_domain_count ()]:
    oversubscribing cores only adds contention, so a request for more
    workers than the hardware can schedule degrades gracefully — down
    to inline execution on a single-core host.  Results never depend
    on the effective worker count.

    [chunk] is the number of chunks each worker gets per {!map} /
    {!map_reduce} round (default 4, clamped to >= 1).  Small values
    amortize queue synchronization and GC safepoint traffic — the right
    call on few-core hosts where the fan-out is sync-bound; larger
    values rebalance skewed item costs.  Chunking never changes
    results, only scheduling. *)

val jobs : t -> int

val chunk : t -> int
(** The per-worker chunk factor this pool was created with. *)

val shutdown : t -> unit
(** Drain and join the workers.  Idempotent; the pool runs inline
    afterwards. *)

val with_pool : ?chunk:int -> jobs:int -> (t -> 'a) -> 'a
(** [create], run, then {!shutdown} — even on exceptions. *)

val with_deadline : t -> Deadline.t -> (unit -> 'a) -> 'a
(** Install a cooperative deadline for the duration of the callback:
    every item processed by {!map} / {!map_reduce} (chunked or inline)
    polls the token first, and an expired token aborts the whole call
    with [Deadline.Expired] re-raised in the caller.  Results computed
    before the abort are discarded — a deadline-aborted map yields no
    partial output.  An unlimited token installs nothing. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Like [List.map f], with [f] applied by the workers. *)

val map_batched :
  t ->
  deadline:Deadline.t ->
  ?batch:int ->
  ?yield:('b list -> unit) ->
  ('a -> 'b) ->
  'a list ->
  ('b list, 'b list) result
(** Deadline-aware {!map} that survives expiry with a partial result.
    The input is processed in batches of [batch] items (default: a full
    round of chunks, [jobs * chunk factor]); the deadline is polled
    before each batch and, via {!with_deadline}, at every item within
    it.  [Ok results] when every item completed; [Error prefix] when
    the deadline expired, where [prefix] holds the results of the
    batches completed before expiry (the interrupted batch is
    discarded whole, so the prefix length is a multiple of the batch
    size).  Either way, results are in input order.  [yield] is called
    in the caller's domain with each completed batch's results, in
    input order — a streaming hook that sees exactly the items the
    final result will contain. *)

val map_reduce :
  t -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> init:'b -> 'a list -> 'b
(** [List.fold_left (fun acc x -> reduce acc (map x)) init xs], with
    the [map] calls parallelized.  Each chunk folds from [init] and the
    chunk accumulators are reduced in chunk order, so the result equals
    the sequential fold whenever [reduce] is associative with [init] as
    a neutral element. *)
