type reason = Timed_out | Cancelled

let reason_to_string = function
  | Timed_out -> "timed-out"
  | Cancelled -> "cancelled"

exception Expired of reason

type trigger =
  | Never
  | At_ns of int64
  | After_polls of int Atomic.t  (* polls left; <= 0 means expired *)

type t = { trigger : trigger; cancelled : bool Atomic.t }

let make trigger = { trigger; cancelled = Atomic.make false }

let none = make Never

let at_ns ns = make (At_ns ns)

let of_budget_s s =
  let budget_ns = Int64.of_float (s *. 1e9) in
  at_ns (Int64.add (Encore_obs.Clock.now_ns ()) budget_ns)

let after_polls n = make (After_polls (Atomic.make n))

let cancel t = Atomic.set t.cancelled true

(* Polling the trigger must be sticky: once a token has been observed
   expired it stays expired, so racing pool workers and the
   coordinating domain always agree. [At_ns] is sticky because the
   clock is monotonic; [After_polls] because the counter only ever
   decreases. *)
let timed_out t =
  match t.trigger with
  | Never -> false
  | At_ns deadline -> Encore_obs.Clock.now_ns () >= deadline
  | After_polls left -> Atomic.fetch_and_add left (-1) <= 0

let status t =
  if Atomic.get t.cancelled then Some Cancelled
  else if timed_out t then Some Timed_out
  else None

let expired t = status t <> None

let raise_if_expired t =
  match status t with None -> () | Some r -> raise (Expired r)

let guard t = match status t with None -> Ok () | Some r -> Error r

let remaining_ns t =
  match t.trigger with
  | Never | After_polls _ -> None
  | At_ns deadline ->
      Some (Int64.max 0L (Int64.sub deadline (Encore_obs.Clock.now_ns ())))

let is_unlimited t = match t.trigger with Never -> true | _ -> false
