type error_kind =
  | Parse_error
  | Probe_failure
  | Corrupt_image
  | Overflow
  | Custom_rule_error
  | Timed_out

let all_kinds =
  [
    Parse_error; Probe_failure; Corrupt_image; Overflow; Custom_rule_error;
    Timed_out;
  ]

let kind_to_string = function
  | Parse_error -> "parse-error"
  | Probe_failure -> "probe-failure"
  | Corrupt_image -> "corrupt-image"
  | Overflow -> "overflow"
  | Custom_rule_error -> "custom-rule-error"
  | Timed_out -> "timed-out"

let kind_of_string = function
  | "parse-error" -> Some Parse_error
  | "probe-failure" -> Some Probe_failure
  | "corrupt-image" -> Some Corrupt_image
  | "overflow" -> Some Overflow
  | "custom-rule-error" -> Some Custom_rule_error
  | "timed-out" -> Some Timed_out
  | _ -> None

type diagnostic = { kind : error_kind; subject : string; detail : string }

let diag kind ~subject detail = { kind; subject; detail }

let diagnostic_to_string d =
  Printf.sprintf "[%s] %s: %s" (kind_to_string d.kind) d.subject d.detail

let histogram diags =
  List.map
    (fun kind ->
      (kind, List.length (List.filter (fun d -> d.kind = kind) diags)))
    all_kinds

let histogram_total h = List.fold_left (fun acc (_, n) -> acc + n) 0 h

(* --- integrity scanning ------------------------------------------------- *)

let control_byte c =
  match c with '\n' | '\t' | '\r' -> false | c -> Char.code c < 0x20

let scan_text ~subject text =
  let n = String.length text in
  let garbage = ref 0 in
  String.iter (fun c -> if control_byte c then incr garbage) text;
  let corrupt =
    if !garbage > 0 then
      [ diag Corrupt_image ~subject
          (Printf.sprintf "%d garbage byte(s) in %d-byte payload" !garbage n) ]
    else []
  in
  let truncated =
    if n > 0 && text.[n - 1] <> '\n' then
      [ diag Parse_error ~subject "truncated: payload ends mid-record" ]
    else []
  in
  corrupt @ truncated

(* --- deterministic retry ------------------------------------------------ *)

type 'a attempt = {
  outcome : ('a, diagnostic) result;
  retries : int;
  backoff_ms : int;
}

let m_retries = Encore_obs.Metrics.counter "resilience.retries"

let with_retries ?(max_retries = 3) ?(base_delay_ms = 10)
    ?(retry_on = [ Probe_failure ]) ~rng f =
  let rec go attempt backoff =
    match f ~attempt with
    | Ok v -> { outcome = Ok v; retries = attempt; backoff_ms = backoff }
    | Error d when attempt < max_retries && List.mem d.kind retry_on ->
        (* exponential backoff with jitter, accumulated virtually: the
           schedule is part of the deterministic experiment, not a sleep *)
        let delay =
          (base_delay_ms * (1 lsl attempt)) + Prng.int rng (max 1 base_delay_ms)
        in
        Encore_obs.Metrics.incr m_retries;
        Encore_obs.Events.emit "retry"
          ~fields:
            [
              ("subject", Encore_obs.Jsonenc.Str d.subject);
              ("diag_kind", Encore_obs.Jsonenc.Str (kind_to_string d.kind));
              ("attempt", Encore_obs.Jsonenc.Int attempt);
              ("delay_ms", Encore_obs.Jsonenc.Int delay);
            ];
        go (attempt + 1) (backoff + delay)
    | Error d -> { outcome = Error d; retries = attempt; backoff_ms = backoff }
  in
  go 0 0

(* --- circuit breaker ---------------------------------------------------- *)

type breaker_state = Closed | Open | Half_open

let breaker_state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type circuit = {
  mutable diags : diagnostic list;  (* newest first *)
  mutable circuit_state : breaker_state;
  mutable denied : int;  (* probes denied since the circuit opened *)
}

type breaker = {
  threshold : int;
  cooldown : int;
  circuits : (string, circuit) Hashtbl.t;
  mutable trip_order : string list;  (* reverse order of first trip *)
}

let breaker ?(threshold = 3) ?(cooldown = 3) () =
  {
    threshold;
    cooldown = max 1 cooldown;
    circuits = Hashtbl.create 16;
    trip_order = [];
  }

let circuit b subject =
  match Hashtbl.find_opt b.circuits subject with
  | Some c -> c
  | None ->
      let c = { diags = []; circuit_state = Closed; denied = 0 } in
      Hashtbl.add b.circuits subject c;
      c

let m_breaker_trips = Encore_obs.Metrics.counter "resilience.breaker_trips"

(* State-transition counters: the serve supervisor's breaker-gated
   backoff is driven by these edges, so export each one.  The target
   state names the counter; the source state is implied (the machine
   has one edge into each state apart from re-opening from half-open,
   which still lands in [to_open]). *)
let m_breaker_to_open = Encore_obs.Metrics.counter "resilience.breaker_to_open"

let m_breaker_to_half_open =
  Encore_obs.Metrics.counter "resilience.breaker_to_half_open"

let m_breaker_to_closed =
  Encore_obs.Metrics.counter "resilience.breaker_to_closed"

let record_failure b ~subject d =
  let c = circuit b subject in
  c.diags <- d :: c.diags;
  let opening =
    match c.circuit_state with
    | Half_open -> true  (* the trial probe failed: straight back to open *)
    | Open -> false
    | Closed -> List.length c.diags >= b.threshold
  in
  if opening then begin
    c.circuit_state <- Open;
    c.denied <- 0;
    if not (List.mem subject b.trip_order) then
      b.trip_order <- subject :: b.trip_order;
    Encore_obs.Metrics.incr m_breaker_trips;
    Encore_obs.Metrics.incr m_breaker_to_open;
    Encore_obs.Events.emit "breaker_trip"
      ~fields:
        [
          ("subject", Encore_obs.Jsonenc.Str subject);
          ("failures", Encore_obs.Jsonenc.Int (List.length c.diags));
          ("diag_kind", Encore_obs.Jsonenc.Str (kind_to_string d.kind));
        ]
  end

let record_success b ~subject =
  match Hashtbl.find_opt b.circuits subject with
  | None -> ()
  | Some c ->
      if c.circuit_state <> Closed then
        Encore_obs.Metrics.incr m_breaker_to_closed;
      c.diags <- [];
      c.circuit_state <- Closed;
      c.denied <- 0

let state b ~subject =
  match Hashtbl.find_opt b.circuits subject with
  | Some c -> c.circuit_state
  | None -> Closed

let tripped b ~subject = state b ~subject <> Closed

let allow b ~subject =
  match Hashtbl.find_opt b.circuits subject with
  | None -> true
  | Some c -> (
      match c.circuit_state with
      | Closed | Half_open -> true
      | Open ->
          c.denied <- c.denied + 1;
          if c.denied >= b.cooldown then begin
            c.circuit_state <- Half_open;
            Encore_obs.Metrics.incr m_breaker_to_half_open;
            true
          end
          else false)

let quarantined b =
  List.filter_map
    (fun subject ->
      match Hashtbl.find_opt b.circuits subject with
      | Some c when c.circuit_state <> Closed ->
          Some (subject, List.rev c.diags)
      | Some _ | None -> None)
    (List.rev b.trip_order)
