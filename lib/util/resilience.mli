(** Resilience layer: typed ingestion errors, deterministic
    retry-with-backoff, and a per-subject circuit breaker.

    Production-scale training corpora are messy — images arrive with
    malformed configuration files, unreadable metadata and flaky
    collectors.  Every fallible step of the ingestion pipeline reports
    through the {!diagnostic} type instead of raising, so the pipeline
    stays total: one bad image can never kill a run.

    All backoff "delays" are virtual (accumulated milliseconds computed
    from a seeded PRNG), never wall-clock sleeps: a retry schedule is
    reproducible from the seed alone. *)

type error_kind =
  | Parse_error        (** malformed configuration text or records *)
  | Probe_failure      (** environment probe failed or metadata unreadable *)
  | Corrupt_image      (** content damaged beyond recovery (garbage bytes) *)
  | Overflow           (** a bounded computation hit its cap and truncated *)
  | Custom_rule_error  (** user customization file rejected *)
  | Timed_out          (** a deadline expired before the work finished *)

val all_kinds : error_kind list
val kind_to_string : error_kind -> string
val kind_of_string : string -> error_kind option

type diagnostic = {
  kind : error_kind;
  subject : string;  (** what failed: image id, file path or attribute *)
  detail : string;
}

val diag : error_kind -> subject:string -> string -> diagnostic
val diagnostic_to_string : diagnostic -> string

val histogram : diagnostic list -> (error_kind * int) list
(** Count per kind, in {!all_kinds} order, zero-count kinds included —
    so histograms from different runs always align column-wise. *)

val histogram_total : (error_kind * int) list -> int

(* --- integrity scanning ------------------------------------------------- *)

val scan_text : subject:string -> string -> diagnostic list
(** Content-integrity check for a collected text file.  Control bytes
    (outside tab/newline/CR) mean the payload was damaged in transit
    ([Corrupt_image]); a non-empty file without a trailing newline was
    truncated mid-record ([Parse_error]), since every collector dump and
    lens render ends with ['\n']. *)

(* --- deterministic retry ------------------------------------------------ *)

type 'a attempt = {
  outcome : ('a, diagnostic) result;  (** last attempt's result *)
  retries : int;          (** retries performed (0 = first try succeeded) *)
  backoff_ms : int;       (** total virtual backoff accumulated *)
}

val with_retries :
  ?max_retries:int ->
  ?base_delay_ms:int ->
  ?retry_on:error_kind list ->
  rng:Prng.t ->
  (attempt:int -> ('a, diagnostic) result) ->
  'a attempt
(** [with_retries ~rng f] runs [f ~attempt:0], retrying on failure up to
    [max_retries] (default 3) more times with exponential backoff
    [base_delay_ms * 2^n] (default 10) plus PRNG jitter.  Only failures
    whose kind is in [retry_on] (default [[Probe_failure]]) are retried:
    a corrupt payload will not heal, but a flaky probe may. *)

(* --- circuit breaker ---------------------------------------------------- *)

type breaker
(** Per-subject circuit breaker.  A subject's circuit is [Closed] until
    [threshold] failures accumulate, then [Open]: callers should stop
    spending retries on it.  After [cooldown] denied probes ({!allow}
    returning [false]) the circuit moves to [Half_open] and admits one
    trial — a success closes it again, a failure re-opens it. *)

type breaker_state = Closed | Open | Half_open

val breaker_state_to_string : breaker_state -> string

val breaker : ?threshold:int -> ?cooldown:int -> unit -> breaker
(** [threshold] defaults to 3; [cooldown] (minimum 1) defaults to 3. *)

val record_failure : breaker -> subject:string -> diagnostic -> unit
(** Count a failure.  Opens the circuit at [threshold] failures, and
    re-opens a half-open circuit immediately (the trial failed). *)

val record_success : breaker -> subject:string -> unit
(** A success closes the circuit and clears the failure count. *)

val state : breaker -> subject:string -> breaker_state

val allow : breaker -> subject:string -> bool
(** Should the caller probe this subject?  [Closed] and [Half_open]
    always admit; [Open] denies until [cooldown] denials have
    accumulated, then flips to [Half_open] and admits the trial. *)

val tripped : breaker -> subject:string -> bool
(** The circuit is not [Closed]. *)

val quarantined : breaker -> (string * diagnostic list) list
(** Subjects whose circuit is currently open or half-open, with their
    recorded diagnostics, in first-trip order.  Subjects whose circuit
    closed again after tripping are excluded. *)
