(** Execution budgets and cooperative cancellation.

    A deadline is a token threaded through the pipeline stages and the
    {!Pool} task loops: long-running work polls it between units of
    work and aborts cooperatively when the budget is exhausted or the
    caller cancels.  Nothing is preempted — a run always stops at a
    clean boundary, which is what lets the pipeline write a valid
    checkpoint and report [Timed_out] instead of dying mid-write.

    Time flows through {!Encore_obs.Clock.now_ns} (monotonic,
    test-pluggable).  For fully deterministic tests and chaos drills,
    {!after_polls} expires after a fixed number of polls, independent of
    any clock. *)

type reason =
  | Timed_out   (** the monotonic budget ran out *)
  | Cancelled   (** {!cancel} was called *)

val reason_to_string : reason -> string

exception Expired of reason
(** Raised by {!raise_if_expired}; internal control flow only — every
    public pipeline entry point catches it and returns a degraded
    result. *)

type t

val none : t
(** Never expires, never cancelled (unless {!cancel} is called). *)

val of_budget_s : float -> t
(** Expires [budget] seconds of monotonic clock after creation.  A
    non-positive budget is already expired. *)

val at_ns : int64 -> t
(** Expires when {!Encore_obs.Clock.now_ns} reaches the given absolute
    timestamp. *)

val after_polls : int -> t
(** Deterministic trigger: the first [n] calls to {!status} /
    {!expired} / {!raise_if_expired} / {!guard} see the token alive;
    every later call sees it timed out.  Clock-free, for tests and
    chaos drills. *)

val cancel : t -> unit
(** Flip the token to [Cancelled].  Thread-safe; wins over [Timed_out]
    in {!status}. *)

val status : t -> reason option
(** [None] while the token is alive.  This is a poll: for
    {!after_polls} tokens it consumes one allowance. *)

val expired : t -> bool

val raise_if_expired : t -> unit
(** @raise Expired when the token is no longer alive. *)

val guard : t -> (unit, reason) result

val remaining_ns : t -> int64 option
(** Budget left on a clock-based token ([None] for unlimited or
    poll-based tokens); never negative. *)

val is_unlimited : t -> bool
(** [true] only for {!none}-like tokens that can never time out on
    their own (cancellation still applies). *)
