let m_tasks = Encore_obs.Metrics.counter "pool.tasks"
let g_busy = Encore_obs.Metrics.gauge "pool.domains_busy"

type t = {
  n_jobs : int;
  chunk : int;  (* chunks per worker for one map/map_reduce round *)
  queue : (unit -> unit) Queue.t;  (* tasks never raise: wrappers catch *)
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  busy : int Atomic.t;
  high_water : int Atomic.t;
  deadline : Deadline.t option Atomic.t;
}

let jobs t = t.n_jobs
let chunk t = t.chunk

let rec record_high_water t busy_now =
  let hw = Atomic.get t.high_water in
  if busy_now > hw && not (Atomic.compare_and_set t.high_water hw busy_now)
  then record_high_water t busy_now

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some task -> Some task
    | None ->
        if t.stopping then None
        else begin
          Condition.wait t.nonempty t.mutex;
          next ()
        end
  in
  let task = next () in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some run ->
      record_high_water t (1 + Atomic.fetch_and_add t.busy 1);
      run ();
      ignore (Atomic.fetch_and_add t.busy (-1));
      worker_loop t

(* A few chunks per worker balances the load when item costs are
   skewed, without paying queue synchronization per item. *)
let default_chunk_factor = 4

let create ?(chunk = default_chunk_factor) ~jobs () =
  (* Never run more worker domains than the hardware can schedule:
     OCaml domains are heavyweight, and oversubscribing cores makes
     every pool operation slower than running inline.  A request for
     more workers than cores is capped, which on a single-core host
     degrades to (fast) inline execution. *)
  let t =
    {
      n_jobs = max 1 (min jobs (Domain.recommended_domain_count ()));
      chunk = max 1 chunk;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      stopping = false;
      workers = [];
      busy = Atomic.make 0;
      high_water = Atomic.make 0;
      deadline = Atomic.make None;
    }
  in
  if t.n_jobs > 1 then
    t.workers <-
      List.init t.n_jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  let workers =
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    let ws = t.workers in
    t.workers <- [];
    Mutex.unlock t.mutex;
    ws
  in
  List.iter Domain.join workers

let with_pool ?chunk ~jobs f =
  let t = create ?chunk ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Cooperative cancellation: while [f] runs, every item processed by
   {!map} / {!map_reduce} polls [d] first and aborts the whole call
   with [Deadline.Expired] (re-raised in the caller through the usual
   lowest-index propagation) once the budget is gone.  Unlimited
   tokens are not installed at all, keeping the common path free of
   per-item clock reads. *)
let with_deadline t d f =
  if Deadline.is_unlimited d then f ()
  else begin
    Atomic.set t.deadline (Some d);
    Fun.protect ~finally:(fun () -> Atomic.set t.deadline None) f
  end

let poll_deadline t =
  match Atomic.get t.deadline with
  | None -> ()
  | Some d -> Deadline.raise_if_expired d

(* Boundaries of [n_chunks] near-equal slices of [0, n). *)
let chunk_bounds n n_chunks =
  List.init n_chunks (fun i -> (i * n / n_chunks, (i + 1) * n / n_chunks))

(* Run every closure on the pool and wait for all of them.  Closures
   must not raise; worker spans nest under the caller's current span
   via the captured trace context. *)
let submit_and_wait t closures =
  let n = List.length closures in
  let done_mutex = Mutex.create () in
  let done_cond = Condition.create () in
  let remaining = ref n in
  let ctx = Encore_obs.Trace.capture () in
  let wrap body () =
    Encore_obs.Trace.with_context ctx body;
    Mutex.lock done_mutex;
    decr remaining;
    if !remaining = 0 then Condition.signal done_cond;
    Mutex.unlock done_mutex
  in
  Mutex.lock t.mutex;
  List.iter (fun body -> Queue.add (wrap body) t.queue) closures;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  Mutex.lock done_mutex;
  while !remaining > 0 do
    Condition.wait done_cond done_mutex
  done;
  Mutex.unlock done_mutex;
  Encore_obs.Metrics.incr ~by:n m_tasks;
  Encore_obs.Metrics.set_max g_busy (float_of_int (Atomic.get t.high_water))

let inline t = t.n_jobs <= 1 || t.stopping

let map t f xs =
  if inline t || (match xs with [] | [ _ ] -> true | _ -> false) then
    List.map
      (fun x ->
        poll_deadline t;
        f x)
      xs
  else begin
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n None in
    let chunk (lo, hi) () =
      for i = lo to hi - 1 do
        results.(i) <-
          Some
            (match
               poll_deadline t;
               f items.(i)
             with
             | v -> Ok v
             | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      done
    in
    let bounds = chunk_bounds n (min n (t.n_jobs * t.chunk)) in
    submit_and_wait t (List.map chunk bounds);
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

(* First [n] items of [xs] (all of them when fewer), plus the rest.
   Batches are a few dozen items, so plain recursion is fine. *)
let rec take n xs =
  if n = 0 then ([], xs)
  else
    match xs with
    | [] -> ([], [])
    | x :: rest ->
        let batch, rest = take (n - 1) rest in
        (x :: batch, rest)

let map_batched t ~deadline ?batch ?yield f xs =
  let batch_size =
    match batch with Some b -> max 1 b | None -> max 1 (t.n_jobs * t.chunk)
  in
  let emit rs = match yield with None -> () | Some y -> y rs in
  let rec go acc xs =
    match xs with
    | [] -> Ok (List.concat (List.rev acc))
    | _ -> (
        let b, rest = take batch_size xs in
        match
          Deadline.raise_if_expired deadline;
          with_deadline t deadline (fun () -> map t f b)
        with
        | rs ->
            emit rs;
            go (rs :: acc) rest
        | exception Deadline.Expired _ -> Error (List.concat (List.rev acc)))
  in
  go [] xs

let map_reduce t ~map:fm ~reduce ~init xs =
  if inline t || (match xs with [] | [ _ ] -> true | _ -> false) then
    List.fold_left
      (fun acc x ->
        poll_deadline t;
        reduce acc (fm x))
      init xs
  else begin
    let items = Array.of_list xs in
    let n = Array.length items in
    let n_chunks = min n (t.n_jobs * t.chunk) in
    let accs = Array.make n_chunks None in
    let chunk idx (lo, hi) () =
      accs.(idx) <-
        Some
          (match
             let acc = ref init in
             for i = lo to hi - 1 do
               poll_deadline t;
               acc := reduce !acc (fm items.(i))
             done;
             !acc
           with
           | acc -> Ok acc
           | exception e -> Error (e, Printexc.get_raw_backtrace ()))
    in
    let bounds = chunk_bounds n n_chunks in
    submit_and_wait t (List.mapi chunk bounds);
    Array.fold_left
      (fun acc slot ->
        match slot with
        | Some (Ok chunk_acc) -> reduce acc chunk_acc
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      init accs
  end
