let version = "1"
let magic = "ENCORE-SNAP"

type error =
  | Io_error of { path : string; detail : string }
  | Truncated of { path : string; offset : int; expected : int; actual : int }
  | Corrupt of { path : string; offset : int; detail : string }
  | Version_mismatch of { path : string; found : string; expected : string }
  | Malformed of { path : string; offset : int; detail : string }

let error_to_string = function
  | Io_error { path; detail } -> Printf.sprintf "Io_error %s: %s" path detail
  | Truncated { path; offset; expected; actual } ->
      Printf.sprintf
        "Truncated %s at byte %d: payload is %d byte(s), header promised %d"
        path offset actual expected
  | Corrupt { path; offset; detail } ->
      Printf.sprintf "Corrupt %s at byte %d: %s" path offset detail
  | Version_mismatch { path; found; expected } ->
      Printf.sprintf "Version_mismatch %s: found %s, expected %s" path found
        expected
  | Malformed { path; offset; detail } ->
      Printf.sprintf "Malformed %s at byte %d: %s" path offset detail

let error_offset = function
  | Io_error _ | Version_mismatch _ -> None
  | Truncated { offset; _ } | Corrupt { offset; _ } | Malformed { offset; _ } ->
      Some offset

let m_writes = Encore_obs.Metrics.counter "snapshot.writes"
let m_bytes = Encore_obs.Metrics.counter "snapshot.bytes_written"
let m_rollbacks = Encore_obs.Metrics.counter "snapshot.rollbacks"

let header ~kind payload =
  Printf.sprintf "%s %s %s %d %s\n" magic version kind (String.length payload)
    (Digest.to_hex (Digest.string payload))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Temp file + fsync + rename, all within the destination directory so
   the rename cannot cross filesystems.  The temp name embeds the pid:
   two processes snapshotting the same path stage separately and the
   last rename wins whole. *)
let write_atomic ~kind path payload =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename path) (Unix.getpid ()))
  in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (header ~kind payload);
         output_string oc payload;
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc))
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  Encore_obs.Metrics.incr m_writes;
  Encore_obs.Metrics.incr ~by:(String.length payload) m_bytes;
  Encore_obs.Events.emit "snapshot"
    ~fields:
      [
        ("path", Encore_obs.Jsonenc.Str path);
        ("kind", Encore_obs.Jsonenc.Str kind);
        ("bytes", Encore_obs.Jsonenc.Int (String.length payload));
      ]

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error (Io_error { path; detail = e })
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | text -> Ok text
      | exception e ->
          Error (Io_error { path; detail = Printexc.to_string e }))

let read ~kind path =
  match read_file path with
  | Error _ as e -> e
  | Ok text -> (
      let expected_tag = Printf.sprintf "%s %s %s" magic version kind in
      match String.index_opt text '\n' with
      | None ->
          (* no header line at all: either an empty/foreign file or a
             snapshot truncated inside its own header *)
          Error
            (Version_mismatch
               { path;
                 found =
                   (if text = "" then "(empty file)"
                    else String.sub text 0 (min 40 (String.length text)));
                 expected = expected_tag })
      | Some nl -> (
          let hdr = String.sub text 0 nl in
          match String.split_on_char ' ' hdr with
          | [ m; v; k; len; sum ] when m = magic ->
              if v <> version || k <> kind then
                Error
                  (Version_mismatch
                     { path;
                       found = Printf.sprintf "%s %s %s" m v k;
                       expected = expected_tag })
              else (
                match int_of_string_opt len with
                | None ->
                    Error
                      (Corrupt
                         { path; offset = 0;
                           detail = "unreadable payload length in header" })
                | Some expected ->
                    let actual = String.length text - nl - 1 in
                    if actual < expected then
                      Error
                        (Truncated
                           { path; offset = String.length text; expected;
                             actual })
                    else if actual > expected then
                      Error
                        (Corrupt
                           { path; offset = nl + 1 + expected;
                             detail =
                               Printf.sprintf "%d trailing byte(s) after payload"
                                 (actual - expected) })
                    else
                      let payload = String.sub text (nl + 1) expected in
                      let got = Digest.to_hex (Digest.string payload) in
                      if got <> sum then
                        Error
                          (Corrupt
                             { path; offset = nl + 1;
                               detail =
                                 Printf.sprintf
                                   "checksum mismatch: payload digests to %s, \
                                    header says %s"
                                   got sum })
                      else Ok payload)
          | first :: _ when first <> magic ->
              Error (Version_mismatch { path; found = hdr; expected = expected_tag })
          | _ ->
              Error
                (Corrupt
                   { path; offset = 0;
                     detail = "malformed snapshot header line" })))

(* --- typed payload framing ------------------------------------------------ *)

let frame ~schema payload = schema ^ "\n" ^ payload

let unframe ~schema ~path payload =
  match String.index_opt payload '\n' with
  | Some nl when String.sub payload 0 nl = schema ->
      Ok (String.sub payload (nl + 1) (String.length payload - nl - 1))
  | Some nl ->
      Error
        (Version_mismatch
           { path; found = String.sub payload 0 nl; expected = schema })
  | None ->
      Error
        (Version_mismatch
           { path;
             found =
               (if payload = "" then "(empty payload)"
                else String.sub payload 0 (min 40 (String.length payload)));
             expected = schema })

(* --- versioned store ----------------------------------------------------- *)

module Store = struct
  type t = { store_dir : string; store_kind : string; store_keep : int }

  let snap_re_prefix = "snap-"
  let snap_suffix = ".snap"

  let create ?(keep = 5) ~kind ~dir () =
    mkdir_p dir;
    { store_dir = dir; store_kind = kind; store_keep = max 1 keep }

  let dir t = t.store_dir
  let keep t = t.store_keep

  let latest_file t = Filename.concat t.store_dir "latest"

  let seq_of_name name =
    if
      String.length name
      > String.length snap_re_prefix + String.length snap_suffix
      && String.sub name 0 (String.length snap_re_prefix) = snap_re_prefix
      && Filename.check_suffix name snap_suffix
    then
      int_of_string_opt
        (String.sub name
           (String.length snap_re_prefix)
           (String.length name - String.length snap_re_prefix
          - String.length snap_suffix))
    else None

  let snapshot_names t =
    let entries = try Sys.readdir t.store_dir with Sys_error _ -> [||] in
    Array.to_list entries
    |> List.filter_map (fun n ->
           match seq_of_name n with Some s -> Some (s, n) | None -> None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)

  let snapshots t =
    List.map (fun (_, n) -> Filename.concat t.store_dir n) (snapshot_names t)

  let name_of_seq seq = Printf.sprintf "%s%06d%s" snap_re_prefix seq snap_suffix

  (* The pointer itself is written through the atomic writer too: a
     torn [latest] would otherwise defeat the whole layout.  Dangling
     or missing pointers fall back to the newest numbered snapshot. *)
  let read_latest_pointer t =
    match read ~kind:(t.store_kind ^ "-latest") (latest_file t) with
    | Ok name when String.length name > 0 -> Some (String.trim name)
    | Ok _ | Error _ -> None

  let write_latest_pointer t name =
    write_atomic ~kind:(t.store_kind ^ "-latest") (latest_file t) name

  let latest_path t =
    match read_latest_pointer t with
    | Some name when Sys.file_exists (Filename.concat t.store_dir name) ->
        Some (Filename.concat t.store_dir name)
    | Some _ | None -> (
        match snapshots t with p :: _ -> Some p | [] -> None)

  let prune t =
    let rec drop n = function
      | [] -> []
      | l when n > 0 -> drop (n - 1) (List.tl l)
      | l -> l
    in
    List.iter
      (fun (_, name) ->
        try Sys.remove (Filename.concat t.store_dir name) with Sys_error _ -> ())
      (drop t.store_keep (snapshot_names t))

  let save t payload =
    let next_seq =
      match snapshot_names t with (s, _) :: _ -> s + 1 | [] -> 1
    in
    let name = name_of_seq next_seq in
    let path = Filename.concat t.store_dir name in
    write_atomic ~kind:t.store_kind path payload;
    write_latest_pointer t name;
    prune t;
    path

  let load_latest t =
    let candidates =
      match latest_path t with
      | None -> []
      | Some head ->
          (* head first, then every older snapshot not equal to it *)
          head :: List.filter (fun p -> p <> head) (snapshots t)
    in
    match candidates with
    | [] ->
        Error
          (Io_error { path = t.store_dir; detail = "store holds no snapshots" })
    | head :: _ -> (
        let rec walk first_error = function
          | [] -> Error first_error
          | p :: rest -> (
              match read ~kind:t.store_kind p with
              | Ok payload ->
                  if p <> head then begin
                    (* rollback: repoint latest at the newest snapshot
                       that still verifies *)
                    Encore_obs.Metrics.incr m_rollbacks;
                    Encore_obs.Events.emit_rollback ~from_path:head ~to_path:p
                      ~error:(error_to_string first_error);
                    write_latest_pointer t (Filename.basename p)
                  end;
                  Ok (payload, p)
              | Error e ->
                  walk (if p = head then e else first_error) rest)
        in
        match read ~kind:t.store_kind head with
        | Ok payload -> Ok (payload, head)
        | Error head_error -> walk head_error (List.tl candidates))
end
