(** String-interning symbol table: a bijection between strings and
    dense non-negative ids, assigned in interning order.

    Interning hashes a string once; afterwards the id stands in for the
    string in hot loops (array indexing instead of per-row hashtable
    probes).  Ids are stable for the table's lifetime and deterministic
    for a deterministic interning sequence. *)

type t

val create : ?size:int -> unit -> t
(** [size] is a capacity hint (default 64). *)

val intern : t -> string -> int
(** The id of the string, assigning the next dense id on first sight. *)

val find : t -> string -> int option
(** The id if already interned, without assigning one. *)

val name : t -> int -> string
(** Inverse lookup.  @raise Invalid_argument on an unassigned id. *)

val size : t -> int
(** Number of interned strings; valid ids are [0 .. size - 1]. *)

val to_array : t -> string array
(** Fresh id-indexed array of all interned strings. *)
