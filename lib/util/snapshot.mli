(** Durable snapshot I/O: the atomic writer behind every model artifact.

    A crash mid-write, a torn rename or a bit flipped at rest must never
    be loadable as a valid artifact — a silently corrupt model poisons
    every downstream detection run.  This module is the only place in
    the library allowed to open an output channel for a model artifact
    (enforced by [tools/lint.sh]); everything durable goes through it.

    On-disk format (schema version {!version}):
    {v
    ENCORE-SNAP <version> <kind> <payload-bytes> <md5-hex>\n
    <payload>
    v}
    The writer stages the bytes in a temp file in the target directory,
    flushes and fsyncs it, then renames over the destination — readers
    see either the old artifact or the complete new one, never a tear.

    {!Store} adds a versioned directory layout: numbered snapshots, a
    [latest] pointer, pruning to the last [keep] snapshots, and
    rollback — loading walks back to the newest snapshot that still
    verifies. *)

val version : string
val magic : string

type error =
  | Io_error of { path : string; detail : string }
      (** the file cannot be opened or read at all *)
  | Truncated of { path : string; offset : int; expected : int; actual : int }
      (** payload shorter than the header promised; [offset] is the
          file length where the data stops *)
  | Corrupt of { path : string; offset : int; detail : string }
      (** checksum mismatch or trailing bytes; [offset] is where
          verification failed *)
  | Version_mismatch of { path : string; found : string; expected : string }
      (** wrong magic, schema version or artifact kind *)
  | Malformed of { path : string; offset : int; detail : string }
      (** the payload verified but does not parse; [offset] is the byte
          offset of the offending content (used by typed payload
          decoders such as [Model_io]) *)

val error_to_string : error -> string
(** Variant name, file, byte offset where detection failed, detail. *)

val error_offset : error -> int option

val mkdir_p : string -> unit
(** [mkdir -p]: create the directory and any missing parents. *)

val write_atomic : kind:string -> string -> string -> unit
(** [write_atomic ~kind path payload]: temp file + fsync + rename.
    Counted in the [snapshot.writes] / [snapshot.bytes_written]
    metrics and emitted as a [snapshot] event. *)

val read : kind:string -> string -> (string, error) result
(** Verify header, length and checksum; return the payload.  Never
    raises. *)

val frame : schema:string -> string -> string
(** Prefix a typed payload with its own schema line, inside the
    snapshot envelope: the snapshot layer authenticates bytes, the
    schema line versions their interpretation (the model and
    sufficient-statistics envelopes both use this). *)

val unframe : schema:string -> path:string -> string -> (string, error) result
(** Strip and check the schema line; [Version_mismatch] when it is not
    exactly [schema].  [path] only labels the error. *)

module Store : sig
  type t

  val create : ?keep:int -> kind:string -> dir:string -> unit -> t
  (** Open (creating the directory if needed) a snapshot store.  [keep]
      (default 5, minimum 1) bounds how many snapshots survive
      pruning. *)

  val dir : t -> string
  val keep : t -> int

  val save : t -> string -> string
  (** Write the payload as the next numbered snapshot, atomically
      repoint [latest] at it, prune the oldest beyond [keep]; returns
      the snapshot path. *)

  val snapshots : t -> string list
  (** Verifiable or not, newest first. *)

  val latest_path : t -> string option
  (** Target of the [latest] pointer, falling back to the newest
      numbered snapshot when the pointer is missing or dangling. *)

  val load_latest : t -> (string * string, error) result
  (** [(payload, path)] of the newest snapshot that verifies.  A
      corrupt / truncated head is skipped — the store walks back
      through older snapshots, repoints [latest] at the first one that
      verifies (emitting a [snapshot_rollback] event and counting
      [snapshot.rollbacks]) and returns it.  Only when no snapshot
      verifies does the head's error surface. *)
end
