type t = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;  (* id -> string, capacity >= count *)
  mutable count : int;
}

let create ?(size = 64) () =
  { ids = Hashtbl.create size; names = Array.make (max 1 size) ""; count = 0 }

let size t = t.count

let find t s = Hashtbl.find_opt t.ids s

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
      let id = t.count in
      if id = Array.length t.names then begin
        let grown = Array.make (2 * id) "" in
        Array.blit t.names 0 grown 0 id;
        t.names <- grown
      end;
      t.names.(id) <- s;
      t.count <- id + 1;
      Hashtbl.add t.ids s id;
      id

let name t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Symtab.name: unassigned id %d" id)
  else t.names.(id)

let to_array t = Array.sub t.names 0 t.count
