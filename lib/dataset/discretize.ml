type item = string

let numeric_bins = 4

let is_numeric_column values =
  values <> []
  && List.for_all
       (fun v -> Encore_util.Strutil.parse_number v <> None)
       values

let bin_label attr lo hi = Printf.sprintf "%s in [%g,%g)" attr lo hi

(* Per-column rendering decision, fixed once per column instead of
   re-scanning the column's values for every cell. *)
type column_kind =
  | Text
  | Numeric of float * float  (* lo, hi over the column *)

let column_kind ~numeric values =
  if numeric && is_numeric_column values then
    let floats = List.filter_map Encore_util.Strutil.parse_number values in
    let lo = List.fold_left min infinity floats in
    let hi = List.fold_left max neg_infinity floats in
    Numeric (lo, hi)
  else Text

let numeric_item attr lo hi v =
  let x = Option.value ~default:lo (Encore_util.Strutil.parse_number v) in
  if hi <= lo then bin_label attr lo (lo +. 1.0)
  else
    let width = (hi -. lo) /. float_of_int numeric_bins in
    let idx =
      min (numeric_bins - 1) (int_of_float ((x -. lo) /. width))
    in
    let blo = lo +. (width *. float_of_int idx) in
    bin_label attr blo (blo +. width)

let item_of attr kind v =
  match kind with
  | Numeric (lo, hi) -> numeric_item attr lo hi v
  | Text -> attr ^ "=" ^ v

let items_of_table ?(numeric = true) table =
  let kinds = Hashtbl.create 64 in
  List.iter
    (fun c ->
      Hashtbl.replace kinds c
        (column_kind ~numeric (Table.column_values table c)))
    (Table.columns table);
  let item_of attr v =
    match Hashtbl.find_opt kinds attr with
    | Some kind -> item_of attr kind v
    | None -> attr ^ "=" ^ v
  in
  let row_items =
    Array.of_list
      (List.map
         (fun (_, row) ->
           List.sort_uniq compare
             (List.map (fun (attr, v) -> item_of attr v) (Row.to_list row)))
         (Table.rows table))
  in
  let universe =
    Array.to_list row_items |> List.concat |> List.sort_uniq compare
  in
  (universe, row_items)

let transactions table =
  let universe, row_items = items_of_table table in
  (* interning in sorted-universe order keeps ids identical to the
     historical dictionary layout *)
  let tab = Encore_util.Symtab.create ~size:(List.length universe) () in
  List.iter (fun item -> ignore (Encore_util.Symtab.intern tab item)) universe;
  let encode items =
    items
    |> List.map (Encore_util.Symtab.intern tab)
    |> List.sort_uniq compare
    |> Array.of_list
  in
  (Array.map encode row_items, Encore_util.Symtab.to_array tab)

let binomial_count table =
  let universe, _ = items_of_table table in
  List.length universe
