(** Columnar (int-indexed) view of an assembled training set.

    Candidate-rule evaluation touches every (attribute, row) pair once
    per candidate; going through {!Row.get_all} costs a string hash and
    a hashtable probe per touch.  This view pays the hashing once —
    attribute names are interned into a {!Encore_util.Symtab} — and
    stores each column as a row-indexed array of instance lists, so the
    per-candidate inner loop is two array loads per row.

    The view is immutable after construction and safe to share across
    pool worker domains. *)

type t

val of_rows : Row.t list -> t
(** Column order is first-appearance order across the rows, matching
    {!Table.columns}. *)

val append_rows : t -> Row.t list -> t
(** A fresh view equal to [of_rows (rows_of t @ rows)]: existing
    columns keep their ids, attributes first seen in [rows] take the
    next ids in their own first-appearance order.  [t] is unchanged;
    old column cells are shared. *)

val n_rows : t -> int
val n_attrs : t -> int

val attrs : t -> string list
(** Attribute names in id order (= first-appearance order). *)

val id : t -> string -> int option
(** The column id of an attribute, if present in any row. *)

val column : t -> int -> string list array
(** Row-indexed instances of one attribute; [[]] where absent.  The
    returned array is the view's own — do not mutate. *)

val values : t -> attr:int -> row:int -> string list
