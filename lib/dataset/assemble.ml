module Image = Encore_sysenv.Image
module Registry = Encore_confparse.Registry
module Kv = Encore_confparse.Kv
module Infer = Encore_typing.Infer
module Ctype = Encore_typing.Ctype

type assembled = { table : Table.t; types : Infer.env }

let parse_only img =
  Row.of_list
    (List.map (fun (kv : Kv.t) -> (kv.key, kv.value)) (Registry.parse_image img))

let augment_row ~types img base_row =
  let augmented =
    List.concat_map
      (fun (attr, value) ->
        match Infer.find types attr with
        | None -> []
        | Some decision -> Augment.entry img attr decision.Infer.ctype value)
      (Row.to_list base_row)
  in
  Row.of_list (Row.to_list base_row @ augmented @ Augment.globals img)

let pmap pool f xs =
  match pool with
  | Some p -> Encore_util.Pool.map p f xs
  | None -> List.map f xs

let assemble_training ?pool images =
  (* pass 1: parse every image and infer column types on the raw data *)
  let parsed = pmap pool (fun img -> (img, parse_only img)) images in
  let config_types =
    Infer.infer
      (List.map (fun (img, row) -> (img, Row.to_list row)) parsed)
  in
  (* pass 2: augment according to the types *)
  let rows =
    pmap pool
      (fun (img, row) ->
        (img.Image.image_id, augment_row ~types:config_types img row))
      parsed
  in
  (* infer types for the augmented columns too, so rules can reference
     them; augmentation-derived columns have canonical suffix types *)
  let table = Table.of_rows rows in
  let img_rows =
    List.map2 (fun (img, _) (_, row) -> (img, row)) parsed rows
  in
  let aug_types =
    List.filter_map
      (fun col ->
        if Infer.find config_types col <> None then None
        else if Augment.is_augmented col then
          Some
            ( col,
              { Infer.ctype = Augment.augmented_type col;
                agreement = 1.0;
                samples = Table.column_support table col } )
        else
          (* global attributes: infer from their values *)
          let samples =
            List.filter_map
              (fun (img, row) ->
                match Row.get row col with
                | Some v -> Some (img, v)
                | None -> None)
              img_rows
          in
          Some (col, Infer.infer_column samples))
      (Table.columns table)
  in
  { table; types = config_types @ aug_types }

(* The serving-path variant of [augment_row]: the type environment is
   hashed once (first binding wins, like [Infer.find]) instead of being
   scanned per attribute on every call. *)
let target_assembler ~types =
  let tbl = Hashtbl.create (2 * List.length types + 1) in
  List.iter
    (fun (attr, (d : Infer.decision)) ->
      if not (Hashtbl.mem tbl attr) then Hashtbl.add tbl attr d)
    types;
  fun img ->
    (* the parsed pairs feed augmentation and the final row directly:
       Row.to_list (Row.of_list pairs) = pairs, so skipping the
       intermediate [parse_only] row changes nothing observable *)
    let pairs =
      List.map (fun (kv : Kv.t) -> (kv.key, kv.value)) (Registry.parse_image img)
    in
    let augmented =
      List.concat_map
        (fun (attr, value) ->
          match Hashtbl.find_opt tbl attr with
          | None -> []
          | Some decision -> Augment.entry img attr decision.Infer.ctype value)
        pairs
    in
    Row.of_list (pairs @ augmented @ Augment.globals img)

let assemble_target ~types img = target_assembler ~types img

let type_of types attr =
  match Infer.find types attr with
  | Some d -> d.Infer.ctype
  | None ->
      if Augment.is_augmented attr then Augment.augmented_type attr
      else Ctype.String_t
