module Bitset = struct
  (* 62 payload bits per word: every mask stays a positive OCaml int
     (max_int is 2^62 - 1), so the word arithmetic below never touches
     the sign bit. *)
  let word_bits = 62

  type t = { words : int array; len : int }

  let create len =
    if len < 0 then invalid_arg "Bitset.create: negative length";
    { words = Array.make ((len + word_bits - 1) / word_bits) 0; len }

  let length t = t.len

  let check t i op =
    if i < 0 || i >= t.len then
      invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0,%d)" op i t.len)

  let set t i =
    check t i "set";
    let w = i / word_bits in
    t.words.(w) <- t.words.(w) lor (1 lsl (i mod word_bits))

  let mem t i =
    check t i "mem";
    t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

  (* Byte-table popcount: 8 lookups cover the 62 payload bits. *)
  let pop8 =
    Array.init 256 (fun i ->
        let rec go n i = if i = 0 then n else go (n + (i land 1)) (i lsr 1) in
        go 0 i)

  let popcount w =
    pop8.(w land 0xff)
    + pop8.((w lsr 8) land 0xff)
    + pop8.((w lsr 16) land 0xff)
    + pop8.((w lsr 24) land 0xff)
    + pop8.((w lsr 32) land 0xff)
    + pop8.((w lsr 40) land 0xff)
    + pop8.((w lsr 48) land 0xff)
    + pop8.((w lsr 56) land 0xff)

  let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

  let check_pair a b op =
    if a.len <> b.len then
      invalid_arg
        (Printf.sprintf "Bitset.%s: length mismatch (%d vs %d)" op a.len b.len)

  let inter_count a b =
    check_pair a b "inter_count";
    let acc = ref 0 in
    for k = 0 to Array.length a.words - 1 do
      acc := !acc + popcount (a.words.(k) land b.words.(k))
    done;
    !acc

  let union a b =
    check_pair a b "union";
    {
      words = Array.init (Array.length a.words) (fun k -> a.words.(k) lor b.words.(k));
      len = a.len;
    }

  (* Number of trailing zeros of a one-bit word [w]: popcount (w - 1). *)
  let ntz_of_bit bit = popcount (bit - 1)

  let iter_inter a b f =
    check_pair a b "iter_inter";
    for k = 0 to Array.length a.words - 1 do
      let w = ref (a.words.(k) land b.words.(k)) in
      while !w <> 0 do
        let bit = !w land - !w in
        f ((k * word_bits) + ntz_of_bit bit);
        w := !w lxor bit
      done
    done

  let fold_inter a b ~init f =
    let acc = ref init in
    iter_inter a b (fun i -> acc := f !acc i);
    !acc
end

type t = {
  rows : int;
  values : Encore_util.Symtab.t;
      (* the overlay's value-id universe; retained so [append] interns
         new cells consistently with the ids already in [single] *)
  presence : Bitset.t array;
  index : int array array;
  single : int array option array;
}

let of_colview view =
  let rows = Colview.n_rows view in
  let n_attrs = Colview.n_attrs view in
  (* value ids shared across every column: one symtab for the overlay *)
  let values = Encore_util.Symtab.create ~size:(max 16 (4 * n_attrs)) () in
  let presence = Array.init n_attrs (fun _ -> Bitset.create rows) in
  let cols = Array.init n_attrs (Colview.column view) in
  (* pass 1: size each dense index exactly, so the build allocates no
     intermediate lists (at fleet scale the cons garbage alone was
     enough to trigger major collections mid-benchmark) *)
  let counts = Array.make n_attrs 0 in
  for i = 0 to rows - 1 do
    for a = 0 to n_attrs - 1 do
      if cols.(a).(i) <> [] then counts.(a) <- counts.(a) + 1
    done
  done;
  let index = Array.init n_attrs (fun a -> Array.make counts.(a) 0) in
  let ids = Array.init n_attrs (fun _ -> Array.make rows (-1)) in
  let all_single = Array.make n_attrs true in
  let filled = Array.make n_attrs 0 in
  (* pass 2, row-major like pass 1: cells were allocated row by row
     during assembly, so walking them in row order keeps the traversal
     close to sequential in the heap — column-major order here went
     quadratic-looking at 10k rows from cache misses alone *)
  for i = 0 to rows - 1 do
    for a = 0 to n_attrs - 1 do
      match cols.(a).(i) with
      | [] -> ()
      | cell ->
          Bitset.set presence.(a) i;
          index.(a).(filled.(a)) <- i;
          filled.(a) <- filled.(a) + 1;
          (match cell with
           | [ v ] -> ids.(a).(i) <- Encore_util.Symtab.intern values v
           | _ -> all_single.(a) <- false)
    done
  done;
  let single =
    Array.init n_attrs (fun a -> if all_single.(a) then Some ids.(a) else None)
  in
  { rows; values; presence; index; single }

let append t view =
  let rows' = Colview.n_rows view in
  let n_attrs' = Colview.n_attrs view in
  let old_attrs = Array.length t.presence in
  if rows' < t.rows || n_attrs' < old_attrs then
    invalid_arg "Bitcol.append: view does not extend the overlay";
  let cols = Array.init n_attrs' (Colview.column view) in
  let presence =
    Array.init n_attrs' (fun a ->
        let b = Bitset.create rows' in
        if a < old_attrs then
          Array.blit t.presence.(a).Bitset.words 0 b.Bitset.words 0
            (Array.length t.presence.(a).Bitset.words);
        b)
  in
  let added = Array.make n_attrs' 0 in
  for i = t.rows to rows' - 1 do
    for a = 0 to n_attrs' - 1 do
      if cols.(a).(i) <> [] then added.(a) <- added.(a) + 1
    done
  done;
  let index =
    Array.init n_attrs' (fun a ->
        let old = if a < old_attrs then t.index.(a) else [||] in
        if added.(a) = 0 then old
        else begin
          let arr = Array.make (Array.length old + added.(a)) 0 in
          Array.blit old 0 arr 0 (Array.length old);
          arr
        end)
  in
  (* an attribute single-valued so far can turn multi-valued in the
     appended rows (-> None, like a batch build would decide); one that
     already went multi-valued stays so *)
  let single =
    Array.init n_attrs' (fun a ->
        match if a < old_attrs then t.single.(a) else Some [||] with
        | None -> None
        | Some old ->
            let arr = Array.make rows' (-1) in
            Array.blit old 0 arr 0 (Array.length old);
            Some arr)
  in
  let filled = Array.make n_attrs' 0 in
  for i = t.rows to rows' - 1 do
    for a = 0 to n_attrs' - 1 do
      match cols.(a).(i) with
      | [] -> ()
      | cell ->
          Bitset.set presence.(a) i;
          let old_len = if a < old_attrs then Array.length t.index.(a) else 0 in
          index.(a).(old_len + filled.(a)) <- i;
          filled.(a) <- filled.(a) + 1;
          (match (cell, single.(a)) with
           | [ v ], Some arr -> arr.(i) <- Encore_util.Symtab.intern t.values v
           | _, Some _ -> single.(a) <- None
           | _, None -> ())
    done
  done;
  { rows = rows'; values = t.values; presence; index; single }

let n_rows t = t.rows
let presence t a = t.presence.(a)
let index t a = t.index.(a)
let single_ids t a = t.single.(a)
