(** Nominal-to-binomial conversion (paper section 2.2, Table 2).

    Association-rule miners operate on boolean transactions, so each
    nominal attribute is expanded into one boolean item per observed
    value ("attr=value") and numeric attributes are binned.  This is the
    "boolean discretization problem" whose attribute blow-up breaks the
    off-the-shelf miners. *)

type item = string
(** Item label, e.g. ["mysql/mysqld/port=3306"] or
    ["CPU.Threads∈[4,8)"] for a binned numeric. *)

val numeric_bins : int
(** Number of equal-width bins for numeric columns (4). *)

type column_kind =
  | Text
  | Numeric of float * float
      (** corpus-wide (lo, hi) bounds fixing the bin edges *)
(** Per-column rendering decision: a column is [Numeric] when it is
    non-empty and every value parses as a number. *)

val item_of : string -> column_kind -> string -> item
(** [item_of attr kind v] is the item label of one cell — ["attr=v"]
    for text, the bin label for numerics.  Exposed so incremental
    callers can re-derive items from cached per-column kinds; agrees
    with {!items_of_table} when [kind] matches the column's. *)

val items_of_table :
  ?numeric:bool -> Table.t -> item list * item list array
(** [items_of_table t] returns the universe of items and, per row, the
    item set (as labels).  [numeric] (default true) enables numeric
    binning; when false, numeric values are treated as nominals. *)

val transactions :
  Table.t -> int array array * item array
(** Encode rows as sorted int arrays over a dense item dictionary:
    [(transactions, dictionary)]. *)

val binomial_count : Table.t -> int
(** Size of the item universe: the "Binominal" column of Table 2. *)
