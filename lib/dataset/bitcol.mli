(** Bitset / index-array overlay on the columnar view.

    Candidate-rule evaluation is dominated by two questions asked for
    every (template, a, b) candidate: {e on how many rows are both
    attributes present?} and {e on those rows, does the relation hold?}
    Answering them through {!Colview.column} costs a list test per row
    per candidate.  This overlay precomputes, once per training set:

    - a {e presence bitset} per attribute, so the co-presence upper
      bound on a candidate's support is a word-parallel popcount of an
      AND — candidates that cannot reach minimum support are rejected
      without evaluating their relation on a single row;
    - a {e dense index array} per attribute (ascending row ids where
      the attribute is present), so sparse-attribute scans touch only
      the rows that matter;
    - an {e interned value-id array} per single-instance attribute, so
      equality relations compare ints instead of string lists.

    Like {!Colview}, the overlay is immutable after construction and
    safe to share across pool worker domains. *)

module Bitset : sig
  type t
  (** A fixed-length bitset over row ids [0 .. length-1]. *)

  val create : int -> t
  (** All-zeros bitset of the given length. *)

  val set : t -> int -> unit
  (** Build-time mutation; out-of-range indices are rejected with
      [Invalid_argument]. *)

  val mem : t -> int -> bool
  val length : t -> int

  val count : t -> int
  (** Popcount of the whole set. *)

  val inter_count : t -> t -> int
  (** [count (a AND b)] without materializing the intersection.  The
      sets must have equal length. *)

  val union : t -> t -> t
  (** Freshly allocated [a OR b]. *)

  val iter_inter : t -> t -> (int -> unit) -> unit
  (** Visit the rows of [a AND b] in ascending order, skipping zero
      words. *)

  val fold_inter : t -> t -> init:'a -> ('a -> int -> 'a) -> 'a
end

type t

val of_colview : Colview.t -> t
(** One pass over every (attribute, row) cell of the view. *)

val append : t -> Colview.t -> t
(** [append t view], where [view] extends the rows (and possibly the
    attributes) the overlay was built from, is a fresh overlay over all
    of [view] that agrees with [of_colview view] on every query: only
    the appended rows are scanned.  New cell values are interned into
    [t]'s value universe, so equal ids still mean equal strings across
    the old and new overlays.  [t] itself is unchanged. *)

val n_rows : t -> int

val presence : t -> int -> Bitset.t
(** Rows where attribute [id] has at least one instance. *)

val index : t -> int -> int array
(** Ascending rows where attribute [id] is present — the set bits of
    {!presence}, densely. *)

val single_ids : t -> int -> int array option
(** [Some ids] when every present cell of the attribute holds exactly
    one instance: [ids.(row)] is the interned value id, [-1] where the
    attribute is absent.  Ids are shared across attributes, so equal
    ids mean equal strings anywhere in the overlay.  [None] when some
    cell holds several instances (multi-valued configuration keys). *)
