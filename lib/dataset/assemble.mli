(** Data assembler (paper Figure 3): parse the image's configuration
    files, infer each entry's type, integrate environment information,
    and emit the assembled row.

    The two-pass protocol matches the paper: a first pass over the whole
    training set fixes per-column types; a second pass augments each
    image with environment attributes according to those types.  Target
    images reuse the *training* type environment, so checking and
    learning stay cleanly separated. *)

type assembled = {
  table : Table.t;
  types : Encore_typing.Infer.env;  (** per-column decisions, original and augmented *)
}

val parse_only : Encore_sysenv.Image.t -> Row.t
(** Configuration entries alone (no augmentation): the "Original"
    attribute view of paper Table 2. *)

val augment_row :
  types:Encore_typing.Infer.env -> Encore_sysenv.Image.t -> Row.t -> Row.t
(** Second-pass augmentation of one parsed row under a fixed type
    environment: entry augmentations per typed attribute, then the
    image globals.  [assemble_training] is exactly the first-pass type
    inference followed by this per image. *)

val assemble_training :
  ?pool:Encore_util.Pool.t -> Encore_sysenv.Image.t list -> assembled
(** Full pipeline over a training set.  With [pool], the per-image
    parse and augmentation passes run on its worker domains; the result
    is identical for any pool size. *)

val target_assembler :
  types:Encore_typing.Infer.env -> Encore_sysenv.Image.t -> Row.t
(** Partially applied to [~types], returns an assembler with the type
    environment hashed once — the check-many path.  For every image,
    [target_assembler ~types img = assemble_target ~types img]. *)

val assemble_target :
  types:Encore_typing.Infer.env -> Encore_sysenv.Image.t -> Row.t
(** Assemble one target image using the training type environment. *)

val type_of :
  Encore_typing.Infer.env -> string -> Encore_typing.Ctype.t
(** Column type, falling back to the augmentation-suffix type for
    augmented attributes and [String_t] otherwise. *)
