(* Representation: reversed list of pairs, an attribute index for
   lookups, and the distinct attribute names in reverse first-seen
   order.  The index buckets hold instances in source order; they are
   built by prepending (reversed) and flipped once per bucket, so
   constructing a row from n pairs is O(n) instead of the quadratic
   [existing @ [ value ]] append-per-pair. *)
type t = {
  rev_pairs : (string * string) list;
  index : (string, string list) Hashtbl.t;
  rev_attrs : string list;
}

let empty = { rev_pairs = []; index = Hashtbl.create 4; rev_attrs = [] }

let of_list pairs =
  let index = Hashtbl.create (max 4 (List.length pairs)) in
  (* one index probe per pair; buckets accumulate newest-first and are
     flipped once at the end *)
  let rev_attrs =
    List.fold_left
      (fun acc (attr, value) ->
        match Hashtbl.find_opt index attr with
        | Some values ->
            Hashtbl.replace index attr (value :: values);
            acc
        | None ->
            Hashtbl.add index attr [ value ];
            attr :: acc)
      [] pairs
  in
  Hashtbl.filter_map_inplace (fun _ values -> Some (List.rev values)) index;
  { rev_pairs = List.rev pairs; index; rev_attrs }

let add t attr value =
  let index = Hashtbl.copy t.index in
  let existing = Option.value ~default:[] (Hashtbl.find_opt index attr) in
  Hashtbl.replace index attr (existing @ [ value ]);
  {
    rev_pairs = (attr, value) :: t.rev_pairs;
    index;
    rev_attrs =
      (if Hashtbl.mem t.index attr then t.rev_attrs else attr :: t.rev_attrs);
  }

let to_list t = List.rev t.rev_pairs

let get t attr =
  match Hashtbl.find_opt t.index attr with
  | Some (v :: _) -> Some v
  | Some [] | None -> None

let get_all t attr = Option.value ~default:[] (Hashtbl.find_opt t.index attr)

let mem t attr =
  match Hashtbl.find_opt t.index attr with
  | Some (_ :: _) -> true
  | Some [] | None -> false

let attrs t = List.rev t.rev_attrs

let cardinal t = List.length t.rev_pairs

let union a b = of_list (to_list a @ to_list b)
