module Symtab = Encore_util.Symtab

type t = {
  tab : Symtab.t;
  columns : string list array array;  (* [attr_id].(row) *)
  rows : int;
}

let of_rows rows =
  let n = List.length rows in
  let tab = Symtab.create ~size:256 () in
  (* pass 1: fix the id order without materializing columns *)
  List.iter
    (fun row -> List.iter (fun a -> ignore (Symtab.intern tab a)) (Row.attrs row))
    rows;
  let columns =
    Array.init (Symtab.size tab) (fun _ -> Array.make n [])
  in
  List.iteri
    (fun i row ->
      List.iter
        (fun a -> columns.(Symtab.intern tab a).(i) <- Row.get_all row a)
        (Row.attrs row))
    rows;
  { tab; columns; rows = n }

let append_rows t rows =
  let k = List.length rows in
  let tab = Symtab.create ~size:(max 256 (2 * Symtab.size t.tab)) () in
  Array.iter (fun a -> ignore (Symtab.intern tab a)) (Symtab.to_array t.tab);
  List.iter
    (fun row -> List.iter (fun a -> ignore (Symtab.intern tab a)) (Row.attrs row))
    rows;
  let n = t.rows + k in
  let columns =
    Array.init (Symtab.size tab) (fun a ->
        let col = Array.make n [] in
        if a < Array.length t.columns then Array.blit t.columns.(a) 0 col 0 t.rows;
        col)
  in
  List.iteri
    (fun j row ->
      List.iter
        (fun a -> columns.(Symtab.intern tab a).(t.rows + j) <- Row.get_all row a)
        (Row.attrs row))
    rows;
  { tab; columns; rows = n }

let n_rows t = t.rows
let n_attrs t = Symtab.size t.tab
let attrs t = Array.to_list (Symtab.to_array t.tab)
let id t a = Symtab.find t.tab a
let column t i = t.columns.(i)
let values t ~attr ~row = t.columns.(attr).(row)
