(** Flaky environment simulator: a fault-injecting wrapper around the
    {!Collector} probe layer.

    Real image corpora are collected over networks from sources that
    flap, throttle and serve partially-readable metadata.  This module
    reproduces those failure modes deterministically (PRNG-seeded) on
    top of the band-2 synthetic substrate, so the resilient ingestion
    path can be exercised and measured:

    - a whole collection pass may {e flap} (transient probe failure —
      retrying may succeed), driven by the simulator's [flap] rate
      combined with the image's own [flakiness];
    - individual metadata records may be {e unreadable} (dropped with a
      diagnostic) or {e truncated} (fields cut short, kept with a
      diagnostic). *)

type t

val make :
  ?flap:float ->
  ?drop_record:float ->
  ?truncate_record:float ->
  rng:Encore_util.Prng.t ->
  unit -> t
(** [flap] is the whole-pass transient failure rate, [drop_record] the
    per-record unreadable-metadata rate, [truncate_record] the
    per-record field-truncation rate; each defaults to 0. *)

val reliable : rng:Encore_util.Prng.t -> t
(** No simulator-injected faults; only the image's own [flakiness]
    still applies. *)

val fork : t -> t
(** An independent child simulator: same fault rates, PRNG stream split
    off the parent ({!Encore_util.Prng.split}).  The k-th fork of a
    simulator is a stable function of the root seed and [k] alone, so
    forking once per work item in a fixed order makes each item's draw
    sequence independent of processing order — the basis for
    deterministic parallel probing. *)

val collect :
  t -> Image.t ->
  (Collector.record list * Encore_util.Resilience.diagnostic list,
   Encore_util.Resilience.diagnostic)
  result
(** One probe pass.  [Error] is a whole-pass flap ([Probe_failure]);
    [Ok (records, diags)] carries the surviving records plus one
    recoverable [Probe_failure] diagnostic per dropped or truncated
    record. *)

val collect_with_retries :
  ?max_retries:int -> t -> Image.t ->
  (Collector.record list * Encore_util.Resilience.diagnostic list)
  Encore_util.Resilience.attempt
(** {!collect} under {!Encore_util.Resilience.with_retries}: flaps are
    retried with deterministic backoff (default 3 retries); a
    permanently flapping image ([flakiness = 1.0]) exhausts its retries
    and surfaces the final [Probe_failure]. *)
