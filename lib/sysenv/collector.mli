(** Data collector (paper Figure 2, first stage).

    Serializes an image's environment into the textual "raw data" format
    the assembler consumes: one record per fact, mirroring the global
    data structures of paper Table 7 (FS.FileList, FS.FileMetaMap,
    Acct.UserList, Acct.GroupList, Service.PortServMap, Env.VarValueMap,
    Sec.SELinux, HW dims).  The round-trip exists so the pipeline can be
    exercised file-by-file exactly as the real tool was. *)

type record = { section : string; key : string; fields : string list }

val collect : Image.t -> record list
(** Dump every environment fact of the image. *)

val to_text : record list -> string
(** Stable line-oriented rendering: [section|key|field1|field2|...]. *)

val of_text : string -> record list
(** Inverse of {!to_text}; skips malformed lines. *)

val find : record list -> section:string -> key:string -> string list option

val image_to_text : Image.t -> string
(** Whole-image dump: the on-disk unit of the fleet serving path.  An
    [ENCORE-IMAGE 1 <id>] magic line, optional [@flakiness] header,
    one [@config <app> <bytes> <path>] header per configuration file
    followed by exactly [bytes] bytes of verbatim config text, then
    [@env] and the {!to_text} rendering of {!collect}. *)

val image_of_text : string -> (Image.t, string) result
(** Inverse of {!image_to_text}: [image_of_text (image_to_text i)]
    rebuilds [i]'s id, configs, flakiness and environment.  Total —
    a malformed dump yields [Error] with a one-line reason, never an
    exception. *)

val restore :
  id:string -> configs:Image.config_file list -> record list -> Image.t
(** Rebuild a system image from collected records plus its configuration
    files: the assembler-side entry point when the collector ran on a
    remote machine and shipped its dump.  Unrecognized records are
    ignored; missing sections leave the image's defaults.  For every
    image [i], [restore ~id ~configs (collect i)] reproduces [i]'s
    environment (filesystem, accounts, services, host facts). *)
