type record = { section : string; key : string; fields : string list }

let fs_records fs =
  Fs.fold
    (fun path (m : Fs.meta) acc ->
      let kind, target =
        match m.kind with
        | Fs.Regular -> ("file", "")
        | Fs.Directory -> ("dir", "")
        | Fs.Symlink t -> ("symlink", t)
      in
      {
        section = "FS";
        key = path;
        fields =
          [ kind; m.owner; m.group; Printf.sprintf "%o" m.perm;
            string_of_int m.size; target ];
      }
      :: acc)
    fs []
  |> List.rev

let account_records accounts =
  let users =
    List.map
      (fun (u : Accounts.user) ->
        {
          section = "Acct.User";
          key = u.name;
          fields = [ string_of_int u.uid; string_of_int u.gid; u.home; u.shell ];
        })
      (Accounts.users accounts)
  in
  let groups =
    List.map
      (fun (g : Accounts.group) ->
        {
          section = "Acct.Group";
          key = g.gname;
          fields = string_of_int g.ggid :: g.members;
        })
      (Accounts.groups accounts)
  in
  users @ groups

let service_records services =
  List.map
    (fun port ->
      {
        section = "Service";
        key = string_of_int port;
        fields = [ Option.value ~default:"" (Services.service_of_port services port) ];
      })
    (Services.ports services)

let host_records (img : Image.t) =
  let base =
    [
      { section = "Sys"; key = "HostName"; fields = [ img.hostname ] };
      { section = "Sys"; key = "IPAddress"; fields = [ img.ip_address ] };
      { section = "Sys"; key = "FSType"; fields = [ img.fs_type ] };
      { section = "OS"; key = "DistName"; fields = [ img.os.dist_name ] };
      { section = "OS"; key = "Version"; fields = [ img.os.dist_version ] };
      { section = "Sec"; key = "SELinux";
        fields = [ Hostinfo.selinux_to_string img.os.selinux ] };
    ]
  in
  let hw =
    match img.hardware with
    | None -> []
    | Some h ->
        [
          { section = "HW"; key = "Cores"; fields = [ string_of_int h.cpu_threads ] };
          { section = "HW"; key = "Freq"; fields = [ string_of_int h.cpu_freq_mhz ] };
          { section = "HW"; key = "Memory"; fields = [ string_of_int h.mem_bytes ] };
          { section = "HW"; key = "DiskSize"; fields = [ string_of_int h.disk_avail_bytes ] };
        ]
  in
  let env =
    List.map
      (fun (k, v) -> { section = "Env"; key = k; fields = [ v ] })
      img.env_vars
  in
  base @ hw @ env

let collect img =
  host_records img
  @ fs_records img.Image.fs
  @ account_records img.Image.accounts
  @ service_records img.Image.services

let to_text records =
  let line r = String.concat "|" (r.section :: r.key :: r.fields) in
  String.concat "\n" (List.map line records) ^ "\n"

let of_text text =
  Encore_util.Strutil.trim_lines text
  |> List.filter_map (fun line ->
         match String.split_on_char '|' line with
         | section :: key :: fields when section <> "" && key <> "" ->
             Some { section; key; fields }
         | _ -> None)

let find records ~section ~key =
  List.find_map
    (fun r -> if r.section = section && r.key = key then Some r.fields else None)
    records

(* --- restoration -------------------------------------------------------- *)

let restore_fs records =
  List.fold_left
    (fun fs r ->
      if r.section <> "FS" then fs
      else
        match r.fields with
        | [ kind; owner; group; perm; size; target ] -> (
            let perm = Option.value ~default:0o644 (int_of_string_opt ("0o" ^ perm)) in
            let size = Option.value ~default:0 (int_of_string_opt size) in
            match kind with
            | "dir" -> Fs.add_dir ~owner ~group ~perm fs r.key
            | "file" -> Fs.add_file ~owner ~group ~perm ~size fs r.key
            | "symlink" -> Fs.add_symlink ~owner ~group fs r.key ~target
            | _ -> fs)
        | _ -> fs)
    Fs.empty records

let restore_accounts records =
  (* groups first: [Accounts.add_user] invents a group when the user's
     gid has none yet, so replaying users before the dumped groups
     would materialize groups the serialized image never had and break
     the to_text/of_text round trip *)
  let accounts =
    List.fold_left
      (fun acc r ->
        if r.section <> "Acct.Group" then acc
        else
          match r.fields with
          | gid :: members -> (
              match int_of_string_opt gid with
              | Some ggid ->
                  Accounts.add_group acc { Accounts.gname = r.key; ggid; members }
              | None -> acc)
          | [] -> acc)
      Accounts.empty records
  in
  List.fold_left
    (fun acc r ->
      if r.section <> "Acct.User" then acc
      else
        match r.fields with
        | [ uid; gid; home; shell ] -> (
            match (int_of_string_opt uid, int_of_string_opt gid) with
            | Some uid, Some gid ->
                Accounts.add_user acc { Accounts.name = r.key; uid; gid; home; shell }
            | _ -> acc)
        | _ -> acc)
    accounts records

let restore_services records =
  List.fold_left
    (fun services r ->
      if r.section <> "Service" then services
      else
        match (int_of_string_opt r.key, r.fields) with
        | Some port, [ name ] -> Services.add services ~port ~name
        | _ -> services)
    Services.empty records

let field1 records ~section ~key ~default =
  match find records ~section ~key with
  | Some (v :: _) -> v
  | Some [] | None -> default

let restore ~id ~configs records =
  let fs = restore_fs records in
  let accounts = restore_accounts records in
  let services = restore_services records in
  let hostname = field1 records ~section:"Sys" ~key:"HostName" ~default:"localhost" in
  let ip_address = field1 records ~section:"Sys" ~key:"IPAddress" ~default:"10.0.0.1" in
  let fs_type = field1 records ~section:"Sys" ~key:"FSType" ~default:"ext4" in
  let os =
    {
      Hostinfo.dist_name = field1 records ~section:"OS" ~key:"DistName" ~default:"ubuntu";
      dist_version = field1 records ~section:"OS" ~key:"Version" ~default:"12.04";
      selinux =
        Option.value ~default:Hostinfo.Disabled
          (Hostinfo.selinux_of_string
             (field1 records ~section:"Sec" ~key:"SELinux" ~default:"disabled"));
    }
  in
  let int_field section key =
    int_of_string_opt (field1 records ~section ~key ~default:"")
  in
  let hardware =
    match
      ( int_field "HW" "Cores", int_field "HW" "Freq", int_field "HW" "Memory",
        int_field "HW" "DiskSize" )
    with
    | Some cpu_threads, Some cpu_freq_mhz, Some mem_bytes, Some disk_avail_bytes ->
        Some { Hostinfo.cpu_threads; cpu_freq_mhz; mem_bytes; disk_avail_bytes }
    | _ -> None
  in
  let env_vars =
    List.filter_map
      (fun r ->
        if r.section = "Env" then
          match r.fields with v :: _ -> Some (r.key, v) | [] -> None
        else None)
      records
  in
  Image.make ~hostname ~ip_address ~fs_type ~fs ~accounts ~services ~env_vars
    ~hardware ~os ~id configs

(* --- single-image dumps (the fleet serving format) ------------------------ *)

let image_magic = "ENCORE-IMAGE 1 "

let image_to_text (img : Image.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf image_magic;
  Buffer.add_string buf img.Image.image_id;
  Buffer.add_char buf '\n';
  if img.Image.flakiness <> 0.0 then
    Buffer.add_string buf
      (Printf.sprintf "@flakiness %.17g\n" img.Image.flakiness);
  List.iter
    (fun (c : Image.config_file) ->
      (* byte-count framing: config text is stored verbatim, so lines
         that look like our own headers cannot confuse the reader *)
      Buffer.add_string buf
        (Printf.sprintf "@config %s %d %s\n"
           (Image.app_to_string c.Image.app)
           (String.length c.Image.text) c.Image.path);
      Buffer.add_string buf c.Image.text;
      Buffer.add_char buf '\n')
    img.Image.configs;
  Buffer.add_string buf "@env\n";
  Buffer.add_string buf (to_text (collect img));
  Buffer.contents buf

(* "<word> <word> <rest>"; the rest may contain spaces. *)
let split3 s =
  match String.index_opt s ' ' with
  | None -> None
  | Some i -> (
      let first = String.sub s 0 i in
      let tail = String.sub s (i + 1) (String.length s - i - 1) in
      match String.index_opt tail ' ' with
      | None -> None
      | Some j ->
          let second = String.sub tail 0 j in
          let rest = String.sub tail (j + 1) (String.length tail - j - 1) in
          Some (first, second, rest))

let image_of_text text =
  let len = String.length text in
  let pos = ref 0 in
  let next_line () =
    if !pos >= len then None
    else begin
      let nl =
        match String.index_from_opt text !pos '\n' with
        | Some i -> i
        | None -> len
      in
      let line = String.sub text !pos (nl - !pos) in
      pos := nl + 1;
      Some line
    end
  in
  let strip_prefix p s =
    let pl = String.length p in
    if String.length s >= pl && String.sub s 0 pl = p then
      Some (String.sub s pl (String.length s - pl))
    else None
  in
  match next_line () with
  | None -> Error "empty image dump"
  | Some header -> (
      match strip_prefix image_magic header with
      | None -> Error "not an ENCORE-IMAGE dump (bad magic line)"
      | Some id ->
          let configs = ref [] in
          let flakiness = ref 0.0 in
          let rec headers () =
            match next_line () with
            | None -> Error "image dump truncated before @env"
            | Some "@env" -> Ok ()
            | Some line -> (
                match strip_prefix "@flakiness " line with
                | Some f -> (
                    match float_of_string_opt f with
                    | Some f ->
                        flakiness := f;
                        headers ()
                    | None -> Error ("bad @flakiness value: " ^ f))
                | None -> (
                    match strip_prefix "@config " line with
                    | None -> Error ("unrecognized header line: " ^ line)
                    | Some spec -> (
                        match split3 spec with
                        | None -> Error ("malformed @config line: " ^ line)
                        | Some (app, bytes, path) -> (
                            match
                              (Image.app_of_string app, int_of_string_opt bytes)
                            with
                            | Some app, Some n when n >= 0 && !pos + n <= len ->
                                let body = String.sub text !pos n in
                                pos := !pos + n;
                                (* the framing newline after the payload *)
                                if !pos < len && text.[!pos] = '\n' then
                                  incr pos;
                                configs :=
                                  { Image.app; path; text = body } :: !configs;
                                headers ()
                            | _ -> Error ("malformed @config line: " ^ line)))))
          in
          (match headers () with
          | Error _ as e -> e
          | Ok () -> (
              let records = of_text (String.sub text !pos (len - !pos)) in
              (* stay total on damaged dumps: a corrupted environment
                 record (e.g. control bytes spliced into a path) must
                 surface as a parse error, not an exception *)
              match restore ~id ~configs:(List.rev !configs) records with
              | img -> Ok (Image.with_flakiness img !flakiness)
              | exception Invalid_argument msg ->
                  Error ("corrupt image dump: " ^ msg))))
