module Smap = Map.Make (String)

type kind = Regular | Directory | Symlink of string

type meta = {
  owner : string;
  group : string;
  perm : int;
  size : int;
  kind : kind;
}

(* Flat representation: a map from absolute path to metadata.  The tree
   structure is recovered from path prefixes; this keeps insertion and
   lookup trivially correct at the modest scale of a config snapshot. *)
type t = meta Smap.t

let root_meta =
  { owner = "root"; group = "root"; perm = 0o755; size = 0; kind = Directory }

let empty = Smap.add "/" root_meta Smap.empty

(* Collector dumps and config values arrive with cosmetic noise: "./"
   prefixes, trailing or doubled slashes, "." and ".." components.
   Canonicalization absorbs what is unambiguous and reports the rest as
   a typed error instead of raising. *)
(* Fast acceptance test: absolute, no trailing slash (except "/"), and
   no "", "." or ".." component.  Such a path is its own canonical
   form, so the slow rebuild below can be skipped. *)
let is_canonical p =
  let n = String.length p in
  n > 0 && p.[0] = '/'
  && (n = 1
      || p.[n - 1] <> '/'
         &&
         let ok = ref true and i = ref 1 and start = ref 1 in
         while !ok && !i <= n do
           (if !i = n || p.[!i] = '/' then begin
              let len = !i - !start in
              if
                len = 0
                || (len = 1 && p.[!start] = '.')
                || (len = 2 && p.[!start] = '.' && p.[!start + 1] = '.')
              then ok := false;
              start := !i + 1
            end);
           incr i
         done;
         !ok)

let canonicalize path =
  if is_canonical path then Ok path
  else if path = "" then Error "empty path"
  else
    (* a leading "./" before an absolute remainder is droppable noise *)
    let rec strip_dot p =
      if Encore_util.Strutil.starts_with ~prefix:"./" p then
        strip_dot (String.sub p 2 (String.length p - 2))
      else p
    in
    let p = strip_dot path in
    if p = "" || p.[0] <> '/' then
      Error ("path must be absolute: " ^ path)
    else
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | "." :: rest -> resolve acc rest
        | ".." :: rest -> (
            match acc with
            | _ :: parent -> resolve parent rest
            | [] -> Error ("path escapes the root: " ^ path))
        | comp :: rest -> resolve (comp :: acc) rest
      in
      match resolve [] (Encore_util.Strutil.path_components p) with
      | Error e -> Error e
      | Ok [] -> Ok "/"
      | Ok comps -> Ok ("/" ^ String.concat "/" comps)

let normalize path =
  match canonicalize path with
  | Ok p -> p
  | Error e -> invalid_arg ("Fs: " ^ e)

let parent path = Encore_util.Strutil.dirname path

let rec ensure_dirs fs path =
  if path = "/" then fs
  else
    let fs = ensure_dirs fs (parent path) in
    match Smap.find_opt path fs with
    | Some _ -> fs
    | None -> Smap.add path { root_meta with kind = Directory } fs

let add fs path meta =
  let path = normalize path in
  if path = "/" then Smap.add "/" meta fs
  else
    let fs = ensure_dirs fs (parent path) in
    Smap.add path meta fs

let add_dir ?(owner = "root") ?(group = "root") ?(perm = 0o755) fs path =
  add fs path { owner; group; perm; size = 0; kind = Directory }

let add_file ?(owner = "root") ?(group = "root") ?(perm = 0o644) ?(size = 1024)
    fs path =
  add fs path { owner; group; perm; size; kind = Regular }

let add_symlink ?(owner = "root") ?(group = "root") fs path ~target =
  add fs path { owner; group; perm = 0o777; size = 0; kind = Symlink target }

let remove fs path =
  let path = Result.value ~default:"" (canonicalize path) in
  if path = "/" || path = "" then fs
  else
    let prefix = path ^ "/" in
    Smap.filter
      (fun p _ -> p <> path && not (Encore_util.Strutil.starts_with ~prefix p))
      fs

let lookup fs path =
  match canonicalize path with
  | Error _ -> None
  | Ok p -> Smap.find_opt p fs

let rec resolve_n fs path n =
  if n = 0 then None
  else
    match lookup fs path with
    | Some { kind = Symlink target; _ } -> resolve_n fs target (n - 1)
    | other -> other

let resolve fs path = resolve_n fs path 16

let exists fs path = lookup fs path <> None

let is_dir fs path =
  match resolve fs path with
  | Some { kind = Directory; _ } -> true
  | Some _ | None -> false

let is_file fs path =
  match resolve fs path with
  | Some { kind = Regular; _ } -> true
  | Some _ | None -> false

(* Walk only the subtree under [path]: map keys are ordered, so the
   descendants of "/a/b" are exactly the contiguous key range that
   starts with "/a/b/" — [to_seq_from] positions there in O(log n) and
   the walk stops at the first key outside the prefix.  [f] receives
   the path suffix after the prefix and the entry's metadata; a [true]
   return short-circuits the walk. *)
let subtree_exists fs path f =
  match canonicalize path with
  | Error _ -> false
  | Ok p ->
      let prefix = if p = "/" then "/" else p ^ "/" in
      let rec walk seq =
        match Seq.uncons seq with
        | Some ((q, m), rest)
          when q = "/" || Encore_util.Strutil.starts_with ~prefix q ->
            (q <> "/"
             && f
                  (String.sub q (String.length prefix)
                     (String.length q - String.length prefix))
                  m)
            || walk rest
        | Some _ | None -> false
      in
      walk (Smap.to_seq_from prefix fs)

let children fs path =
  let acc = ref [] in
  ignore
    (subtree_exists fs path (fun rest _ ->
         if not (Encore_util.Strutil.contains_char rest '/') then
           acc := rest :: !acc;
         false));
  List.sort compare !acc

let direct_child_exists fs path pred =
  subtree_exists fs path (fun rest m ->
      (not (Encore_util.Strutil.contains_char rest '/')) && pred m)

let has_subdir fs path = direct_child_exists fs path (fun m -> m.kind = Directory)

let has_symlink fs path =
  direct_child_exists fs path (fun m ->
      match m.kind with Symlink _ -> true | Regular | Directory -> false)

let all_paths fs =
  Smap.fold (fun p _ acc -> if p = "/" then acc else p :: acc) fs []
  |> List.sort compare

let chown fs path ~owner ~group =
  match lookup fs path with
  | None -> fs
  | Some m -> Smap.add (normalize path) { m with owner; group } fs

let chmod fs path ~perm =
  match lookup fs path with
  | None -> fs
  | Some m -> Smap.add (normalize path) { m with perm } fs

let readable_by fs ~user ~groups path =
  if user = "root" then exists fs path
  else
    match resolve fs path with
    | None -> false
    | Some m ->
        let bits =
          if m.owner = user then (m.perm lsr 6) land 7
          else if List.mem m.group groups then (m.perm lsr 3) land 7
          else m.perm land 7
        in
        bits land 4 <> 0

let fold f fs acc =
  Smap.fold (fun p m acc -> if p = "/" then acc else f p m acc) fs acc
