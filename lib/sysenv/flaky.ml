module Prng = Encore_util.Prng
module Res = Encore_util.Resilience

type t = {
  rng : Prng.t;
  flap : float;
  drop_record : float;
  truncate_record : float;
}

let make ?(flap = 0.0) ?(drop_record = 0.0) ?(truncate_record = 0.0) ~rng () =
  { rng; flap; drop_record; truncate_record }

let reliable ~rng = make ~rng ()

(* Forking draws one value from the parent, so the k-th fork is a pure
   function of (root seed, k): fork per work item in a fixed order and
   the items can then be probed in any order — or concurrently — with
   every item seeing the same draws. *)
let fork t = { t with rng = Prng.split t.rng }

(* A flap is transient unless the image itself is permanently broken:
   combine the simulator's rate with the image's own flakiness as
   independent failure sources. *)
let flap_rate t (img : Image.t) =
  1.0 -. ((1.0 -. t.flap) *. (1.0 -. img.Image.flakiness))

let truncate_fields fields =
  List.filteri (fun i _ -> 2 * i < List.length fields) fields

let collect t (img : Image.t) =
  if Prng.chance t.rng (flap_rate t img) then
    Error
      (Res.diag Res.Probe_failure ~subject:img.Image.image_id
         (Printf.sprintf "environment probe flapped (flakiness %.2f)"
            (flap_rate t img)))
  else
    let records = Collector.collect img in
    let diags = ref [] in
    let surviving =
      List.filter_map
        (fun (r : Collector.record) ->
          let subject =
            Printf.sprintf "%s:%s/%s" img.Image.image_id r.Collector.section
              r.Collector.key
          in
          if Prng.chance t.rng t.drop_record then begin
            diags :=
              Res.diag Res.Probe_failure ~subject "unreadable metadata: dropped"
              :: !diags;
            None
          end
          else if Prng.chance t.rng t.truncate_record then begin
            diags :=
              Res.diag Res.Probe_failure ~subject
                (Printf.sprintf "truncated record: %d of %d fields readable"
                   (List.length (truncate_fields r.Collector.fields))
                   (List.length r.Collector.fields))
              :: !diags;
            Some { r with Collector.fields = truncate_fields r.Collector.fields }
          end
          else Some r)
        records
    in
    Ok (surviving, List.rev !diags)

let collect_with_retries ?max_retries t img =
  Res.with_retries ?max_retries ~rng:t.rng (fun ~attempt:_ -> collect t img)
