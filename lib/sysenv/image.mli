(** The system image: the unit of training and checking.

    An image bundles everything the EnCore data collector would dump
    from one machine or VM snapshot: its configuration files, file-system
    metadata, account database, service registry, environment variables
    and host descriptors. *)

type app = Apache | Mysql | Php | Sshd

val app_to_string : app -> string
val app_of_string : string -> app option
val all_apps : app list

type config_file = { app : app; path : string; text : string }

type t = {
  image_id : string;
  hostname : string;
  ip_address : string;
  fs_type : string;
  fs : Fs.t;
  accounts : Accounts.t;
  services : Services.t;
  env_vars : (string * string) list;
      (** Only populated for running instances (paper Table 7 note). *)
  hardware : Hostinfo.hardware option;
      (** [None] for dormant images such as EC2 templates. *)
  os : Hostinfo.os;
  configs : config_file list;
  flakiness : float;
      (** Probability that one environment probe against this image
          fails transiently (damaged or heavily loaded source); [1.0]
          means probes always fail.  [0.0] for healthy images. *)
}

val make :
  ?hostname:string -> ?ip_address:string -> ?fs_type:string ->
  ?fs:Fs.t -> ?accounts:Accounts.t -> ?services:Services.t ->
  ?env_vars:(string * string) list ->
  ?hardware:Hostinfo.hardware option -> ?os:Hostinfo.os ->
  ?flakiness:float ->
  id:string -> config_file list -> t

val config_for : t -> app -> config_file option
val set_config : t -> app -> string -> t
(** Replace the config text for [app]; no-op when the app is absent. *)

val with_fs : t -> Fs.t -> t

val with_flakiness : t -> float -> t
(** Set the probe-failure probability, clamped to [0,1]. *)

val env_var : t -> string -> string option
