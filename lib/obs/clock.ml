type source = unit -> int64

let default : source = fun () -> Int64.of_float (Unix.gettimeofday () *. 1e9)

let source = ref default

(* Unix.gettimeofday is a wall clock and may step backwards (NTP); the
   clamp below makes the stream the rest of the library sees
   non-decreasing, which span arithmetic relies on.  The floor is
   shared across domains, so reads are serialized. *)
let floor_ns = ref Int64.min_int

let mu = Mutex.create ()

let set_source s =
  source := s;
  floor_ns := Int64.min_int

let now_ns () =
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () ->
      let t = !source () in
      let t = if Int64.compare t !floor_ns < 0 then !floor_ns else t in
      floor_ns := t;
      t)

let counter ?(start = 0L) ~step_ns () : source =
  let t = ref (Int64.sub start step_ns) in
  fun () ->
    t := Int64.add !t step_ns;
    !t

let with_source s f =
  let prev_source = !source and prev_floor = !floor_ns in
  set_source s;
  Fun.protect
    ~finally:(fun () ->
      source := prev_source;
      floor_ns := prev_floor)
    f
