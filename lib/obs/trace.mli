(** Span tracing over the {!Clock} time source.

    A span covers one pipeline stage (or one unit of work inside a
    stage); spans nest by dynamic scope and form a tree.  The global
    sink decides the cost: with {!Nil} (the default) {!with_span} is a
    single branch around the wrapped function — no clock reads, no
    allocation; with {!Memory} finished root spans accumulate for
    in-process inspection; with {!Stream} every finished span is handed
    to a callback (children before parents, in completion order).

    Whenever the sink is not nil, each finished span also feeds the
    [span_us.<name>] duration histogram in {!Metrics}.

    The open-span stack is domain-local; shared state (finished roots,
    a parent's child list, the stream callback) is mutex-protected, so
    spans may be opened concurrently from several domains.  A worker
    domain joins the submitting domain's span tree by running under a
    {!capture}d {!context}. *)

type status = Ok_span | Error_span of string

type span = {
  name : string;
  mutable attrs : (string * Jsonenc.t) list;
  depth : int;                (** 0 for roots *)
  parent : string option;     (** name of the enclosing span *)
  start_ns : int64;
  mutable dur_ns : int64;
  mutable status : status;
  mutable children : span list;  (** reverse completion order *)
}

type sink = Nil | Memory | Stream of (span -> unit)

val set_sink : sink -> unit
val sink : unit -> sink
val enabled : unit -> bool

val with_span :
  ?attrs:(string * Jsonenc.t) list -> string -> (unit -> 'a) -> 'a
(** Run a function inside a named span.  Exceptions are recorded as
    [Error_span] and re-raised; the previous span is always restored. *)

val set_attr : string -> Jsonenc.t -> unit
(** Attach (or replace) an attribute on the innermost open span; no-op
    outside any span. *)

type context
(** The innermost open span of some domain at capture time. *)

val capture : unit -> context
(** Snapshot this domain's current span, to be adopted by another
    domain (or restored later on this one) via {!with_context}. *)

val with_context : context -> (unit -> 'a) -> 'a
(** Run [f] with the captured span as the innermost open span of the
    calling domain, so spans opened inside nest under it.  The previous
    stack is always restored. *)

val roots : unit -> span list
(** Finished root spans collected by the {!Memory} sink, in completion
    order. *)

val clear : unit -> unit
(** Drop collected roots and any dangling current span. *)

val children_in_order : span -> span list
(** Children in completion order. *)

val iter_tree : (span -> unit) -> span -> unit
(** Pre-order traversal. *)

val status_to_string : status -> string

val to_fields : span -> (string * Jsonenc.t) list
(** Flat field list for one JSONL span record (see DESIGN.md §7). *)
