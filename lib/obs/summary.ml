type flat = { fname : string; fdepth : int; fdur_ns : int }

type stage = { stage_name : string; total_ns : int; calls : int; pct : float }

type t = {
  wall_ns : int;
  span_count : int;
  event_count : int;
  bad_lines : int;
  truncated : bool;
  stages : stage list;
  coverage_pct : float;
  slowest : (string * int * int) list;  (* name, dur_ns, depth *)
  event_kinds : (string * int) list;
  diag_kinds : (string * int) list;
}

let bump table key by =
  Hashtbl.replace table key (by + Option.value ~default:0 (Hashtbl.find_opt table key))

let sorted_counts table =
  List.sort
    (fun (a, _) (b, _) -> compare (a : string) b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let pct_of ~wall ns =
  if wall <= 0 then 0.0 else 100.0 *. float_of_int ns /. float_of_int wall

let of_records ?(top = 10) ?(truncated = false) ~event_kinds ~diag_kinds
    ~bad_lines ~event_count spans =
  let root_depth =
    List.fold_left (fun acc s -> min acc s.fdepth) max_int spans
  in
  let wall_ns =
    List.fold_left
      (fun acc s -> if s.fdepth = root_depth then acc + s.fdur_ns else acc)
      0 spans
  in
  let per_stage = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if s.fdepth = root_depth + 1 then
        bump per_stage s.fname s.fdur_ns)
    spans;
  let calls = Hashtbl.create 16 in
  List.iter
    (fun s -> if s.fdepth = root_depth + 1 then bump calls s.fname 1)
    spans;
  let stages =
    Hashtbl.fold
      (fun name total acc ->
        {
          stage_name = name;
          total_ns = total;
          calls = Option.value ~default:0 (Hashtbl.find_opt calls name);
          pct = pct_of ~wall:wall_ns total;
        }
        :: acc)
      per_stage []
    |> List.sort (fun a b ->
           match compare b.total_ns a.total_ns with
           | 0 -> compare a.stage_name b.stage_name
           | c -> c)
  in
  let coverage_pct =
    pct_of ~wall:wall_ns
      (List.fold_left (fun acc st -> acc + st.total_ns) 0 stages)
  in
  let slowest =
    List.map (fun s -> (s.fname, s.fdur_ns, s.fdepth)) spans
    |> List.sort (fun (na, da, _) (nb, db, _) ->
           match compare db da with 0 -> compare na nb | c -> c)
    |> List.filteri (fun i _ -> i < top)
  in
  {
    wall_ns;
    span_count = List.length spans;
    event_count;
    bad_lines;
    truncated;
    stages;
    coverage_pct;
    slowest;
    event_kinds;
    diag_kinds;
  }

let of_lines ?top ?truncated lines =
  let spans = ref [] in
  let event_kinds = Hashtbl.create 16 in
  let diag_kinds = Hashtbl.create 16 in
  let bad = ref 0 in
  let events = ref 0 in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match Jsonenc.of_string line with
        | Error _ -> incr bad
        | Ok json -> (
            incr events;
            let str key = Option.bind (Jsonenc.member key json) Jsonenc.to_string_opt in
            let int key = Option.bind (Jsonenc.member key json) Jsonenc.to_int_opt in
            match str "ev" with
            | None -> incr bad
            | Some kind ->
                bump event_kinds kind 1;
                (match kind with
                 | "span" -> (
                     match (str "name", int "depth", int "dur_ns") with
                     | Some fname, Some fdepth, Some fdur_ns ->
                         spans := { fname; fdepth; fdur_ns } :: !spans
                     | _ -> incr bad)
                 | "diag" -> (
                     match str "diag_kind" with
                     | Some k -> bump diag_kinds k 1
                     | None -> incr bad)
                 | _ -> ())))
    lines;
  of_records ?top ?truncated
    ~event_kinds:(sorted_counts event_kinds)
    ~diag_kinds:(sorted_counts diag_kinds)
    ~bad_lines:!bad ~event_count:!events (List.rev !spans)

(* A writer killed mid-record (daemon crash, SIGKILL during flush)
   leaves a final line with no terminating newline.  That torn tail is
   not a malformed record — it is an incomplete one — so it is dropped
   rather than counted against [bad_lines], and the summary carries a
   [truncated] note instead. *)
let split_torn content =
  let n = String.length content in
  let truncated = n > 0 && content.[n - 1] <> '\n' in
  let lines = String.split_on_char '\n' content in
  let lines =
    if truncated then
      (* every element but the last is newline-terminated in the file *)
      List.filteri (fun i _ -> i < List.length lines - 1) lines
    else lines
  in
  (lines, truncated)

let of_file ?top path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let content =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let lines, truncated = split_torn content in
      Ok (of_lines ?top ~truncated lines)

let of_spans ?top ?truncated roots =
  let spans = ref [] in
  List.iter
    (Trace.iter_tree (fun (sp : Trace.span) ->
         spans :=
           {
             fname = sp.Trace.name;
             fdepth = sp.Trace.depth;
             fdur_ns = Int64.to_int sp.Trace.dur_ns;
           }
           :: !spans))
    roots;
  of_records ?top ?truncated ~event_kinds:[] ~diag_kinds:[] ~bad_lines:0
    ~event_count:0 (List.rev !spans)

let ms ns = float_of_int ns /. 1e6

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "trace: %d span(s), %d event(s), wall %.3f ms%s\n"
       t.span_count t.event_count (ms t.wall_ns)
       ((if t.bad_lines > 0 then
           Printf.sprintf " (%d unparseable line(s))" t.bad_lines
         else "")
       ^
       if t.truncated then " (truncated: true — torn final line skipped)"
       else ""));
  if t.stages <> [] then begin
    Buffer.add_string buf "stage breakdown (% of wall time):\n";
    List.iter
      (fun st ->
        Buffer.add_string buf
          (Printf.sprintf "  %-24s %10.3f ms  %5.1f%%  (%d span(s))\n"
             st.stage_name (ms st.total_ns) st.pct st.calls))
      t.stages;
    Buffer.add_string buf
      (Printf.sprintf "  %-24s %10.3f ms  %5.1f%%\n" "= covered"
         (ms (List.fold_left (fun acc st -> acc + st.total_ns) 0 t.stages))
         t.coverage_pct)
  end;
  if t.slowest <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "top %d slowest span(s):\n" (List.length t.slowest));
    List.iter
      (fun (name, dur, depth) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-24s %10.3f ms  (depth %d)\n" name (ms dur) depth))
      t.slowest
  end;
  if t.event_kinds <> [] then begin
    Buffer.add_string buf "event kinds:";
    List.iter
      (fun (k, n) -> Buffer.add_string buf (Printf.sprintf " %s=%d" k n))
      t.event_kinds;
    Buffer.add_char buf '\n'
  end;
  if t.diag_kinds <> [] then begin
    Buffer.add_string buf "diagnostics by kind:";
    List.iter
      (fun (k, n) -> Buffer.add_string buf (Printf.sprintf " %s=%d" k n))
      t.diag_kinds;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf
