(** Trace analysis: turn a JSONL event log (or in-memory span trees)
    into a per-stage wall-time breakdown.

    Wall time is the duration sum of the outermost (lowest-depth)
    spans; a "stage" is a span one level below that, grouped by name.
    The coverage percentage says how much of the wall time the stage
    spans account for — an instrumentation-completeness check. *)

type stage = {
  stage_name : string;
  total_ns : int;
  calls : int;
  pct : float;  (** of wall time *)
}

type t = {
  wall_ns : int;
  span_count : int;
  event_count : int;
  bad_lines : int;       (** unparseable or incomplete JSONL lines *)
  truncated : bool;
      (** the source file ended mid-line (writer killed mid-record);
          the torn final line was skipped, not counted in [bad_lines] *)
  stages : stage list;   (** descending by total time *)
  coverage_pct : float;
  slowest : (string * int * int) list;  (** (name, dur_ns, depth), top-k *)
  event_kinds : (string * int) list;    (** [ev] value -> count *)
  diag_kinds : (string * int) list;     (** [diag] events by [diag_kind] *)
}

val of_lines : ?top:int -> ?truncated:bool -> string list -> t
(** [top] bounds the slowest-span list (default 10); [truncated]
    (default false) marks the summary as built from a torn log. *)

val of_file : ?top:int -> string -> (t, string) result
(** Tolerates a file ending mid-line: the torn final line is dropped
    and the summary's [truncated] flag set, so a log from a daemon
    killed mid-write still summarizes. *)

val of_spans : ?top:int -> ?truncated:bool -> Trace.span list -> t
(** Summarize {!Trace.roots} collected by the memory sink.
    [truncated] (default false) marks the summary as built from a torn
    source — same semantics as {!of_lines}, so in-memory and replayed
    summaries agree on the flag. *)

val to_string : t -> string
