type counter = { cname : string; mutable count : int }

type gauge = { gname : string; mutable gvalue : float; mutable gset : bool }

let n_buckets = 64

type histogram = {
  hname : string;
  buckets : int array;
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

(* One registry-wide mutex: instruments are updated from pool worker
   domains as well as the main one, and a lost increment would make the
   snapshots nondeterministic.  Every operation is a few machine
   instructions, so one uncontended lock per operation is cheap. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let clash name =
  invalid_arg
    (Printf.sprintf "Encore_obs.Metrics: %S already registered as another kind"
       name)

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some _ -> clash name
  | None ->
      let c = { cname = name; count = 0 } in
      Hashtbl.replace registry name (C c);
      c

let incr ?(by = 1) c = locked (fun () -> c.count <- c.count + by)

let count c = locked (fun () -> c.count)

let gauge name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (G g) -> g
  | Some _ -> clash name
  | None ->
      let g = { gname = name; gvalue = 0.0; gset = false } in
      Hashtbl.replace registry name (G g);
      g

let set_unlocked g v =
  g.gvalue <- v;
  g.gset <- true

let set g v = locked (fun () -> set_unlocked g v)

let set_max g v =
  locked (fun () -> if (not g.gset) || v > g.gvalue then set_unlocked g v)

let histogram name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (H h) -> h
  | Some _ -> clash name
  | None ->
      let h =
        {
          hname = name;
          buckets = Array.make n_buckets 0;
          hcount = 0;
          hsum = 0.0;
          hmin = 0.0;
          hmax = 0.0;
        }
      in
      Hashtbl.replace registry name (H h);
      h

(* Log-scale (base 2) buckets: bucket [b] with 0 < b < 63 counts values
   in [2^(b-1), 2^b); bucket 0 absorbs everything below 1 (and NaN);
   bucket 63 absorbs everything at or above 2^62. *)
let bucket_of_value v =
  match Float.classify_float v with
  | Float.FP_nan -> 0
  | Float.FP_infinite -> if v > 0.0 then n_buckets - 1 else 0
  | _ ->
      if v < 1.0 then 0
      else
        let _, e = Float.frexp v in
        if e > n_buckets - 2 then n_buckets - 1 else e

let bucket_bounds b =
  if b <= 0 then (neg_infinity, 1.0)
  else if b >= n_buckets - 1 then (Float.ldexp 1.0 (n_buckets - 2), infinity)
  else (Float.ldexp 1.0 (b - 1), Float.ldexp 1.0 b)

let observe h v =
  locked @@ fun () ->
  let b = bucket_of_value v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  if h.hcount = 0 then begin
    h.hmin <- v;
    h.hmax <- v
  end
  else begin
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v
  end;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v

(* --- snapshots ----------------------------------------------------------- *)

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_min : float;
  hv_max : float;
  hv_buckets : (int * int) list;  (* non-empty buckets, ascending index *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  locked @@ fun () ->
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name -> function
      | C c -> if c.count <> 0 then counters := (name, c.count) :: !counters
      | G g -> if g.gset then gauges := (name, g.gvalue) :: !gauges
      | H h ->
          if h.hcount > 0 then begin
            let nonzero = ref [] in
            for b = n_buckets - 1 downto 0 do
              if h.buckets.(b) > 0 then nonzero := (b, h.buckets.(b)) :: !nonzero
            done;
            histograms :=
              ( name,
                {
                  hv_count = h.hcount;
                  hv_sum = h.hsum;
                  hv_min = h.hmin;
                  hv_max = h.hmax;
                  hv_buckets = !nonzero;
                } )
              :: !histograms
          end)
    registry;
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ -> function
      | C c -> c.count <- 0
      | G g ->
          g.gvalue <- 0.0;
          g.gset <- false
      | H h ->
          Array.fill h.buckets 0 n_buckets 0;
          h.hcount <- 0;
          h.hsum <- 0.0;
          h.hmin <- 0.0;
          h.hmax <- 0.0)
    registry

let snapshot_to_json s =
  Jsonenc.Obj
    [
      ("counters", Jsonenc.Obj (List.map (fun (k, v) -> (k, Jsonenc.Int v)) s.counters));
      ("gauges", Jsonenc.Obj (List.map (fun (k, v) -> (k, Jsonenc.Float v)) s.gauges));
      ( "histograms",
        Jsonenc.Obj
          (List.map
             (fun (k, hv) ->
               ( k,
                 Jsonenc.Obj
                   [
                     ("count", Jsonenc.Int hv.hv_count);
                     ("sum", Jsonenc.Float hv.hv_sum);
                     ("min", Jsonenc.Float hv.hv_min);
                     ("max", Jsonenc.Float hv.hv_max);
                     ( "buckets",
                       Jsonenc.Arr
                         (List.map
                            (fun (b, n) ->
                              Jsonenc.Arr [ Jsonenc.Int b; Jsonenc.Int n ])
                            hv.hv_buckets) );
                   ] ))
             s.histograms) );
    ]

let rows s =
  List.map
    (fun (name, v) -> [ name; "counter"; string_of_int v ])
    s.counters
  @ List.map
      (fun (name, v) -> [ name; "gauge"; Printf.sprintf "%g" v ])
      s.gauges
  @ List.map
      (fun (name, hv) ->
        [
          name;
          "histogram";
          Printf.sprintf "n=%d sum=%g min=%g max=%g" hv.hv_count hv.hv_sum
            hv.hv_min hv.hv_max;
        ])
      s.histograms
