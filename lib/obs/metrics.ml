type counter = { cname : string; mutable count : int }

type gauge = { gname : string; mutable gvalue : float; mutable gset : bool }

let n_buckets = 64

type histogram = {
  hname : string;
  buckets : int array;
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

(* One registry-wide mutex: instruments are updated from pool worker
   domains as well as the main one, and a lost increment would make the
   snapshots nondeterministic.  Every operation is a few machine
   instructions, so one uncontended lock per operation is cheap. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let clash name =
  invalid_arg
    (Printf.sprintf "Encore_obs.Metrics: %S already registered as another kind"
       name)

let counter name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some _ -> clash name
  | None ->
      let c = { cname = name; count = 0 } in
      Hashtbl.replace registry name (C c);
      c

let incr ?(by = 1) c = locked (fun () -> c.count <- c.count + by)

let count c = locked (fun () -> c.count)

let gauge name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (G g) -> g
  | Some _ -> clash name
  | None ->
      let g = { gname = name; gvalue = 0.0; gset = false } in
      Hashtbl.replace registry name (G g);
      g

let set_unlocked g v =
  g.gvalue <- v;
  g.gset <- true

let set g v = locked (fun () -> set_unlocked g v)

let set_max g v =
  locked (fun () -> if (not g.gset) || v > g.gvalue then set_unlocked g v)

let histogram name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (H h) -> h
  | Some _ -> clash name
  | None ->
      let h =
        {
          hname = name;
          buckets = Array.make n_buckets 0;
          hcount = 0;
          hsum = 0.0;
          hmin = 0.0;
          hmax = 0.0;
        }
      in
      Hashtbl.replace registry name (H h);
      h

(* Log-scale (base 2) buckets: bucket [b] with 0 < b < 63 counts values
   in [2^(b-1), 2^b); bucket 0 absorbs everything below 1 (zero,
   negatives, -inf, NaN, subnormals); bucket 63 absorbs everything at
   or above 2^62.  Zero and negative observations must land in bucket 0
   deterministically — [frexp] is never consulted for them, so no
   exponent underflow can smear them across buckets. *)
let bucket_of_value v =
  match Float.classify_float v with
  | Float.FP_nan -> 0
  | Float.FP_infinite -> if v > 0.0 then n_buckets - 1 else 0
  | Float.FP_zero -> 0
  | Float.FP_subnormal -> 0
  | Float.FP_normal ->
      if v < 1.0 then 0 (* covers every negative and (0, 1) *)
      else
        let _, e = Float.frexp v in
        if e > n_buckets - 2 then n_buckets - 1 else e

let bucket_bounds b =
  if b <= 0 then (neg_infinity, 1.0)
  else if b >= n_buckets - 1 then (Float.ldexp 1.0 (n_buckets - 2), infinity)
  else (Float.ldexp 1.0 (b - 1), Float.ldexp 1.0 b)

let observe h v =
  locked @@ fun () ->
  let b = bucket_of_value v in
  h.buckets.(b) <- h.buckets.(b) + 1;
  if h.hcount = 0 then begin
    h.hmin <- v;
    h.hmax <- v
  end
  else begin
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v
  end;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v

(* --- snapshots ----------------------------------------------------------- *)

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_min : float;
  hv_max : float;
  hv_buckets : (int * int) list;  (* non-empty buckets, ascending index *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot () =
  locked @@ fun () ->
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name -> function
      | C c -> if c.count <> 0 then counters := (name, c.count) :: !counters
      | G g -> if g.gset then gauges := (name, g.gvalue) :: !gauges
      | H h ->
          if h.hcount > 0 then begin
            let nonzero = ref [] in
            for b = n_buckets - 1 downto 0 do
              if h.buckets.(b) > 0 then nonzero := (b, h.buckets.(b)) :: !nonzero
            done;
            histograms :=
              ( name,
                {
                  hv_count = h.hcount;
                  hv_sum = h.hsum;
                  hv_min = h.hmin;
                  hv_max = h.hmax;
                  hv_buckets = !nonzero;
                } )
              :: !histograms
          end)
    registry;
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ -> function
      | C c -> c.count <- 0
      | G g ->
          g.gvalue <- 0.0;
          g.gset <- false
      | H h ->
          Array.fill h.buckets 0 n_buckets 0;
          h.hcount <- 0;
          h.hsum <- 0.0;
          h.hmin <- 0.0;
          h.hmax <- 0.0)
    registry

let snapshot_to_json s =
  Jsonenc.Obj
    [
      ("counters", Jsonenc.Obj (List.map (fun (k, v) -> (k, Jsonenc.Int v)) s.counters));
      ("gauges", Jsonenc.Obj (List.map (fun (k, v) -> (k, Jsonenc.Float v)) s.gauges));
      ( "histograms",
        Jsonenc.Obj
          (List.map
             (fun (k, hv) ->
               ( k,
                 Jsonenc.Obj
                   [
                     ("count", Jsonenc.Int hv.hv_count);
                     ("sum", Jsonenc.Float hv.hv_sum);
                     ("min", Jsonenc.Float hv.hv_min);
                     ("max", Jsonenc.Float hv.hv_max);
                     ( "buckets",
                       Jsonenc.Arr
                         (List.map
                            (fun (b, n) ->
                              Jsonenc.Arr [ Jsonenc.Int b; Jsonenc.Int n ])
                            hv.hv_buckets) );
                   ] ))
             s.histograms) );
    ]

(* --- Prometheus text exposition ------------------------------------------ *)

(* Label values may carry arbitrary attribute names; the exposition
   format reserves backslash, double quote and newline. *)
let prom_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let labeled name labels =
  match labels with
  | [] -> name
  | _ ->
      let labels =
        List.sort (fun (a, _) (b, _) -> compare (a : string) b) labels
      in
      Printf.sprintf "%s{%s}" name
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
              labels))

(* Family name and the raw label block (sans braces) of a registry
   name.  Names without a '{' are their own family with no labels. *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, "")
  | Some i ->
      let fam = String.sub name 0 i in
      let n = String.length name in
      if n > i + 1 && name.[n - 1] = '}' then
        (fam, String.sub name (i + 1) (n - i - 2))
      else (fam, "")

let prom_family fam =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    fam

let prom_num v =
  match Float.classify_float v with
  | Float.FP_nan -> "NaN"
  | Float.FP_infinite -> if v > 0.0 then "+Inf" else "-Inf"
  | _ ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.sprintf "%.0f" v
      else Printf.sprintf "%g" v

let snapshot_to_prom s =
  let buf = Buffer.create 4096 in
  let last_family = ref "" in
  let type_line fam kind =
    if fam <> !last_family then begin
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" fam kind);
      last_family := fam
    end
  in
  let series fam labels value =
    Buffer.add_string buf
      (if labels = "" then Printf.sprintf "%s %s\n" fam value
       else Printf.sprintf "%s{%s} %s\n" fam labels value)
  in
  List.iter
    (fun (name, v) ->
      let fam, labels = split_labels name in
      let fam = prom_family fam in
      type_line fam "counter";
      series fam labels (string_of_int v))
    s.counters;
  last_family := "";
  List.iter
    (fun (name, v) ->
      let fam, labels = split_labels name in
      let fam = prom_family fam in
      type_line fam "gauge";
      series fam labels (prom_num v))
    s.gauges;
  last_family := "";
  List.iter
    (fun (name, hv) ->
      let fam, labels = split_labels name in
      let fam = prom_family fam in
      type_line fam "histogram";
      let with_le le =
        if labels = "" then Printf.sprintf "le=\"%s\"" le
        else Printf.sprintf "%s,le=\"%s\"" labels le
      in
      let cum = ref 0 in
      List.iter
        (fun (b, n) ->
          cum := !cum + n;
          let _, ub = bucket_bounds b in
          (* the top bucket's finite edge is +Inf, which the final
             catch-all series below already reports *)
          if ub < infinity then
            series (fam ^ "_bucket") (with_le (prom_num ub))
              (string_of_int !cum))
        hv.hv_buckets;
      series (fam ^ "_bucket") (with_le "+Inf") (string_of_int hv.hv_count);
      series (fam ^ "_sum") labels (prom_num hv.hv_sum);
      series (fam ^ "_count") labels (string_of_int hv.hv_count))
    s.histograms;
  Buffer.contents buf

let rows s =
  List.map
    (fun (name, v) -> [ name; "counter"; string_of_int v ])
    s.counters
  @ List.map
      (fun (name, v) -> [ name; "gauge"; Printf.sprintf "%g" v ])
      s.gauges
  @ List.map
      (fun (name, hv) ->
        [
          name;
          "histogram";
          Printf.sprintf "n=%d sum=%g min=%g max=%g" hv.hv_count hv.hv_sum
            hv.hv_min hv.hv_max;
        ])
      s.histograms
