(** Rolling (sliding-window) aggregation over the {!Metrics} bucket
    scheme.

    A window keeps a ring of fixed-interval sub-histograms; an
    observation is one array increment into the sub-histogram of the
    current {!Clock} interval, and intervals older than the window are
    recycled in place.  {!view} merges the live intervals and estimates
    quantiles by a cumulative bucket walk with linear interpolation
    inside the winning bucket — the same log-scale buckets as
    {!Metrics.histogram}, so a rolling p99 and the lifetime histogram
    always agree on bucketing.

    Windows are standalone values (not registry instruments): each
    server owns its own, and tests drive them with a deterministic
    {!Clock} source. *)

type t

val create : ?intervals:int -> ?interval_ns:int64 -> unit -> t
(** A window of [intervals] (default 10) sub-histograms of
    [interval_ns] (default 1s) each — a 10-second rolling window by
    default.  Values are clamped to at least one interval of 1ns. *)

val observe : t -> float -> unit
(** Record one observation at the current {!Clock.now_ns} interval.
    Thread-safe. *)

type view = {
  w_count : int;     (** observations inside the window *)
  w_sum : float;
  w_max : float;     (** 0 when the window is empty *)
  w_rate : float;    (** observations per second over the full window *)
  w_p50 : float;
  w_p90 : float;
  w_p99 : float;
  w_window_s : float;  (** window span in seconds *)
}

val view : t -> view
(** Merge the intervals still inside the window as of now.  Quantile
    estimates interpolate within a bucket, never exceed [w_max], and
    are 0 for an empty window. *)

val view_json : view -> Jsonenc.t

val export : view -> prefix:string -> unit
(** Mirror the view into registry gauges [prefix.count], [prefix.rate],
    [prefix.p50/p90/p99] and [prefix.max], so a single metrics
    exposition carries the rolling stats. *)
