(* Sliding-window latency aggregation: a ring of fixed-interval
   sub-histograms over the Metrics bucket scheme.  Each observation
   lands in the sub-histogram of its wall-clock interval; a view merges
   the intervals still inside the window and estimates quantiles by a
   cumulative bucket walk, so rolling p50/p90/p99 cost O(intervals *
   n_buckets) at read time and one array increment at write time. *)

type slot = {
  mutable epoch : int64;  (* interval index the slot holds; -1 = empty *)
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable max : float;
}

type t = {
  intervals : int;
  interval_ns : int64;
  slots : slot array;
  mu : Mutex.t;
}

type view = {
  w_count : int;
  w_sum : float;
  w_max : float;
  w_rate : float;
  w_p50 : float;
  w_p90 : float;
  w_p99 : float;
  w_window_s : float;
}

let create ?(intervals = 10) ?(interval_ns = 1_000_000_000L) () =
  let intervals = max 1 intervals in
  let interval_ns = Int64.max 1L interval_ns in
  {
    intervals;
    interval_ns;
    slots =
      Array.init intervals (fun _ ->
          {
            epoch = -1L;
            buckets = Array.make Metrics.n_buckets 0;
            count = 0;
            sum = 0.0;
            max = neg_infinity;
          });
    mu = Mutex.create ();
  }

let window_s t =
  Int64.to_float t.interval_ns *. float_of_int t.intervals /. 1e9

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let epoch_of t now_ns = Int64.div now_ns t.interval_ns

let slot_for t epoch =
  t.slots.(Int64.to_int (Int64.rem epoch (Int64.of_int t.intervals)))

let observe t v =
  let now = Clock.now_ns () in
  locked t @@ fun () ->
  let e = epoch_of t now in
  let s = slot_for t e in
  if s.epoch <> e then begin
    (* the slot still holds an interval that aged out of the window:
       recycle it for the current one *)
    s.epoch <- e;
    Array.fill s.buckets 0 Metrics.n_buckets 0;
    s.count <- 0;
    s.sum <- 0.0;
    s.max <- neg_infinity
  end;
  let b = Metrics.bucket_of_value v in
  s.buckets.(b) <- s.buckets.(b) + 1;
  s.count <- s.count + 1;
  s.sum <- s.sum +. v;
  if v > s.max then s.max <- v

(* Quantile estimate from merged buckets: find the bucket holding the
   rank, interpolate linearly inside it.  Bucket 0's lower edge is
   taken as 0 (its true lower bound is -inf) and the top bucket's upper
   edge as the observed maximum, so estimates never exceed max. *)
let quantile ~buckets ~count ~vmax q =
  if count <= 0 then 0.0
  else begin
    let rank = Float.max 1.0 (Float.of_int count *. q) in
    let est = ref vmax in
    let cum = ref 0 in
    (try
       for b = 0 to Metrics.n_buckets - 1 do
         let n = buckets.(b) in
         if n > 0 then begin
           let prev = float_of_int !cum in
           cum := !cum + n;
           if float_of_int !cum >= rank then begin
             let lo, hi = Metrics.bucket_bounds b in
             let lo = if b = 0 then 0.0 else lo in
             let hi = if hi = infinity then Float.max lo vmax else hi in
             let frac = (rank -. prev) /. float_of_int n in
             est := lo +. ((hi -. lo) *. frac);
             raise Exit
           end
         end
       done
     with Exit -> ());
    Float.min !est vmax
  end

let view t =
  let now = Clock.now_ns () in
  locked t @@ fun () ->
  let e = epoch_of t now in
  let floor_epoch = Int64.sub e (Int64.of_int (t.intervals - 1)) in
  let merged = Array.make Metrics.n_buckets 0 in
  let count = ref 0 and sum = ref 0.0 and vmax = ref neg_infinity in
  Array.iter
    (fun s ->
      if s.epoch >= floor_epoch && s.epoch <= e && s.count > 0 then begin
        Array.iteri (fun b n -> merged.(b) <- merged.(b) + n) s.buckets;
        count := !count + s.count;
        sum := !sum +. s.sum;
        if s.max > !vmax then vmax := s.max
      end)
    t.slots;
  let count = !count in
  let vmax = if count = 0 then 0.0 else !vmax in
  let q = quantile ~buckets:merged ~count ~vmax in
  {
    w_count = count;
    w_sum = !sum;
    w_max = vmax;
    w_rate = float_of_int count /. window_s t;
    w_p50 = q 0.50;
    w_p90 = q 0.90;
    w_p99 = q 0.99;
    w_window_s = window_s t;
  }

let view_json v =
  Jsonenc.Obj
    [
      ("count", Jsonenc.Int v.w_count);
      ("sum", Jsonenc.Float v.w_sum);
      ("max", Jsonenc.Float v.w_max);
      ("rate", Jsonenc.Float v.w_rate);
      ("p50", Jsonenc.Float v.w_p50);
      ("p90", Jsonenc.Float v.w_p90);
      ("p99", Jsonenc.Float v.w_p99);
      ("window_s", Jsonenc.Float v.w_window_s);
    ]

(* Mirror a view into registry gauges so one exposition pass (JSON or
   Prometheus) carries the rolling stats alongside the lifetime
   instruments. *)
let export v ~prefix =
  let g name value = Metrics.set (Metrics.gauge (prefix ^ "." ^ name)) value in
  g "count" (float_of_int v.w_count);
  g "rate" v.w_rate;
  g "p50" v.w_p50;
  g "p90" v.w_p90;
  g "p99" v.w_p99;
  g "max" v.w_max
