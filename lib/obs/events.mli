(** Append-only structured event log (JSONL).

    Every line is one JSON object with at least [ts_ns] (from {!Clock})
    and [ev] (the event kind); remaining fields are kind-specific.  The
    stable kinds are documented in DESIGN.md §7: [span], [diag],
    [retry], [breaker_trip], [ingest_report], [metric_snapshot].  With
    the default {!Nil} sink every emitter is a no-op. *)

type sink = Nil | Channel of out_channel | Buffer of Buffer.t

val set_sink : sink -> unit
val sink : unit -> sink
val enabled : unit -> bool

val write_line : string -> unit
(** Append one pre-rendered line verbatim (used to replay captured
    logs into an outer sink). *)

val emit : ?fields:(string * Jsonenc.t) list -> string -> unit
(** [emit kind ~fields] appends [{"ts_ns":…,"ev":kind,…fields}]. *)

val emit_span : Trace.span -> unit
(** One [span] event with the flat fields of {!Trace.to_fields}. *)

val stream_spans : unit -> unit
(** Point the trace sink at this event log: every finished span
    becomes a [span] event. *)

val emit_diag : kind:string -> subject:string -> detail:string -> unit
(** One [diag] event; [kind] is a resilience error-kind string. *)

val emit_checkpoint :
  stage:string -> path:string -> bytes:int -> action:string -> unit
(** One [checkpoint] event; [action] is ["saved"], ["resumed"] or
    ["stale"]. *)

val emit_rollback : from_path:string -> to_path:string -> error:string -> unit
(** One [snapshot_rollback] event: the store abandoned [from_path]
    (which failed verification with [error]) for [to_path]. *)

val emit_deadline : stage:string -> reason:string -> unit
(** One [deadline] event: the pipeline stopped at [stage] because the
    execution budget expired ([reason] from
    [Deadline.reason_to_string]). *)

val emit_fleet :
  images_total:int -> images_checked:int -> warnings:int -> status:string ->
  unit
(** One [fleet_report] event summarizing a fleet check: images offered
    and actually checked, total warnings, and the run status
    (["completed"] or ["timed-out"]). *)

val emit_metrics : unit -> unit
(** One [metric_snapshot] event carrying {!Metrics.snapshot}. *)
