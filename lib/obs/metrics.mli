(** Process-wide metric registry: named counters, gauges and log-scale
    histograms.

    Instruments are created on first use and live for the whole
    process; {!reset} zeroes them in place (existing handles stay
    valid), and {!snapshot} returns a deterministic, name-sorted view
    that omits untouched instruments.  All operations are cheap enough
    for hot paths: a handle increment is one mutable write. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get or create.  @raise Invalid_argument if the name is already
    registered as a different instrument kind. *)

val incr : ?by:int -> counter -> unit
val count : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val set_max : gauge -> float -> unit
(** Keep the maximum of all values set so far. *)

val histogram : string -> histogram

val n_buckets : int
(** Bucket count of every histogram (64). *)

val observe : histogram -> float -> unit

val bucket_of_value : float -> int
(** Base-2 log-scale bucket index: bucket [b] (0 < b < 63) covers
    [\[2^(b-1), 2^b)]; bucket 0 everything below 1 — zero, negatives,
    [-inf], NaN and subnormals all land there deterministically;
    bucket 63 everything at or above [2^62]. *)

val labeled : string -> (string * string) list -> string
(** [labeled name [(k, v); ...]] is the canonical registry name of a
    labelled series: [name{k="v",...}] with keys sorted and values
    escaped, so the same label set always yields the same name.
    {!snapshot_to_prom} splits it back into a Prometheus family plus
    label block; the JSON encoder keeps the flat name. *)

val bucket_bounds : int -> float * float
(** Inclusive-lower / exclusive-upper bounds of a bucket. *)

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_min : float;
  hv_max : float;
  hv_buckets : (int * int) list;  (** non-empty (bucket, count), ascending *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_view) list;
}

val snapshot : unit -> snapshot
(** Name-sorted view of every instrument touched since the last
    {!reset}; deterministic for a deterministic workload. *)

val reset : unit -> unit
(** Zero every instrument in place. *)

val snapshot_to_json : snapshot -> Jsonenc.t

val snapshot_to_prom : snapshot -> string
(** Prometheus text exposition (format 0.0.4): one [# TYPE] header per
    family, counter/gauge/histogram sections, labels recovered from
    {!labeled} names.  Histograms render cumulative [_bucket] series
    over the non-empty log-scale buckets (upper edges as [le]), plus
    [_sum] and [_count].  Deterministic for a deterministic snapshot. *)

val rows : snapshot -> string list list
(** [[name; kind; value]] rows for table rendering. *)
