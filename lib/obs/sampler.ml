(* Runtime sampler: the one sanctioned Gc.quick_stat call site (the
   lint gate bans it elsewhere under lib/), so every GC reading in the
   registry comes from a single poll cadence instead of ad-hoc probes
   scattered through hot paths. *)

type t = {
  interval_ns : int64;
  gauges : unit -> (string * float) list;
  mutable last_ns : int64;  (* -1 = never sampled *)
  mutable samples : int;
}

let create ?(interval_ns = 1_000_000_000L) ?(gauges = fun () -> []) () =
  { interval_ns = Int64.max 1L interval_ns; gauges; last_ns = -1L; samples = 0 }

let set name v = Metrics.set (Metrics.gauge name) v

let sample t =
  let st = Gc.quick_stat () in
  set "runtime.gc.minor_collections" (float_of_int st.Gc.minor_collections);
  set "runtime.gc.major_collections" (float_of_int st.Gc.major_collections);
  set "runtime.gc.compactions" (float_of_int st.Gc.compactions);
  set "runtime.gc.heap_words" (float_of_int st.Gc.heap_words);
  set "runtime.gc.minor_words" st.Gc.minor_words;
  List.iter (fun (name, v) -> set name v) (t.gauges ());
  t.samples <- t.samples + 1;
  t.last_ns <- Clock.now_ns ()

let poll t =
  let now = Clock.now_ns () in
  if t.last_ns < 0L || Int64.sub now t.last_ns >= t.interval_ns then begin
    sample t;
    true
  end
  else false

let samples t = t.samples
