type status = Ok_span | Error_span of string

type span = {
  name : string;
  mutable attrs : (string * Jsonenc.t) list;
  depth : int;
  parent : string option;
  start_ns : int64;
  mutable dur_ns : int64;
  mutable status : status;
  mutable children : span list;  (* reverse completion order *)
}

type sink = Nil | Memory | Stream of (span -> unit)

let sink_ref = ref Nil

(* The open-span stack is per domain: each worker of a
   [Encore_util.Pool] traces independently, inheriting the submitting
   domain's innermost span through {!capture}/{!with_context}.  Shared
   structures — the finished-root list, a parent's child list (the
   parent may live on another domain), the stream callback — are
   serialized by [mu]. *)
let current_key : span option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = Domain.DLS.get current_key

let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let finished_roots : span list ref = ref []

let set_sink s = sink_ref := s

let sink () = !sink_ref

let enabled () = match !sink_ref with Nil -> false | Memory | Stream _ -> true

let clear () =
  current () := None;
  locked (fun () -> finished_roots := [])

let roots () = locked (fun () -> List.rev !finished_roots)

type context = span option

let capture () = !(current ())

let with_context ctx f =
  let cur = current () in
  let saved = !cur in
  cur := ctx;
  Fun.protect ~finally:(fun () -> cur := saved) f

let set_attr key v =
  match !(current ()) with
  | None -> ()
  | Some sp -> sp.attrs <- (key, v) :: List.remove_assoc key sp.attrs

let observe_duration sp =
  Metrics.observe
    (Metrics.histogram ("span_us." ^ sp.name))
    (Int64.to_float sp.dur_ns /. 1e3)

let with_span ?(attrs = []) name f =
  match !sink_ref with
  | Nil -> f ()
  | mode ->
      let cur = current () in
      let parent = !cur in
      let sp =
        {
          name;
          attrs;
          depth = (match parent with Some p -> p.depth + 1 | None -> 0);
          parent = (match parent with Some p -> Some p.name | None -> None);
          start_ns = Clock.now_ns ();
          dur_ns = 0L;
          status = Ok_span;
          children = [];
        }
      in
      cur := Some sp;
      let finish status =
        sp.dur_ns <- Int64.sub (Clock.now_ns ()) sp.start_ns;
        sp.status <- status;
        cur := parent;
        observe_duration sp;
        locked (fun () ->
            (match parent with
             | Some p -> p.children <- sp :: p.children
             | None -> ());
            match mode with
            | Nil -> ()
            | Memory ->
                if parent = None then finished_roots := sp :: !finished_roots
            | Stream emit -> emit sp)
      in
      (match f () with
       | v ->
           finish Ok_span;
           v
       | exception e ->
           finish (Error_span (Printexc.to_string e));
           raise e)

let children_in_order sp = List.rev sp.children

let rec iter_tree f sp =
  f sp;
  List.iter (iter_tree f) (children_in_order sp)

let status_to_string = function
  | Ok_span -> "ok"
  | Error_span msg -> "error: " ^ msg

let to_fields sp =
  [
    ("name", Jsonenc.Str sp.name);
    ("parent",
     match sp.parent with Some p -> Jsonenc.Str p | None -> Jsonenc.Null);
    ("depth", Jsonenc.Int sp.depth);
    ("start_ns", Jsonenc.Int (Int64.to_int sp.start_ns));
    ("dur_ns", Jsonenc.Int (Int64.to_int sp.dur_ns));
    ("status", Jsonenc.Str (status_to_string sp.status));
    ("attrs", Jsonenc.Obj (List.rev sp.attrs));
  ]
