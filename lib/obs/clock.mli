(** Time source for the telemetry layer.

    Every timestamp in spans and events flows through {!now_ns} so tests
    can install a deterministic source.  The default source is the
    system wall clock at nanosecond resolution, clamped to be
    non-decreasing (a virtual monotonic clock): a backwards step of the
    underlying clock can stall the stream but never rewind it. *)

type source = unit -> int64
(** Nanosecond timestamps. *)

val default : source
(** Wall clock ([Unix.gettimeofday]) scaled to nanoseconds. *)

val set_source : source -> unit
(** Replace the global source and reset the monotonic floor. *)

val now_ns : unit -> int64
(** Current time from the installed source, never less than any
    previously returned value. *)

val counter : ?start:int64 -> step_ns:int64 -> unit -> source
(** Deterministic source advancing by [step_ns] per call; the first
    call returns [start]. *)

val with_source : source -> (unit -> 'a) -> 'a
(** Run with a temporary source, restoring the previous one (and its
    monotonic floor) afterwards, also on exceptions. *)
