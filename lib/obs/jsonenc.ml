type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- encoding ------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c ->
          (* bytes >= 0x80 pass through: payloads are UTF-8 already *)
          Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite ->
      (* JSON has no NaN/inf; null keeps the line parseable *)
      Buffer.add_string buf "null"
  | _ -> Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* --- decoding ------------------------------------------------------------ *)

exception Bad of string

let utf8_of_code buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let next () =
    if !pos >= n then raise (Bad "unexpected end of input");
    let c = s.[!pos] in
    incr pos;
    c
  in
  let expect c =
    let got = next () in
    if got <> c then raise (Bad (Printf.sprintf "expected %c, got %c" c got))
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let literal word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let hex4 () =
    let v = ref 0 in
    for _ = 1 to 4 do
      let c = next () in
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> raise (Bad "bad \\u escape")
      in
      v := (!v * 16) + d
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match next () with
      | '"' -> Buffer.contents buf
      | '\\' ->
          (match next () with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
               let cp = hex4 () in
               let cp =
                 (* surrogate pair *)
                 if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n
                    && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                 then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                 end
                 else cp
               in
               utf8_of_code buf cp
           | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          go ()
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do incr pos done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> raise (Bad ("bad number " ^ tok))
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> raise (Bad ("bad number " ^ tok)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> raise (Bad "unexpected end of input")
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; Arr [] end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> items (v :: acc)
            | ']' -> Arr (List.rev (v :: acc))
            | c -> raise (Bad (Printf.sprintf "expected , or ] but got %c" c))
          in
          items []
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Obj [] end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match next () with
            | ',' -> fields ((k, v) :: acc)
            | '}' -> Obj (List.rev ((k, v) :: acc))
            | c -> raise (Bad (Printf.sprintf "expected , or } but got %c" c))
          in
          fields []
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos <> n then Error "trailing characters after JSON value"
      else Ok v
  | exception Bad msg -> Error msg

(* --- accessors ----------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
