(** Runtime sampler: periodic capture of GC statistics plus
    caller-supplied gauges into the {!Metrics} registry.

    This module is the only place in [lib/] allowed to call
    [Gc.quick_stat] (enforced by the lint gate), keeping runtime-stat
    collection on one cadence.  A sampler has no thread of its own: the
    owning event loop calls {!poll} on its ticks, and the sampler
    decides — against {!Clock.now_ns} — whether the cadence elapsed. *)

type t

val create :
  ?interval_ns:int64 -> ?gauges:(unit -> (string * float) list) -> unit -> t
(** A sampler firing at most every [interval_ns] (default 1s).
    [gauges] supplies extra (name, value) pairs captured on the same
    cadence — queue depth, breaker state, ring drops; names may be
    {!Metrics.labeled}. *)

val sample : t -> unit
(** Capture now, unconditionally: [Gc.quick_stat] into
    [runtime.gc.minor_collections], [runtime.gc.major_collections],
    [runtime.gc.compactions], [runtime.gc.heap_words] and
    [runtime.gc.minor_words] gauges, then the caller's [gauges]. *)

val poll : t -> bool
(** {!sample} if the interval elapsed since the last capture (or none
    happened yet); returns whether it sampled. *)

val samples : t -> int
(** Captures so far. *)
