type sink = Nil | Channel of out_channel | Buffer of Buffer.t

let sink_ref = ref Nil

let set_sink s = sink_ref := s

let sink () = !sink_ref

let enabled () = match !sink_ref with Nil -> false | Channel _ | Buffer _ -> true

(* JSONL lines may be emitted from pool worker domains (a span stream
   sink finishing spans concurrently); serialize writes so lines never
   interleave mid-record. *)
let mu = Mutex.create ()

let write_line line =
  Mutex.lock mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mu)
    (fun () ->
      match !sink_ref with
      | Nil -> ()
      | Channel oc ->
          output_string oc line;
          output_char oc '\n'
      | Buffer b ->
          Buffer.add_string b line;
          Buffer.add_char b '\n')

let emit ?(fields = []) kind =
  if enabled () then
    write_line
      (Jsonenc.to_string
         (Jsonenc.Obj
            (("ts_ns", Jsonenc.Int (Int64.to_int (Clock.now_ns ())))
             :: ("ev", Jsonenc.Str kind)
             :: fields)))

let emit_span sp = emit ~fields:(Trace.to_fields sp) "span"

let stream_spans () = Trace.set_sink (Trace.Stream emit_span)

let emit_diag ~kind ~subject ~detail =
  emit "diag"
    ~fields:
      [
        ("diag_kind", Jsonenc.Str kind);
        ("subject", Jsonenc.Str subject);
        ("detail", Jsonenc.Str detail);
      ]

let emit_checkpoint ~stage ~path ~bytes ~action =
  emit "checkpoint"
    ~fields:
      [
        ("stage", Jsonenc.Str stage);
        ("path", Jsonenc.Str path);
        ("bytes", Jsonenc.Int bytes);
        ("action", Jsonenc.Str action);
      ]

let emit_rollback ~from_path ~to_path ~error =
  emit "snapshot_rollback"
    ~fields:
      [
        ("from", Jsonenc.Str from_path);
        ("to", Jsonenc.Str to_path);
        ("error", Jsonenc.Str error);
      ]

let emit_deadline ~stage ~reason =
  emit "deadline"
    ~fields:[ ("stage", Jsonenc.Str stage); ("reason", Jsonenc.Str reason) ]

let emit_fleet ~images_total ~images_checked ~warnings ~status =
  emit "fleet_report"
    ~fields:
      [
        ("images_total", Jsonenc.Int images_total);
        ("images_checked", Jsonenc.Int images_checked);
        ("warnings", Jsonenc.Int warnings);
        ("status", Jsonenc.Str status);
      ]

let emit_metrics () =
  if enabled () then
    emit "metric_snapshot"
      ~fields:[ ("metrics", Metrics.snapshot_to_json (Metrics.snapshot ())) ]
