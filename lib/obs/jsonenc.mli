(** Hand-rolled JSON encoder/decoder for the structured event log.

    One JSON value per JSONL line; no external dependencies.  Strings
    are treated as UTF-8: bytes at or above [0x80] pass through the
    encoder unchanged, control characters are escaped as [\uNNNN] (with
    the usual short forms for newline, tab and carriage return), and
    the decoder expands [\uNNNN] escapes — including surrogate pairs —
    back to UTF-8 bytes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  NaN and infinities, which JSON
    cannot represent, encode as [null]. *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value; trailing garbage is an error. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
val to_string_opt : t -> string option
