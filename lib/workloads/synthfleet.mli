(** Synthetic heterogeneous fleet: a ConfEx-scale image corpus for
    fleet-scale learning benchmarks and determinism tests.

    Unlike the per-application study populations ({!Population}), this
    generator optimizes for corpus {e shape} at scale — thousands of
    images, a wide but sparse attribute universe (rare tuning knobs on
    a minority of images), diverse identity values, and built-in
    correlations of every template family the learner handles:
    equalities (server/client port), boolean implications (cache
    warmup requires the cache), numeric orderings (soft < hard fd
    limits), size orderings (per-op buffer < pool) and
    environment-coupled paths (state directory owned by the service
    user).  Images are kept lean (one INI config, a handful of
    filesystem nodes) so a 10k-image fleet assembles in seconds. *)

val app : Encore_sysenv.Image.app
(** The lens the fleet parses under ({!Encore_sysenv.Image.Mysql} —
    generic INI). *)

val bench_sizes : int list
(** Fleet sizes the scaling benchmark sweeps: 1k, 3k, 10k. *)

val full_size : int
(** The headline fleet size (10_000). *)

val generate : ?seed:int -> n:int -> unit -> Encore_sysenv.Image.t list
(** Deterministic fleet of [n] clean images; [seed] defaults to 42.
    Each image draws from its own split of the root PRNG stream.  The
    sparse-knob universe scales with [n] (a larger fleet surfaces more
    long-tail options), so images are not prefix-stable across
    different [n]. *)
