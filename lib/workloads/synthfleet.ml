module Prng = Encore_util.Prng
module Strutil = Encore_util.Strutil
module Image = Encore_sysenv.Image
module Kv = Encore_confparse.Kv
module Ini = Encore_confparse.Ini

(* The fleet piggybacks on the MySQL lens: any INI-shaped config under
   [Image.Mysql] parses generically into [mysql/<section>/<key>]
   attributes, so the learner sees a corpus whose shape (sparsity,
   value diversity, correlation structure) we control without teaching
   the parser a new application. *)
let app = Image.Mysql

let bench_sizes = [ 1_000; 3_000; 10_000 ]
let full_size = 10_000

let size_str = Strutil.format_size

(* Rare tuning knobs, each present on ~15% of images: the attribute
   universe is wide but each column is sparse — the regime the presence
   bitsets are built for.  The universe grows with the fleet: a larger
   corpus surfaces more long-tail options, so candidate pairs over
   sparse attributes grow quadratically while almost none of them can
   reach fleet-fraction support — exactly the population a support
   popcount disposes of in O(rows/62) words where the reference
   evaluator walks every row. *)
let knob_universe n = 8 + (n / 250)

let generate_one rng ~knobs ~id =
  let b = Imagebase.create rng in
  let vary d alts =
    if Prng.chance rng 0.35 then Prng.pick rng alts else d
  in
  let opt p = Prng.chance rng p in

  (* core identity: service user owns the state directory; every other
     path hangs off one of a few roots *)
  let user = vary "fleetd" [ "svcuser"; "appd" ] in
  Imagebase.add_service_user b user;
  let state_dir =
    vary "/var/lib/fleet" [ "/srv/fleet"; "/data/fleet"; "/opt/fleet/state" ]
  in
  Imagebase.mkdir ~owner:user ~group:user b state_dir;
  let log_dir = vary "/var/log/fleet" [ "/var/log" ] in
  Imagebase.mkdir ~owner:"root" ~group:"root" b log_dir;
  let log_file = Strutil.path_join log_dir (vary "fleet.log" [ "daemon.log" ]) in
  Imagebase.mkfile ~owner:user ~group:"adm" ~perm:0o640 b log_file;
  let port = vary "7400" [ "7401"; "17400" ] in
  (match int_of_string_opt port with
   | Some p -> Imagebase.register_port b p "fleet"
   | None -> ());
  let sock = Strutil.path_join state_dir "fleet.sock" in
  Imagebase.mkfile ~owner:user ~group:user ~perm:0o777 b sock ~size:0;

  let kvs = ref [] in
  let add section key value =
    kvs := Kv.make (Kv.qualify ~app:"mysql" [ section; key ]) value :: !kvs
  in
  (* correlated core — always present so rules reach support *)
  add "svc" "user" user;
  add "svc" "state_dir" state_dir;
  add "svc" "log_file" log_file;
  add "svc" "socket" sock;
  add "net" "port" port;
  add "client" "port" port;  (* equality correlation *)
  if opt 0.9 then
    add "net" "bind"
      (vary "127.0.0.1" [ "0.0.0.0"; Imagebase.random_ip rng ]);

  (* numeric orderings: soft < hard, connect < idle *)
  let soft_fd = 1024 * (1 lsl Prng.int rng 3) in
  add "limits" "soft_fd" (string_of_int soft_fd);
  add "limits" "hard_fd" (string_of_int (soft_fd * (2 + Prng.int rng 3)));
  if opt 0.8 then begin
    let connect = 5 * (1 + Prng.int rng 4) in
    add "net" "connect_timeout" (string_of_int connect);
    add "net" "idle_timeout" (string_of_int (connect * (4 + Prng.int rng 8)))
  end;

  (* size orderings: per-op buffer < pool *)
  let read_exp = Prng.int_in rng 17 20 in
  add "buffers" "read_buffer" (size_str (1 lsl read_exp));
  add "buffers" "pool_size" (size_str (1 lsl (read_exp + 4 + Prng.int rng 3)));
  if opt 0.7 then
    add "buffers" "journal_size" (size_str ((1 lsl Prng.int_in rng 22 26)));

  (* dense worker/queue/timeout knobs — every image carries them, the
     orderings hold by construction.  Real fleet configs are wide in
     exactly this kind of always-set numeric tuning, and it is the
     regime where columnar evaluation pays: one parse per column, then
     tight array scans per candidate. *)
  let worker_min = 2 * (1 + Prng.int rng 4) in
  add "pool" "worker_min" (string_of_int worker_min);
  add "pool" "worker_max" (string_of_int (worker_min * (2 + Prng.int rng 4)));
  let queue_low = 64 * (1 + Prng.int rng 4) in
  add "pool" "queue_low" (string_of_int queue_low);
  add "pool" "queue_high" (string_of_int (queue_low * (3 + Prng.int rng 4)));
  let batch = 16 * (1 + Prng.int rng 8) in
  add "pool" "batch_size" (string_of_int batch);
  add "pool" "batch_cap" (string_of_int (batch * (2 + Prng.int rng 6)));
  let retry_base = 1 + Prng.int rng 5 in
  add "retry" "base_delay" (string_of_int retry_base);
  add "retry" "max_delay" (string_of_int (retry_base * (8 + Prng.int rng 16)));
  let heartbeat = 2 * (1 + Prng.int rng 5) in
  add "cluster" "heartbeat" (string_of_int heartbeat);
  add "cluster" "session_ttl" (string_of_int (heartbeat * (3 + Prng.int rng 5)));

  (* dense size pairs *)
  let wal_exp = Prng.int_in rng 23 26 in
  add "wal" "segment_size" (size_str (1 lsl wal_exp));
  add "wal" "max_size" (size_str (1 lsl (wal_exp + 3 + Prng.int rng 3)));
  let cache_exp = Prng.int_in rng 20 24 in
  add "cache" "entry_max" (size_str (1 lsl cache_exp));
  add "cache" "total_max" (size_str (1 lsl (cache_exp + 4 + Prng.int rng 3)));

  (* dense equality correlations: the same drawn identity repeated in
     two sections, the classic copy-paste coupling checkers look for *)
  let cluster = vary "prod-east" [ "prod-west"; "staging"; "dev" ] in
  add "cluster" "name" cluster;
  add "replication" "cluster_name" cluster;
  let region = vary "us-east-1" [ "us-west-2"; "eu-central-1" ] in
  add "svc" "region" region;
  add "backup" "region" region;

  (* dense boolean block with implications *)
  let metrics = opt 0.8 in
  add "features" "metrics" (if metrics then "on" else "off");
  add "features" "metrics_export" (if metrics && opt 0.9 then "on" else "off");
  let fsync = opt 0.75 in
  add "durability" "fsync" (if fsync then vary "on" [ "true" ] else "off");
  add "durability" "group_commit" (if fsync && opt 0.85 then "on" else "off");
  add "features" "autosave" (if opt 0.6 then "on" else "off");
  add "features" "readonly" (if opt 0.1 then "on" else "off");

  (* boolean implication: warmup only makes sense with the cache on *)
  let cache = opt 0.7 in
  add "features" "cache" (if cache then vary "on" [ "true"; "yes" ] else vary "off" [ "false"; "no" ]);
  if opt 0.8 then
    add "features" "cache_warmup" (if cache && opt 0.8 then "on" else "off");
  if opt 0.6 then add "features" "telemetry" (vary "on" [ "off" ]);
  if opt 0.5 then add "features" "compression" (vary "off" [ "on" ]);

  (* near-constant entry: entropy-filter fodder *)
  if opt 0.9 then add "svc" "schema_version" "3";

  (* sparse long tail: each knob present on ~15% of the fleet *)
  for k = 0 to knobs - 1 do
    if opt 0.15 then
      add "tuning" (Printf.sprintf "knob_%02d" k)
        (string_of_int (Prng.int rng 100))
  done;

  let text = Ini.render ~app:"mysql" (List.rev !kvs) in
  let path = "/etc/fleet/fleet.conf" in
  Imagebase.mkdir b "/etc/fleet";
  Imagebase.mkfile b path ~size:(String.length text);
  Imagebase.build b ~id [ { Image.app; path; text } ]

let generate ?(seed = 42) ~n () =
  let rng = Prng.create seed in
  let knobs = knob_universe n in
  List.init n (fun i ->
      let sub = Prng.split rng in
      generate_one sub ~knobs ~id:(Printf.sprintf "fleet-%05d" i))
