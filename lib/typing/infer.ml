type decision = { ctype : Ctype.t; agreement : float; samples : int }

type env = (string * decision) list

(* Rank in Syntactic.candidate_order = specificity; lower is better. *)
let specificity t =
  let rec idx i = function
    | [] -> max_int
    | x :: rest -> if Ctype.equal x t then i else idx (i + 1) rest
  in
  match t with
  (* customized types take priority over the predefined ones *)
  | Ctype.Custom _ -> -1
  | Ctype.Number -> 100
  | Ctype.String_t -> 101
  | _ -> idx 0 Syntactic.candidate_order

(* --- mergeable per-column tally ------------------------------------------- *)

(* How many (image, value) samples verified each candidate type, in
   first-verification order.  This is the sufficient statistic of type
   inference: it is additive across corpus partitions ([tally_merge]),
   and {!decide} is a pure function of (tally, sample count) — the
   incremental and sharded learners maintain tallies per column and
   reach the exact decisions the batch scan makes.  Tallies are tiny
   (bounded by the candidate-type universe), so assoc lists beat
   hashing here. *)
type tally = (Ctype.t * int) list

let tally_empty : tally = []

let tally_add tally img value =
  List.fold_left
    (fun tally t ->
      if Semantic.verify img t value then begin
        let rec bump = function
          | [] -> [ (t, 1) ]
          | (t', c) :: rest ->
              if Ctype.equal t' t then (t', c + 1) :: rest
              else (t', c) :: bump rest
        in
        bump tally
      end
      else tally)
    tally
    (Syntactic.candidates value)

let tally_of_samples samples =
  List.fold_left (fun tally (img, value) -> tally_add tally img value)
    tally_empty samples

(* Left order wins; unseen right keys append in their own order — the
   exact key order a single scan of the concatenated sample streams
   produces, which makes the merge associative. *)
let tally_merge a b =
  let bump tally (t, cb) =
    let rec go = function
      | [] -> [ (t, cb) ]
      | (t', c) :: rest ->
          if Ctype.equal t' t then (t', c + cb) :: rest else (t', c) :: go rest
    in
    go tally
  in
  List.fold_left bump a b

let decide ?(min_agreement = 0.8) ?hint ~samples:n tally =
  if n = 0 then { ctype = Ctype.String_t; agreement = 1.0; samples = 0 }
  else begin
    let nf = float_of_int n in
    let qualified =
      List.fold_left
        (fun acc (t, c) ->
          let agreement = float_of_int c /. nf in
          if agreement >= min_agreement then (t, agreement) :: acc else acc)
        [] tally
    in
    match
      List.sort
        (fun (a, aa) (b, ab) ->
          match compare (specificity a) (specificity b) with
          | 0 -> compare ab aa
          | c -> c)
        qualified
    with
    | [] -> { ctype = Ctype.String_t; agreement = 1.0; samples = n }
    | (t, agreement) :: _ -> (
        match hint with
        | Some h -> (
            match
              List.find_opt (fun (q, qa) -> Ctype.equal q h && qa >= agreement) qualified
            with
            | Some (_, ha) -> { ctype = h; agreement = ha; samples = n }
            | None -> { ctype = t; agreement; samples = n })
        | None -> { ctype = t; agreement; samples = n })
  end

let infer_column ?min_agreement ?hint samples =
  let n = List.length samples in
  if n = 0 then { ctype = Ctype.String_t; agreement = 1.0; samples = 0 }
  else decide ?min_agreement ?hint ~samples:n (tally_of_samples samples)

(* name-based hints resolve ambiguities the value alone cannot
   (a user and its primary group usually share one name) *)
let hint_of attr =
  let base =
    Encore_util.Strutil.lowercase_ascii
      (match Encore_util.Strutil.split_on '/' attr with
       | [] -> attr
       | parts -> List.nth parts (List.length parts - 1))
  in
  if Encore_util.Strutil.contains_sub base "group" then Some Ctype.Group_name
  else if Encore_util.Strutil.contains_sub base "user" then Some Ctype.User_name
  else None

(* Low-cardinality string columns are enums of their observed values.
   [distinct] is the exact distinct-value set when the caller knows it
   ([None] = known to exceed the cardinality bound, keep the string
   type). *)
let refine_enum ?(enum_max_cardinality = 4) ~distinct decision =
  if Ctype.equal decision.ctype Ctype.String_t && decision.samples >= 5 then
    match distinct with
    | Some values when List.length values <= enum_max_cardinality ->
        { decision with ctype = Ctype.Enum (List.sort compare values) }
    | _ -> decision
  else decision

let infer ?min_agreement ?enum_max_cardinality rows =
  (* Pivot: attribute -> [(image, value); ...] *)
  let columns = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (img, kvs) ->
      List.iter
        (fun (attr, value) ->
          (match Hashtbl.find_opt columns attr with
           | None ->
               Hashtbl.add columns attr [ (img, value) ];
               order := attr :: !order
           | Some existing -> Hashtbl.replace columns attr ((img, value) :: existing)))
        kvs)
    rows;
  List.rev_map
    (fun attr ->
      let samples = List.rev (Hashtbl.find columns attr) in
      let decision = infer_column ?min_agreement ?hint:(hint_of attr) samples in
      let decision =
        refine_enum ?enum_max_cardinality
          ~distinct:(Some (Encore_util.Stats.distinct (List.map snd samples)))
          decision
      in
      (attr, decision))
    !order

let find env attr = List.assoc_opt attr env
