(** Per-attribute type inference over a training set.

    For each attribute (column), every training value is run through the
    two-step inference; the column is assigned the most specific type
    that a qualified majority of the samples agree on.  Columns whose
    values form a small closed set are promoted to [Enum] (which is how
    boolean-like and keyword-like entries become checkable even when no
    predefined type fits). *)

type decision = {
  ctype : Ctype.t;
  agreement : float;  (** fraction of samples confirming [ctype] *)
  samples : int;
}

type env = (string * decision) list
(** Attribute name -> inferred type. *)

type tally = (Ctype.t * int) list
(** How many samples of a column verified each candidate type, in
    first-verification order.  The sufficient statistic of type
    inference: additive across corpus partitions, and {!decide} turns a
    (tally, sample count) pair into the exact decision a batch scan of
    the concatenated samples would make. *)

val tally_empty : tally

val tally_add : tally -> Encore_sysenv.Image.t -> string -> tally
(** Fold one (image context, value) sample into the tally. *)

val tally_of_samples : (Encore_sysenv.Image.t * string) list -> tally

val tally_merge : tally -> tally -> tally
(** Associative; [tally_merge a b] equals the tally of a's sample
    stream followed by b's. *)

val decide :
  ?min_agreement:float -> ?hint:Ctype.t -> samples:int -> tally -> decision
(** The decision rule of {!infer_column}, as a pure function of the
    tally and the column's sample count. *)

val hint_of : string -> Ctype.t option
(** Name-based UserName/GroupName hint from the attribute's last
    path segment ({!infer} applies this per column). *)

val refine_enum :
  ?enum_max_cardinality:int -> distinct:string list option -> decision -> decision
(** The [Enum] promotion rule of {!infer}: a [String_t] decision over
    at least 5 samples becomes [Enum (sorted distinct)] when the exact
    distinct-value set is known ([Some]) and within the cardinality
    bound.  [None] means the set is known to exceed the bound. *)

val infer_column :
  ?min_agreement:float -> ?hint:Ctype.t ->
  (Encore_sysenv.Image.t * string) list -> decision
(** [infer_column samples] where each sample is (image context, value).
    [min_agreement] defaults to 0.8.  When [hint] is given and qualifies
    with at least the winner's agreement, it wins ties with equally
    plausible types — used for UserName/GroupName ambiguity, where the
    value alone cannot distinguish a user from its same-named group. *)

val infer :
  ?min_agreement:float -> ?enum_max_cardinality:int ->
  (Encore_sysenv.Image.t * (string * string) list) list -> env
(** [infer rows] over a training set: [rows] pairs each image with its
    (attribute, value) list.  Columns falling back to [String_t] with at
    most [enum_max_cardinality] (default 4) distinct values over at
    least 5 samples are refined to [Enum].  *)

val find : env -> string -> decision option
