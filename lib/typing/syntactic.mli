(** Step 1 of type inference: syntactic pattern matching (paper §4.2).

    Each candidate type has a cheap regular-expression hint.  A value may
    match several hints; candidates are returned from most to least
    specific, and step 2 ({!Semantic}) disambiguates by consulting the
    environment.  This ordering implements the paper's observation that
    the syntactic pass "prunes away most of the improbable types". *)

val matches : Ctype.t -> string -> bool
(** Does [value] satisfy the syntactic hint of the given type?
    [Enum] and [String_t] match everything; [Permission] requires an
    octal string. *)

val matcher : Ctype.t -> string -> bool
(** [matcher t] resolves the type dispatch once and returns a closure
    over the precompiled pattern: partially applying it compiles the
    matcher for a column, so a hot check path pays no per-value
    dispatch.  [matcher t v] and [matches t v] always agree. *)

val candidate_order : Ctype.t list
(** The non-trivial types in decreasing specificity; the order used to
    resolve multi-candidate values. *)

val candidates : string -> Ctype.t list
(** All non-trivial types whose hint matches, most specific first,
    always terminated by the trivial fallbacks ([Number] when numeric,
    then [String_t]). *)
