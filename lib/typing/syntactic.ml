let re_full pattern = Re.compile (Re.whole_string (Re.Perl.re pattern))

(* Compiled patterns, close to paper Table 4 (with IPv6 and a stricter
   IPv4 range check done post-match). *)
let file_path_re = re_full "/[^\\s]+(/[^\\s]+)*/?"
let partial_path_re = re_full "[^/\\s]+(/[^\\s]+)+"
let file_name_re = re_full "([\\w-]+\\.)+[\\w-]+|\\.[\\w-]+"
let user_re = re_full "[a-zA-Z_][a-zA-Z0-9_-]*"
let ipv4_re = re_full "\\d{1,3}(\\.\\d{1,3}){3}"
let ipv6_re = re_full "[0-9a-fA-F:]*:[0-9a-fA-F:]+"
let port_re = re_full "\\d{1,5}"
let number_re = re_full "-?[0-9]+(\\.[0-9]+)?"
let url_re = re_full "[a-z][a-z0-9+.-]*://[^\\s]+"
let mime_re = re_full "[\\w-]+/[\\w.+-]+"
let charset_re = re_full "[A-Za-z][A-Za-z0-9._-]{2,}"
let language_re = re_full "[a-zA-Z]{2}([_-][a-zA-Z]{2})?"
(* a bare count is a Number; only a unit suffix marks a Size *)
let size_re = re_full "[0-9]+[KMGTkmgt]"
let perm_re = re_full "0?[0-7]{3,4}"

let bool_words =
  [ "on"; "off"; "true"; "false"; "yes"; "no"; "0"; "1"; "enabled"; "disabled" ]

let exec re s = Re.execp re s

let ipv4_in_range s =
  List.for_all
    (fun octet ->
      match int_of_string_opt octet with
      | Some v -> v >= 0 && v <= 255
      | None -> false)
    (String.split_on_char '.' s)

(* The dispatch is resolved once per type; [matcher] partially applied
   to a column's type is the column's compiled matcher. *)
let matcher (t : Ctype.t) =
  let hint =
    match t with
    | Ctype.File_path -> exec file_path_re
    | Ctype.Partial_file_path -> exec partial_path_re
    | Ctype.File_name ->
        fun v ->
          exec file_name_re v && not (Encore_util.Strutil.contains_char v '/')
    | Ctype.User_name | Ctype.Group_name -> exec user_re
    | Ctype.Ip_address ->
        fun v -> (exec ipv4_re v && ipv4_in_range v) || exec ipv6_re v
    | Ctype.Port_number -> (
        fun v ->
          exec port_re v
          && match int_of_string_opt v with
             | Some p -> p >= 0 && p <= 65535
             | None -> false)
    | Ctype.Url -> exec url_re
    | Ctype.Mime_type -> fun v -> exec mime_re v && not (exec file_path_re v)
    | Ctype.Charset -> exec charset_re
    | Ctype.Language -> exec language_re
    | Ctype.Size -> exec size_re
    | Ctype.Bool_t ->
        fun v -> List.mem (Encore_util.Strutil.lowercase_ascii v) bool_words
    | Ctype.Permission -> exec perm_re
    | Ctype.Number -> exec number_re
    | Ctype.Custom name -> Custom_registry.matches name
    | Ctype.Enum _ | Ctype.String_t -> fun _ -> true
  in
  fun value ->
    let v = String.trim value in
    if v = "" then t = Ctype.String_t else hint v

let matches (t : Ctype.t) value = matcher t value

(* Most specific first.  E.g. "/usr/lib/php.so" matches File_path before
   File_name; "3306" matches Port_number before Size/Number. *)
let candidate_order =
  [ Ctype.Url; Ctype.File_path; Ctype.Ip_address; Ctype.Bool_t;
    Ctype.Port_number; Ctype.Size; Ctype.Mime_type; Ctype.Partial_file_path;
    Ctype.File_name; Ctype.Language; Ctype.User_name; Ctype.Group_name;
    Ctype.Charset ]

let candidates value =
  (* customized types have priority over predefined ones, in the order
     they appear in the customization file (paper section 5.3.1) *)
  let custom =
    List.filter_map
      (fun name ->
        let t = Ctype.Custom name in
        if matches t value then Some t else None)
      (Custom_registry.registered ())
  in
  let non_trivial =
    custom @ List.filter (fun t -> matches t value) candidate_order
  in
  let trivial =
    if matches Ctype.Number value then [ Ctype.Number; Ctype.String_t ]
    else [ Ctype.String_t ]
  in
  non_trivial @ trivial
