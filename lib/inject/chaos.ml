open Encore_util
module Image = Encore_sysenv.Image

type victim = { image_id : string; injection : Fault.injection }

type storm_report = { images : Image.t list; victims : victim list }

let garbage = "\x00\x01\x02\x03\x04\x05\x06\x07"

let pick_config rng (img : Image.t) =
  match List.filter (fun (c : Image.config_file) -> c.text <> "") img.configs with
  | [] -> None
  | candidates -> Some (Prng.pick rng candidates)

(* Longest prefix of [text] of length <= cut that does not end in a
   newline; None when no such non-empty prefix exists. *)
let truncate_at text cut =
  let rec back i = if i > 0 && text.[i - 1] = '\n' then back (i - 1) else i in
  match back cut with 0 -> None | i -> Some (String.sub text 0 i)

let corrupt_one rng kind (img : Image.t) =
  match kind with
  | Fault.Probe_flap ->
      Some
        ( Image.with_flakiness img 1.0,
          { Fault.fault = Fault.Pipeline_fault kind;
            target_attr = img.image_id;
            before = Printf.sprintf "flakiness=%.2f" img.flakiness;
            after = "flakiness=1.00" } )
  | Fault.Truncated_file -> (
      match pick_config rng img with
      | None -> None
      | Some cf -> (
          let len = String.length cf.text in
          if len < 2 then None
          else
            match truncate_at cf.text (Prng.int_in rng 1 (len - 1)) with
            | None -> None
            | Some cut ->
                Some
                  ( Image.set_config img cf.app cut,
                    { Fault.fault = Fault.Pipeline_fault kind;
                      target_attr = cf.path;
                      before = Printf.sprintf "%d bytes" len;
                      after = Printf.sprintf "%d bytes, no trailing newline"
                          (String.length cut) } )))
  | Fault.Garbage_bytes -> (
      match pick_config rng img with
      | None -> None
      | Some cf ->
          let pos = Prng.int rng (String.length cf.text) in
          let text =
            String.sub cf.text 0 pos ^ garbage
            ^ String.sub cf.text pos (String.length cf.text - pos)
          in
          Some
            ( Image.set_config img cf.app text,
              { Fault.fault = Fault.Pipeline_fault kind;
                target_attr = cf.path;
                before = "clean";
                after = Printf.sprintf "%d control bytes at offset %d"
                    (String.length garbage) pos } ))

(* --- request mangling (serve storm) --------------------------------------- *)

let mangle_request ~rng line =
  let len = String.length line in
  match Prng.int rng 4 with
  | 0 ->
      (* torn mid-write: a strict prefix, never the whole line *)
      if len < 2 then "{" else String.sub line 0 (Prng.int_in rng 1 (len - 1))
  | 1 ->
      (* control-byte splice inside the payload *)
      let pos = Prng.int rng (max 1 len) in
      String.sub line 0 pos ^ garbage ^ String.sub line pos (len - pos)
  | 2 ->
      (* structurally broken JSON *)
      "{\"op\":\"check\",\"image\":"
  | _ ->
      (* parses, but the op is not in the protocol *)
      "{\"op\":\"zorch\"}"

(* --- on-disk snapshot corruption ----------------------------------------- *)

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path bytes =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc bytes)

let truncate_file ~rng path =
  let text = read_raw path in
  let len = String.length text in
  if len > 0 then write_raw path (String.sub text 0 (Prng.int_in rng 0 (len - 1)))

let bitflip_file ~rng path =
  let text = read_raw path in
  let len = String.length text in
  if len > 0 then begin
    let pos = Prng.int rng len in
    let bit = Prng.int rng 8 in
    let bytes = Bytes.of_string text in
    Bytes.set bytes pos (Char.chr (Char.code text.[pos] lxor (1 lsl bit)));
    write_raw path (Bytes.to_string bytes)
  end

let storm ?(fraction = 0.3) ?(faults = Fault.all_pipeline_faults) ~rng images =
  let n = List.length images in
  let k =
    if n = 0 || fraction <= 0.0 then 0
    else max 1 (int_of_float (Float.round (fraction *. float_of_int n)))
  in
  let chosen = Prng.sample rng k (List.init n Fun.id) in
  let images, victims =
    List.fold_left
      (fun (imgs, vs) (i, img) ->
        if not (List.mem i chosen) then (img :: imgs, vs)
        else
          let kind = Prng.pick rng faults in
          match corrupt_one rng kind img with
          | Some (img', injection) ->
              (img' :: imgs, { image_id = img.Image.image_id; injection } :: vs)
          | None -> (
              (* the drawn fault cannot apply (e.g. no config files);
                 probe-flap always can, so every chosen victim is hit *)
              match corrupt_one rng Fault.Probe_flap img with
              | Some (img', injection) ->
                  (img' :: imgs,
                   { image_id = img.Image.image_id; injection } :: vs)
              | None -> (img :: imgs, vs)))
      ([], [])
      (List.mapi (fun i img -> (i, img)) images)
  in
  { images = List.rev images; victims = List.rev victims }
