(** Pipeline-level chaos injection.

    Where {!Conferr} perturbs configuration *semantics* (plausible but
    wrong settings), this module damages the ingestion *channel*: bytes
    on disk and the probe transport.  A chaos-stormed population is the
    adversarial input for the resilient learning path — each victim
    must be quarantined rather than silently folded into training. *)

type victim = {
  image_id : string;
  injection : Fault.injection;
}

type storm_report = {
  images : Encore_sysenv.Image.t list;
      (** the full population, victims replaced by their damaged form,
          original order preserved *)
  victims : victim list;
      (** one entry per damaged image, in population order *)
}

val corrupt_one :
  Encore_util.Prng.t ->
  Fault.pipeline_fault ->
  Encore_sysenv.Image.t ->
  (Encore_sysenv.Image.t * Fault.injection) option
(** Apply one pipeline fault to an image.

    - [Truncated_file]: cut a config file mid-line so the text no longer
      ends in a newline (the renderers always emit a trailing newline,
      so this is detectable by {!Encore_util.Resilience.scan_text});
    - [Garbage_bytes]: splice raw control bytes into a config file;
    - [Probe_flap]: set the image's flakiness to 1.0 so every probe
      pass fails even after retries.

    Returns [None] when the fault cannot apply (image carries no config
    files, or the chosen file is too short to truncate). *)

val mangle_request : rng:Encore_util.Prng.t -> string -> string
(** Damage one JSONL request line for the serve storm: a torn prefix,
    a control-byte splice, structurally broken JSON, or an unknown op.
    The result is rejected at request parse time or, when the splice
    lands inside a string operand, fails the payload decode — either
    way a resilient daemon must answer a typed error, never die.
    Deterministic in [rng]. *)

val truncate_file : rng:Encore_util.Prng.t -> string -> unit
(** Simulate a torn write: rewrite the file at [path] as a strict
    prefix of itself (possibly empty), cut at a PRNG-chosen offset.
    For durability drills against real snapshot files. *)

val bitflip_file : rng:Encore_util.Prng.t -> string -> unit
(** Simulate at-rest corruption: flip one PRNG-chosen bit of the file.
    No-op on an empty file. *)

val storm :
  ?fraction:float ->
  ?faults:Fault.pipeline_fault list ->
  rng:Encore_util.Prng.t ->
  Encore_sysenv.Image.t list ->
  storm_report
(** Damage [fraction] (default 0.3) of the population, each victim
    getting one fault drawn uniformly from [faults] (default
    {!Fault.all_pipeline_faults}).  Victim selection and fault choice
    are deterministic in [rng].  The victim count is
    [max 1 (round (fraction * n))] for non-empty populations with
    [fraction > 0]. *)
