(** Fault model for the injection experiment (paper section 7.1.1).

    Faults come in two families.  *Config faults* edit key/value pairs
    inside a configuration file — the scope ConfErr operates in, which
    the paper notes "does not touch other system locations".  *Env
    faults* perturb the environment relative to the configuration
    (ownership/permission flips, file-vs-directory swaps), reproducing
    the misconfiguration classes of Figure 1 and Table 9 that require
    environment reasoning to detect. *)

type config_fault =
  | Key_typo         (** misspell an entry name *)
  | Value_typo       (** mutate a value string *)
  | Wrong_path       (** point a path entry somewhere that does not exist *)
  | Path_to_file     (** point a directory-valued entry at a regular file *)
  | Wrong_user       (** set a user entry to a different, valid user *)
  | Value_swap       (** swap the values of two entries *)
  | Size_inversion   (** violate an a<b size pair by making a larger *)

type env_fault =
  | Chown_flip       (** give a config-referenced path to another owner *)
  | Perm_flip        (** remove read bits on a config-referenced path *)
  | Symlink_inject   (** drop a symlink into a served directory *)

type pipeline_fault =
  | Truncated_file   (** cut a config file short mid-write *)
  | Garbage_bytes    (** splice raw control bytes into a config file *)
  | Probe_flap       (** make every environment probe against the image fail *)

type durability_fault =
  | Kill_at_checkpoint  (** crash the run right after a stage checkpoint *)
  | Truncate_snapshot   (** chop a snapshot file as a torn write would *)
  | Bitflip_snapshot    (** flip one bit of a snapshot at rest *)

type fault =
  | Config_fault of config_fault
  | Env_fault of env_fault
  | Pipeline_fault of pipeline_fault
      (** *Pipeline faults* damage the ingestion channel rather than the
          configuration semantics: the bytes on disk or the probe
          transport.  They never produce a plausible-but-wrong config,
          only an unreadable one, so the resilient pipeline must
          quarantine (not mis-learn from) their victims. *)
  | Durability_fault of durability_fault
      (** *Durability faults* attack the persistence layer: the process
          lifetime and the model artifacts on disk.  A durable store
          must detect the damage (typed load errors, rollback) and a
          killed run must resume to a byte-identical model. *)

val fault_to_string : fault -> string
val all_config_faults : config_fault list
val all_env_faults : env_fault list
val all_pipeline_faults : pipeline_fault list
val all_durability_faults : durability_fault list

type injection = {
  fault : fault;
  target_attr : string;   (** attribute whose setting the fault corrupts *)
  before : string;        (** value (or state) before *)
  after : string;
}

val injection_to_string : injection -> string
