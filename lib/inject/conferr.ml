module Prng = Encore_util.Prng
module Strutil = Encore_util.Strutil
module Image = Encore_sysenv.Image
module Fs = Encore_sysenv.Fs
module Accounts = Encore_sysenv.Accounts
module Kv = Encore_confparse.Kv
module Registry = Encore_confparse.Registry

type campaign = { image : Image.t; injections : Fault.injection list }

let kvs_of img app =
  let app_name = Image.app_to_string app in
  match (Image.config_for img app, Registry.lens_for app_name) with
  | Some cf, Some lens -> Some (lens.Registry.parse ~app:app_name cf.Image.text)
  | _, _ -> None

let rewrite img app kvs =
  let app_name = Image.app_to_string app in
  match Registry.lens_for app_name with
  | None -> img
  | Some lens -> Image.set_config img app (lens.Registry.render ~app:app_name kvs)

let replace_kv kvs old_kv new_kv =
  List.map (fun kv -> if kv == old_kv then new_kv else kv) kvs

(* pick a kv satisfying [pred], if any *)
let pick_kv rng kvs pred =
  match List.filter pred kvs with
  | [] -> None
  | candidates -> Some (Prng.pick rng candidates)

let is_path_value img (kv : Kv.t) =
  Strutil.starts_with ~prefix:"/" kv.value && Fs.exists img.Image.fs kv.value

let is_dir_value img (kv : Kv.t) =
  Strutil.starts_with ~prefix:"/" kv.value && Fs.is_dir img.Image.fs kv.value

let is_user_value img (kv : Kv.t) =
  Accounts.user_exists img.Image.accounts kv.value && kv.value <> "root"

let is_size_value (kv : Kv.t) =
  (* only unit-suffixed values are size entries; bare numbers may be
     ports, counts or timeouts *)
  let n = String.length kv.value in
  n >= 2
  && (match Char.uppercase_ascii kv.value.[n - 1] with
      | 'K' | 'M' | 'G' | 'T' -> true
      | _ -> false)
  && Strutil.parse_size kv.value <> None

let mk_injection fault (kv : Kv.t) after =
  { Fault.fault; target_attr = kv.key; before = kv.value; after }

let regular_files img =
  Fs.fold
    (fun path (m : Fs.meta) acc ->
      match m.kind with Fs.Regular -> path :: acc | Fs.Directory | Fs.Symlink _ -> acc)
    img.Image.fs []

let inject_config rng app img kind kvs =
  match (kind : Fault.config_fault) with
  | Fault.Key_typo -> (
      match pick_kv rng kvs (fun (kv : Kv.t) ->
          String.length (Kv.key_basename kv.key) >= 3) with
      | None -> None
      | Some kv ->
          let base = Kv.key_basename kv.key in
          let mutated = Typo.random rng base in
          let prefix = String.sub kv.key 0 (String.length kv.key - String.length base) in
          let new_kv = Kv.make (prefix ^ mutated) kv.value in
          let img' = rewrite img app (replace_kv kvs kv new_kv) in
          Some
            ( img',
              { Fault.fault = Fault.Config_fault kind;
                target_attr = kv.key; before = kv.key; after = new_kv.Kv.key } ))
  | Fault.Value_typo -> (
      match pick_kv rng kvs (fun (kv : Kv.t) -> String.length kv.value >= 2) with
      | None -> None
      | Some kv ->
          let after = Typo.random rng kv.value in
          let img' = rewrite img app (replace_kv kvs kv (Kv.make kv.key after)) in
          Some (img', mk_injection (Fault.Config_fault kind) kv after))
  | Fault.Wrong_path -> (
      match pick_kv rng kvs (fun kv -> is_path_value img kv) with
      | None -> None
      | Some kv ->
          let after = "/nonexistent/path" ^ string_of_int (Prng.int rng 1000) in
          let img' = rewrite img app (replace_kv kvs kv (Kv.make kv.key after)) in
          Some (img', mk_injection (Fault.Config_fault kind) kv after))
  | Fault.Path_to_file -> (
      match pick_kv rng kvs (fun kv -> is_dir_value img kv) with
      | None -> None
      | Some kv -> (
          match regular_files img with
          | [] -> None
          | files ->
              let after = Prng.pick rng files in
              let img' = rewrite img app (replace_kv kvs kv (Kv.make kv.key after)) in
              Some (img', mk_injection (Fault.Config_fault kind) kv after)))
  | Fault.Wrong_user -> (
      match pick_kv rng kvs (fun kv -> is_user_value img kv) with
      | None -> None
      | Some kv -> (
          let others =
            List.filter
              (fun (u : Accounts.user) -> u.name <> kv.value)
              (Accounts.users img.Image.accounts)
          in
          match others with
          | [] -> None
          | _ ->
              let after = (Prng.pick rng others).Accounts.name in
              let img' = rewrite img app (replace_kv kvs kv (Kv.make kv.key after)) in
              Some (img', mk_injection (Fault.Config_fault kind) kv after)))
  | Fault.Value_swap -> (
      let eligible = List.filter (fun (kv : Kv.t) -> kv.value <> "") kvs in
      if List.length eligible < 2 then None
      else
        let a = Prng.pick rng eligible in
        let rec pick_b tries =
          let b = Prng.pick rng eligible in
          if (b != a && b.Kv.value <> a.Kv.value) || tries > 16 then b
          else pick_b (tries + 1)
        in
        let b = pick_b 0 in
        if b == a || b.Kv.value = a.Kv.value then None
        else
          let kvs' =
            List.map
              (fun kv ->
                if kv == a then Kv.make a.Kv.key b.Kv.value
                else if kv == b then Kv.make b.Kv.key a.Kv.value
                else kv)
              kvs
          in
          Some
            ( rewrite img app kvs',
              mk_injection (Fault.Config_fault kind) a b.Kv.value ))
  | Fault.Size_inversion -> (
      match pick_kv rng kvs is_size_value with
      | None -> None
      | Some kv -> (
          match Strutil.parse_size kv.value with
          | None -> None
          | Some bytes ->
              (* push the value far out of its band, in either
                 direction, breaking some a<b ordering around it *)
              let after =
                if Prng.bool rng then
                  Strutil.format_size (max 1 bytes * 1024 * 16)
                else Strutil.format_size (max 1024 (bytes / (1024 * 16)))
              in
              let img' =
                rewrite img app (replace_kv kvs kv (Kv.make kv.key after))
              in
              Some (img', mk_injection (Fault.Config_fault kind) kv after)))

let inject_env rng _app img kind kvs =
  match (kind : Fault.env_fault) with
  | Fault.Chown_flip -> (
      match pick_kv rng kvs (fun kv -> is_path_value img kv) with
      | None -> None
      | Some kv ->
          let owner_before =
            match Fs.lookup img.Image.fs kv.Kv.value with
            | Some m -> m.Fs.owner
            | None -> "?"
          in
          let others =
            List.filter
              (fun (u : Accounts.user) -> u.name <> owner_before)
              (Accounts.users img.Image.accounts)
          in
          if others = [] then None
          else
            let new_owner = (Prng.pick rng others).Accounts.name in
            let fs =
              Fs.chown img.Image.fs kv.Kv.value ~owner:new_owner ~group:new_owner
            in
            Some
              ( Image.with_fs img fs,
                { Fault.fault = Fault.Env_fault kind;
                  target_attr = kv.Kv.key;
                  before = owner_before; after = new_owner } ))
  | Fault.Perm_flip -> (
      match pick_kv rng kvs (fun kv -> is_path_value img kv) with
      | None -> None
      | Some kv ->
          let before =
            match Fs.lookup img.Image.fs kv.Kv.value with
            | Some m -> Printf.sprintf "%o" m.Fs.perm
            | None -> "?"
          in
          let fs = Fs.chmod img.Image.fs kv.Kv.value ~perm:0o600 in
          Some
            ( Image.with_fs img fs,
              { Fault.fault = Fault.Env_fault kind;
                target_attr = kv.Kv.key; before; after = "600" } ))
  | Fault.Symlink_inject -> (
      match pick_kv rng kvs (fun kv -> is_dir_value img kv) with
      | None -> None
      | Some kv ->
          let link = Strutil.path_join kv.Kv.value "injected_link" in
          let fs = Fs.add_symlink img.Image.fs link ~target:"/etc/passwd" in
          Some
            ( Image.with_fs img fs,
              { Fault.fault = Fault.Env_fault kind;
                target_attr = kv.Kv.key; before = "no-symlink"; after = link } ))

let inject_one rng app img fault =
  match kvs_of img app with
  | None -> None
  | Some kvs -> (
      match fault with
      | Fault.Config_fault kind -> inject_config rng app img kind kvs
      | Fault.Env_fault kind -> inject_env rng app img kind kvs
      (* pipeline and durability faults damage the ingestion channel or
         the persistence layer, not the config semantics; they belong
         to Chaos.storm and the Chaosrun durability drill, not ConfErr *)
      | Fault.Pipeline_fault _ | Fault.Durability_fault _ -> None)

let inject ?(env_fault_fraction = 0.0) rng app img ~n =
  let rec go img acc used k attempts =
    if k = 0 || attempts > n * 30 then
      { image = img; injections = List.rev acc }
    else
      let fault =
        if Prng.chance rng env_fault_fraction then
          Fault.Env_fault (Prng.pick rng Fault.all_env_faults)
        else Fault.Config_fault (Prng.pick rng Fault.all_config_faults)
      in
      match inject_one rng app img fault with
      | Some (img', injection)
        when not (List.mem injection.Fault.target_attr used) ->
          go img' (injection :: acc) (injection.Fault.target_attr :: used)
            (k - 1) (attempts + 1)
      | Some _ | None -> go img acc used k (attempts + 1)
  in
  go img [] [] n 0
