type config_fault =
  | Key_typo
  | Value_typo
  | Wrong_path
  | Path_to_file
  | Wrong_user
  | Value_swap
  | Size_inversion

type env_fault = Chown_flip | Perm_flip | Symlink_inject

type pipeline_fault = Truncated_file | Garbage_bytes | Probe_flap

type durability_fault = Kill_at_checkpoint | Truncate_snapshot | Bitflip_snapshot

type fault =
  | Config_fault of config_fault
  | Env_fault of env_fault
  | Pipeline_fault of pipeline_fault
  | Durability_fault of durability_fault

let fault_to_string = function
  | Config_fault Key_typo -> "key-typo"
  | Config_fault Value_typo -> "value-typo"
  | Config_fault Wrong_path -> "wrong-path"
  | Config_fault Path_to_file -> "path-to-file"
  | Config_fault Wrong_user -> "wrong-user"
  | Config_fault Value_swap -> "value-swap"
  | Config_fault Size_inversion -> "size-inversion"
  | Env_fault Chown_flip -> "chown-flip"
  | Env_fault Perm_flip -> "perm-flip"
  | Env_fault Symlink_inject -> "symlink-inject"
  | Pipeline_fault Truncated_file -> "truncated-file"
  | Pipeline_fault Garbage_bytes -> "garbage-bytes"
  | Pipeline_fault Probe_flap -> "probe-flap"
  | Durability_fault Kill_at_checkpoint -> "kill-at-checkpoint"
  | Durability_fault Truncate_snapshot -> "truncate-snapshot"
  | Durability_fault Bitflip_snapshot -> "bitflip-snapshot"

let all_config_faults =
  [ Key_typo; Value_typo; Wrong_path; Path_to_file; Wrong_user; Value_swap;
    Size_inversion ]

let all_env_faults = [ Chown_flip; Perm_flip; Symlink_inject ]
let all_pipeline_faults = [ Truncated_file; Garbage_bytes; Probe_flap ]

let all_durability_faults =
  [ Kill_at_checkpoint; Truncate_snapshot; Bitflip_snapshot ]

type injection = {
  fault : fault;
  target_attr : string;
  before : string;
  after : string;
}

let injection_to_string i =
  Printf.sprintf "%s on %s: '%s' -> '%s'"
    (fault_to_string i.fault)
    i.target_attr i.before i.after
