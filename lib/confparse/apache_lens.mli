(** Apache httpd.conf lens.

    Handles the directive syntax [Name arg1 arg2 ...] and nested
    container sections such as [<Directory "/var/www">...</Directory>].

    Key shape:
    - top-level [Listen 80]          -> [apache/Listen = 80]
    - multi-argument [LoadModule php5_module modules/libphp5.so]
      -> [apache/LoadModule[php5_module]/arg2 = modules/libphp5.so]
      (the paper's rule "ServerRoot + LoadModule/arg2 => file path"
      depends on this shape)
    - section-scoped [<Directory "/var/www"> Options Indexes ...]
      -> [apache/Directory[/var/www]/Options = Indexes ...]

    Repeated single-argument directives (e.g. several [Listen]) keep one
    pair each; downstream consumers see them as multiple instances of the
    same attribute, matching the paper's treatment. *)

val parse : app:string -> string -> Kv.t list

val parse_diag : app:string -> string -> Kv.t list * (int * string) list
(** Like {!parse}, additionally returning one [(line, message)]
    diagnostic per structural problem (unmatched closing tag, empty
    opening tag, sections left unclosed at end of file).  Bad lines are
    skipped, never fatal. *)

val render : app:string -> Kv.t list -> string
(** Regenerate a canonical httpd.conf; [parse (render kvs)] preserves
    keys and values. *)

val section_paths : Kv.t list -> (string * string) list
(** All [(section_name, argument)] pairs present among the keys, e.g.
    [("Directory", "/var/www")].  The Table 9 case #1 check ("no
    <Directory> matching DocumentRoot") uses this view. *)
