let strip_comment line =
  (* a '#' or ';' starts a comment unless inside a double-quoted value *)
  let n = String.length line in
  let buf = Buffer.create n in
  let rec go i in_quote =
    if i >= n then Buffer.contents buf
    else
      let c = line.[i] in
      if c = '"' then begin
        Buffer.add_char buf c;
        go (i + 1) (not in_quote)
      end
      else if (c = '#' || c = ';') && not in_quote then Buffer.contents buf
      else begin
        Buffer.add_char buf c;
        go (i + 1) in_quote
      end
  in
  go 0 false

let unquote v =
  let n = String.length v in
  if n >= 2 && v.[0] = '"' && v.[n - 1] = '"' then String.sub v 1 (n - 2)
  else v

let parse_diag ~app text =
  let lines = String.split_on_char '\n' text in
  let diags = ref [] in
  let skip lineno message = diags := (lineno, message) :: !diags in
  let _, kvs =
    List.fold_left
      (fun (section, acc) (lineno, raw) ->
        let line = String.trim (strip_comment raw) in
        if line = "" then (section, acc)
        else if String.length line >= 2 && line.[0] = '[' then
          match String.index_opt line ']' with
          | Some close when close > 1 ->
              (String.trim (String.sub line 1 (close - 1)), acc)
          | Some _ | None ->
              skip lineno ("malformed section header: " ^ line);
              (section, acc)
        else if line.[0] = '!' then (section, acc) (* !include etc. *)
        else
          match String.index_opt line '=' with
          | Some eq ->
              let key = String.trim (String.sub line 0 eq) in
              let value =
                String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
              in
              if key = "" then begin
                skip lineno ("entry with empty key: " ^ line);
                (section, acc)
              end
              else
                let qkey = Kv.qualify ~app [ section; key ] in
                (section, Kv.make ~line:lineno qkey (unquote value) :: acc)
          | None ->
              (* bare flag, e.g. skip-networking *)
              let qkey = Kv.qualify ~app [ section; line ] in
              (section, Kv.make ~line:lineno qkey "on" :: acc))
      ("main", [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  (List.rev kvs, List.rev !diags)

let parse ~app text = fst (parse_diag ~app text)

let render ~app kvs =
  let mine =
    List.filter (fun (kv : Kv.t) -> Kv.app_of_key kv.key = app) kvs
  in
  (* regroup by section while keeping first-appearance order *)
  let sections = ref [] in
  let entries = Hashtbl.create 16 in
  List.iter
    (fun (kv : Kv.t) ->
      match Encore_util.Strutil.split_on '/' kv.key with
      | [ _; section; key ] ->
          if not (List.mem section !sections) then
            sections := section :: !sections;
          Hashtbl.add entries section (key, kv.value)
      | _ -> ())
    mine;
  let buf = Buffer.create 512 in
  List.iter
    (fun section ->
      Buffer.add_string buf ("[" ^ section ^ "]\n");
      List.iter
        (fun (key, value) ->
          Buffer.add_string buf (key ^ " = " ^ value ^ "\n"))
        (List.rev (Hashtbl.find_all entries section));
      Buffer.add_char buf '\n')
    (List.rev !sections);
  Buffer.contents buf
