(** Per-app compiled-engine cache keyed by model fingerprint.

    The daemon compiles each model once ({!Encore_detect.Engine.compile}
    is O(model size)) and serves every request from the compiled form.
    The cache maps an application name to its engine plus the MD5
    fingerprint of the model's serialized payload; [reload] drops every
    entry, bumps the {!generation} counter (watch sessions pinned to an
    old fingerprint detect staleness through it) and eagerly re-reads
    the provider so a broken model surfaces on the reload response.

    Telemetry: [serve.cache_compiles], [serve.cache_hits],
    [serve.cache_invalidations]. *)

type t

type provider =
  app:string -> (Encore_detect.Engine.model, string) result
(** Fetch the current model for an application — from a file, a
    {!Encore_detect.Model_io.Store}, or a just-learned model.  Called
    lazily on first use per app and eagerly on {!reload}. *)

val create : provider:provider -> t

val engine_for :
  t ->
  app:string ->
  ( Encore_detect.Engine.t * string,
    Encore_util.Resilience.diagnostic )
  result
(** The compiled engine and model fingerprint for [app]; compiles and
    caches on miss.  Provider failure is a [Probe_failure]
    diagnostic. *)

val fingerprint : t -> app:string -> string option
(** Fingerprint of the cached entry, if one exists (no compile). *)

val generation : t -> int
(** Incremented by every {!reload}: cheap staleness check for state
    derived from a cached engine. *)

val reload :
  t -> (bool, Encore_util.Resilience.diagnostic) result
(** Invalidate everything and re-read the provider for every app that
    was cached.  [Ok changed] — [changed] is true when any fingerprint
    differs from before. *)

val cached_apps : t -> string list
(** Sorted names of the apps currently cached. *)

val candidate : t -> t
(** A fresh, empty cache over the same provider.  The server's
    shadow-validated reload compiles and probes candidate engines here
    while the live cache keeps serving; on success the candidate is
    {!adopt}ed atomically. *)

val adopt : t -> from:t -> bool
(** Swap [from]'s entries into [t] and bump [t]'s generation (stale
    watch sessions re-seed on their next delta).  Returns [true] when
    any fingerprint differs from what [t] previously served — the
    [changed] field of the reload response. *)

val fingerprint_of : Encore_detect.Engine.model -> string
(** MD5 hex digest of the model's serialized payload. *)
