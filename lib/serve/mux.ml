(* Select-driven multi-client transport for the serve reactor.

   The mux owns the file descriptors; the server stays transport-free.
   Each connection gets an independent line reader (partial frames
   accumulate per connection, never bleed across clients) and a write
   buffer drained with a short-write/EAGAIN-correct loop.  Admission
   into the server's bounded queue is round-robin across connections so
   one firehose client cannot starve the others.  Hostile clients are
   bounded: a connection holding a partial frame for more than
   [idle_polls_budget] polls (slowloris) or growing its pending output
   past [max_write_buffer] (never reads) is evicted; an unterminated
   frame past [max_line_bytes] is answered with a typed overflow and
   the connection discards bytes until the next newline.  Drain is
   deterministic: every surviving connection receives the flushed
   alerts and the bye summary before its socket closes. *)

module Json = Encore_obs.Jsonenc
module Res = Encore_util.Resilience
module Ometrics = Encore_obs.Metrics

type config = {
  max_connections : int;
  read_chunk_bytes : int;
  max_line_bytes : int;
  idle_polls_budget : int;
  max_write_buffer : int;
  tick_s : float;
}

let default_config =
  {
    max_connections = 64;
    read_chunk_bytes = 4096;
    (* one byte of slack over the server's own request bound, so the
       server's typed oversize rejection (not the mux's) answers lines
       that are long but framed *)
    max_line_bytes = (1 lsl 20) + (1 lsl 16);
    idle_polls_budget = 2000;
    max_write_buffer = 1 lsl 22;
    tick_s = 0.25;
  }

type conn = {
  cid : int;
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* bytes of the current partial frame *)
  lines : string Queue.t;  (* complete frames awaiting admission *)
  mutable discarding : bool;
      (* an oversized unterminated frame was rejected; drop bytes until
         the next newline resynchronizes the stream *)
  mutable rd_open : bool;
  mutable out : string list;  (* pending output, head first *)
  mutable out_off : int;  (* bytes of the head already written *)
  mutable out_bytes : int;
  mutable idle_polls : int;  (* polls since the partial frame grew *)
  mutable closed : bool;
}

type t = {
  mconfig : config;
  server : Server.t;
  listen_fd : Unix.file_descr option;
  conns : (int, conn) Hashtbl.t;
  mutable order : int list;  (* cids in accept order *)
  mutable rr : int;  (* round-robin admission offset *)
  mutable next_cid : int;
  mutable stopped : bool;
  orphan : Json.t -> unit;  (* responses with no (live) origin *)
}

let m_conns_active = Ometrics.gauge "serve.connections_active"
let m_conns_accepted = Ometrics.counter "serve.connections_accepted"
let m_conns_evicted = Ometrics.counter "serve.connections_evicted"
let m_short_writes = Ometrics.counter "serve.short_writes"
let m_send_truncated = Ometrics.counter "serve.send_truncated"
let m_frame_overflow = Ometrics.counter "serve.frame_overflow"

let create ?(config = default_config) ?listen_fd ?(orphan = fun _ -> ())
    server =
  Option.iter Unix.set_nonblock listen_fd;
  {
    mconfig = config;
    server;
    listen_fd;
    conns = Hashtbl.create 16;
    order = [];
    rr = 0;
    next_cid = 0;
    stopped = false;
    orphan;
  }

let connection_count t = Hashtbl.length t.conns
let stopped t = t.stopped

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

let remove_conn t (c : conn) =
  if not c.closed then begin
    c.closed <- true;
    close_fd c.fd;
    Hashtbl.remove t.conns c.cid;
    t.order <- List.filter (fun cid -> cid <> c.cid) t.order;
    Ometrics.set m_conns_active (float_of_int (Hashtbl.length t.conns))
  end

let evict t (c : conn) =
  (* pending output dies with the connection: responses already queued
     for a hostile client are truncated, and counted as such *)
  if c.out <> [] then Ometrics.incr m_send_truncated;
  Ometrics.incr m_conns_evicted;
  remove_conn t c

let adopt t fd =
  Unix.set_nonblock fd;
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  let c =
    {
      cid;
      fd;
      rbuf = Buffer.create 256;
      lines = Queue.create ();
      discarding = false;
      rd_open = true;
      out = [];
      out_off = 0;
      out_bytes = 0;
      idle_polls = 0;
      closed = false;
    }
  in
  Hashtbl.replace t.conns cid c;
  t.order <- t.order @ [ cid ];
  Ometrics.incr m_conns_accepted;
  Ometrics.set m_conns_active (float_of_int (Hashtbl.length t.conns));
  cid

(* --- writing --------------------------------------------------------------- *)

let enqueue_out t (c : conn) s =
  if not c.closed then begin
    c.out <- c.out @ [ s ];
    c.out_bytes <- c.out_bytes + String.length s;
    if c.out_bytes > t.mconfig.max_write_buffer then
      (* the client stopped reading; holding its output unboundedly
         would let one dead peer exhaust the daemon *)
      evict t c
  end

(* Drain as much pending output as the socket accepts right now.  Short
   writes keep the remainder buffered (counted); EAGAIN stops quietly;
   a dead peer truncates and closes. *)
let flush_writes t (c : conn) =
  let rec go () =
    match c.out with
    | [] -> ()
    | head :: rest -> (
        let remaining = String.length head - c.out_off in
        match Unix.write_substring c.fd head c.out_off remaining with
        | n ->
            c.out_bytes <- c.out_bytes - n;
            if n = remaining then begin
              c.out <- rest;
              c.out_off <- 0;
              go ()
            end
            else begin
              Ometrics.incr m_short_writes;
              c.out_off <- c.out_off + n
            end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (_, _, _) ->
            Ometrics.incr m_send_truncated;
            remove_conn t c)
  in
  if not c.closed then go ()

let response_line resp = Json.to_string resp ^ "\n"

let route t (origin, resp) =
  match origin with
  | Some cid when Hashtbl.mem t.conns cid ->
      let c = Hashtbl.find t.conns cid in
      enqueue_out t c (response_line resp);
      flush_writes t c
  | _ -> t.orphan resp

(* --- reading --------------------------------------------------------------- *)

let overflow_response t =
  Proto.error_response
    (Res.diag Res.Overflow ~subject:"serve.mux"
       (Printf.sprintf "unterminated frame exceeds %d bytes: discarded"
          t.mconfig.max_line_bytes))

(* Split buffered bytes into frames, honouring discard mode and the
   per-connection frame bound. *)
let ingest_bytes t (c : conn) s =
  let flush_line () =
    let line = Buffer.contents c.rbuf in
    Buffer.clear c.rbuf;
    c.idle_polls <- 0;
    if c.discarding then c.discarding <- false else Queue.push line c.lines
  in
  String.iter
    (fun ch ->
      if ch = '\n' then flush_line ()
      else if not c.discarding then begin
        Buffer.add_char c.rbuf ch;
        if Buffer.length c.rbuf > t.mconfig.max_line_bytes then begin
          (* flood containment: answer a typed overflow now, drop what
             accumulated, skip the rest of this frame *)
          Ometrics.incr m_frame_overflow;
          Buffer.clear c.rbuf;
          c.discarding <- true;
          enqueue_out t c (response_line (overflow_response t));
          flush_writes t c
        end
      end)
    s;
  if String.length s > 0 then c.idle_polls <- 0

let read_conn t (c : conn) =
  let chunk = Bytes.create t.mconfig.read_chunk_bytes in
  let rec go () =
    if c.closed || not c.rd_open then ()
    else
      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
      | 0 ->
          c.rd_open <- false;
          (* a torn final frame still gets an answer: deliver it as a
             line so the server can reject it with a typed error *)
          if Buffer.length c.rbuf > 0 && not c.discarding then begin
            Queue.push (Buffer.contents c.rbuf) c.lines;
            Buffer.clear c.rbuf
          end
      | n ->
          ingest_bytes t c (Bytes.sub_string chunk 0 n);
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> remove_conn t c
  in
  go ()

(* --- admission ------------------------------------------------------------- *)

(* Round-robin: starting at a rotating offset, admit one frame per
   connection per pass until every buffered frame is admitted.  The
   server's bounded queue does the actual back-pressure (shed
   responses come back immediately and are routed to the sender). *)
let admit_frames t =
  let order = Array.of_list t.order in
  let n = Array.length order in
  if n > 0 then begin
    t.rr <- (t.rr + 1) mod n;
    let progress = ref true in
    while !progress do
      progress := false;
      for i = 0 to n - 1 do
        let cid = order.((i + t.rr) mod n) in
        match Hashtbl.find_opt t.conns cid with
        | None -> ()
        | Some c -> (
            match Queue.take_opt c.lines with
            | None -> ()
            | Some line ->
                progress := true;
                List.iter
                  (fun resp -> route t (Some cid, resp))
                  (Server.offer_from t.server ~origin:cid line))
      done
    done
  end

(* --- lifecycle ------------------------------------------------------------- *)

let accept_ready t =
  match t.listen_fd with
  | None -> ()
  | Some sfd ->
      let rec go () =
        if
          Server.state t.server = `Running
          && Hashtbl.length t.conns < t.mconfig.max_connections
        then
          match Unix.accept sfd with
          | fd, _ ->
              ignore (adopt t fd);
              go ()
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error (_, _, _) -> ()
      in
      go ()

let live_conns t =
  Hashtbl.fold (fun _ c acc -> if c.closed then acc else c :: acc) t.conns []

(* The slowloris budget charges only connections holding a partial
   frame: an idle-but-framed client (a resident `top`, a quiet watcher)
   costs nothing and lives forever. *)
let charge_idle t =
  List.iter
    (fun (c : conn) ->
      if Buffer.length c.rbuf > 0 && not c.discarding then begin
        c.idle_polls <- c.idle_polls + 1;
        if c.idle_polls > t.mconfig.idle_polls_budget then evict t c
      end)
    (live_conns t)

let broadcast t resps =
  List.iter
    (fun (c : conn) ->
      List.iter (fun r -> enqueue_out t c (response_line r)) resps;
      flush_writes t c)
    (live_conns t);
  (* the default sink sees the drain too: a daemon with zero clients
     still reports its bye summary *)
  if live_conns t = [] then List.iter t.orphan resps

let finish_drain t =
  let resps = Server.drain_flush t.server in
  broadcast t resps;
  (* give every surviving connection a bounded chance to take its bye:
     poll writability until all buffers empty or progress stops *)
  let budget = ref 200 in
  let rec settle () =
    let pending =
      List.filter (fun (c : conn) -> c.out <> []) (live_conns t)
    in
    if pending <> [] && !budget > 0 then begin
      decr budget;
      let fds = List.map (fun (c : conn) -> c.fd) pending in
      (match Unix.select [] fds [] 0.05 with
      | _, ws, _ ->
          List.iter
            (fun (c : conn) -> if List.mem c.fd ws then flush_writes t c)
            pending
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      settle ()
    end
  in
  settle ();
  List.iter
    (fun (c : conn) ->
      if c.out <> [] then Ometrics.incr m_send_truncated;
      remove_conn t c)
    (live_conns t);
  t.stopped <- true

(* One reactor turn: wait for readiness (unless [wait] is false), pull
   bytes, admit frames fairly, process the whole queue, route
   responses, flush writers, charge slowloris budgets, and finish the
   drain when the server empties out. *)
let step ?(wait = true) t =
  if not t.stopped then begin
    let conns = live_conns t in
    let rds =
      (match t.listen_fd with
      | Some sfd when Server.state t.server = `Running -> [ sfd ]
      | _ -> [])
      @ List.filter_map
          (fun (c : conn) -> if c.rd_open then Some c.fd else None)
          conns
    in
    let wrs =
      List.filter_map
        (fun (c : conn) -> if c.out <> [] then Some c.fd else None)
        conns
    in
    let timeout = if wait then t.mconfig.tick_s else 0.0 in
    (match Unix.select rds wrs [] timeout with
    | rs, ws, _ ->
        (match t.listen_fd with
        | Some sfd when List.mem sfd rs -> accept_ready t
        | _ -> ());
        List.iter
          (fun (c : conn) -> if List.mem c.fd rs then read_conn t c)
          conns;
        List.iter
          (fun (c : conn) ->
            if (not c.closed) && List.mem c.fd ws then flush_writes t c)
          conns
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    admit_frames t;
    let rec drain_queue () =
      match Server.step_routed t.server with
      | [] -> ()
      | resps ->
          List.iter (route t) resps;
          drain_queue ()
    in
    drain_queue ();
    charge_idle t;
    (* a client that half-closed after its last frame is done once its
       output drains *)
    List.iter
      (fun (c : conn) ->
        if
          (not c.closed) && (not c.rd_open)
          && Queue.is_empty c.lines && c.out = []
          && Buffer.length c.rbuf = 0
        then remove_conn t c)
      (live_conns t);
    if Server.state t.server = `Draining && Server.pending t.server = 0 then
      finish_drain t
  end

let run t =
  while not t.stopped do
    step t
  done;
  Server.exit_code t.server

let shutdown_fds t =
  List.iter (fun (c : conn) -> remove_conn t c) (live_conns t);
  Option.iter close_fd t.listen_fd
