module Res = Encore_util.Resilience
module Engine = Encore_detect.Engine
module Ometrics = Encore_obs.Metrics

type entry = { engine : Engine.t; fingerprint : string }

type provider = app:string -> (Engine.model, string) result

type t = {
  provider : provider;
  entries : (string, entry) Hashtbl.t;
  mutable generation : int;
}

let m_compiles = Ometrics.counter "serve.cache_compiles"
let m_hits = Ometrics.counter "serve.cache_hits"
let m_invalidations = Ometrics.counter "serve.cache_invalidations"

let create ~provider = { provider; entries = Hashtbl.create 8; generation = 0 }

let generation t = t.generation

let fingerprint_of model =
  Digest.to_hex (Digest.string (Encore_detect.Model_io.to_string model))

let compile_for t ~app =
  match t.provider ~app with
  | Error msg ->
      Error
        (Res.diag Res.Probe_failure ~subject:("model:" ^ app)
           (Printf.sprintf "model provider failed: %s" msg))
  | Ok model ->
      Ometrics.incr m_compiles;
      let entry =
        { engine = Engine.compile model; fingerprint = fingerprint_of model }
      in
      Hashtbl.replace t.entries app entry;
      Ok entry

let engine_for t ~app =
  match Hashtbl.find_opt t.entries app with
  | Some e ->
      Ometrics.incr m_hits;
      Ok (e.engine, e.fingerprint)
  | None -> (
      match compile_for t ~app with
      | Ok e -> Ok (e.engine, e.fingerprint)
      | Error _ as e -> e)

let fingerprint t ~app =
  Option.map (fun e -> e.fingerprint) (Hashtbl.find_opt t.entries app)

let reload t =
  (* re-read every cached app eagerly so a broken provider surfaces on
     the reload response, not on the next unlucky check *)
  let apps = Hashtbl.fold (fun app _ acc -> app :: acc) t.entries [] in
  let apps = List.sort compare apps in
  let old =
    List.map (fun app -> (app, (Hashtbl.find t.entries app).fingerprint)) apps
  in
  Hashtbl.reset t.entries;
  t.generation <- t.generation + 1;
  Ometrics.incr m_invalidations;
  let rec refresh changed = function
    | [] -> Ok changed
    | (app, old_fp) :: rest -> (
        match compile_for t ~app with
        | Error _ as e -> e
        | Ok entry ->
            refresh (changed || entry.fingerprint <> old_fp) rest)
  in
  refresh false old

let cached_apps t =
  List.sort compare (Hashtbl.fold (fun app _ acc -> app :: acc) t.entries [])

(* --- shadow-validated reload --------------------------------------------- *)

let candidate t =
  (* same provider, empty entry table: the server compiles and probes
     the candidate in isolation while the live cache keeps serving *)
  { provider = t.provider; entries = Hashtbl.create 8; generation = t.generation }

let adopt t ~from =
  let changed =
    Hashtbl.fold
      (fun app (e : entry) acc ->
        acc
        ||
        match Hashtbl.find_opt t.entries app with
        | Some old -> old.fingerprint <> e.fingerprint
        | None -> true)
      from.entries false
    || Hashtbl.length t.entries <> Hashtbl.length from.entries
  in
  Hashtbl.reset t.entries;
  Hashtbl.iter (fun app e -> Hashtbl.replace t.entries app e) from.entries;
  t.generation <- t.generation + 1;
  Ometrics.incr m_invalidations;
  changed
