module Json = Encore_obs.Jsonenc
module Res = Encore_util.Resilience
module Deadline = Encore_util.Deadline
module Ometrics = Encore_obs.Metrics
module Otrace = Encore_obs.Trace
module Owindow = Encore_obs.Window
module Osampler = Encore_obs.Sampler
module Image = Encore_sysenv.Image
module Collector = Encore_sysenv.Collector
module Engine = Encore_detect.Engine
module Warning = Encore_detect.Warning

exception Injected_crash

type config = {
  queue_capacity : int;
  max_request_bytes : int;
  deadline_polls : int option;
  deadline_s : float option;
  ring_capacity : int;
  alert_score : float;
  max_sessions : int;
  breaker_threshold : int;
  breaker_cooldown : int;
  window_intervals : int;
  window_interval_ns : int64;
  sampler_interval_ns : int64;
  health_p99_us : float;
  reload_shadow_k : int;
      (* recent check requests replayed against a reload candidate *)
}

let default_config =
  {
    queue_capacity = 64;
    max_request_bytes = 1 lsl 20;
    deadline_polls = None;
    deadline_s = None;
    ring_capacity = 256;
    alert_score = 0.7;
    max_sessions = 128;
    breaker_threshold = 3;
    breaker_cooldown = 4;
    window_intervals = 10;
    window_interval_ns = 1_000_000_000L;
    sampler_interval_ns = 1_000_000_000L;
    health_p99_us = 250_000.0;
    reload_shadow_k = 8;
  }

type state = Running | Draining | Stopped

(* One admitted request waiting for {!step}: its trace id, the
   connection that sent it (None for stdio / direct drivers — responses
   with no origin go to the default sink), its journal sequence number
   when the daemon journals, and the raw line. *)
type queue_item = {
  q_trace : string;
  q_origin : int option;
  q_seq : int option;
  q_line : string;
}

type t = {
  config : config;
  cache : Cache.t;
  learner : (Image.t -> (string, string) result) option;
      (* continuous-learning hook: fold one observed image into the
         resident sufficient statistics and refresh the model behind
         the cache's provider; [Ok note] describes the fold *)
  queue : queue_item Queue.t;
  journal : Journal.t option;
  recent_checks : string Ring.t;
      (* last K raw check lines: the shadow corpus for reload
         validation *)
  ring : Json.t Ring.t;
  sessions : (string, Watch.session * int) Hashtbl.t;
      (* image id -> (session, cache generation the session was built
         under); a generation mismatch means a reload happened and the
         session's cached verdicts belong to a stale model *)
  mutable session_order : string list;  (* insertion order, oldest first *)
  breaker : Res.breaker;
  mutable state : state;
  mutable requests : int;
  mutable answered : int;
  mutable shed : int;
  mutable errors : int;
  mutable restarts : int;
  mutable denied : int;
  mutable reloads : int;
  mutable reload_rollbacks : int;
  mutable learned : int;
  mutable replayed : int;
  mutable reload_requested : bool;
      (* set by a SIGHUP handler; step picks it up before queue work *)
  mutable trace_seq : int;
  lat : Owindow.t;  (* rolling request-latency window (µs) *)
  sampler : Osampler.t;
}

let worker_subject = "serve.worker"

let m_requests = Ometrics.counter "serve.requests"
let m_shed = Ometrics.counter "serve.shed"
let m_errors = Ometrics.counter "serve.errors"
let m_restarts = Ometrics.counter "serve.restarts"
let m_denied = Ometrics.counter "serve.breaker_denied"
let m_ring_dropped = Ometrics.counter "serve.ring_dropped"
let m_partial = Ometrics.counter "serve.partial"
let m_watch_delta = Ometrics.counter "serve.watch_delta"
let m_watch_full = Ometrics.counter "serve.watch_full"
let m_reloads = Ometrics.counter "serve.reloads"
let m_learned = Ometrics.counter "serve.learn_appended"
let m_reload_rollbacks = Ometrics.counter "serve.reload_rollbacks"
let m_journal_replayed = Ometrics.counter "serve.journal_replayed"
let m_queue_depth = Ometrics.gauge "serve.queue_depth"
let h_request_us = Ometrics.histogram "serve.request_us"

let breaker_level = function
  | Res.Closed -> 0.0
  | Res.Half_open -> 1.0
  | Res.Open -> 2.0

(* Saturation and robustness state the sampler mirrors into gauges on
   its cadence, so a scrape sees recent values even between requests. *)
let sampled_gauges t () =
  [
    ("serve.sampled.queue_depth", float_of_int (Queue.length t.queue));
    ( "serve.sampled.queue_occupancy",
      float_of_int (Queue.length t.queue)
      /. float_of_int (max 1 t.config.queue_capacity) );
    ( "serve.sampled.breaker",
      breaker_level (Res.state t.breaker ~subject:worker_subject) );
    ("serve.sampled.ring_dropped", float_of_int (Ring.dropped t.ring));
    ("serve.sampled.sessions", float_of_int (Hashtbl.length t.sessions));
  ]

let create ?(config = default_config) ?journal ?learner cache =
  (* the sampler's gauge provider needs the server it belongs to; tie
     the knot through a cell instead of a mutable field *)
  let gauges_src = ref (fun () -> []) in
  let t =
    {
      config;
      cache;
      learner;
      queue = Queue.create ();
      journal;
      recent_checks = Ring.create ~capacity:config.reload_shadow_k;
      ring = Ring.create ~capacity:config.ring_capacity;
      sessions = Hashtbl.create 64;
      session_order = [];
      breaker =
        Res.breaker ~threshold:config.breaker_threshold
          ~cooldown:config.breaker_cooldown ();
      state = Running;
      requests = 0;
      answered = 0;
      shed = 0;
      errors = 0;
      restarts = 0;
      denied = 0;
      reloads = 0;
      reload_rollbacks = 0;
      learned = 0;
      replayed = 0;
      reload_requested = false;
      trace_seq = 0;
      lat =
        Owindow.create ~intervals:config.window_intervals
          ~interval_ns:config.window_interval_ns ();
      sampler =
        Osampler.create ~interval_ns:config.sampler_interval_ns
          ~gauges:(fun () -> !gauges_src ())
          ();
    }
  in
  gauges_src := sampled_gauges t;
  t

let pending t = Queue.length t.queue

let state t = match t.state with
  | Running -> `Running
  | Draining -> `Draining
  | Stopped -> `Stopped

let request_shutdown t = if t.state = Running then t.state <- Draining

let request_reload t = if t.state = Running then t.reload_requested <- true

let shed_count t = t.shed
let restart_count t = t.restarts
let ring_dropped t = Ring.dropped t.ring
let replayed_count t = t.replayed
let reload_rollback_count t = t.reload_rollbacks
let alerts t = Ring.to_list t.ring
let latency_window t = Owindow.view t.lat

(* Degraded when robustness machinery had to engage: load was shed,
   the worker crashed, or alerts fell off the ring.  Answered typed
   errors (malformed requests) are normal service, not degradation. *)
let exit_code t =
  if t.shed > 0 || t.restarts > 0 || Ring.dropped t.ring > 0 then 3 else 0

let subject = "serve"

let make_deadline c =
  match (c.deadline_polls, c.deadline_s) with
  | Some n, _ -> Deadline.after_polls n
  | None, Some s -> Deadline.of_budget_s s
  | None, None -> Deadline.none

(* --- sessions ------------------------------------------------------------- *)

let drop_session t id =
  if Hashtbl.mem t.sessions id then begin
    Hashtbl.remove t.sessions id;
    t.session_order <- List.filter (fun i -> i <> id) t.session_order
  end

let put_session t id sess =
  let fresh = not (Hashtbl.mem t.sessions id) in
  Hashtbl.replace t.sessions id (sess, Cache.generation t.cache);
  if fresh then t.session_order <- t.session_order @ [ id ];
  if List.length t.session_order > t.config.max_sessions then
    match t.session_order with
    | oldest :: rest ->
        Hashtbl.remove t.sessions oldest;
        t.session_order <- rest
    | [] -> ()

(* --- the worker ----------------------------------------------------------- *)

let app_key (img : Image.t) =
  match img.Image.configs with
  | { Image.app; _ } :: _ -> Image.app_to_string app
  | [] -> "default"

let push_alerts t ~image warnings =
  let before = Ring.dropped t.ring in
  List.iter
    (fun (w : Warning.t) ->
      if w.Warning.score >= t.config.alert_score then
        Ring.push t.ring (Proto.alert_json ~image w))
    warnings;
  Ometrics.incr ~by:(Ring.dropped t.ring - before) m_ring_dropped

let detections t warnings =
  List.length
    (List.filter
       (fun (w : Warning.t) -> w.Warning.score >= t.config.alert_score)
       warnings)

let read_dump t path =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Res.diag Res.Probe_failure ~subject msg)
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let n = in_channel_length ic in
            if n > t.config.max_request_bytes then Error n
            else Ok (really_input_string ic n))
      with
      | Ok text -> Ok text
      | Error n ->
          Error
            (Res.diag Res.Overflow ~subject
               (Printf.sprintf "dump %s is %d bytes (limit %d)" path n
                  t.config.max_request_bytes))
      | exception Sys_error msg ->
          Error (Res.diag Res.Probe_failure ~subject msg))

let verdict_to_response t ?id ~op ~image ?delta verdict =
  let warnings = Watch.warnings_of verdict in
  let partial = match verdict with Watch.Partial _ -> true | _ -> false in
  if partial then Ometrics.incr m_partial;
  push_alerts t ~image warnings;
  Proto.verdict_response ?id ~op ~image ~partial
    ~detections:(detections t warnings) ?delta warnings

let do_check t ?id source =
  let text =
    match source with
    | Proto.Inline text -> Ok text
    | Proto.Path path -> read_dump t path
  in
  match text with
  | Error d -> Proto.error_response ?id ~op:"check" d
  | Ok text -> (
      match Collector.image_of_text text with
      | Error msg ->
          Proto.error_response ?id ~op:"check"
            (Res.diag Res.Parse_error ~subject ("bad image dump: " ^ msg))
      | Ok img -> (
          (* integrity gate: a dump whose config payload carries control
             bytes or a torn final line was damaged in transit — answer
             a typed error rather than checking garbage *)
          match
            List.concat_map
              (fun (c : Image.config_file) ->
                Res.scan_text ~subject:c.Image.path c.Image.text)
              img.Image.configs
          with
          | d :: _ -> Proto.error_response ?id ~op:"check" d
          | [] -> (
          match Cache.engine_for t.cache ~app:(app_key img) with
          | Error d -> Proto.error_response ?id ~op:"check" d
          | Ok (eng, fingerprint) ->
              let deadline = make_deadline t.config in
              let session, verdict =
                Watch.start ~deadline eng ~fingerprint img
              in
              (match session with
              | Some s -> put_session t img.Image.image_id s
              | None -> ());
              verdict_to_response t ?id ~op:"check"
                ~image:img.Image.image_id verdict)))

let do_watch t ?id ~image_id ~app ~config_text () =
  match Image.app_of_string app with
  | None ->
      Proto.error_response ?id ~op:"watch"
        (Res.diag Res.Parse_error ~subject
           (Printf.sprintf "unknown app '%s'" app))
  | Some _ when Res.scan_text ~subject:image_id config_text <> [] ->
      (* same integrity gate as check: a corrupted delta must not
         replace a session's config *)
      Proto.error_response ?id ~op:"watch"
        (List.hd (Res.scan_text ~subject:image_id config_text))
  | Some app -> (
      match Hashtbl.find_opt t.sessions image_id with
      | None ->
          Proto.error_response ?id ~op:"watch"
            (Res.diag Res.Parse_error ~subject
               (Printf.sprintf
                  "unknown image '%s': check it before watching" image_id))
      | Some (sess, gen) -> (
          let img = Watch.image sess in
          match Cache.engine_for t.cache ~app:(app_key img) with
          | Error d -> Proto.error_response ?id ~op:"watch" d
          | Ok (eng, fingerprint) ->
              let deadline = make_deadline t.config in
              let stale =
                gen <> Cache.generation t.cache
                || Watch.fingerprint sess <> fingerprint
              in
              if stale then begin
                (* the cached verdicts describe an old model: apply the
                   delta to the session's image and re-seed with a full
                   check under the fresh engine *)
                match Image.config_for img app with
                | None ->
                    drop_session t image_id;
                    Proto.error_response ?id ~op:"watch"
                      (Res.diag Res.Parse_error ~subject
                         (Printf.sprintf "image '%s' carries no %s config"
                            image_id (Image.app_to_string app)))
                | Some _ ->
                    Ometrics.incr m_watch_full;
                    let img' = Image.set_config img app config_text in
                    let session, verdict =
                      Watch.start ~deadline eng ~fingerprint img'
                    in
                    (match session with
                    | Some s -> put_session t image_id s
                    | None -> drop_session t image_id);
                    verdict_to_response t ?id ~op:"watch" ~image:image_id
                      ~delta:("full", 0, Engine.rule_count eng)
                      verdict
              end
              else
                match
                  Watch.update ~deadline sess eng ~app ~config:config_text
                with
                | Error msg ->
                    Proto.error_response ?id ~op:"watch"
                      (Res.diag Res.Parse_error ~subject msg)
                | Ok (verdict, stats) ->
                    Ometrics.incr m_watch_delta;
                    (match verdict with
                    | Watch.Partial _ ->
                        (* uncommitted update: the session no longer
                           matches the delivered config *)
                        drop_session t image_id
                    | Watch.Complete _ -> ());
                    verdict_to_response t ?id ~op:"watch" ~image:image_id
                      ~delta:
                        ( "delta",
                          stats.Watch.changed_attrs,
                          stats.Watch.rules_rechecked )
                      verdict))

(* Shadow-validated reload: compile the candidate model(s) in an
   isolated cache, replay the last K journaled check requests against
   them, and adopt only when nothing errors.  A broken provider or a
   candidate that crashes on traffic the live model served is rolled
   back with a typed refusal — the live cache, its generation and every
   watch session stay untouched. *)
let shadow_check t cand line =
  match Proto.parse line with
  | Error _ -> Ok false  (* stale corpus line no longer parses: skip *)
  | Ok (Proto.Check { source; _ }) -> (
      let text =
        match source with
        | Proto.Inline text -> Ok text
        | Proto.Path path -> read_dump t path
      in
      match text with
      | Error _ -> Ok false  (* dump since deleted: nothing to shadow *)
      | Ok text -> (
          match Collector.image_of_text text with
          | Error _ -> Ok false
          | Ok img -> (
              match Cache.engine_for cand ~app:(app_key img) with
              | Error d -> Error d
              | Ok (eng, _) -> (
                  match Engine.check eng img with
                  | _ -> Ok true
                  | exception exn ->
                      Error
                        (Res.diag Res.Custom_rule_error ~subject
                           (Printf.sprintf "shadow check of %s raised %s"
                              img.Image.image_id (Printexc.to_string exn)))))))
  | Ok _ -> Ok false

let do_reload t ?id () =
  let cand = Cache.candidate t.cache in
  let validated =
    (* eagerly compile every app the live cache serves, then shadow the
       recent check corpus — both must succeed before adoption *)
    let rec compile_apps = function
      | [] -> Ok ()
      | app :: rest -> (
          match Cache.engine_for cand ~app with
          | Ok _ -> compile_apps rest
          | Error d -> Error d)
    in
    match compile_apps (Cache.cached_apps t.cache) with
    | Error d -> Error d
    | Ok () ->
        let rec shadow n = function
          | [] -> Ok n
          | line :: rest -> (
              match shadow_check t cand line with
              | Ok counted -> shadow (if counted then n + 1 else n) rest
              | Error d -> Error d)
        in
        shadow 0 (Ring.to_list t.recent_checks)
  in
  match validated with
  | Error d ->
      t.reload_rollbacks <- t.reload_rollbacks + 1;
      Ometrics.incr m_reload_rollbacks;
      Proto.error_response ?id ~op:"reload"
        (Res.diag d.Res.kind ~subject
           ("reload rejected (rolled back, generation unchanged): "
          ^ d.Res.detail))
  | Ok shadow_checked ->
      let changed = Cache.adopt t.cache ~from:cand in
      t.reloads <- t.reloads + 1;
      Ometrics.incr m_reloads;
      Proto.ok_response ?id ~op:"reload"
        [
          ("changed", Json.Bool changed);
          ("generation", Json.Int (Cache.generation t.cache));
          ("shadow_checked", Json.Int shadow_checked);
          ( "apps",
            Json.Arr
              (List.map (fun a -> Json.Str a) (Cache.cached_apps t.cache)) );
        ]

(* Continuous learning: fold the observed image into the resident
   statistics through the attached hook, then adopt the refreshed
   model through the same shadow-validated reload as the reload verb —
   a refresh that fails validation is rolled back (generation
   unchanged) while the statistics keep the image for the next
   attempt.  Durability comes from the statistics store the hook
   persists to, not the request journal. *)
let do_learn_append t ?id source =
  let op = "learn-append" in
  let text =
    match source with
    | Proto.Inline text -> Ok text
    | Proto.Path path -> read_dump t path
  in
  match text with
  | Error d -> Proto.error_response ?id ~op d
  | Ok text -> (
      match Collector.image_of_text text with
      | Error msg ->
          Proto.error_response ?id ~op
            (Res.diag Res.Parse_error ~subject ("bad image dump: " ^ msg))
      | Ok img -> (
          match
            List.concat_map
              (fun (c : Image.config_file) ->
                Res.scan_text ~subject:c.Image.path c.Image.text)
              img.Image.configs
          with
          | d :: _ -> Proto.error_response ?id ~op d
          | [] -> (
              match t.learner with
              | None ->
                  Proto.error_response ?id ~op
                    (Res.diag Res.Custom_rule_error ~subject
                       "no learner attached: the daemon was started without \
                        learning statistics")
              | Some learn -> (
                  match learn img with
                  | Error msg ->
                      Proto.error_response ?id ~op
                        (Res.diag Res.Custom_rule_error ~subject msg)
                  | Ok note ->
                      t.learned <- t.learned + 1;
                      Ometrics.incr m_learned;
                      let reload = do_reload t ?id:None () in
                      let adopted =
                        match reload with
                        | Json.Obj fields ->
                            List.assoc_opt "ok" fields = Some (Json.Bool true)
                        | _ -> false
                      in
                      Proto.ok_response ?id ~op
                        [
                          ("image", Json.Str img.Image.image_id);
                          ("trained", Json.Str note);
                          ("adopted", Json.Bool adopted);
                          ("reload", reload);
                        ]))))

let do_status t ?id () =
  Proto.ok_response ?id ~op:"status"
    [
      ("requests", Json.Int t.requests);
      ("answered", Json.Int t.answered);
      ("pending", Json.Int (Queue.length t.queue));
      ("shed", Json.Int t.shed);
      ("errors", Json.Int t.errors);
      ("restarts", Json.Int t.restarts);
      ("denied", Json.Int t.denied);
      ("reloads", Json.Int t.reloads);
      ("reload_rollbacks", Json.Int t.reload_rollbacks);
      ("learned", Json.Int t.learned);
      ("replayed", Json.Int t.replayed);
      ("journal", Json.Bool (t.journal <> None));
      ("sessions", Json.Int (Hashtbl.length t.sessions));
      ("generation", Json.Int (Cache.generation t.cache));
      ( "breaker",
        Json.Str
          (Res.breaker_state_to_string
             (Res.state t.breaker ~subject:worker_subject)) );
      ( "ring",
        Json.Obj
          [
            ("length", Json.Int (Ring.length t.ring));
            ("capacity", Json.Int (Ring.capacity t.ring));
            ("dropped", Json.Int (Ring.dropped t.ring));
          ] );
      ("draining", Json.Bool (t.state <> Running));
    ]

(* --- telemetry verbs ------------------------------------------------------- *)

let do_metrics t ?id format =
  ignore (Osampler.poll t.sampler);
  let wv = Owindow.view t.lat in
  (* mirror the rolling stats into gauges so one exposition pass (and
     `encore-cli top` reading either format) carries them *)
  Owindow.export wv ~prefix:"serve.window";
  let snap = Ometrics.snapshot () in
  match format with
  | Proto.Prometheus ->
      Proto.ok_response ?id ~op:"metrics"
        [
          ("format", Json.Str "prometheus");
          ("body", Json.Str (Ometrics.snapshot_to_prom snap));
        ]
  | Proto.Json_body ->
      Proto.ok_response ?id ~op:"metrics"
        [
          ("format", Json.Str "json");
          ("window", Owindow.view_json wv);
          ("metrics", Ometrics.snapshot_to_json snap);
        ]

(* The health verdict: worst of the individual signals, each of which
   contributes a human-readable reason.  Degraded means the daemon is
   answering but robustness machinery engaged or latency drifted;
   unhealthy means new work is effectively not being served. *)
let health t =
  let wv = Owindow.view t.lat in
  let occupancy =
    float_of_int (Queue.length t.queue)
    /. float_of_int (max 1 t.config.queue_capacity)
  in
  let breaker = Res.state t.breaker ~subject:worker_subject in
  let level = ref 0 and reasons = ref [] in
  let flag lvl reason =
    if lvl > !level then level := lvl;
    reasons := reason :: !reasons
  in
  (match breaker with
  | Res.Open ->
      flag 1 "worker breaker open: check/watch denied during backoff"
  | Res.Half_open -> flag 1 "worker breaker half-open: probing with one trial"
  | Res.Closed -> ());
  if wv.Owindow.w_count > 0 && wv.Owindow.w_p99 > t.config.health_p99_us then
    flag 1
      (Printf.sprintf "rolling p99 %.0fus exceeds threshold %.0fus"
         wv.Owindow.w_p99 t.config.health_p99_us);
  if occupancy >= 1.0 then flag 2 "queue full: requests are being shed"
  else if occupancy >= 0.75 then
    flag 1 (Printf.sprintf "queue %.0f%% occupied" (occupancy *. 100.0));
  if breaker = Res.Open && occupancy >= 1.0 then
    flag 2 "worker quarantined with a full queue: not serving";
  (match t.state with
  | Running -> ()
  | Draining -> flag 1 "draining: no new requests admitted"
  | Stopped -> flag 2 "stopped");
  let verdict =
    match !level with 0 -> "ok" | 1 -> "degraded" | _ -> "unhealthy"
  in
  (verdict, List.rev !reasons, wv, occupancy, breaker)

let health_verdict t =
  let verdict, reasons, _, _, _ = health t in
  (verdict, reasons)

let do_health t ?id () =
  ignore (Osampler.poll t.sampler);
  let verdict, reasons, wv, occupancy, breaker = health t in
  Proto.ok_response ?id ~op:"health"
    [
      ("health", Json.Str verdict);
      ("reasons", Json.Arr (List.map (fun r -> Json.Str r) reasons));
      ("window", Owindow.view_json wv);
      ("queue_occupancy", Json.Float occupancy);
      ("breaker", Json.Str (Res.breaker_state_to_string breaker));
      ("restarts", Json.Int t.restarts);
      ("sessions", Json.Int (Hashtbl.length t.sessions));
    ]

(* Dispatch one parsed request.  Check/watch/crash go through the
   supervised worker; control ops (status, reload, metrics, health,
   shutdown) bypass the breaker so the daemon stays steerable — and
   observable — while the worker is quarantined. *)
let dispatch t ~trace req =
  let id = Proto.request_id req in
  match req with
  | Proto.Status { id } -> do_status t ?id ()
  | Proto.Metrics { id; format } -> do_metrics t ?id format
  | Proto.Health { id } -> do_health t ?id ()
  | Proto.Reload { id } -> do_reload t ?id ()
  | Proto.Shutdown { id } ->
      request_shutdown t;
      Proto.ok_response ?id ~op:"shutdown" [ ("draining", Json.Bool true) ]
  | Proto.Check _ | Proto.Learn_append _ | Proto.Watch _ | Proto.Crash _ ->
      let op = Proto.request_op req in
      if not (Res.allow t.breaker ~subject:worker_subject) then begin
        t.denied <- t.denied + 1;
        Ometrics.incr m_denied;
        Proto.error_response ?id ~op
          (Res.diag Res.Probe_failure ~subject
             "worker circuit open: request denied during restart backoff")
      end
      else begin
        let t0 = Encore_obs.Clock.now_ns () in
        let finish resp =
          let us =
            Int64.to_float (Int64.sub (Encore_obs.Clock.now_ns ()) t0) /. 1e3
          in
          Ometrics.observe h_request_us us;
          Owindow.observe t.lat us;
          resp
        in
        match
          Otrace.with_span "serve-request"
            ~attrs:[ ("op", Json.Str op); ("trace", Json.Str trace) ]
            (fun () ->
              match req with
              | Proto.Check { id; source } -> do_check t ?id source
              | Proto.Learn_append { id; source } ->
                  do_learn_append t ?id source
              | Proto.Watch { id; image_id; app; config } ->
                  do_watch t ?id ~image_id ~app ~config_text:config ()
              | Proto.Crash _ -> raise Injected_crash
              | Proto.Status _ | Proto.Reload _ | Proto.Metrics _
              | Proto.Health _ | Proto.Shutdown _ ->
                  assert false)
        with
        | resp ->
            Res.record_success t.breaker ~subject:worker_subject;
            finish resp
        | exception exn ->
            (* the supervisor: the worker "restarts" — its crash is
               contained to this request, persistent state is still
               consistent (watch commits atomically), and the breaker
               gates how fast we let the next request at it *)
            t.restarts <- t.restarts + 1;
            Ometrics.incr m_restarts;
            let detail = Printexc.to_string exn in
            Res.record_failure t.breaker ~subject:worker_subject
              (Res.diag Res.Custom_rule_error ~subject:worker_subject detail);
            finish
              (Proto.error_response ?id ~op
                 (Res.diag Res.Custom_rule_error ~subject
                    ("worker crashed (restarted): " ^ detail)))
      end

(* --- the reactor ---------------------------------------------------------- *)

(* Worker ops are journaled (they mutate committed state and their
   responses must survive a crash); control ops are not — replaying a
   journaled shutdown would re-drain the recovered daemon, and
   status/metrics/health answers are views, not commitments. *)
let journalable req =
  match req with
  | Proto.Check _ | Proto.Watch _ | Proto.Crash _ -> true
  | Proto.Learn_append _ ->
      (* durable through the statistics store its hook persists to;
         replaying it against recovered statistics would double-count
         the image *)
      false
  | Proto.Reload _ | Proto.Status _ | Proto.Metrics _ | Proto.Health _
  | Proto.Shutdown _ ->
      false

let offer_from t ?origin line =
  if t.state <> Running then []
  else if String.trim line = "" then []
  else begin
    t.requests <- t.requests + 1;
    Ometrics.incr m_requests;
    (* every admitted request gets a trace id here, before any outcome
       is known, so even an immediate rejection is joinable against the
       event log *)
    t.trace_seq <- t.trace_seq + 1;
    let trace = Printf.sprintf "t-%06d" t.trace_seq in
    let traced resp = Proto.with_trace (Some trace) resp in
    if String.length line > t.config.max_request_bytes then begin
      (* reject before queueing: queue memory stays bounded by
         capacity * max_request_bytes *)
      t.errors <- t.errors + 1;
      Ometrics.incr m_errors;
      [
        traced
          (Proto.error_response
             (Res.diag Res.Overflow ~subject
                (Printf.sprintf "request is %d bytes (limit %d)"
                   (String.length line) t.config.max_request_bytes)));
      ]
    end
    else if Queue.length t.queue >= t.config.queue_capacity then begin
      t.shed <- t.shed + 1;
      Ometrics.incr m_shed;
      (* a shed is still an answer: echo the correlation id and op when
         the line parses so the client can retry the right request *)
      let id, op =
        match Proto.parse line with
        | Ok req -> (Proto.request_id req, Some (Proto.request_op req))
        | Error _ -> (None, None)
      in
      [
        traced
          (Proto.error_response ?id ?op ~overloaded:true
             (Res.diag Res.Overflow ~subject
                (Printf.sprintf "queue full (%d pending): request shed"
                   (Queue.length t.queue))));
      ]
    end
    else begin
      (* WAL: the request record — trace id included, so a replay emits
         byte-identical responses — is durable before the queue sees
         it.  Shed and oversize rejections above are deliberately not
         journaled: they were answered immediately and commit nothing. *)
      let seq =
        match t.journal with
        | Some j
          when (match Proto.parse line with
               | Ok req -> journalable req
               | Error _ -> false) ->
            Some (Journal.append j (trace ^ " " ^ line))
        | _ -> None
      in
      Queue.push { q_trace = trace; q_origin = origin; q_seq = seq; q_line = line }
        t.queue;
      Ometrics.set_max m_queue_depth (float_of_int (Queue.length t.queue));
      []
    end
  end

let offer t line = offer_from t line

(* Process one queued request, tagging each response with the origin it
   must be routed to (None = default sink).  A SIGHUP-requested reload
   runs ahead of queue work so a storm cannot starve it. *)
let step_routed t =
  ignore (Osampler.poll t.sampler);
  if t.reload_requested then begin
    t.reload_requested <- false;
    [ (None, do_reload t ()) ]
  end
  else
    match Queue.take_opt t.queue with
    | None -> []
    | Some { q_trace = trace; q_origin; q_seq; q_line = line } -> (
        let traced resp = Proto.with_trace (Some trace) resp in
        let finish resps =
          (match (t.journal, q_seq) with
          | Some j, Some seq -> Journal.mark_done j seq
          | _ -> ());
          t.answered <- t.answered + 1;
          List.map (fun r -> (q_origin, r)) resps
        in
        match Proto.parse line with
        | Error d ->
            t.errors <- t.errors + 1;
            Ometrics.incr m_errors;
            finish [ traced (Proto.error_response d) ]
        | Ok req ->
            (match req with
            | Proto.Check _ -> Ring.push t.recent_checks line
            | _ -> ());
            finish [ traced (dispatch t ~trace req) ])

let step t = List.map snd (step_routed t)

(* --- crash recovery -------------------------------------------------------- *)

(* Re-execute journaled entries in admission order against a fresh
   server.  Completed entries rebuild committed state (alert ring,
   watch sessions, counters) without re-emitting — their responses were
   already delivered; uncompleted entries are the requests a crash
   swallowed, so their responses are produced again, byte-identical
   (the journaled trace id is reused) to what the uninterrupted run
   would have sent.  The caller decides delivery through [emit], which
   sees every entry with its replayed responses. *)
let replay t ~entries ~emit =
  List.iter
    (fun (e : Journal.entry) ->
      let trace, line =
        match String.index_opt e.Journal.payload ' ' with
        | Some sp ->
            ( String.sub e.Journal.payload 0 sp,
              String.sub e.Journal.payload (sp + 1)
                (String.length e.Journal.payload - sp - 1) )
        | None -> (e.Journal.payload, "")
      in
      (* keep fresh admissions from colliding with replayed trace ids *)
      (if String.length trace > 2 then
         match int_of_string_opt (String.sub trace 2 (String.length trace - 2))
         with
         | Some n when n > t.trace_seq -> t.trace_seq <- n
         | _ -> ());
      t.requests <- t.requests + 1;
      Ometrics.incr m_requests;
      t.replayed <- t.replayed + 1;
      Ometrics.incr m_journal_replayed;
      let traced resp = Proto.with_trace (Some trace) resp in
      let resps =
        match Proto.parse line with
        | Error d ->
            t.errors <- t.errors + 1;
            Ometrics.incr m_errors;
            [ traced (Proto.error_response d) ]
        | Ok req ->
            (match req with
            | Proto.Check _ -> Ring.push t.recent_checks line
            | _ -> ());
            [ traced (dispatch t ~trace req) ]
      in
      t.answered <- t.answered + 1;
      (match t.journal with
      | Some j when not e.Journal.completed -> Journal.mark_done j e.Journal.seq
      | _ -> ());
      emit e resps)
    entries;
  List.length entries

let drain_flush t =
  let alerts = Ring.drain t.ring in
  let bye =
    Proto.ok_response ~op:"bye"
      [
        ("requests", Json.Int t.requests);
        ("answered", Json.Int t.answered);
        ("shed", Json.Int t.shed);
        ("errors", Json.Int t.errors);
        ("restarts", Json.Int t.restarts);
        ("alerts_flushed", Json.Int (List.length alerts));
        ("ring_dropped", Json.Int (Ring.dropped t.ring));
        ("replayed", Json.Int t.replayed);
      ]
  in
  t.state <- Stopped;
  (* clean shutdown: every journaled entry was answered, so the next
     start has nothing to replay *)
  (match t.journal with Some j -> Journal.reset j | None -> ());
  alerts @ [ bye ]

let run t ~recv ~send =
  let emit = List.iter send in
  let rec ingest () =
    match t.state with
    | Draining | Stopped -> ()
    | Running -> (
        (* block only when there is nothing queued to work on; once a
           line arrives, drain the transport greedily so a burst lands
           on the bounded queue (and sheds) instead of lingering in the
           kernel buffer *)
        match recv ~wait:(Queue.is_empty t.queue) with
        | `Line line ->
            emit (offer t line);
            ingest ()
        | `Eof -> request_shutdown t
        | `Idle -> ())
  in
  let rec loop () =
    match t.state with
    | Stopped -> exit_code t
    | Draining ->
        if Queue.is_empty t.queue then begin
          emit (drain_flush t);
          loop ()
        end
        else begin
          emit (step t);
          loop ()
        end
    | Running ->
        ingest ();
        emit (step t);
        loop ()
  in
  loop ()
