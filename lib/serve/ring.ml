type 'a t = {
  cap : int;
  buf : 'a option array;
  mutable start : int;  (* index of the oldest element *)
  mutable len : int;
  mutable dropped : int;
}

let create ~capacity =
  let cap = max 1 capacity in
  { cap; buf = Array.make cap None; start = 0; len = 0; dropped = 0 }

let capacity t = t.cap

let length t = t.len

let dropped t = t.dropped

let push t x =
  if t.len < t.cap then begin
    t.buf.((t.start + t.len) mod t.cap) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    (* full: the slot at [start] holds the oldest element; overwrite it
       and advance — the bound is the invariant, the oldest alert the
       casualty *)
    t.buf.(t.start) <- Some x;
    t.start <- (t.start + 1) mod t.cap;
    t.dropped <- t.dropped + 1
  end

let to_list t =
  List.init t.len (fun i ->
      match t.buf.((t.start + i) mod t.cap) with
      | Some x -> x
      | None -> assert false (* slots below [len] are always filled *))

let drain t =
  let xs = to_list t in
  Array.fill t.buf 0 t.cap None;
  t.start <- 0;
  t.len <- 0;
  xs
