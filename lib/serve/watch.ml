module Engine = Encore_detect.Engine
module Warning = Encore_detect.Warning
module Row = Encore_dataset.Row
module Relation = Encore_rules.Relation
module Image = Encore_sysenv.Image
module Deadline = Encore_util.Deadline

(* The session caches one verdict per detection unit, keyed the same
   way {!Engine}'s granular API is keyed:

   - [names] and [cols] by attribute (an attribute's name verdict and
     its column type/value warnings depend only on that attribute's row
     instances and the unchanged environment);
   - [rules] by rule index.

   A delta recomputes exactly the units whose key a changed column
   touches and splices the rest from cache.  Reassembling the verdict
   groups warnings per unit rather than in [Row.to_list] pair order,
   which is safe: the final [List.sort Warning.compare_rank] fully
   orders distinct warnings, and warnings that compare equal are
   byte-identical (the tie-break is the message, which embeds the
   attribute and value), so any input permutation sorts to the same
   list — the byte-identity property test pins this. *)
type session = {
  fingerprint : string;
  mutable image : Image.t;
  mutable row : Row.t;
  mutable names : (string, Warning.t) Hashtbl.t;
  mutable rules : Warning.t option array;
  mutable cols : (string, Warning.t list * Warning.t list) Hashtbl.t;
}

type verdict = Complete of Warning.t list | Partial of Warning.t list

type delta_stats = { changed_attrs : int; rules_rechecked : int }

let warnings_of = function Complete ws | Partial ws -> ws

let fingerprint s = s.fingerprint

let image s = s.image

let image_id s = s.image.Image.image_id

(* Reassemble the full verdict from the unit caches, in stage order
   (names, rules, types, values) like [Engine.check], then rank. *)
let assemble_verdict ~row ~names ~rules ~cols =
  let attrs = Row.attrs row in
  let name_ws = List.filter_map (Hashtbl.find_opt names) attrs in
  let rule_ws =
    Array.to_list rules |> List.filter_map (fun w -> w)
  in
  let col_of attr = Option.value ~default:([], []) (Hashtbl.find_opt cols attr) in
  let type_ws = List.concat_map (fun a -> fst (col_of a)) attrs in
  let value_ws = List.concat_map (fun a -> snd (col_of a)) attrs in
  List.sort Warning.compare_rank (name_ws @ rule_ws @ type_ws @ value_ws)

(* Compute one attribute's units into the tables. *)
let compute_attr eng img row names cols attr =
  (match Engine.name_warning eng attr with
  | Some w -> Hashtbl.replace names attr w
  | None -> Hashtbl.remove names attr);
  Hashtbl.replace cols attr
    (Engine.column_warnings_for eng img ~attr ~values:(Row.get_all row attr))

let start ?(deadline = Deadline.none) eng ~fingerprint img =
  let row = Engine.assemble_row eng img in
  let ctx = { Relation.image = img; row } in
  let names = Hashtbl.create 64 in
  let cols = Hashtbl.create 64 in
  let rules = Array.make (Engine.rule_count eng) None in
  match
    List.iter
      (fun attr ->
        Deadline.raise_if_expired deadline;
        compute_attr eng img row names cols attr)
      (Row.attrs row);
    for i = 0 to Array.length rules - 1 do
      Deadline.raise_if_expired deadline;
      rules.(i) <- Engine.rule_warning eng ctx i
    done
  with
  | () ->
      let s = { fingerprint; image = img; row; names; rules; cols } in
      (Some s, Complete (assemble_verdict ~row ~names ~rules ~cols))
  | exception Deadline.Expired _ ->
      (* whatever units completed, ranked: a usable prefix of the
         verdict, but no session — incremental updates need the full
         baseline *)
      (None, Partial (assemble_verdict ~row ~names ~rules ~cols))

(* Distinct attributes whose instance lists differ between the rows,
   old-row order first, then attributes new to [row']. *)
let changed_columns row row' =
  let seen = Hashtbl.create 64 in
  let note acc attr =
    if Hashtbl.mem seen attr then acc
    else begin
      Hashtbl.add seen attr ();
      if Row.get_all row attr <> Row.get_all row' attr then attr :: acc
      else acc
    end
  in
  let acc = List.fold_left note [] (Row.attrs row) in
  List.rev (List.fold_left note acc (Row.attrs row'))

let update ?(deadline = Deadline.none) s eng ~app ~config =
  match Image.config_for s.image app with
  | None ->
      Error
        (Printf.sprintf "image '%s' carries no %s config" (image_id s)
           (Image.app_to_string app))
  | Some _ ->
      let image' = Image.set_config s.image app config in
      let row' = Engine.assemble_row eng image' in
      let changed = changed_columns s.row row' in
      let touched = Engine.rules_touching eng changed in
      let stats =
        { changed_attrs = List.length changed;
          rules_rechecked = List.length touched }
      in
      (* work on copies: the session stays at its last complete verdict
         unless every touched unit recomputes before the deadline *)
      let names = Hashtbl.copy s.names in
      let cols = Hashtbl.copy s.cols in
      let rules = Array.copy s.rules in
      let present = Hashtbl.create 64 in
      List.iter (fun a -> Hashtbl.replace present a ()) (Row.attrs row');
      let ctx' = { Relation.image = image'; row = row' } in
      match
        List.iter
          (fun attr ->
            Deadline.raise_if_expired deadline;
            if Hashtbl.mem present attr then
              compute_attr eng image' row' names cols attr
            else begin
              (* column vanished from the row *)
              Hashtbl.remove names attr;
              Hashtbl.remove cols attr
            end)
          changed;
        List.iter
          (fun i ->
            Deadline.raise_if_expired deadline;
            rules.(i) <- Engine.rule_warning eng ctx' i)
          touched
      with
      | () ->
          s.image <- image';
          s.row <- row';
          s.names <- names;
          s.cols <- cols;
          s.rules <- rules;
          Ok (Complete (assemble_verdict ~row:row' ~names ~rules ~cols), stats)
      | exception Deadline.Expired _ ->
          (* uncommitted: the caller must drop the session (its cache
             still describes the pre-delta config) *)
          Ok (Partial (assemble_verdict ~row:row' ~names ~rules ~cols), stats)
