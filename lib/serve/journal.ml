(* Write-ahead request journal.

   Record framing echoes the snapshot envelope's checksum discipline
   (lib/util/snapshot.ml): a one-line header carrying magic, kind,
   sequence number, payload length and MD5, then the payload bytes and
   a terminating newline.  Unlike a snapshot — one atomic whole-file
   write — the journal is append-only: each admitted request is
   appended and fsynced *before* it enters the serve queue, so a crash
   can lose responses but never an admitted request.  Completion marks
   are appended without fsync: losing one merely widens the replay set
   (at-least-once), which replay tolerates because re-executing a
   completed entry is idempotent on the server's committed state.

   File writes go through raw Unix file descriptors rather than
   out_channels: the lint gate reserves channel-based writers in lib/
   for the snapshot layer, and append-fsync sequencing is exactly what
   the fd API expresses. *)

let magic = "EJRNL1"

type entry = { seq : int; payload : string; completed : bool }

type recovery = {
  entries : entry list;
  truncated_at : int option;
  valid_bytes : int;
}

type t = {
  fd : Unix.file_descr;
  path : string;
  mutable next_seq : int;
  mutable closed : bool;
}

let header kind seq payload =
  Printf.sprintf "%s %c %d %d %s\n" magic kind seq (String.length payload)
    (Digest.to_hex (Digest.string payload))

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Scan the raw journal bytes into records, stopping at the first torn
   or corrupt record.  Returns the records in file order and the byte
   offset of the last good record boundary — everything past it is a
   torn tail to truncate. *)
let scan text =
  let len = String.length text in
  let rec go off acc =
    if off >= len then (List.rev acc, off)
    else
      match String.index_from_opt text off '\n' with
      | None -> (List.rev acc, off)
      | Some nl -> (
          let hdr = String.sub text off (nl - off) in
          match String.split_on_char ' ' hdr with
          | [ m; kind; seq_s; plen_s; sum ]
            when m = magic && (kind = "R" || kind = "C") -> (
              match (int_of_string_opt seq_s, int_of_string_opt plen_s) with
              | Some seq, Some plen when seq > 0 && plen >= 0 ->
                  let pstart = nl + 1 in
                  if pstart + plen + 1 > len then (List.rev acc, off)
                  else
                    let payload = String.sub text pstart plen in
                    if
                      text.[pstart + plen] <> '\n'
                      || Digest.to_hex (Digest.string payload) <> sum
                    then (List.rev acc, off)
                    else go (pstart + plen + 1) ((kind, seq, payload) :: acc)
              | _ -> (List.rev acc, off))
          | _ -> (List.rev acc, off))
  in
  go 0 []

let read_file fd =
  let len = Unix.lseek fd 0 Unix.SEEK_END in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let buf = Bytes.create len in
  let rec fill off =
    if off < len then
      match Unix.read fd buf off (len - off) with
      | 0 -> off
      | n -> fill (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill off
    else off
  in
  let got = fill 0 in
  Bytes.sub_string buf 0 got

let open_ ~path =
  match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot open journal %s: %s" path
           (Unix.error_message e))
  | fd ->
      let text = read_file fd in
      let records, good = scan text in
      let truncated_at =
        if good < String.length text then begin
          (* physically drop the torn tail so the next append starts at
             a record boundary *)
          Unix.ftruncate fd good;
          Some good
        end
        else None
      in
      ignore (Unix.lseek fd good Unix.SEEK_SET);
      let done_seqs = Hashtbl.create 64 in
      List.iter
        (fun (kind, seq, _) ->
          if kind = "C" then Hashtbl.replace done_seqs seq ())
        records;
      let entries =
        List.filter_map
          (fun (kind, seq, payload) ->
            if kind = "R" then
              Some { seq; payload; completed = Hashtbl.mem done_seqs seq }
            else None)
          records
      in
      let next_seq =
        1 + List.fold_left (fun m (_, seq, _) -> max m seq) 0 records
      in
      Ok
        ( { fd; path; next_seq; closed = false },
          { entries; truncated_at; valid_bytes = good } )

let path t = t.path

let append t payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  write_all t.fd (header 'R' seq payload);
  write_all t.fd payload;
  write_all t.fd "\n";
  (* the WAL guarantee: the record is durable before the request is
     admitted to the queue *)
  Unix.fsync t.fd;
  seq

let mark_done t seq =
  (* no fsync: a lost completion mark only means the entry replays
     again, which is idempotent *)
  write_all t.fd (header 'C' seq "");
  write_all t.fd "\n"

let reset t =
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  t.next_seq <- 1

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
