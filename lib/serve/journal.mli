(** Write-ahead request journal for the serve daemon.

    Every admitted worker request (check / watch / crash) is appended
    and fsynced {e before} it enters the bounded queue; its completion
    is appended (unfsynced) after the response is produced.  On
    restart, {!open_} scans the file, physically truncates any torn
    tail at the last good record boundary, and hands back the recorded
    entries with their completion flags so {!Server.replay} can rebuild
    the daemon's committed state and re-emit the responses a crash
    swallowed.

    Record framing follows the snapshot envelope's checksum discipline
    ({!Encore_util.Snapshot}): a header line
    [EJRNL1 <R|C> <seq> <len> <md5hex>] followed by [len] payload bytes
    and a newline.  A header that does not parse, a payload shorter
    than its declared length, a missing terminator or a digest mismatch
    all end the scan — everything from that offset on is the torn tail.

    Durability contract:
    - {!append} fsyncs: an admitted request survives [kill -9];
    - {!mark_done} does not: a lost mark widens the replay set, and
      replaying a completed entry is idempotent on committed state
      (at-least-once delivery);
    - torn tails are truncated, never partially replayed. *)

type t

type entry = {
  seq : int;  (** admission sequence number, 1-based per journal epoch *)
  payload : string;
      (** what the server journaled: the assigned trace id, a space,
          then the raw request line *)
  completed : bool;  (** a completion mark was recovered for this seq *)
}

type recovery = {
  entries : entry list;  (** request records in admission order *)
  truncated_at : int option;
      (** byte offset where a torn tail was cut, when one was found *)
  valid_bytes : int;  (** size of the journal after truncation *)
}

val open_ : path:string -> (t * recovery, string) result
(** Open (creating if absent) and recover.  Detects and truncates a
    torn tail; never raises on damaged contents. *)

val append : t -> string -> int
(** Append one request record and fsync; returns its sequence
    number. *)

val mark_done : t -> int -> unit
(** Append a completion mark for [seq] (no fsync — see the durability
    contract). *)

val reset : t -> unit
(** Truncate to empty (clean shutdown: nothing left to replay) and
    restart sequence numbering. *)

val close : t -> unit
(** Close the underlying descriptor (idempotent). *)

val path : t -> string

(**/**)

val scan : string -> (string * int * string) list * int
(** Exposed for tests: parse raw journal bytes into
    [(kind, seq, payload)] records plus the last-good-boundary
    offset. *)
