(** The serve daemon's wire protocol: JSONL request/response.

    One JSON object per line in both directions.  Requests carry an
    [op] field and an optional correlation [id] (echoed back);
    responses carry [ok] plus either a verdict or a typed error whose
    [error] field is an {!Encore_util.Resilience.error_kind} string.

    Request shapes:
    - [{"op":"check","image":<dump>}] or [{"op":"check","path":<file>}]
      — check one collector image dump, inline or on disk;
    - [{"op":"learn-append","image":<dump>}] or
      [{"op":"learn-append","path":<file>}] — fold one observed image
      into the daemon's learning statistics (continuous learning) and
      adopt the refreshed model via the shadow-validated reload;
    - [{"op":"watch","image":<id>,"app":<app>,"config":<text>}] —
      replace one app's config text on a previously checked image and
      re-check incrementally;
    - [{"op":"reload"}] — re-read the model from the provider and
      invalidate stale engines;
    - [{"op":"status"}] — counters, ring and breaker state;
    - [{"op":"metrics","format":"prometheus"|"json"}] — a metrics
      scrape: Prometheus exposition text in a [body] field (default),
      or the JSON snapshot plus the rolling window view;
    - [{"op":"health"}] — rolling health verdict (ok / degraded /
      unhealthy) with the reasons listed;
    - [{"op":"shutdown"}] — drain the queue, flush the alert ring, exit;
    - [{"op":"crash"}] — fault injection: the worker raises mid-request
      (chaos drills exercise the supervisor with it).

    Every response to an admitted request additionally carries a
    [trace] field — the per-request trace id the server assigned at
    {!Server.offer} — joining the response to the [serve-request] span
    in the JSONL event log. *)

type check_source = Inline of string | Path of string

type metrics_format = Prometheus | Json_body

type request =
  | Check of { id : string option; source : check_source }
  | Learn_append of { id : string option; source : check_source }
      (** fold one observed image into the daemon's learning statistics
          and adopt the refreshed model through the shadow-validated
          reload path *)
  | Watch of {
      id : string option;
      image_id : string;
      app : string;
      config : string;
    }
  | Reload of { id : string option }
  | Status of { id : string option }
  | Metrics of { id : string option; format : metrics_format }
  | Health of { id : string option }
  | Shutdown of { id : string option }
  | Crash of { id : string option }

val request_op : request -> string
val request_id : request -> string option

val ops : string list
(** Every accepted [op] value, for help/error text. *)

val parse : string -> (request, Encore_util.Resilience.diagnostic) result
(** Parse one request line.  Never raises: malformed JSON, a missing
    or unknown [op], and missing operands all yield a [Parse_error]
    diagnostic (the server answers with {!error_response}). *)

val ok_response :
  ?id:string -> op:string -> (string * Encore_obs.Jsonenc.t) list ->
  Encore_obs.Jsonenc.t
(** [{"ok":true,"id":..,"op":..,<fields>}]. *)

val error_response :
  ?id:string ->
  ?op:string ->
  ?overloaded:bool ->
  Encore_util.Resilience.diagnostic ->
  Encore_obs.Jsonenc.t
(** [{"ok":false,...,"error":<kind>,"detail":..}]; [overloaded:true]
    marks a load-shed rejection. *)

val verdict_response :
  ?id:string ->
  op:string ->
  image:string ->
  partial:bool ->
  detections:int ->
  ?delta:string * int * int ->
  Encore_detect.Warning.t list ->
  Encore_obs.Jsonenc.t
(** A check/watch verdict: warning count, detection count, ranked
    [items] (each rendered by {!Encore_detect.Report.warning_json}),
    [partial:true] when a deadline cut the check short.  [delta] is
    [(mode, changed_attrs, rules_rechecked)] for watch responses. *)

val with_trace : string option -> Encore_obs.Jsonenc.t -> Encore_obs.Jsonenc.t
(** Stamp a trace id onto a finished response object (appended last);
    identity on [None] or a non-object. *)

val alert_json :
  image:string -> Encore_detect.Warning.t -> Encore_obs.Jsonenc.t
(** One ring entry: the warning's wire shape plus [ev:"alert"] and the
    image id — the line format of the shutdown flush. *)
