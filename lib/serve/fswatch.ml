(* Poll-based filesystem watcher feeding watch deltas.

   Watches a directory of config files named <image-id>@<app>.conf and
   reports, on each poll, the files whose (mtime, size) signature
   changed since the last poll — creation counts, deletion is
   forgotten silently.  [create] takes the baseline scan, so the first
   [poll] reports only what changed after the daemon started: the
   watcher feeds deltas, it does not replay the directory.

   Polling stat signatures (not inotify) keeps the watcher portable and
   free of extra dependencies; the serve loop calls [poll] on its idle
   tick, so detection latency is one tick. *)

type delta = {
  d_image_id : string;
  d_app : string;
  d_path : string;
  d_text : string;
}

type sig_ = { mtime : float; size : int }

type t = {
  dir : string;
  seen : (string, sig_) Hashtbl.t;  (* file name -> last signature *)
}

(* <image-id>@<app>.conf; image ids may themselves contain '@' only if
   the last one separates the app *)
let parse_name name =
  if Filename.check_suffix name ".conf" then
    let base = Filename.chop_suffix name ".conf" in
    match String.rindex_opt base '@' with
    | Some i when i > 0 && i < String.length base - 1 ->
        Some
          ( String.sub base 0 i,
            String.sub base (i + 1) (String.length base - i - 1) )
    | _ -> None
  else None

let signature path =
  match Unix.stat path with
  | { Unix.st_mtime; st_size; st_kind = Unix.S_REG; _ } ->
      Some { mtime = st_mtime; size = st_size }
  | _ -> None
  | exception Unix.Unix_error (_, _, _) -> None

let scan t ~emit =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.sort compare names;
      Array.iter
        (fun name ->
          match parse_name name with
          | None -> ()
          | Some (image_id, app) -> (
              let path = Filename.concat t.dir name in
              match signature path with
              | None -> Hashtbl.remove t.seen name
              | Some s -> (
                  let changed =
                    match Hashtbl.find_opt t.seen name with
                    | Some old -> old.mtime <> s.mtime || old.size <> s.size
                    | None -> true
                  in
                  if changed then begin
                    Hashtbl.replace t.seen name s;
                    match
                      In_channel.with_open_bin path In_channel.input_all
                    with
                    | text ->
                        emit
                          {
                            d_image_id = image_id;
                            d_app = app;
                            d_path = path;
                            d_text = text;
                          }
                    | exception Sys_error _ -> ()
                  end)))
        names

(* <name>.img: a full collector image dump dropped into the watched
   directory — the continuous-learning feed.  Shares the signature
   table with config files (the suffixes keep the namespaces
   disjoint), so the two polls never disturb each other. *)
let scan_images t ~emit =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.sort compare names;
      Array.iter
        (fun name ->
          if Filename.check_suffix name ".img" then
            let path = Filename.concat t.dir name in
            match signature path with
            | None -> Hashtbl.remove t.seen name
            | Some s ->
                let changed =
                  match Hashtbl.find_opt t.seen name with
                  | Some old -> old.mtime <> s.mtime || old.size <> s.size
                  | None -> true
                in
                if changed then begin
                  Hashtbl.replace t.seen name s;
                  emit path
                end)
        names

let create ~dir =
  let t = { dir; seen = Hashtbl.create 16 } in
  (* baseline: existing files are current state, not deltas *)
  scan t ~emit:(fun _ -> ());
  scan_images t ~emit:(fun _ -> ());
  t

let poll t =
  let acc = ref [] in
  scan t ~emit:(fun d -> acc := d :: !acc);
  List.rev !acc

let poll_images t =
  let acc = ref [] in
  scan_images t ~emit:(fun p -> acc := p :: !acc);
  List.rev !acc

let dir t = t.dir

let learn_request path =
  Encore_obs.Jsonenc.to_string
    (Encore_obs.Jsonenc.Obj
       [
         ("op", Encore_obs.Jsonenc.Str "learn-append");
         ("id", Encore_obs.Jsonenc.Str ("fswatch:" ^ Filename.basename path));
         ("path", Encore_obs.Jsonenc.Str path);
       ])

let watch_request d =
  Encore_obs.Jsonenc.to_string
    (Encore_obs.Jsonenc.Obj
       [
         ("op", Encore_obs.Jsonenc.Str "watch");
         ("id", Encore_obs.Jsonenc.Str ("fswatch:" ^ d.d_image_id));
         ("image", Encore_obs.Jsonenc.Str d.d_image_id);
         ("app", Encore_obs.Jsonenc.Str d.d_app);
         ("config", Encore_obs.Jsonenc.Str d.d_text);
       ])
