(** Bounded drop-oldest ring buffer: the daemon's alert store.

    The serve loop appends every detection here instead of an unbounded
    list, so a long-running daemon under alert storm holds at most
    [capacity] alerts — newest win, and the number of casualties is
    carried in {!dropped} (exported as the [serve.ring_dropped]
    metric by the server). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is clamped to at least 1. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently held; never exceeds [capacity]. *)

val dropped : 'a t -> int
(** Total elements evicted (oldest-first) since creation.  {!drain}
    does not reset it: the count is a lifetime loss metric. *)

val push : 'a t -> 'a -> unit
(** Append; evicts the oldest element when full. *)

val to_list : 'a t -> 'a list
(** Oldest first, non-destructive. *)

val drain : 'a t -> 'a list
(** Oldest first; empties the ring (the shutdown flush). *)
