(** The serve reactor: a transport-free request loop with bounded
    queueing, load shedding, supervised request processing and graceful
    drain.

    The daemon core is deliberately free of I/O: {!offer} hands it a
    raw request line, {!step} processes one queued request, and both
    return the responses to write.  {!run} wires them to a transport
    through two closures — the CLI provides stdio or a Unix-socket
    implementation, tests and the chaos storm drive {!offer}/{!step}
    directly.

    Robustness properties, in request order:
    - oversized lines are rejected {e before} queueing, so queue memory
      is bounded by [queue_capacity * max_request_bytes];
    - a full queue sheds the request with an [overloaded] error
      response — the daemon never buffers unboundedly;
    - malformed requests are answered with typed
      {!Encore_util.Resilience} errors, never a crash;
    - check/watch processing runs under a per-request deadline and
      yields ranked partial verdicts on expiry;
    - a crash inside the worker is contained to its request: the
      supervisor answers the request with a typed error, counts a
      restart, and gates subsequent work through a circuit breaker
      (open circuit → requests denied during backoff, half-open trial
      after the cooldown);
    - detections land in a bounded drop-oldest {!Ring}; the drain path
      flushes surviving alerts and reports the drop count;
    - shutdown (request, EOF, or {!request_shutdown} from a signal
      handler) finishes the queued requests, flushes the ring, emits a
      final [bye] summary and stops.

    Metrics: [serve.requests], [serve.shed], [serve.errors],
    [serve.restarts], [serve.breaker_denied], [serve.ring_dropped],
    [serve.partial], [serve.watch_delta], [serve.watch_full],
    [serve.reloads], [serve.reload_rollbacks], [serve.journal_replayed],
    [serve.queue_depth] (high-water), and the [serve.request_us]
    latency histogram (p99 source for bench).

    Telemetry (PR 7): every admitted request is assigned a trace id at
    {!offer} ([t-NNNNNN], monotonic per server) that is echoed in a
    [trace] field of each response and stamped onto the
    [serve-request] span, joining responses to the JSONL event log.
    Worker latency additionally feeds a rolling
    {!Encore_obs.Window} (p50/p90/p99 over the last
    [window_intervals * window_interval_ns]); a runtime
    {!Encore_obs.Sampler} polled on {!step} mirrors GC stats plus
    [serve.sampled.queue_depth] / [.queue_occupancy] / [.breaker] /
    [.ring_dropped] / [.sessions] gauges on its cadence.  The
    [metrics] verb exposes the registry as Prometheus text (or JSON
    with the window view); the [health] verb derives an ok / degraded
    / unhealthy verdict from rolling p99 vs. [health_p99_us], breaker
    state, queue occupancy and lifecycle, with the reasons listed —
    both bypass the breaker so the daemon stays observable while
    degraded. *)

exception Injected_crash
(** Raised by the [crash] fault-injection op; chaos drills use it to
    exercise the supervisor. *)

type config = {
  queue_capacity : int;  (** pending requests before shedding *)
  max_request_bytes : int;  (** larger lines are rejected unqueued *)
  deadline_polls : int option;
      (** per-request unit-poll budget (deterministic; wins over
          [deadline_s]) *)
  deadline_s : float option;  (** per-request wall-clock budget *)
  ring_capacity : int;  (** alert ring bound *)
  alert_score : float;  (** warnings at or above it count as detections
                            and enter the ring *)
  max_sessions : int;  (** watch sessions kept (oldest evicted) *)
  breaker_threshold : int;  (** worker crashes before the circuit opens *)
  breaker_cooldown : int;  (** denied requests before a half-open trial *)
  window_intervals : int;  (** rolling-window ring size (default 10) *)
  window_interval_ns : int64;  (** width of one window interval (1s) *)
  sampler_interval_ns : int64;  (** runtime-sampler cadence (1s) *)
  health_p99_us : float;
      (** rolling p99 above this flags the health verdict degraded *)
  reload_shadow_k : int;
      (** recent check requests replayed in shadow against a reload
          candidate before the cache generation bumps (default 8) *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?journal:Journal.t ->
  ?learner:(Encore_sysenv.Image.t -> (string, string) result) ->
  Cache.t ->
  t
(** With [journal], every admitted worker request (check / watch /
    crash) is appended and fsynced before queueing and marked complete
    after its response is produced — the write-ahead log {!replay}
    recovers from after a crash.

    [learner] enables the [learn-append] verb: it folds one observed
    image into the daemon's resident learning statistics (persisting
    them and refreshing whatever the cache's provider reads), returns
    [Ok note] describing the fold, and the server then adopts the
    refreshed model through the shadow-validated reload path.
    Learn-append requests are never journaled — their durability is
    the statistics store the hook writes, and replaying one against
    recovered statistics would double-count the image. *)

val offer : t -> string -> Encore_obs.Jsonenc.t list
(** Admit one raw request line.  [[]] when queued (or ignored: blank
    line, draining daemon); immediate error responses when the line is
    oversized or the queue sheds it. *)

val offer_from :
  t -> ?origin:int -> string -> Encore_obs.Jsonenc.t list
(** {!offer} with a connection tag: responses to this request come out
    of {!step_routed} carrying [origin], so a multiplexed transport can
    route them to the right client.  Immediate rejections returned here
    belong to the same origin. *)

val step : t -> Encore_obs.Jsonenc.t list
(** Parse and process one queued request; [[]] when the queue is
    empty. *)

val step_routed : t -> (int option * Encore_obs.Jsonenc.t) list
(** {!step}, with each response tagged by the origin passed to
    {!offer_from} ([None] for {!offer} or internally generated
    responses, e.g. a SIGHUP-requested reload — route those to the
    default sink). *)

val pending : t -> int

val state : t -> [ `Running | `Draining | `Stopped ]

val request_shutdown : t -> unit
(** Begin graceful drain (idempotent).  Safe to call from a signal
    handler: it writes one field. *)

val request_reload : t -> unit
(** Ask for a shadow-validated model reload ahead of the next queued
    request (the SIGHUP hook).  Safe to call from a signal handler: it
    writes one field.  The reload response comes out of {!step_routed}
    with no origin. *)

val replay :
  t ->
  entries:Journal.entry list ->
  emit:(Journal.entry -> Encore_obs.Jsonenc.t list -> unit) ->
  int
(** Crash recovery: re-execute journaled entries in admission order on
    a freshly created server, rebuilding the committed state (alert
    ring, watch sessions, counters) a crash destroyed.  Responses reuse
    the journaled trace ids, so an entry's replayed responses are
    byte-identical to what the uninterrupted run produced (completed
    entries) or would have produced (uncompleted ones).  [emit] sees
    every entry with its responses; deliver the uncompleted ones — the
    completed were already delivered before the crash.  Uncompleted
    entries are marked complete in the attached journal as they
    replay.  Returns the number of entries replayed. *)

val drain_flush : t -> Encore_obs.Jsonenc.t list
(** Flush the alert ring and produce the final [bye] summary; moves the
    daemon to [`Stopped].  {!run} calls this once the queue is empty
    after shutdown — call it directly only when driving
    {!offer}/{!step} by hand. *)

val run :
  t ->
  recv:(wait:bool -> [ `Line of string | `Eof | `Idle ]) ->
  send:(Encore_obs.Jsonenc.t -> unit) ->
  int
(** Reactor loop: greedily ingest available lines (blocking only when
    nothing is queued), process one request per iteration, drain on
    EOF/shutdown, and return the {!exit_code}.  [recv ~wait:false] must
    poll without blocking ([`Idle] when no line is ready); [recv] may
    return [`Idle] spuriously (e.g. on [EINTR] after a signal). *)

val exit_code : t -> int
(** [0] clean; [3] degraded — load was shed, the worker restarted, or
    the ring dropped alerts.  (Malformed requests answered with typed
    errors are normal service, not degradation.) *)

val shed_count : t -> int
val restart_count : t -> int
val ring_dropped : t -> int

val replayed_count : t -> int
(** Journal entries re-executed by {!replay} on this server. *)

val reload_rollback_count : t -> int
(** Reload attempts refused after shadow validation failed. *)

val alerts : t -> Encore_obs.Jsonenc.t list
(** Current alert-ring contents, oldest first, non-destructively — the
    crash-recovery drills compare these byte-for-byte across replays. *)

val latency_window : t -> Encore_obs.Window.view
(** The rolling request-latency view (µs) as of now — what the
    [metrics] and [health] verbs report; bench records its p50/p99
    alongside its own measurements. *)

val health_verdict : t -> string * string list
(** The current health verdict (["ok"] / ["degraded"] /
    ["unhealthy"]) and its reasons — the [health] verb's core,
    exposed for direct drivers (tests, chaos storm). *)
