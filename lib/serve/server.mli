(** The serve reactor: a transport-free request loop with bounded
    queueing, load shedding, supervised request processing and graceful
    drain.

    The daemon core is deliberately free of I/O: {!offer} hands it a
    raw request line, {!step} processes one queued request, and both
    return the responses to write.  {!run} wires them to a transport
    through two closures — the CLI provides stdio or a Unix-socket
    implementation, tests and the chaos storm drive {!offer}/{!step}
    directly.

    Robustness properties, in request order:
    - oversized lines are rejected {e before} queueing, so queue memory
      is bounded by [queue_capacity * max_request_bytes];
    - a full queue sheds the request with an [overloaded] error
      response — the daemon never buffers unboundedly;
    - malformed requests are answered with typed
      {!Encore_util.Resilience} errors, never a crash;
    - check/watch processing runs under a per-request deadline and
      yields ranked partial verdicts on expiry;
    - a crash inside the worker is contained to its request: the
      supervisor answers the request with a typed error, counts a
      restart, and gates subsequent work through a circuit breaker
      (open circuit → requests denied during backoff, half-open trial
      after the cooldown);
    - detections land in a bounded drop-oldest {!Ring}; the drain path
      flushes surviving alerts and reports the drop count;
    - shutdown (request, EOF, or {!request_shutdown} from a signal
      handler) finishes the queued requests, flushes the ring, emits a
      final [bye] summary and stops.

    Metrics: [serve.requests], [serve.shed], [serve.errors],
    [serve.restarts], [serve.breaker_denied], [serve.ring_dropped],
    [serve.partial], [serve.watch_delta], [serve.watch_full],
    [serve.reloads], [serve.queue_depth] (high-water), and the
    [serve.request_us] latency histogram (p99 source for bench). *)

exception Injected_crash
(** Raised by the [crash] fault-injection op; chaos drills use it to
    exercise the supervisor. *)

type config = {
  queue_capacity : int;  (** pending requests before shedding *)
  max_request_bytes : int;  (** larger lines are rejected unqueued *)
  deadline_polls : int option;
      (** per-request unit-poll budget (deterministic; wins over
          [deadline_s]) *)
  deadline_s : float option;  (** per-request wall-clock budget *)
  ring_capacity : int;  (** alert ring bound *)
  alert_score : float;  (** warnings at or above it count as detections
                            and enter the ring *)
  max_sessions : int;  (** watch sessions kept (oldest evicted) *)
  breaker_threshold : int;  (** worker crashes before the circuit opens *)
  breaker_cooldown : int;  (** denied requests before a half-open trial *)
}

val default_config : config

type t

val create : ?config:config -> Cache.t -> t

val offer : t -> string -> Encore_obs.Jsonenc.t list
(** Admit one raw request line.  [[]] when queued (or ignored: blank
    line, draining daemon); immediate error responses when the line is
    oversized or the queue sheds it. *)

val step : t -> Encore_obs.Jsonenc.t list
(** Parse and process one queued request; [[]] when the queue is
    empty. *)

val pending : t -> int

val state : t -> [ `Running | `Draining | `Stopped ]

val request_shutdown : t -> unit
(** Begin graceful drain (idempotent).  Safe to call from a signal
    handler: it writes one field. *)

val drain_flush : t -> Encore_obs.Jsonenc.t list
(** Flush the alert ring and produce the final [bye] summary; moves the
    daemon to [`Stopped].  {!run} calls this once the queue is empty
    after shutdown — call it directly only when driving
    {!offer}/{!step} by hand. *)

val run :
  t ->
  recv:(wait:bool -> [ `Line of string | `Eof | `Idle ]) ->
  send:(Encore_obs.Jsonenc.t -> unit) ->
  int
(** Reactor loop: greedily ingest available lines (blocking only when
    nothing is queued), process one request per iteration, drain on
    EOF/shutdown, and return the {!exit_code}.  [recv ~wait:false] must
    poll without blocking ([`Idle] when no line is ready); [recv] may
    return [`Idle] spuriously (e.g. on [EINTR] after a signal). *)

val exit_code : t -> int
(** [0] clean; [3] degraded — load was shed, the worker restarted, or
    the ring dropped alerts.  (Malformed requests answered with typed
    errors are normal service, not degradation.) *)

val shed_count : t -> int
val restart_count : t -> int
val ring_dropped : t -> int
