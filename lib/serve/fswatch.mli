(** Poll-based filesystem watcher feeding incremental [watch] deltas.

    Watches a directory of config files named [<image-id>@<app>.conf].
    {!create} baselines the directory; each {!poll} afterwards reports
    the files whose [(mtime, size)] stat signature changed (including
    files that appeared), with their current contents.  The serve loop
    turns each delta into a synthesized [watch] request
    ({!watch_request}) against the named image's session — the
    ROADMAP's "filesystem watcher feeding watch deltas" follow-on.

    Deleted files are forgotten silently; files that do not match the
    naming convention are ignored.  Detection is by stat signature, so
    a same-size rewrite within the filesystem's mtime granularity can
    be missed — the trade for a dependency-free, portable watcher. *)

type delta = {
  d_image_id : string;
  d_app : string;
  d_path : string;
  d_text : string;  (** file contents at detection time *)
}

type t

val create : dir:string -> t
(** Baseline scan: existing files become current state, not deltas. *)

val poll : t -> delta list
(** Changes since the previous poll (or {!create}), in file-name
    order.  Never raises: unreadable files and a vanished directory
    yield no deltas. *)

val poll_images : t -> string list
(** New or changed [<name>.img] collector image dumps since the
    previous poll, as paths in file-name order — the
    continuous-learning feed.  Shares {!create}'s baseline (dumps
    present at startup are not replayed) and the change detection of
    {!poll}; the two polls are independent. *)

val dir : t -> string

val watch_request : delta -> string
(** The delta as a serve-protocol [watch] request line, correlation id
    [fswatch:<image-id>]. *)

val learn_request : string -> string
(** An image-dump path as a serve-protocol [learn-append] request
    line, correlation id [fswatch:<basename>]. *)
