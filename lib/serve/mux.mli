(** Select-driven multi-client transport over the serve reactor.

    Replaces the one-client accept loop: each connection gets an
    independent line reader and a write buffer, admission into the
    server's bounded queue is round-robin across connections, and
    responses are routed back by origin through
    {!Server.offer_from} / {!Server.step_routed}.

    Robustness bounds, per connection:
    - short writes and [EAGAIN] keep the remainder buffered and counted
      ([serve.short_writes]) — a response line is never silently
      truncated to a live peer;
    - a peer that stops reading is evicted once its pending output
      exceeds [max_write_buffer];
    - a slowloris peer — holding a partial frame without progress for
      [idle_polls_budget] polls — is evicted; idle connections with no
      partial frame are never charged;
    - an unterminated frame past [max_line_bytes] is answered with a
      typed overflow response and the stream discards to the next
      newline ([serve.frame_overflow]);
    - a half-closed peer still receives the responses to its admitted
      requests before its socket closes, and EOF with a torn trailing
      frame delivers that frame for a typed rejection.

    Drain is deterministic: when the server finishes its queue after
    shutdown, every surviving connection receives the flushed alerts
    and the bye summary (bounded settle), then sockets close and
    {!stopped} holds.

    Metrics: [serve.connections_active] (gauge),
    [serve.connections_accepted], [serve.connections_evicted],
    [serve.short_writes], [serve.send_truncated],
    [serve.frame_overflow]. *)

type config = {
  max_connections : int;  (** accepted sockets beyond this wait in the
                              kernel backlog *)
  read_chunk_bytes : int;
  max_line_bytes : int;
      (** unterminated-frame bound; keep it above the server's
          [max_request_bytes] so framed-but-long lines get the server's
          typed rejection *)
  idle_polls_budget : int;  (** slowloris eviction threshold *)
  max_write_buffer : int;  (** pending output bound per connection *)
  tick_s : float;  (** select timeout when [wait] *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?listen_fd:Unix.file_descr ->
  ?orphan:(Encore_obs.Jsonenc.t -> unit) ->
  Server.t ->
  t
(** [listen_fd] (made nonblocking) accepts new clients; omit it and
    feed sockets with {!adopt} for in-process drills.  [orphan]
    receives responses with no live origin: internally generated ones
    (SIGHUP reload), responses to {!Server.offer} lines (filesystem
    watcher deltas), and the drain summary of a clientless daemon. *)

val adopt : t -> Unix.file_descr -> int
(** Register an already-connected socket (made nonblocking) as a
    client; returns its connection id. *)

val step : ?wait:bool -> t -> unit
(** One reactor turn: select, read, admit round-robin, process the
    server queue, route and flush responses, charge hostile-client
    budgets, finish the drain when the server empties.  [wait:false]
    polls without blocking (deterministic drivers). *)

val run : t -> int
(** {!step} until drained; returns the server's exit code. *)

val stopped : t -> bool
(** The drain finished: every connection got its bye and closed. *)

val connection_count : t -> int

val shutdown_fds : t -> unit
(** Close every connection and the listener (abnormal teardown). *)
