module Json = Encore_obs.Jsonenc
module Res = Encore_util.Resilience

(* --- requests ------------------------------------------------------------- *)

type check_source = Inline of string | Path of string

type metrics_format = Prometheus | Json_body

type request =
  | Check of { id : string option; source : check_source }
  | Learn_append of { id : string option; source : check_source }
  | Watch of {
      id : string option;
      image_id : string;
      app : string;
      config : string;
    }
  | Reload of { id : string option }
  | Status of { id : string option }
  | Metrics of { id : string option; format : metrics_format }
  | Health of { id : string option }
  | Shutdown of { id : string option }
  | Crash of { id : string option }

let request_op = function
  | Check _ -> "check"
  | Learn_append _ -> "learn-append"
  | Watch _ -> "watch"
  | Reload _ -> "reload"
  | Status _ -> "status"
  | Metrics _ -> "metrics"
  | Health _ -> "health"
  | Shutdown _ -> "shutdown"
  | Crash _ -> "crash"

let request_id = function
  | Check { id; _ }
  | Learn_append { id; _ }
  | Watch { id; _ }
  | Reload { id }
  | Status { id }
  | Metrics { id; _ }
  | Health { id }
  | Shutdown { id }
  | Crash { id } ->
      id

let ops =
  [
    "check"; "learn-append"; "watch"; "reload"; "status"; "metrics"; "health";
    "shutdown"; "crash";
  ]

let subject = "serve"

let bad detail = Error (Res.diag Res.Parse_error ~subject detail)

let parse line =
  match Json.of_string line with
  | Error msg -> bad (Printf.sprintf "malformed request: %s" msg)
  | Ok json -> (
      let str key = Option.bind (Json.member key json) Json.to_string_opt in
      let id = str "id" in
      match str "op" with
      | None -> bad "malformed request: missing 'op' field"
      | Some "check" -> (
          match (str "image", str "path") with
          | Some text, None -> Ok (Check { id; source = Inline text })
          | None, Some path -> Ok (Check { id; source = Path path })
          | Some _, Some _ -> bad "check: give 'image' or 'path', not both"
          | None, None -> bad "check: missing 'image' (inline dump) or 'path'")
      | Some "learn-append" -> (
          match (str "image", str "path") with
          | Some text, None -> Ok (Learn_append { id; source = Inline text })
          | None, Some path -> Ok (Learn_append { id; source = Path path })
          | Some _, Some _ ->
              bad "learn-append: give 'image' or 'path', not both"
          | None, None ->
              bad "learn-append: missing 'image' (inline dump) or 'path'")
      | Some "watch" -> (
          match (str "image", str "app", str "config") with
          | Some image_id, Some app, Some config ->
              Ok (Watch { id; image_id; app; config })
          | _ -> bad "watch: needs 'image' (id), 'app' and 'config' fields")
      | Some "reload" -> Ok (Reload { id })
      | Some "status" -> Ok (Status { id })
      | Some "metrics" -> (
          match str "format" with
          | None | Some "prometheus" | Some "prom" ->
              Ok (Metrics { id; format = Prometheus })
          | Some "json" -> Ok (Metrics { id; format = Json_body })
          | Some other ->
              bad
                (Printf.sprintf
                   "metrics: unknown format '%s' (expected 'prometheus' or \
                    'json')"
                   other))
      | Some "health" -> Ok (Health { id })
      | Some "shutdown" -> Ok (Shutdown { id })
      | Some "crash" -> Ok (Crash { id })
      | Some op ->
          bad
            (Printf.sprintf "unknown op '%s' (expected one of: %s)" op
               (String.concat ", " ops)))

(* --- responses ------------------------------------------------------------ *)

(* Every response is one JSON object per line.  [id] echoes the
   request's correlation id when it carried one; [ok] separates
   verdicts from errors so a consumer can route on one boolean. *)

let with_id id fields =
  match id with Some i -> ("id", Json.Str i) :: fields | None -> fields

let ok_response ?id ~op fields =
  Json.Obj
    (("ok", Json.Bool true) :: with_id id (("op", Json.Str op) :: fields))

let error_response ?id ?op ?(overloaded = false) (d : Res.diagnostic) =
  let op_field = match op with Some o -> [ ("op", Json.Str o) ] | None -> [] in
  Json.Obj
    (("ok", Json.Bool false)
    :: with_id id
         (op_field
         @ [
             ("error", Json.Str (Res.kind_to_string d.Res.kind));
             ("detail", Json.Str d.Res.detail);
           ]
         @ if overloaded then [ ("overloaded", Json.Bool true) ] else []))

let verdict_response ?id ~op ~image ~partial ~detections ?delta warnings =
  let delta_fields =
    match delta with
    | None -> []
    | Some (mode, changed_attrs, rules_rechecked) ->
        [
          ("mode", Json.Str mode);
          ("changed_attrs", Json.Int changed_attrs);
          ("rules_rechecked", Json.Int rules_rechecked);
        ]
  in
  ok_response ?id ~op
    ([
       ("image", Json.Str image);
       ("warnings", Json.Int (List.length warnings));
       ("detections", Json.Int detections);
       ("partial", Json.Bool partial);
     ]
    @ delta_fields
    @ [
        ( "items",
          Json.Arr (List.map Encore_detect.Report.warning_json warnings) );
      ])

(* Trace ids are assigned by the server at admission, after the
   response builders ran, so they are stamped onto the finished object;
   appended last to keep ok/id/op leading the line. *)
let with_trace trace json =
  match (trace, json) with
  | Some tid, Json.Obj fields -> Json.Obj (fields @ [ ("trace", Json.Str tid) ])
  | _ -> json

let alert_json ~image (w : Encore_detect.Warning.t) =
  match Encore_detect.Report.warning_json w with
  | Json.Obj fields ->
      Json.Obj (("ev", Json.Str "alert") :: ("image", Json.Str image) :: fields)
  | other -> other
