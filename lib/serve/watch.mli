(** Incremental re-checking for watch mode: config-change deltas
    re-evaluate only the detection units the delta touches.

    A {!session} caches the per-unit verdicts of one image's last full
    check — entry-name and column (type/value) verdicts per attribute,
    correlation verdicts per rule index.  {!update} replaces one app's
    config text, diffs the re-assembled row column-by-column, recomputes
    the units keyed by a changed column (plus the rules
    {!Encore_detect.Engine.rules_touching} selects) and splices the
    rest from cache.  The result is byte-identical to a full
    [Engine.check] of the mutated image: every unit's output depends
    only on its own key's row instances and the (unchanged)
    environment, and the final rank sort orders distinct warnings
    totally.

    Deadlines: both {!start} and {!update} poll a
    {!Encore_util.Deadline} token per unit.  Expiry yields a ranked
    {!Partial} verdict from the units that completed — and, for
    {!update}, leaves the session at its previous state, so the caller
    must discard it (the cache no longer matches the delivered
    config). *)

type session

type verdict =
  | Complete of Encore_detect.Warning.t list
  | Partial of Encore_detect.Warning.t list
      (** deadline expired mid-check; ranked prefix of the units that
          finished *)

type delta_stats = {
  changed_attrs : int;  (** columns whose instance lists changed *)
  rules_rechecked : int;  (** rules re-evaluated for those columns *)
}

val warnings_of : verdict -> Encore_detect.Warning.t list

val start :
  ?deadline:Encore_util.Deadline.t ->
  Encore_detect.Engine.t ->
  fingerprint:string ->
  Encore_sysenv.Image.t ->
  session option * verdict
(** Full check that seeds the unit caches.  [fingerprint] pins the
    model the verdicts belong to ({!Cache.fingerprint_of}); the serve
    loop compares it against the current cache entry and re-seeds after
    a reload.  No session is returned for a {!Partial} verdict. *)

val update :
  ?deadline:Encore_util.Deadline.t ->
  session ->
  Encore_detect.Engine.t ->
  app:Encore_sysenv.Image.app ->
  config:string ->
  (verdict * delta_stats, string) result
(** Apply a config replacement and re-check incrementally.  [Error]
    when the image carries no config for [app].  A {!Partial} verdict
    leaves the session unchanged — discard it. *)

val fingerprint : session -> string
val image : session -> Encore_sysenv.Image.t
val image_id : session -> string
