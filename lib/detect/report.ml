module Json = Encore_obs.Jsonenc

(* The one JSON shape for a warning on the wire: fleet streaming and the
   serve daemon must render identically so downstream consumers parse
   one schema. *)
let warning_json (w : Warning.t) =
  Json.Obj
    [
      ("kind", Json.Str (Warning.kind_label w));
      ("score", Json.Float w.Warning.score);
      ("attrs", Json.Arr (List.map (fun a -> Json.Str a) w.Warning.attrs));
      ("message", Json.Str w.Warning.message);
    ]

let to_string warnings =
  let buf = Buffer.create 512 in
  List.iteri
    (fun i w ->
      Buffer.add_string buf
        (Printf.sprintf "%2d. [%-11s score=%.2f] %s\n" (i + 1)
           (Warning.kind_label w) w.Warning.score w.Warning.message))
    warnings;
  Buffer.contents buf

let primary_attr (w : Warning.t) =
  match w.Warning.attrs with
  | [] -> w.Warning.message
  | attr :: _ -> Encore_dataset.Augment.base_attr attr

let merge_by_attr warnings =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun w ->
      let key = primary_attr w in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    warnings

let rank_of warnings pred =
  let rec go i = function
    | [] -> None
    | w :: rest -> if pred w then Some i else go (i + 1) rest
  in
  go 1 warnings

let rank_of_attr warnings needle =
  rank_of warnings (fun w ->
      List.exists
        (fun attr -> Encore_util.Strutil.contains_sub attr needle)
        w.Warning.attrs)

let detected_of warnings ~expected =
  List.partition
    (fun needle -> rank_of_attr warnings needle <> None)
    expected
