(** The EnCore anomaly detector (paper section 6).

    A learned [model] packages everything the checking side needs: the
    type environment, the learned rules and the per-attribute training
    value statistics.  Checking a target image performs the paper's four
    checks and returns a ranked warning list:

    1. entry-name violation: an attribute never seen in training,
       flagged as a likely misspelling when a near-identical trained
       attribute exists;
    2. correlation violation: a learned rule evaluates to false in the
       target context (rules whose attributes are absent are skipped);
    3. data-type violation: a value fails the syntactic match or the
       semantic verification of its column's learned type;
    4. suspicious value: a value never observed in training, ranked by
       Inverse Change Frequency — unseen values of low-diversity
       columns rank highest.

    Evaluation happens in {!Engine}: {!check} compiles the model and
    runs the compiled engine, so single-shot checking and fleet
    checking share exactly one evaluation path.  To check many images
    against one model, compile once with {!Engine.compile} (or use
    [Pipeline.check_fleet]). *)

type model = Engine.model = {
  types : Encore_typing.Infer.env;
  rules : Encore_rules.Template.rule list;
  value_stats : (string * string list) list;
      (** attribute -> distinct training values *)
  known_attrs : string list;
  training_count : int;
  overflowed : bool;
      (** true when itemset mining hit its capacity cap during learning,
          so the rule set may be incomplete (degraded mode).  Constructors
          set [false]; the resilient pipeline flips it after its mining
          capacity probe. *)
}

val learn :
  ?params:Encore_rules.Infer.params ->
  ?templates:Encore_rules.Template.t list ->
  ?entropy_threshold:float ->
  ?pool:Encore_util.Pool.t ->
  Encore_sysenv.Image.t list -> model
(** Full learning pipeline: assemble the training set, infer rules from
    the templates, apply support/confidence plus the entropy filter.
    With [pool], assembly and candidate evaluation run on its worker
    domains; the model is identical for any pool size. *)

val model_of_training :
  ?params:Encore_rules.Infer.params ->
  ?templates:Encore_rules.Template.t list ->
  ?entropy_threshold:float ->
  ?pool:Encore_util.Pool.t ->
  types:Encore_typing.Infer.env ->
  (Encore_sysenv.Image.t * Encore_dataset.Row.t) list -> model
(** Same, from an already-assembled training set. *)

val model_of_finalized : Encore_rules.Suffstats.finalized -> model
(** Repackage a finalized sufficient-statistics model.  For any corpus,
    [model_of_finalized (Suffstats.current (Suffstats.learner_of
    (Suffstats.of_images imgs)))] equals [learn imgs] byte for byte —
    the incremental learner's acceptance bar. *)

type checks = Engine.checks = {
  check_names : bool;
  check_rules : bool;
  check_types : bool;
  check_values : bool;
}

val all_checks : checks

val check :
  ?checks:checks -> model -> Encore_sysenv.Image.t -> Warning.t list
(** Ranked warnings (best first) for a target image: [Engine.check]
    over a freshly compiled engine. *)
