module Row = Encore_dataset.Row
module Assemble = Encore_dataset.Assemble
module Augment = Encore_dataset.Augment
module Tinfer = Encore_typing.Infer
module Ctype = Encore_typing.Ctype
module Syntactic = Encore_typing.Syntactic
module Semantic = Encore_typing.Semantic
module Template = Encore_rules.Template
module Relation = Encore_rules.Relation
module Strutil = Encore_util.Strutil
module Otrace = Encore_obs.Trace
module Ometrics = Encore_obs.Metrics

type model = {
  types : Tinfer.env;
  rules : Template.rule list;
  value_stats : (string * string list) list;
  known_attrs : string list;
  training_count : int;
  overflowed : bool;
}

type checks = {
  check_names : bool;
  check_rules : bool;
  check_types : bool;
  check_values : bool;
}

let all_checks =
  { check_names = true; check_rules = true; check_types = true; check_values = true }

(* --- compiled indices ---------------------------------------------------- *)

(* One typed column: the inference decision plus the syntactic matcher
   resolved at compile time.  [String_t] columns are absent (they match
   everything, so the check skips them). *)
type typed_column = {
  tc_type : Ctype.t;
  tc_type_name : string;
  tc_agreement : float;
  tc_syntactic : string -> bool;
}

(* One column's training-value statistics: hashed membership with the
   value's precomputed syntactic verdict as payload (true when the
   column has no non-trivial matcher), plus the cardinality the ICF
   score needs.  Caching the verdict at compile time means the check
   never runs a regex on a training-seen value. *)
type value_column = {
  vc_seen : (string, bool) Hashtbl.t;
  vc_cardinality : int;
}

(* Everything the per-pair checks know about one column, merged so the
   fused type/value pass costs a single hash probe per row pair. *)
type column = {
  col_typed : typed_column option;
  col_values : value_column option;
}

type t = {
  source : model;
  (* target assembly with the type environment hashed once *)
  assemble : Encore_sysenv.Image.t -> Row.t;
  known : (string, unit) Hashtbl.t;
  (* (attribute, key basename) in training first-appearance order: the
     near-miss scan walks it with a length-difference prune, which
     cannot change the winner (distance >= |length difference|) *)
  near_index : (string * string) array;
  (* rules in learned order: at paper scale there are fewer rules than
     row attributes, so evaluating each rule directly (rule_holds is a
     no-op when the slot-A attribute is absent) beats selecting
     per-attribute buckets and re-sorting them *)
  rules : Template.rule array;
  (* attribute -> indices into [rules] of every rule that names it in
     either slot, ascending: the delta-scoped re-check (serve watch
     mode) walks only these instead of the whole array *)
  rules_by_attr : (string, int list) Hashtbl.t;
  columns : (string, column) Hashtbl.t;
}

let model t = t.source

let assemble_row t img = t.assemble img

let m_compiles = Ometrics.counter "detect.compiles"

(* Assoc-list semantics everywhere below: the first binding of a key
   wins, exactly like the List.assoc walks this engine replaces. *)
let add_first tbl key v = if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v

let compile source =
  Otrace.with_span "engine-compile" @@ fun () ->
  Ometrics.incr m_compiles;
  let known = Hashtbl.create (2 * List.length source.known_attrs + 1) in
  List.iter (fun a -> add_first known a ()) source.known_attrs;
  let near_index =
    Array.of_list
      (List.map
         (fun a -> (a, Encore_confparse.Kv.key_basename a))
         source.known_attrs)
  in
  let rules = Array.of_list source.rules in
  let rules_by_attr = Hashtbl.create (2 * Array.length rules + 1) in
  Array.iteri
    (fun i (r : Template.rule) ->
      let note attr =
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt rules_by_attr attr)
        in
        (* indices arrive ascending; avoid the duplicate when a rule
           relates an attribute to itself *)
        if prev = [] || List.hd prev <> i then
          Hashtbl.replace rules_by_attr attr (i :: prev)
      in
      note r.Template.attr_a;
      note r.Template.attr_b)
    rules;
  Hashtbl.iter
    (fun attr idxs -> Hashtbl.replace rules_by_attr attr (List.rev idxs))
    (Hashtbl.copy rules_by_attr);
  let columns = Hashtbl.create 256 in
  List.iter
    (fun (attr, (d : Tinfer.decision)) ->
      (* String_t columns stay in the table (first binding must keep
         masking any duplicate) but their matcher is trivial: the check
         skips them, exactly like the interpreted walk did *)
      add_first columns attr
        {
          col_typed =
            Some
              {
                tc_type = d.Tinfer.ctype;
                tc_type_name = Ctype.to_string d.Tinfer.ctype;
                tc_agreement = d.Tinfer.agreement;
                tc_syntactic =
                  (if Ctype.equal d.Tinfer.ctype Ctype.String_t then fun _ ->
                     true
                   else Syntactic.matcher d.Tinfer.ctype);
              };
          col_values = None;
        })
    source.types;
  List.iter
    (fun (attr, values) ->
      let vc col_typed =
        (* precompute each training value's syntactic verdict under the
           column's matcher, so checking a seen value costs one probe *)
        let syn =
          match col_typed with
          | Some tc when not (Ctype.equal tc.tc_type Ctype.String_t) ->
              tc.tc_syntactic
          | Some _ | None -> fun _ -> true
        in
        let vc_seen = Hashtbl.create (2 * List.length values + 1) in
        List.iter (fun v -> Hashtbl.replace vc_seen v (syn v)) values;
        { vc_seen; vc_cardinality = List.length values }
      in
      match Hashtbl.find_opt columns attr with
      | Some ({ col_values = None; _ } as c) ->
          Hashtbl.replace columns attr
            { c with col_values = Some (vc c.col_typed) }
      | Some { col_values = Some _; _ } -> () (* first binding wins *)
      | None ->
          Hashtbl.add columns attr
            { col_typed = None; col_values = Some (vc None) })
    source.value_stats;
  {
    source;
    assemble = Assemble.target_assembler ~types:source.types;
    known;
    near_index;
    rules;
    rules_by_attr;
    columns;
  }

(* --- check 1: entry names ----------------------------------------------- *)

(* Only original configuration entries (not augmented, not globals)
   are name-checked.  The known-attribute probe runs first: almost
   every attribute of a healthy image is known, and one hash probe is
   far cheaper than the augmentation-suffix scan.  Filter order does
   not change the outcome — both tests must pass for a warning. *)
let is_config_attr attr =
  (not (Augment.is_augmented attr)) && Strutil.contains_char attr '/'

(* First known attribute at minimum edit distance, in training order —
   the same winner as a full fold, with candidates that cannot strictly
   improve on the best-so-far pruned by basename length. *)
let nearest_known t base =
  let blen = String.length base in
  let best_name = ref None and best_d = ref max_int in
  Array.iter
    (fun (candidate, cbase) ->
      let lower_bound = abs (String.length cbase - blen) in
      if lower_bound < !best_d then begin
        let d = Strutil.damerau_levenshtein base cbase in
        if d < !best_d then begin
          best_d := d;
          best_name := Some candidate
        end
      end)
    t.near_index;
  (!best_name, !best_d)

(* One attribute's name verdict: [None] when the attribute is known (or
   not an original config entry), the misspelling/unknown warning
   otherwise.  Depends only on the attribute string, so a cached verdict
   stays valid until the attribute itself changes. *)
let name_warning t attr =
  if Hashtbl.mem t.known attr || not (is_config_attr attr) then None
  else
    (* likely misspelling: close to some trained attribute *)
    let base = Encore_confparse.Kv.key_basename attr in
    let nearest_name, distance = nearest_known t base in
    let score =
      (* a 1-2 edit misspelling of a known entry is near-certain *)
      if distance <= 2 then 0.9 -. (0.1 *. float_of_int distance) else 0.3
    in
    let message =
      match nearest_name with
      | Some n when distance <= 2 ->
          Printf.sprintf "unknown entry '%s': possible misspelling of '%s'"
            attr n
      | Some _ | None ->
          Printf.sprintf "unknown entry '%s': never seen in training" attr
    in
    Some
      {
        Warning.kind =
          Warning.Entry_name_violation { unseen = attr; nearest = nearest_name };
        attrs = [ attr ];
        message;
        score;
      }

let name_warnings t row = List.filter_map (name_warning t) (Row.attrs row)

(* --- check 2: correlation rules ------------------------------------------ *)

let rule_count t = Array.length t.rules

(* Ascending, duplicate-free indices of every rule that names one of the
   attributes: the columns a config-change delta touches select exactly
   the rules that must be re-evaluated. *)
let rules_touching t attrs =
  let hit = Hashtbl.create 16 in
  List.iter
    (fun attr ->
      List.iter
        (fun i -> Hashtbl.replace hit i ())
        (Option.value ~default:[] (Hashtbl.find_opt t.rules_by_attr attr)))
    attrs;
  List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) hit [])

(* Labelled series for the fleet exposition: which rules fire, and how
   often each app trips the name / suspicious-value checks.  Counted at
   the granular units (rule) or the check entry point (app), so both
   the full-check and the delta-scoped serve paths feed them. *)
let m_rule_fired rule =
  Ometrics.counter
    (Ometrics.labeled "detect.rule_fired"
       [ ("rule", rule.Template.attr_a ^ "->" ^ rule.Template.attr_b) ])

let by_app name app = Ometrics.counter (Ometrics.labeled name [ ("app", app) ])

(* One rule's verdict in a target context: [None] when the rule holds or
   its slot attributes are absent there. *)
let rule_warning t ctx i =
  let rule = t.rules.(i) in
  match Template.rule_holds rule ctx with
  | Some false ->
      Ometrics.incr (m_rule_fired rule);
      Some
        {
          Warning.kind = Warning.Correlation_violation rule;
          attrs = [ rule.Template.attr_a; rule.Template.attr_b ];
          message =
            Printf.sprintf "correlation violated: %s"
              (Template.rule_to_string rule);
          score = 0.5 +. (0.5 *. rule.Template.confidence);
        }
  | Some true | None -> None

let rule_warnings t ctx =
  (* one pass in learned order: rule_holds yields None for rules whose
     slot attributes the image does not carry *)
  let rev = ref [] in
  for i = 0 to Array.length t.rules - 1 do
    match rule_warning t ctx i with
    | Some w -> rev := w :: !rev
    | None -> ()
  done;
  List.rev !rev

(* --- checks 3 and 4: data types + suspicious values ----------------------- *)

(* One pair's column verdicts, accumulated onto the two reverse lists: a
   single [columns] probe serves both the type check and the value
   check.  Shared by the fused full-row walk below and the delta-scoped
   [column_warnings_for]. *)
let column_pair t ~types ~values img rev_types rev_values (attr, value) =
  match Hashtbl.find_opt t.columns attr with
  | None -> ()
  | Some c ->
      (* one membership probe serves the value check and, through
         the cached verdict, the type check's syntactic matcher *)
      let cached =
        match c.col_values with
        | Some vc -> Hashtbl.find_opt vc.vc_seen value
        | None -> None
      in
      (if types then
         match c.col_typed with
         | Some tc when not (Ctype.equal tc.tc_type Ctype.String_t) ->
             let syn_ok =
               match cached with
               | Some b -> b
               | None -> tc.tc_syntactic value
             in
             if syn_ok && Semantic.verify img tc.tc_type value then ()
             else
               rev_types :=
                 {
                   Warning.kind =
                     Warning.Type_violation
                       { attr; expected = tc.tc_type; value };
                   attrs = [ attr ];
                   message =
                     Printf.sprintf "type violation: %s='%s' fails %s check"
                       attr value tc.tc_type_name;
                   score = 0.4 +. (0.5 *. tc.tc_agreement);
                 }
                 :: !rev_types
         | Some _ | None -> ());
      if values then
        match c.col_values with
        | None -> ()
        | Some vc ->
            if cached <> None then ()
            else
              (* Inverse Change Frequency: unseen values of stable
                 attributes are the most suspicious *)
              let icf = 1.0 /. float_of_int (max 1 vc.vc_cardinality) in
              rev_values :=
                {
                  Warning.kind =
                    Warning.Suspicious_value
                      { attr; value; training_cardinality = vc.vc_cardinality };
                  attrs = [ attr ];
                  message =
                    Printf.sprintf
                      "suspicious value: %s='%s' unseen in training (%d \
                       distinct values seen)"
                      attr value vc.vc_cardinality;
                  score = 0.2 +. (0.6 *. icf);
                }
                :: !rev_values

(* One fused walk over the row's pairs.  The two warning lists come back
   separately, each in pair order, so the caller concatenates them
   exactly as the unfused checks did. *)
let column_warnings t ~types ~values row img =
  let rev_types = ref [] and rev_values = ref [] in
  List.iter
    (column_pair t ~types ~values img rev_types rev_values)
    (Row.to_list row);
  (List.rev !rev_types, List.rev !rev_values)

(* Column verdicts for one attribute's instances, in instance order —
   the delta path re-checks only the attributes a config change
   touched. *)
let column_warnings_for t img ~attr ~values:vs =
  let rev_types = ref [] and rev_values = ref [] in
  List.iter
    (fun v -> column_pair t ~types:true ~values:true img rev_types rev_values
        (attr, v))
    vs;
  (List.rev !rev_types, List.rev !rev_values)

(* --- the check entry point ------------------------------------------------ *)

let m_warn_name = Ometrics.counter "detect.warnings.entry_name"
let m_warn_rule = Ometrics.counter "detect.warnings.correlation"
let m_warn_type = Ometrics.counter "detect.warnings.type"
let m_warn_value = Ometrics.counter "detect.warnings.value"
let m_checks = Ometrics.counter "detect.checks"

let counted counter ws =
  Ometrics.incr ~by:(List.length ws) counter;
  ws

let check ?(checks = all_checks) t img =
  Otrace.with_span "check"
    ~attrs:[ ("image", Encore_obs.Jsonenc.Str img.Encore_sysenv.Image.image_id) ]
    (fun () ->
      Ometrics.incr m_checks;
      let row =
        Otrace.with_span "assemble-target" (fun () -> t.assemble img)
      in
      let ctx = { Relation.image = img; row } in
      let stage name f = Otrace.with_span name f in
      let type_ws, value_ws =
        if checks.check_types || checks.check_values then
          stage "check-columns" (fun () ->
              let ts, vs =
                column_warnings t ~types:checks.check_types
                  ~values:checks.check_values row img
              in
              (counted m_warn_type ts, counted m_warn_value vs))
        else ([], [])
      in
      let warnings =
        (if checks.check_names then
           stage "check-names" (fun () -> counted m_warn_name (name_warnings t row))
         else [])
        @ (if checks.check_rules then
             stage "check-rules" (fun () ->
                 counted m_warn_rule (rule_warnings t ctx))
           else [])
        @ type_ws @ value_ws
      in
      let app =
        match img.Encore_sysenv.Image.configs with
        | { Encore_sysenv.Image.app; _ } :: _ ->
            Encore_sysenv.Image.app_to_string app
        | [] -> "default"
      in
      List.iter
        (fun (w : Warning.t) ->
          match w.Warning.kind with
          | Warning.Entry_name_violation { nearest = Some _; _ } ->
              (* the near index produced a candidate: a name hit *)
              Ometrics.incr (by_app "detect.near_miss" app)
          | Warning.Suspicious_value _ ->
              Ometrics.incr (by_app "detect.suspicious" app)
          | _ -> ())
        warnings;
      List.sort Warning.compare_rank warnings)
