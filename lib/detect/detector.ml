module Row = Encore_dataset.Row
module Assemble = Encore_dataset.Assemble
module Augment = Encore_dataset.Augment
module Tinfer = Encore_typing.Infer
module Ctype = Encore_typing.Ctype
module Syntactic = Encore_typing.Syntactic
module Semantic = Encore_typing.Semantic
module Template = Encore_rules.Template
module Rinfer = Encore_rules.Infer
module Filters = Encore_rules.Filters
module Relation = Encore_rules.Relation
module Stats = Encore_util.Stats
module Strutil = Encore_util.Strutil
module Otrace = Encore_obs.Trace
module Ometrics = Encore_obs.Metrics

type model = {
  types : Tinfer.env;
  rules : Template.rule list;
  value_stats : (string * string list) list;
  known_attrs : string list;
  training_count : int;
  overflowed : bool;
}

let m_filtered_redundant = Ometrics.counter "rules.filtered_redundant"
let m_filtered_entropy = Ometrics.counter "rules.filtered_entropy"

let model_of_training ?(params = Rinfer.default_params) ?templates
    ?entropy_threshold ?pool ~types training =
  let inferred =
    Otrace.with_span "rule-infer" (fun () ->
        Rinfer.infer ~params ?templates ?pool ~types training)
  in
  let kept =
    Otrace.with_span "rule-filter" (fun () ->
        let reduced = Filters.reduce_redundant inferred in
        Ometrics.incr
          ~by:(List.length inferred - List.length reduced)
          m_filtered_redundant;
        let kept, dropped =
          Filters.entropy_filter ?threshold:entropy_threshold training reduced
        in
        Ometrics.incr ~by:(List.length dropped) m_filtered_entropy;
        kept)
  in
  let known_attrs, value_stats =
    Otrace.with_span "value-stats" (fun () ->
        let attr_order = ref [] in
        let seen = Hashtbl.create 256 in
        let values = Hashtbl.create 256 in
        List.iter
          (fun (_, row) ->
            List.iter
              (fun (attr, v) ->
                if not (Hashtbl.mem seen attr) then begin
                  Hashtbl.add seen attr ();
                  attr_order := attr :: !attr_order
                end;
                Hashtbl.add values attr v)
              (Row.to_list row))
          training;
        let known_attrs = List.rev !attr_order in
        let value_stats =
          List.map
            (fun attr -> (attr, Stats.distinct (Hashtbl.find_all values attr)))
            known_attrs
        in
        (known_attrs, value_stats))
  in
  {
    types;
    rules = kept;
    value_stats;
    known_attrs;
    training_count = List.length training;
    overflowed = false;
  }

let learn ?params ?templates ?entropy_threshold ?pool images =
  Otrace.with_span "learn" (fun () ->
      let assembled =
        Otrace.with_span "assemble" (fun () ->
            Assemble.assemble_training ?pool images)
      in
      let rows = Encore_dataset.Table.rows assembled.Assemble.table in
      let training =
        List.map2 (fun img (_, row) -> (img, row)) images rows
      in
      model_of_training ?params ?templates ?entropy_threshold ?pool
        ~types:assembled.Assemble.types training)

type checks = {
  check_names : bool;
  check_rules : bool;
  check_types : bool;
  check_values : bool;
}

let all_checks =
  { check_names = true; check_rules = true; check_types = true; check_values = true }

(* --- check 1: entry names ---------------------------------------------- *)

let config_attrs row =
  (* only original configuration entries (not augmented, not globals) *)
  List.filter
    (fun attr ->
      (not (Augment.is_augmented attr))
      && Strutil.contains_char attr '/')
    (Row.attrs row)

let name_warnings model row =
  let known = Hashtbl.create 256 in
  List.iter (fun a -> Hashtbl.add known a ()) model.known_attrs;
  List.filter_map
    (fun attr ->
      if Hashtbl.mem known attr then None
      else
        (* likely misspelling: close to some trained attribute *)
        let base = Encore_confparse.Kv.key_basename attr in
        let nearest =
          List.fold_left
            (fun best candidate ->
              let cbase = Encore_confparse.Kv.key_basename candidate in
              let d = Strutil.damerau_levenshtein base cbase in
              match best with
              | Some (_, bd) when bd <= d -> best
              | _ -> Some (candidate, d))
            None model.known_attrs
        in
        let nearest_name, distance =
          match nearest with
          | Some (n, d) -> (Some n, d)
          | None -> (None, max_int)
        in
        let score =
          (* a 1-2 edit misspelling of a known entry is near-certain *)
          if distance <= 2 then 0.9 -. (0.1 *. float_of_int distance)
          else 0.3
        in
        let message =
          match nearest_name with
          | Some n when distance <= 2 ->
              Printf.sprintf
                "unknown entry '%s': possible misspelling of '%s'" attr n
          | Some _ | None ->
              Printf.sprintf "unknown entry '%s': never seen in training" attr
        in
        Some
          {
            Warning.kind = Warning.Entry_name_violation { unseen = attr; nearest = nearest_name };
            attrs = [ attr ];
            message;
            score;
          })
    (config_attrs row)

(* --- check 2: correlation rules ---------------------------------------- *)

let rule_warnings model ctx =
  List.filter_map
    (fun rule ->
      match Template.rule_holds rule ctx with
      | Some false ->
          Some
            {
              Warning.kind = Warning.Correlation_violation rule;
              attrs = [ rule.Template.attr_a; rule.Template.attr_b ];
              message =
                Printf.sprintf "correlation violated: %s"
                  (Template.rule_to_string rule);
              score = 0.5 +. (0.5 *. rule.Template.confidence);
            }
      | Some true | None -> None)
    model.rules

(* --- check 3: data types ------------------------------------------------ *)

let type_warnings model row img =
  List.concat_map
    (fun (attr, value) ->
      match Tinfer.find model.types attr with
      | None -> []
      | Some decision ->
          let t = decision.Tinfer.ctype in
          (* String matches anything; every other type, including the
             trivial Number, carries a checkable shape *)
          if Ctype.equal t Ctype.String_t then []
          else if Syntactic.matches t value && Semantic.verify img t value then []
          else
            [
              {
                Warning.kind = Warning.Type_violation { attr; expected = t; value };
                attrs = [ attr ];
                message =
                  Printf.sprintf "type violation: %s='%s' fails %s check" attr
                    value (Ctype.to_string t);
                score = 0.4 +. (0.5 *. decision.Tinfer.agreement);
              };
            ])
    (Row.to_list row)

(* --- check 4: suspicious values ----------------------------------------- *)

let value_warnings model row =
  List.filter_map
    (fun (attr, value) ->
      match List.assoc_opt attr model.value_stats with
      | None -> None
      | Some seen ->
          if List.mem value seen then None
          else
            let cardinality = List.length seen in
            (* Inverse Change Frequency: unseen values of stable
               attributes are the most suspicious *)
            let icf = 1.0 /. float_of_int (max 1 cardinality) in
            Some
              {
                Warning.kind =
                  Warning.Suspicious_value
                    { attr; value; training_cardinality = cardinality };
                attrs = [ attr ];
                message =
                  Printf.sprintf
                    "suspicious value: %s='%s' unseen in training (%d distinct \
                     values seen)"
                    attr value cardinality;
                score = 0.2 +. (0.6 *. icf);
              })
    (Row.to_list row)

let m_warn_name = Ometrics.counter "detect.warnings.entry_name"
let m_warn_rule = Ometrics.counter "detect.warnings.correlation"
let m_warn_type = Ometrics.counter "detect.warnings.type"
let m_warn_value = Ometrics.counter "detect.warnings.value"
let m_checks = Ometrics.counter "detect.checks"

let counted counter ws =
  Ometrics.incr ~by:(List.length ws) counter;
  ws

let check ?(checks = all_checks) model img =
  Otrace.with_span "check"
    ~attrs:[ ("image", Encore_obs.Jsonenc.Str img.Encore_sysenv.Image.image_id) ]
    (fun () ->
      Ometrics.incr m_checks;
      let row =
        Otrace.with_span "assemble-target" (fun () ->
            Assemble.assemble_target ~types:model.types img)
      in
      let ctx = { Relation.image = img; row } in
      let stage name f = Otrace.with_span name f in
      let warnings =
        (if checks.check_names then
           stage "check-names" (fun () ->
               counted m_warn_name (name_warnings model row))
         else [])
        @ (if checks.check_rules then
             stage "check-rules" (fun () ->
                 counted m_warn_rule (rule_warnings model ctx))
           else [])
        @ (if checks.check_types then
             stage "check-types" (fun () ->
                 counted m_warn_type (type_warnings model row img))
           else [])
        @ (if checks.check_values then
             stage "check-values" (fun () ->
                 counted m_warn_value (value_warnings model row))
           else [])
      in
      List.sort Warning.compare_rank warnings)
