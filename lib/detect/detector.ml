module Row = Encore_dataset.Row
module Assemble = Encore_dataset.Assemble
module Tinfer = Encore_typing.Infer
module Template = Encore_rules.Template
module Rinfer = Encore_rules.Infer
module Filters = Encore_rules.Filters
module Stats = Encore_util.Stats
module Otrace = Encore_obs.Trace
module Ometrics = Encore_obs.Metrics

type model = Engine.model = {
  types : Tinfer.env;
  rules : Template.rule list;
  value_stats : (string * string list) list;
  known_attrs : string list;
  training_count : int;
  overflowed : bool;
}

let m_filtered_redundant = Ometrics.counter "rules.filtered_redundant"
let m_filtered_entropy = Ometrics.counter "rules.filtered_entropy"

let model_of_training ?(params = Rinfer.default_params) ?templates
    ?entropy_threshold ?pool ~types training =
  (* one columnar view shared by inference and the entropy filter *)
  let view =
    Otrace.with_span "columnar" (fun () ->
        Encore_dataset.Colview.of_rows (List.map snd training))
  in
  let inferred =
    Otrace.with_span "rule-infer" (fun () ->
        Rinfer.infer ~params ?templates ?pool ~view ~types training)
  in
  let kept =
    Otrace.with_span "rule-filter" (fun () ->
        let reduced = Filters.reduce_redundant inferred in
        Ometrics.incr
          ~by:(List.length inferred - List.length reduced)
          m_filtered_redundant;
        let kept, dropped =
          Filters.entropy_filter ?threshold:entropy_threshold ~view training
            reduced
        in
        Ometrics.incr ~by:(List.length dropped) m_filtered_entropy;
        kept)
  in
  let known_attrs, value_stats =
    Otrace.with_span "value-stats" (fun () ->
        let attr_order = ref [] in
        let seen = Hashtbl.create 256 in
        let values = Hashtbl.create 256 in
        List.iter
          (fun (_, row) ->
            List.iter
              (fun (attr, v) ->
                if not (Hashtbl.mem seen attr) then begin
                  Hashtbl.add seen attr ();
                  attr_order := attr :: !attr_order
                end;
                Hashtbl.add values attr v)
              (Row.to_list row))
          training;
        let known_attrs = List.rev !attr_order in
        let value_stats =
          List.map
            (fun attr -> (attr, Stats.distinct (Hashtbl.find_all values attr)))
            known_attrs
        in
        (known_attrs, value_stats))
  in
  {
    types;
    rules = kept;
    value_stats;
    known_attrs;
    training_count = List.length training;
    overflowed = false;
  }

let model_of_finalized (f : Encore_rules.Suffstats.finalized) =
  {
    types = f.Encore_rules.Suffstats.f_types;
    rules = f.f_rules;
    value_stats = f.f_value_stats;
    known_attrs = f.f_known_attrs;
    training_count = f.f_training_count;
    overflowed = f.f_overflowed;
  }

let learn ?params ?templates ?entropy_threshold ?pool images =
  Otrace.with_span "learn" (fun () ->
      let assembled =
        Otrace.with_span "assemble" (fun () ->
            Assemble.assemble_training ?pool images)
      in
      let rows = Encore_dataset.Table.rows assembled.Assemble.table in
      let training =
        List.map2 (fun img (_, row) -> (img, row)) images rows
      in
      model_of_training ?params ?templates ?entropy_threshold ?pool
        ~types:assembled.Assemble.types training)

type checks = Engine.checks = {
  check_names : bool;
  check_rules : bool;
  check_types : bool;
  check_values : bool;
}

let all_checks = Engine.all_checks

(* The one evaluation path: compile, then check.  Callers holding a
   model and checking many images should {!Engine.compile} once
   themselves (or go through [Pipeline.check_fleet]); this wrapper
   exists for the one-shot callers. *)
let check ?checks model img = Engine.check ?checks (Engine.compile model) img
