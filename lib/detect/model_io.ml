module Csvio = Encore_util.Csvio
module Snapshot = Encore_util.Snapshot
module Ctype = Encore_typing.Ctype
module Tinfer = Encore_typing.Infer
module Template = Encore_rules.Template
module Relation = Encore_rules.Relation

let magic = "ENCORE-MODEL"
let version = "1"

let section name = Printf.sprintf "@%s" name

let opt_ctype_to_string = function
  | None -> ""
  | Some ct -> Ctype.to_string ct

let opt_ctype_of_string = function
  | "" -> Ok None
  | s -> (
      match Ctype.of_string s with
      | Some ct -> Ok (Some ct)
      | None -> Error ("unknown type: " ^ s))

let to_string (m : Detector.model) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "%s %s\n" magic version);
  Buffer.add_string buf
    (Printf.sprintf "%s\n%d\n" (section "meta") m.Detector.training_count);
  if m.Detector.overflowed then Buffer.add_string buf "overflowed\n";
  Buffer.add_string buf (section "types");
  Buffer.add_char buf '\n';
  List.iter
    (fun (attr, (d : Tinfer.decision)) ->
      Buffer.add_string buf
        (Csvio.row_to_string
           [ attr; Ctype.to_string d.Tinfer.ctype;
             string_of_float d.Tinfer.agreement; string_of_int d.Tinfer.samples ]);
      Buffer.add_char buf '\n')
    m.Detector.types;
  Buffer.add_string buf (section "rules");
  Buffer.add_char buf '\n';
  List.iter
    (fun (r : Template.rule) ->
      let t = r.Template.template in
      Buffer.add_string buf
        (Csvio.row_to_string
           [ t.Template.tname; Relation.symbol t.Template.relation;
             opt_ctype_to_string t.Template.slot_a;
             opt_ctype_to_string t.Template.slot_b;
             (match t.Template.min_confidence with
              | Some c -> string_of_float c
              | None -> "");
             r.Template.attr_a; r.Template.attr_b;
             string_of_int r.Template.support;
             string_of_float r.Template.confidence ]);
      Buffer.add_char buf '\n')
    m.Detector.rules;
  Buffer.add_string buf (section "values");
  Buffer.add_char buf '\n';
  List.iter
    (fun (attr, values) ->
      Buffer.add_string buf (Csvio.row_to_string (attr :: values));
      Buffer.add_char buf '\n')
    m.Detector.value_stats;
  Buffer.add_string buf (section "attrs");
  Buffer.add_char buf '\n';
  List.iter
    (fun attr ->
      Buffer.add_string buf (Csvio.row_to_string [ attr ]);
      Buffer.add_char buf '\n')
    m.Detector.known_attrs;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------- *)

let ( let* ) = Result.bind

type parse_error = { offset : int; message : string }

(* Non-empty lines paired with the byte offset where each starts, so
   every parse failure can name the exact file position. *)
let offset_lines text =
  let n = String.length text in
  let rec go acc off =
    if off >= n then List.rev acc
    else
      let nl =
        match String.index_from_opt text off '\n' with
        | Some i -> i
        | None -> n
      in
      let line = String.sub text off (nl - off) in
      let acc = if line = "" then acc else (off, line) :: acc in
      go acc (nl + 1)
  in
  go [] 0

let parse_type_row = function
  | [ attr; ctype; agreement; samples ] -> (
      match (Ctype.of_string ctype, float_of_string_opt agreement, int_of_string_opt samples) with
      | Some ctype, Some agreement, Some samples ->
          Ok (attr, { Tinfer.ctype; agreement; samples })
      | _ -> Error ("bad type row for " ^ attr))
  | row -> Error ("malformed type row: " ^ String.concat "," row)

let parse_rule_row = function
  | [ tname; symbol; slot_a; slot_b; min_conf; attr_a; attr_b; support; confidence ] ->
      let* relation =
        match Relation.of_symbol symbol with
        | Some r -> Ok r
        | None -> Error ("unknown relation symbol: " ^ symbol)
      in
      let* slot_a = opt_ctype_of_string slot_a in
      let* slot_b = opt_ctype_of_string slot_b in
      let* min_confidence =
        match min_conf with
        | "" -> Ok None
        | s -> (
            match float_of_string_opt s with
            | Some f -> Ok (Some f)
            | None -> Error ("bad min confidence: " ^ s))
      in
      let* support =
        Option.to_result ~none:("bad support: " ^ support) (int_of_string_opt support)
      in
      let* confidence =
        Option.to_result ~none:("bad confidence: " ^ confidence)
          (float_of_string_opt confidence)
      in
      Ok
        {
          Template.template =
            { Template.tname; description = "restored rule"; relation;
              slot_a; slot_b; min_confidence };
          attr_a; attr_b; support; confidence;
        }
  | row -> Error ("malformed rule row: " ^ String.concat "," row)

let fail ~offset message = Error { offset; message }

let rec collect_section parse acc = function
  | [] -> Ok (List.rev acc, [])
  | ((_, line) :: _ : (int * string) list) as rest when line.[0] = '@' ->
      Ok (List.rev acc, rest)
  | (off, line) :: rest ->
      let* row =
        match Csvio.parse (line ^ "\n") with
        | [ row ] -> Ok row
        | _ -> fail ~offset:off ("unparsable line: " ^ line)
      in
      let* item = Result.map_error (fun m -> { offset = off; message = m }) (parse row) in
      collect_section parse (item :: acc) rest

let section_header name = function
  | ((off, line) : int * string) :: rest when line = section name -> Ok (off, rest)
  | (off, _) :: _ -> fail ~offset:off (Printf.sprintf "missing @%s section" name)
  | [] ->
      fail ~offset:0 (Printf.sprintf "missing @%s section (input exhausted)" name)

(* Parse a bare model payload (no snapshot envelope), reporting the
   byte offset of the first line that fails. *)
let parse_payload text =
  match offset_lines text with
  | (_, header) :: rest when header = magic ^ " " ^ version ->
      let* moff, rest = section_header "meta" rest in
      let* (meta, overflowed), rest =
        match rest with
        | (coff, count) :: rest -> (
            match int_of_string_opt count with
            | Some n -> (
                (* "overflowed" marker is optional for older model files *)
                match rest with
                | (_, "overflowed") :: rest -> Ok ((n, true), rest)
                | rest -> Ok ((n, false), rest))
            | None -> fail ~offset:coff ("bad training count: " ^ count))
        | [] -> fail ~offset:moff "truncated @meta section"
      in
      let* _, rest = section_header "types" rest in
      let* types, rest = collect_section parse_type_row [] rest in
      let* _, rest = section_header "rules" rest in
      let* rules, rest = collect_section parse_rule_row [] rest in
      let* _, rest = section_header "values" rest in
      let* value_stats, rest =
        collect_section
          (function
            | attr :: values -> Ok (attr, values)
            | [] -> Error "empty values row")
          [] rest
      in
      let* _, rest = section_header "attrs" rest in
      let* attrs, leftover =
        collect_section
          (function
            | [ attr ] -> Ok attr
            | row -> Error ("malformed attr row: " ^ String.concat "," row))
          [] rest
      in
      (match leftover with
       | (off, _) :: _ -> fail ~offset:off "trailing content after @attrs"
       | [] ->
           Ok
             {
               Detector.types; rules; value_stats; known_attrs = attrs;
               training_count = meta; overflowed;
             })
  | (off, header) :: _ -> fail ~offset:off ("unsupported model header: " ^ header)
  | [] -> fail ~offset:0 "empty model file"

let of_string text =
  Result.map_error
    (fun { offset; message } -> Printf.sprintf "byte %d: %s" offset message)
    (parse_payload text)

(* --- durable persistence -------------------------------------------------- *)

type load_error = Snapshot.error

let load_error_to_string = Snapshot.error_to_string

let snapshot_kind = "model"

let save path model = Snapshot.write_atomic ~kind:snapshot_kind path (to_string model)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error (Snapshot.Io_error { path; detail = e })
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | text -> Ok text
      | exception e ->
          Error (Snapshot.Io_error { path; detail = Printexc.to_string e }))

let parse_verified ~path payload =
  match parse_payload payload with
  | Ok model -> Ok model
  | Error { offset; message } ->
      Error (Snapshot.Malformed { path; offset; detail = message })

let load path =
  let* text = read_file path in
  if starts_with ~prefix:(Snapshot.magic ^ " ") text then
    (* current format: verified envelope, then the typed payload *)
    let* payload = Snapshot.read ~kind:snapshot_kind path in
    parse_verified ~path payload
  else if starts_with ~prefix:(magic ^ " " ^ version) text then
    (* legacy bare payload (pre-snapshot saves): no checksum to verify,
       but parse failures still carry their file offset *)
    parse_verified ~path text
  else
    Error
      (Snapshot.Version_mismatch
         {
           path;
           found =
             (match offset_lines text with
              | (_, first) :: _ -> String.sub first 0 (min 40 (String.length first))
              | [] -> "(empty file)");
           expected =
             Printf.sprintf "%s %s ... or legacy %s %s" Snapshot.magic
               Snapshot.version magic version;
         })

(* --- versioned model store ------------------------------------------------ *)

module Store = struct
  type t = Snapshot.Store.t

  let create ?keep ~dir () = Snapshot.Store.create ?keep ~kind:snapshot_kind ~dir ()
  let dir = Snapshot.Store.dir
  let snapshots = Snapshot.Store.snapshots
  let latest_path = Snapshot.Store.latest_path

  let save store model = Snapshot.Store.save store (to_string model)

  let load_latest store =
    let* payload, path = Snapshot.Store.load_latest store in
    let* model = parse_verified ~path payload in
    Ok (model, path)
end
