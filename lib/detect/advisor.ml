module Row = Encore_dataset.Row
module Template = Encore_rules.Template
module Relation = Encore_rules.Relation
module Ctype = Encore_typing.Ctype
module Stats = Encore_util.Stats

type suggestion = {
  warning : Warning.t;
  action : string;
  rationale : string;
}

(* attr -> distinct training values, hashed once per advise call (the
   assoc-list walk is banned from the check path by the lint gate) *)
let value_stats_index model =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (attr, values) ->
      if not (Hashtbl.mem tbl attr) then Hashtbl.add tbl attr values)
    model.Detector.value_stats;
  tbl

let top_training_values stats attr =
  match Hashtbl.find_opt stats attr with
  | Some (_ :: _ as values) ->
      let top = List.filteri (fun i _ -> i < 3) values in
      Some (String.concat ", " top)
  | Some [] | None -> None

let first_value row attr = Row.get row attr

let rule_suggestion row (rule : Template.rule) =
  let a = rule.Template.attr_a and b = rule.Template.attr_b in
  let va = Option.value ~default:"?" (first_value row a) in
  let vb = Option.value ~default:"?" (first_value row b) in
  let confidence_note =
    Printf.sprintf "the rule held in %d training images (confidence %.0f%%)"
      rule.Template.support (100.0 *. rule.Template.confidence)
  in
  match rule.Template.template.Template.relation with
  | Relation.Ownership ->
      ( Printf.sprintf "chown %s %s" vb va,
        Printf.sprintf "%s names the owner of %s; %s" b a confidence_note )
  | Relation.User_in_group ->
      ( Printf.sprintf "usermod -a -G %s %s" vb va,
        Printf.sprintf "%s must belong to group %s; %s" va vb confidence_note )
  | Relation.Not_accessible ->
      ( Printf.sprintf "chmod o-rwx %s" va,
        Printf.sprintf "%s must not be readable by %s; %s" va vb confidence_note )
  | Relation.Eq_all | Relation.Eq_exists ->
      ( Printf.sprintf "set %s = %s (to match %s)" a vb b,
        Printf.sprintf "the two entries agree in training; %s" confidence_note )
  | Relation.Size_less | Relation.Num_less ->
      ( Printf.sprintf "lower %s below %s (currently %s)" a vb va,
        Printf.sprintf "%s stays under %s in training; %s" a b confidence_note )
  | Relation.Concat_path ->
      ( Printf.sprintf "create %s under %s, or fix the fragment %s" vb va b,
        Printf.sprintf "%s + %s must resolve in the filesystem; %s" a b confidence_note )
  | Relation.Subnet ->
      ( Printf.sprintf "move %s into the %s network (%s)" a b vb,
        confidence_note )
  | Relation.Substring ->
      ( Printf.sprintf "make %s contain %s" b va,
        Printf.sprintf "%s is a fragment of %s in training; %s" a b confidence_note )
  | Relation.Bool_implies (pa, pb) ->
      ( Printf.sprintf "with %s=%b, set %s to %b" a pa b pb,
        Printf.sprintf "the boolean pairing held in training; %s" confidence_note )

let advise model img warnings =
  let row =
    Encore_dataset.Assemble.assemble_target ~types:model.Detector.types img
  in
  let stats = value_stats_index model in
  List.map
    (fun (w : Warning.t) ->
      let action, rationale =
        match w.Warning.kind with
        | Warning.Correlation_violation rule -> rule_suggestion row rule
        | Warning.Entry_name_violation { unseen; nearest = Some near } ->
            ( Printf.sprintf "rename %s to %s" unseen near,
              "every training image spells the entry this way" )
        | Warning.Entry_name_violation { unseen; nearest = None } ->
            ( Printf.sprintf "remove or double-check the unknown entry %s" unseen,
              "the entry was never observed during training" )
        | Warning.Type_violation { attr; expected; value } ->
            let hint =
              match expected with
              | Ctype.File_path ->
                  "point it at an existing filesystem object"
              | Ctype.User_name -> "use an account from /etc/passwd"
              | Ctype.Group_name -> "use a group from /etc/group"
              | Ctype.Port_number -> "use a service port from /etc/services"
              | Ctype.Size -> "use a byte count with a K/M/G/T suffix"
              | Ctype.Number -> "use a plain number"
              | _ -> "supply a value of the expected form"
            in
            ( Printf.sprintf "fix %s='%s' (%s)" attr value hint,
              Printf.sprintf "the entry is a %s in every training image"
                (Ctype.to_string expected) )
        | Warning.Suspicious_value { attr; value; _ } -> (
            match top_training_values stats attr with
            | Some common ->
                ( Printf.sprintf "review %s='%s'; training uses: %s" attr value common,
                  "the value was never observed during training" )
            | None ->
                ( Printf.sprintf "review %s='%s'" attr value,
                  "the value was never observed during training" ))
      in
      { warning = w; action; rationale })
    warnings

let to_string suggestions =
  let buf = Buffer.create 512 in
  List.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "%2d. %s\n    fix:  %s\n    why:  %s\n" (i + 1)
           s.warning.Warning.message s.action s.rationale))
    suggestions;
  Buffer.contents buf
