module Row = Encore_dataset.Row
module Assemble = Encore_dataset.Assemble
module Stats = Encore_util.Stats

let stats_of_rows rows =
  let order = ref [] in
  let seen = Hashtbl.create 128 in
  let values = Hashtbl.create 128 in
  List.iter
    (fun row ->
      List.iter
        (fun (attr, v) ->
          if not (Hashtbl.mem seen attr) then begin
            Hashtbl.add seen attr ();
            order := attr :: !order
          end;
          Hashtbl.add values attr v)
        (Row.to_list row))
    rows;
  let known = List.rev !order in
  ( known,
    List.map (fun a -> (a, Stats.distinct (Hashtbl.find_all values a))) known )

let baseline_model images =
  let rows = List.map Assemble.parse_only images in
  let known_attrs, value_stats = stats_of_rows rows in
  {
    Detector.types = [];
    rules = [];
    value_stats;
    known_attrs;
    training_count = List.length images;
    overflowed = false;
  }

let no_rules_no_types =
  { Detector.check_names = true; check_rules = false; check_types = false;
    check_values = true }

let no_rules =
  { Detector.check_names = true; check_rules = false; check_types = true;
    check_values = true }

let baseline_check model img =
  (* With model.types empty, the target row carries only the raw config
     entries plus image globals; globals are not in value_stats so the
     remaining work is pure value comparison.  Filter to configuration
     attributes so global facts never warn by name. *)
  let warnings = Detector.check ~checks:no_rules_no_types model img in
  List.filter
    (fun w ->
      List.exists
        (fun attr -> Encore_util.Strutil.contains_char attr '/')
        w.Warning.attrs)
    warnings

let baseline_env_model images =
  let assembled = Assemble.assemble_training images in
  let rows = Encore_dataset.Table.rows assembled.Assemble.table in
  let known_attrs, value_stats =
    stats_of_rows (List.map snd rows)
  in
  {
    Detector.types = assembled.Assemble.types;
    rules = [];
    value_stats;
    known_attrs;
    training_count = List.length images;
    overflowed = false;
  }

let baseline_env_check model img = Detector.check ~checks:no_rules model img
