(** Warning report rendering and ground-truth evaluation helpers. *)

val to_string : Warning.t list -> string
(** Numbered, ranked listing. *)

val warning_json : Warning.t -> Encore_obs.Jsonenc.t
(** Canonical wire shape of one warning
    ([{kind, score, attrs, message}]) — shared by fleet streaming
    output and the serve daemon so both speak one schema. *)

val merge_by_attr : Warning.t list -> Warning.t list
(** Collapse warnings sharing a primary (base) attribute into the
    highest-scored one, preserving rank order.  An environment problem
    typically violates several rules at once (ownership, equal-owner,
    suspicious value); the ranked report the paper shows counts it
    once. *)

val rank_of : Warning.t list -> (Warning.t -> bool) -> int option
(** 1-based rank of the first warning satisfying the predicate. *)

val rank_of_attr : Warning.t list -> string -> int option
(** 1-based rank of the first warning implicating an attribute whose
    name contains the given substring (augmented attributes of an entry
    count as hits for that entry). *)

val detected_of :
  Warning.t list -> expected:string list -> string list * string list
(** [(hit, missed)] partition of the expected attribute substrings. *)
