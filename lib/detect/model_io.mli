(** Model persistence.

    The paper separates checking from learning so that "the learned
    rules can be reused to check different systems" (section 3): a model
    learned once from a large training set ships to the machines being
    checked.  This module serializes a {!Detector.model} to a portable
    text format and back.

    Format: a versioned header followed by CSV sections
    ([types], [rules], [values], [attrs]); everything the checker needs,
    nothing else.  Custom-type *registrations* are not embedded — load
    the same customization file on both sides.

    Durability: {!save} wraps the payload in an
    {!Encore_util.Snapshot} envelope (schema version, checksum) and
    writes it atomically; {!load} verifies the envelope and returns
    typed errors instead of raising.  Legacy bare payloads written
    before the envelope existed still load. *)

val to_string : Detector.model -> string

type parse_error = { offset : int; message : string }
(** A payload parse failure, anchored at the byte offset (within the
    payload) of the offending line. *)

val parse_payload : string -> (Detector.model, parse_error) result
(** Parse a bare model payload (no snapshot envelope). *)

val of_string : string -> (Detector.model, string) result
(** {!parse_payload} with the error rendered as ["byte N: ..."]. *)

type load_error = Encore_util.Snapshot.error

val load_error_to_string : load_error -> string
(** Variant name, file, byte offset where detection failed, detail. *)

val snapshot_kind : string
(** The snapshot [kind] tag for model artifacts: ["model"]. *)

val save : string -> Detector.model -> unit
(** Atomic write (temp file + fsync + rename) of the enveloped model. *)

val load : string -> (Detector.model, load_error) result
(** Verify the snapshot envelope and parse the payload.  Never raises:
    unreadable files are [Io_error], short payloads [Truncated],
    checksum failures [Corrupt], foreign or future formats
    [Version_mismatch], and payloads that verify but do not parse
    [Malformed] with the offset of the failing line.  Legacy files
    beginning with [ENCORE-MODEL 1] (pre-envelope saves) are parsed
    directly. *)

(** Versioned model store: numbered snapshots under one directory, a
    [latest] pointer, pruning to the last [keep] models, and rollback
    to the newest snapshot whose envelope still verifies. *)
module Store : sig
  type t

  val create : ?keep:int -> dir:string -> unit -> t
  (** Open (creating the directory if needed) a model store.  [keep]
      defaults to 5. *)

  val dir : t -> string

  val snapshots : t -> string list
  (** Snapshot paths, newest first (verifiable or not). *)

  val latest_path : t -> string option

  val save : t -> Detector.model -> string
  (** Serialize, write as the next numbered snapshot, repoint [latest],
      prune; returns the snapshot path. *)

  val load_latest : t -> (Detector.model * string, load_error) result
  (** [(model, path)] of the newest snapshot that verifies; a corrupt
      head rolls back to an older verifiable snapshot. *)
end
