(** Compiled detection engine: the compile-once / check-many serving
    path.

    A learned {!model} is an exchange format — assoc lists and plain
    rule lists, easy to serialize and diff — but walking it per checked
    image makes every check a linear re-scan of the whole model.
    {!compile} builds, once per model, the hashed indices the four
    detector checks actually need:

    - a known-attribute set and a near-miss index (attribute basenames
      precomputed, length-pruned scan) for the misspelling check;
    - a target assembler with the type environment hashed once
      ({!Encore_dataset.Assemble.target_assembler});
    - the correlation rules as an array in learned order (evaluating a
      rule whose attributes the image lacks is a single failed hash
      probe, cheaper at paper scale than per-attribute bucketing);
    - one merged per-attribute column table: the type decision with its
      syntactic matcher resolved to a closure at compile time
      ({!Encore_typing.Syntactic.matcher}), and the training-value hash
      set — with each seen value's syntactic verdict precomputed — plus
      its cardinality for the Inverse-Change-Frequency score.  The type
      and value checks run as one fused walk, a single probe per row
      pair.

    {!check} over the compiled form is byte-identical in output to the
    interpreted walk it replaces ({!Detector.check} is now a thin
    compile-then-check wrapper, and an equivalence property test in
    [test/test_engine.ml] pins the contract against a reference
    interpreted implementation).  A compiled engine is immutable after
    {!compile} and safe to share across pool worker domains —
    {!Pipeline.check_fleet} compiles once and fans the image list
    out. *)

type model = {
  types : Encore_typing.Infer.env;
  rules : Encore_rules.Template.rule list;
  value_stats : (string * string list) list;
      (** attribute -> distinct training values *)
  known_attrs : string list;
  training_count : int;
  overflowed : bool;
      (** true when itemset mining hit its capacity cap during learning,
          so the rule set may be incomplete (degraded mode). *)
}

type checks = {
  check_names : bool;
  check_rules : bool;
  check_types : bool;
  check_values : bool;
}

val all_checks : checks

type t
(** A compiled engine.  Read-only after {!compile}; share freely across
    domains. *)

val compile : model -> t
(** Build the hashed indices.  O(model size); every subsequent
    {!check} touches only the buckets the target image hits. *)

val model : t -> model
(** The model the engine was compiled from. *)

val check :
  ?checks:checks -> t -> Encore_sysenv.Image.t -> Warning.t list
(** Ranked warnings (best first) for a target image — the paper's four
    checks over the compiled indices.  Identical output to the
    historical interpreted [Detector.check]. *)

(** {2 Delta-scoped checking}

    The granular entry points below expose the per-attribute / per-rule
    units {!check} is built from, so an incremental caller (the serve
    watch path) can re-evaluate only the units a config-change delta
    touches and splice the results into a cached verdict.  Each unit is
    independent of every other: a unit's output depends only on the
    engine, the image's environment, and the named attribute's (or
    rule's slot attributes') row instances — so re-running the touched
    units over the mutated image and keeping the rest cached is
    warning-for-warning identical to a full {!check}. *)

val assemble_row : t -> Encore_sysenv.Image.t -> Encore_dataset.Row.t
(** The compiled target assembler: config entries plus augmented and
    environment attributes, exactly the row {!check} builds
    internally. *)

val name_warning : t -> string -> Warning.t option
(** One attribute's entry-name verdict.  [None] when the attribute is
    known or not an original config entry. *)

val rule_count : t -> int
(** Number of compiled correlation rules; valid indices for
    {!rule_warning} are [0 .. rule_count - 1], in learned order. *)

val rules_touching : t -> string list -> int list
(** Ascending, duplicate-free indices of every rule naming one of the
    attributes in either slot — the rules a delta over those columns
    can affect. *)

val rule_warning : t -> Encore_rules.Relation.ctx -> int -> Warning.t option
(** One rule's verdict in a target context.  [None] when the rule holds
    or its slot attributes are absent. *)

val column_warnings_for :
  t ->
  Encore_sysenv.Image.t ->
  attr:string ->
  values:string list ->
  Warning.t list * Warning.t list
(** Type and suspicious-value verdicts for one attribute's row
    instances, in instance order — [(type_warnings, value_warnings)],
    the same pairs the fused full-row walk emits for that attribute. *)
