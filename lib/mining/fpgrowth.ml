type result = { frequent : (Itemset.t * int) list; overflowed : bool }

(* Children and header chains are hashtable-backed: tree insertion and
   conditional-base extraction are the miner's hot path, and the assoc
   lists they replace made every child lookup linear in the fanout. *)
type node = {
  item : int;
  mutable count : int;
  parent : node option;
  children : (int, node) Hashtbl.t;
}

type tree = {
  root : node;
  header : (int, node list ref) Hashtbl.t;  (** item -> node chain *)
}

exception Overflow

let new_node ?parent item =
  { item; count = 0; parent; children = Hashtbl.create 4 }

let tree_insert tree sorted_items count =
  let rec go node = function
    | [] -> ()
    | item :: rest ->
        let child =
          match Hashtbl.find_opt node.children item with
          | Some c -> c
          | None ->
              let c = new_node ~parent:node item in
              Hashtbl.add node.children item c;
              (match Hashtbl.find_opt tree.header item with
               | Some chain -> chain := c :: !chain
               | None -> Hashtbl.add tree.header item (ref [ c ]));
              c
        in
        child.count <- child.count + count;
        go child rest
  in
  go tree.root sorted_items

(* Order items by descending support (ties by item id) and drop
   infrequent ones. *)
let order_items ~min_support weighted_transactions =
  let counts = Hashtbl.create 256 in
  List.iter
    (fun (items, w) ->
      List.iter
        (fun item ->
          Hashtbl.replace counts item
            (w + Option.value ~default:0 (Hashtbl.find_opt counts item)))
        items)
    weighted_transactions;
  let frequent =
    Hashtbl.fold
      (fun item c acc -> if c >= min_support then (item, c) :: acc else acc)
      counts []
  in
  let rank = Hashtbl.create (List.length frequent) in
  List.iteri
    (fun i (item, _) -> Hashtbl.add rank item i)
    (List.sort
       (fun (ia, ca) (ib, cb) ->
         match compare cb ca with 0 -> compare ia ib | c -> c)
       frequent);
  (rank, frequent)

let build_tree ~min_support weighted_transactions =
  let rank, frequent = order_items ~min_support weighted_transactions in
  let tree = { root = new_node (-1); header = Hashtbl.create 64 } in
  List.iter
    (fun (items, w) ->
      let kept =
        items
        |> List.filter (fun i -> Hashtbl.mem rank i)
        |> List.sort (fun a b -> compare (Hashtbl.find rank a) (Hashtbl.find rank b))
      in
      if kept <> [] then tree_insert tree kept w)
    weighted_transactions;
  (tree, frequent)

(* Path from a node up to (excluding) the root. *)
let prefix_path node =
  let rec go acc n =
    match n.parent with
    | None -> acc
    | Some p -> if p.item = -1 then acc else go (p.item :: acc) p
  in
  go [] node

(* --- telemetry ----------------------------------------------------------- *)

let m_itemsets = Encore_obs.Metrics.counter "mining.fpgrowth.itemsets"
let g_tree_nodes = Encore_obs.Metrics.gauge "mining.fpgrowth.tree_nodes"
let g_max_depth = Encore_obs.Metrics.gauge "mining.fpgrowth.max_depth"
let g_headroom = Encore_obs.Metrics.gauge "mining.fpgrowth.cap_headroom"

let rec node_count n =
  Hashtbl.fold (fun _ c acc -> acc + node_count c) n.children 1

(* Record the shape of one mining run: size of the initial FP-tree,
   deepest conditional-tree recursion, and how much of the itemset cap
   was left unused (0 on overflow). *)
let record_run ~tree ~max_depth ~emitted ~max_itemsets =
  Encore_obs.Metrics.set g_tree_nodes (float_of_int (node_count tree.root - 1));
  Encore_obs.Metrics.set_max g_max_depth (float_of_int max_depth);
  Encore_obs.Metrics.incr ~by:emitted m_itemsets;
  Encore_obs.Metrics.set g_headroom
    (float_of_int (max 0 (max_itemsets - emitted)))

let conditional_base tree item =
  match Hashtbl.find_opt tree.header item with
  | None -> []
  | Some chain ->
      List.filter_map
        (fun node ->
          match prefix_path node with
          | [] -> None
          | path -> Some (path, node.count))
        !chain

(* --- sharded mining ------------------------------------------------------- *)

(* The miner's enumeration is a depth-first walk rooted at each
   top-level frequent item: emit [item], then recurse into its
   conditional pattern base.  Those per-item subtrees share nothing but
   the (read-only) top-level tree, so they fan out to pool domains as
   shards — one shard per top-level item, in the top tree's frequent
   order, merged by in-order concatenation.  The concatenation equals
   the sequential walk's emission order exactly, so output bytes never
   depend on the job count.

   Overflow semantics: the sequential miner stops at emission
   [max_itemsets + 1].  Each shard caps its local work at
   [max_itemsets] (no shard can contribute more than the whole run may
   emit), and the merge truncates the concatenation to the cap and
   clamps the attempted count to [max_itemsets + 1] — byte-identical to
   the sequential truncation point, with bounded work per shard. *)

(* Walk one top-level item's subtree, calling [emit] per itemset in
   sequential order; returns (attempted, deepest recursion, overflowed)
   with attempted <= cap + 1. *)
let grow_shard ~min_support ~cap ~emit (item, support, base) =
  let n = ref 0 and max_depth = ref 0 in
  let count itemset c =
    incr n;
    if !n > cap then raise Overflow;
    emit itemset c
  in
  let rec grow weighted suffix depth =
    if depth > !max_depth then max_depth := depth;
    let tree, frequent = build_tree ~min_support weighted in
    List.iter
      (fun (it, sup) ->
        let itemset = it :: suffix in
        count itemset sup;
        match conditional_base tree it with
        | [] -> ()
        | b -> grow b itemset (depth + 1))
      frequent
  in
  let overflowed =
    try
      count [ item ] support;
      (match base with [] -> () | b -> grow b [ item ] 1);
      false
    with Overflow -> true
  in
  (!n, !max_depth, overflowed)

(* Top-level tree plus one shard per frequent item.  Conditional bases
   are extracted here, before fan-out, so shard tasks never touch the
   shared tree. *)
let top_shards ~min_support transactions =
  let weighted =
    Array.to_list (Array.map (fun tx -> (Array.to_list tx, 1)) transactions)
  in
  let tree, frequent = build_tree ~min_support weighted in
  let shards =
    List.map
      (fun (item, support) -> (item, support, conditional_base tree item))
      frequent
  in
  (tree, shards)

let map_shards ?pool f shards =
  match pool with
  | Some p -> Encore_util.Pool.map p f shards
  | None -> List.map f shards

let truncate n l =
  let rec go acc n = function
    | x :: tl when n > 0 -> go (x :: acc) (n - 1) tl
    | _ -> List.rev acc
  in
  go [] n l

let mine ?(max_itemsets = 2_000_000) ?pool ~min_support transactions =
  let tree, shards = top_shards ~min_support transactions in
  let results =
    map_shards ?pool
      (fun shard ->
        let out = ref [] in
        let emit itemset c = out := (Itemset.of_list itemset, c) :: !out in
        let n, depth, _ = grow_shard ~min_support ~cap:max_itemsets ~emit shard in
        (List.rev !out, n, depth))
      shards
  in
  let attempted = List.fold_left (fun acc (_, n, _) -> acc + n) 0 results in
  let max_depth = List.fold_left (fun acc (_, _, d) -> max acc d) 0 results in
  let overflowed = attempted > max_itemsets in
  let emitted = min attempted (max_itemsets + 1) in
  record_run ~tree ~max_depth ~emitted ~max_itemsets;
  let out = List.concat_map (fun (o, _, _) -> o) results in
  let out = if overflowed then truncate max_itemsets out else out in
  { frequent = out; overflowed }

let count_only ?(max_itemsets = 2_000_000) ?pool ~min_support transactions =
  let tree, shards = top_shards ~min_support transactions in
  let results =
    map_shards ?pool
      (fun shard ->
        let n, depth, _ =
          grow_shard ~min_support ~cap:max_itemsets
            ~emit:(fun _ _ -> ())
            shard
        in
        (n, depth))
      shards
  in
  let attempted = List.fold_left (fun acc (n, _) -> acc + n) 0 results in
  let max_depth = List.fold_left (fun acc (_, d) -> max acc d) 0 results in
  let overflowed = attempted > max_itemsets in
  let emitted = min attempted (max_itemsets + 1) in
  record_run ~tree ~max_depth ~emitted ~max_itemsets;
  (emitted, overflowed)
