type result = { frequent : (Itemset.t * int) list; overflowed : bool }

(* Children and header chains are hashtable-backed: tree insertion and
   conditional-base extraction are the miner's hot path, and the assoc
   lists they replace made every child lookup linear in the fanout. *)
type node = {
  item : int;
  mutable count : int;
  parent : node option;
  children : (int, node) Hashtbl.t;
}

type tree = {
  root : node;
  header : (int, node list ref) Hashtbl.t;  (** item -> node chain *)
}

exception Overflow

let new_node ?parent item =
  { item; count = 0; parent; children = Hashtbl.create 4 }

let tree_insert tree sorted_items count =
  let rec go node = function
    | [] -> ()
    | item :: rest ->
        let child =
          match Hashtbl.find_opt node.children item with
          | Some c -> c
          | None ->
              let c = new_node ~parent:node item in
              Hashtbl.add node.children item c;
              (match Hashtbl.find_opt tree.header item with
               | Some chain -> chain := c :: !chain
               | None -> Hashtbl.add tree.header item (ref [ c ]));
              c
        in
        child.count <- child.count + count;
        go child rest
  in
  go tree.root sorted_items

(* Order items by descending support (ties by item id) and drop
   infrequent ones. *)
let order_items ~min_support weighted_transactions =
  let counts = Hashtbl.create 256 in
  List.iter
    (fun (items, w) ->
      List.iter
        (fun item ->
          Hashtbl.replace counts item
            (w + Option.value ~default:0 (Hashtbl.find_opt counts item)))
        items)
    weighted_transactions;
  let frequent =
    Hashtbl.fold
      (fun item c acc -> if c >= min_support then (item, c) :: acc else acc)
      counts []
  in
  let rank = Hashtbl.create (List.length frequent) in
  List.iteri
    (fun i (item, _) -> Hashtbl.add rank item i)
    (List.sort
       (fun (ia, ca) (ib, cb) ->
         match compare cb ca with 0 -> compare ia ib | c -> c)
       frequent);
  (rank, frequent)

let build_tree ~min_support weighted_transactions =
  let rank, frequent = order_items ~min_support weighted_transactions in
  let tree = { root = new_node (-1); header = Hashtbl.create 64 } in
  List.iter
    (fun (items, w) ->
      let kept =
        items
        |> List.filter (fun i -> Hashtbl.mem rank i)
        |> List.sort (fun a b -> compare (Hashtbl.find rank a) (Hashtbl.find rank b))
      in
      if kept <> [] then tree_insert tree kept w)
    weighted_transactions;
  (tree, frequent)

(* Path from a node up to (excluding) the root. *)
let prefix_path node =
  let rec go acc n =
    match n.parent with
    | None -> acc
    | Some p -> if p.item = -1 then acc else go (p.item :: acc) p
  in
  go [] node

(* --- telemetry ----------------------------------------------------------- *)

let m_itemsets = Encore_obs.Metrics.counter "mining.fpgrowth.itemsets"
let g_tree_nodes = Encore_obs.Metrics.gauge "mining.fpgrowth.tree_nodes"
let g_max_depth = Encore_obs.Metrics.gauge "mining.fpgrowth.max_depth"
let g_headroom = Encore_obs.Metrics.gauge "mining.fpgrowth.cap_headroom"

let rec node_count n =
  Hashtbl.fold (fun _ c acc -> acc + node_count c) n.children 1

(* Record the shape of one mining run: size of the initial FP-tree,
   deepest conditional-tree recursion, and how much of the itemset cap
   was left unused (0 on overflow). *)
let record_run ~tree ~max_depth ~emitted ~max_itemsets =
  Encore_obs.Metrics.set g_tree_nodes (float_of_int (node_count tree.root - 1));
  Encore_obs.Metrics.set_max g_max_depth (float_of_int max_depth);
  Encore_obs.Metrics.incr ~by:emitted m_itemsets;
  Encore_obs.Metrics.set g_headroom
    (float_of_int (max 0 (max_itemsets - emitted)))

let conditional_base tree item =
  match Hashtbl.find_opt tree.header item with
  | None -> []
  | Some chain ->
      List.filter_map
        (fun node ->
          match prefix_path node with
          | [] -> None
          | path -> Some (path, node.count))
        !chain

let mine ?(max_itemsets = 2_000_000) ~min_support transactions =
  let out = ref [] in
  let n_out = ref 0 in
  let max_depth = ref 0 in
  let root_tree = ref None in
  let emit itemset count =
    incr n_out;
    if !n_out > max_itemsets then raise Overflow;
    out := (Itemset.of_list itemset, count) :: !out
  in
  let rec grow weighted suffix depth =
    if depth > !max_depth then max_depth := depth;
    let tree, frequent = build_tree ~min_support weighted in
    if depth = 0 then root_tree := Some tree;
    List.iter
      (fun (item, support) ->
        let itemset = item :: suffix in
        emit itemset support;
        (* conditional pattern base of [item] *)
        match conditional_base tree item with
        | [] -> ()
        | base -> grow base itemset (depth + 1))
      frequent
  in
  let weighted =
    Array.to_list (Array.map (fun tx -> (Array.to_list tx, 1)) transactions)
  in
  let finish overflowed =
    (match !root_tree with
     | Some tree ->
         record_run ~tree ~max_depth:!max_depth ~emitted:!n_out ~max_itemsets
     | None -> ());
    { frequent = List.rev !out; overflowed }
  in
  match grow weighted [] 0 with
  | () -> finish false
  | exception Overflow -> finish true

let count_only ?(max_itemsets = 2_000_000) ~min_support transactions =
  let n = ref 0 in
  let max_depth = ref 0 in
  let root_tree = ref None in
  let rec grow weighted depth =
    if depth > !max_depth then max_depth := depth;
    let tree, frequent = build_tree ~min_support weighted in
    if depth = 0 then root_tree := Some tree;
    List.iter
      (fun (item, _) ->
        incr n;
        if !n > max_itemsets then raise Overflow;
        match conditional_base tree item with
        | [] -> ()
        | base -> grow base (depth + 1))
      frequent
  in
  let weighted =
    Array.to_list (Array.map (fun tx -> (Array.to_list tx, 1)) transactions)
  in
  let finish overflowed =
    (match !root_tree with
     | Some tree ->
         record_run ~tree ~max_depth:!max_depth ~emitted:!n ~max_itemsets
     | None -> ());
    (!n, overflowed)
  in
  match grow weighted 0 with
  | () -> finish false
  | exception Overflow -> finish true
