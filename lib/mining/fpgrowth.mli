(** FP-Growth frequent-itemset mining (Han, Pei & Yin, SIGMOD 2000).

    Builds an FP-tree (prefix tree ordered by descending item frequency
    with header links) and mines it by recursive conditional-tree
    projection, avoiding Apriori's candidate generation.

    As with {!Apriori}, [max_itemsets] caps the output to emulate the
    out-of-memory terminations the paper reports past ~200 attributes
    (Table 3). *)

type result = {
  frequent : (Itemset.t * int) list;
  overflowed : bool;
}

val mine :
  ?max_itemsets:int -> ?pool:Encore_util.Pool.t -> min_support:int ->
  Itemset.t array -> result
(** [max_itemsets] defaults to 2_000_000.

    With [pool], each top-level frequent item's conditional subtree is
    mined as an independent shard on a worker domain; shard outputs are
    concatenated in the top tree's frequent order, which equals the
    sequential depth-first emission order, so the result is
    byte-identical at any pool size.  On overflow the concatenation is
    truncated to the sequential miner's stopping point (each shard
    bounds its own work at [max_itemsets]). *)

val count_only :
  ?max_itemsets:int -> ?pool:Encore_util.Pool.t -> min_support:int ->
  Itemset.t array -> int * bool
(** Mine but only count the frequent itemsets — the Table 3 measurement
    ("size of the intermediate frequent item set") without materializing
    the sets.  Parallelizes like {!mine}; the overflow count clamps to
    [max_itemsets + 1] exactly as the sequential counter does. *)
