type result = {
  frequent : (Itemset.t * int) list;
  overflowed : bool;
  levels : int;
}

let frequent_singletons ~min_support transactions =
  let counts = Hashtbl.create 256 in
  Array.iter
    (fun tx ->
      Array.iter
        (fun item ->
          Hashtbl.replace counts item
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts item)))
        tx)
    transactions;
  Hashtbl.fold
    (fun item c acc ->
      if c >= min_support then (Itemset.singleton item, c) :: acc else acc)
    counts []
  |> List.sort (fun (a, _) (b, _) -> Itemset.compare a b)

(* Candidate (k+1)-itemsets from frequent k-itemsets, with subset
   pruning: every k-subset of a candidate must itself be frequent. *)
let candidates frequent_k =
  let frequent_set = Hashtbl.create (List.length frequent_k) in
  List.iter (fun (s, _) -> Hashtbl.replace frequent_set s ()) frequent_k;
  let sets = List.map fst frequent_k in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          match Itemset.join a b with
          | None -> None
          | Some c ->
              if
                List.for_all
                  (fun sub -> Hashtbl.mem frequent_set sub)
                  (Itemset.subsets_k_minus_1 c)
              then Some c
              else None)
        sets)
    sets

let m_itemsets = Encore_obs.Metrics.counter "mining.apriori.itemsets"
let g_levels = Encore_obs.Metrics.gauge "mining.apriori.levels"
let g_headroom = Encore_obs.Metrics.gauge "mining.apriori.cap_headroom"

let record_run r ~max_itemsets =
  Encore_obs.Metrics.incr ~by:(List.length r.frequent) m_itemsets;
  Encore_obs.Metrics.set_max g_levels (float_of_int r.levels);
  Encore_obs.Metrics.set g_headroom
    (float_of_int (max 0 (max_itemsets - List.length r.frequent)));
  r

let mine ?(max_itemsets = 2_000_000) ~min_support transactions =
  let rec level k acc current =
    if current = [] then
      record_run ~max_itemsets
        { frequent = acc; overflowed = false; levels = k - 1 }
    else if List.length acc > max_itemsets then
      record_run ~max_itemsets { frequent = acc; overflowed = true; levels = k }
    else
      let cands = candidates current in
      let next =
        List.filter_map
          (fun c ->
            let s = Itemset.support transactions c in
            if s >= min_support then Some (c, s) else None)
          cands
      in
      level (k + 1) (acc @ next) next
  in
  let l1 = frequent_singletons ~min_support transactions in
  level 2 l1 l1
