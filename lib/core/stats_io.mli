(** Persistence for learning sufficient statistics.

    A model snapshot answers "what did we learn"; the statistics
    snapshot answers "what did we learn it {e from}" in a form that can
    keep growing — reload it, fold new images in with
    [Pipeline.learn_append], write it back.  The payload is the
    {!Encore_rules.Suffstats} envelope ([ENCORE-SUFFSTATS 1]) framed
    inside the same atomic snapshot envelope as models, so a crashed
    write or a flipped bit can never load. *)

type load_error = Encore_util.Snapshot.error

val load_error_to_string : load_error -> string

val snapshot_kind : string
(** ["suffstats"]. *)

val to_string : Encore_rules.Suffstats.t -> string
val of_string :
  path:string -> string -> (Encore_rules.Suffstats.t, load_error) result
(** [path] only labels errors. *)

val save : string -> Encore_rules.Suffstats.t -> unit
(** Atomic write of the enveloped statistics. *)

val load : string -> (Encore_rules.Suffstats.t, load_error) result

(** Versioned statistics store, mirroring [Model_io.Store]: numbered
    snapshots, a [latest] pointer, pruning, rollback to the newest
    verifiable snapshot. *)
module Store : sig
  type t

  val create : ?keep:int -> dir:string -> unit -> t
  val dir : t -> string
  val snapshots : t -> string list
  val latest_path : t -> string option

  val save : t -> Encore_rules.Suffstats.t -> string
  (** Returns the snapshot path. *)

  val load_latest :
    t -> (Encore_rules.Suffstats.t * string, load_error) result
end
