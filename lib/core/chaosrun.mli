(** Chaos harness: storm a training population with pipeline faults and
    measure that resilient learning degrades gracefully.

    The experiment the robustness claims hang on: generate a clean
    per-application population, damage a fraction of it with
    {!Encore_inject.Chaos} faults (truncated files, garbage bytes,
    permanently flapping probes), learn through
    {!Pipeline.learn_resilient}, and compare the chaos-trained model
    against a model trained on the undamaged population over the same
    ConfErr-injected target.  A resilient pipeline must (a) never
    raise, (b) quarantine exactly the stormed images, and (c) keep its
    detection power on clean targets. *)

type outcome = {
  population : int;      (** clean images generated *)
  victims : string list; (** image ids damaged by the storm *)
  report : Pipeline.ingest_report;
  quarantine_exact : bool;
      (** quarantined ids = victim ids (set equality) *)
  telemetry_consistent : bool;
      (** the learning run's {!Encore_obs.Events} log reconciles exactly
          with [report]: one [diag] event per histogram entry and one
          [retry] event per counted retry *)
  telemetry_notes : string list;
      (** discrepancies found when reconciling (empty when consistent) *)
  injected : int;        (** ground-truth faults in the check target *)
  clean_detected : int;  (** faults found by the model trained undamaged *)
  chaos_detected : int;  (** faults found by the chaos-trained model *)
  notes : string list;   (** degraded-mode notes from the target check *)
}

val run :
  ?config:Config.t ->
  ?n:int ->
  ?fraction:float ->
  ?faults:Encore_inject.Fault.pipeline_fault list ->
  ?max_retries:int ->
  ?app:Encore_sysenv.Image.app ->
  seed:int ->
  unit ->
  (outcome, Encore_util.Resilience.diagnostic) result
(** [n] images (default 50) of [app] (default Mysql), storm [fraction]
    (default 0.3) of them with [faults] (default all pipeline faults),
    then learn and evaluate.  Deterministic in [seed].  [Error] only
    when the whole population is quarantined. *)

val outcome_to_string : outcome -> string

(** {1 Durability drill}

    The storm harness for the persistence layer
    ({!Encore_inject.Fault.durability_fault}): kill the pipeline right
    after each stage checkpoint and prove resume converges on a
    byte-identical model; tear and bit-flip snapshot files and prove
    the store detects the damage and rolls back. *)

type durability_outcome = {
  kill_stages : (string * bool) list;
      (** stage name -> the kill hook fired, the resumed run restored
          that stage from its checkpoint, and the final model was
          byte-identical to an uninterrupted reference run *)
  truncate_detected : bool;
      (** a torn (truncated) snapshot fails to load with a typed error *)
  bitflip_detected : bool;
      (** a bit-flipped snapshot fails to load with a typed error *)
  rollback_ok : bool;
      (** after tearing the head snapshot, the store rolled back to the
          previous good one and returned the reference model *)
  durability_notes : string list;  (** discrepancies (empty on success) *)
}

val durability :
  ?config:Config.t ->
  ?n:int ->
  ?fraction:float ->
  ?app:Encore_sysenv.Image.app ->
  dir:string ->
  seed:int ->
  unit ->
  (durability_outcome, Encore_util.Resilience.diagnostic) result
(** Run the drill under [dir] (checkpoint directories and a snapshot
    store are created beneath it; the caller owns cleanup) on a stormed
    population of [n] images (default 12, [fraction] damaged).
    Deterministic in [seed].  [Error] only when the reference run
    itself cannot learn. *)

val durability_outcome_to_string : durability_outcome -> string
