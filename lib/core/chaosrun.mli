(** Chaos harness: storm a training population with pipeline faults and
    measure that resilient learning degrades gracefully.

    The experiment the robustness claims hang on: generate a clean
    per-application population, damage a fraction of it with
    {!Encore_inject.Chaos} faults (truncated files, garbage bytes,
    permanently flapping probes), learn through
    {!Pipeline.learn_resilient}, and compare the chaos-trained model
    against a model trained on the undamaged population over the same
    ConfErr-injected target.  A resilient pipeline must (a) never
    raise, (b) quarantine exactly the stormed images, and (c) keep its
    detection power on clean targets. *)

type outcome = {
  population : int;      (** clean images generated *)
  victims : string list; (** image ids damaged by the storm *)
  report : Pipeline.ingest_report;
  quarantine_exact : bool;
      (** quarantined ids = victim ids (set equality) *)
  telemetry_consistent : bool;
      (** the learning run's {!Encore_obs.Events} log reconciles exactly
          with [report]: one [diag] event per histogram entry and one
          [retry] event per counted retry *)
  telemetry_notes : string list;
      (** discrepancies found when reconciling (empty when consistent) *)
  injected : int;        (** ground-truth faults in the check target *)
  clean_detected : int;  (** faults found by the model trained undamaged *)
  chaos_detected : int;  (** faults found by the chaos-trained model *)
  notes : string list;   (** degraded-mode notes from the target check *)
}

val run :
  ?config:Config.t ->
  ?n:int ->
  ?fraction:float ->
  ?faults:Encore_inject.Fault.pipeline_fault list ->
  ?max_retries:int ->
  ?app:Encore_sysenv.Image.app ->
  seed:int ->
  unit ->
  (outcome, Encore_util.Resilience.diagnostic) result
(** [n] images (default 50) of [app] (default Mysql), storm [fraction]
    (default 0.3) of them with [faults] (default all pipeline faults),
    then learn and evaluate.  Deterministic in [seed].  [Error] only
    when the whole population is quarantined. *)

val outcome_to_string : outcome -> string

(** {1 Durability drill}

    The storm harness for the persistence layer
    ({!Encore_inject.Fault.durability_fault}): kill the pipeline right
    after each stage checkpoint and prove resume converges on a
    byte-identical model; tear and bit-flip snapshot files and prove
    the store detects the damage and rolls back. *)

type durability_outcome = {
  kill_stages : (string * bool) list;
      (** stage name -> the kill hook fired, the resumed run restored
          that stage from its checkpoint, and the final model was
          byte-identical to an uninterrupted reference run *)
  truncate_detected : bool;
      (** a torn (truncated) snapshot fails to load with a typed error *)
  bitflip_detected : bool;
      (** a bit-flipped snapshot fails to load with a typed error *)
  rollback_ok : bool;
      (** after tearing the head snapshot, the store rolled back to the
          previous good one and returned the reference model *)
  durability_notes : string list;  (** discrepancies (empty on success) *)
}

val durability :
  ?config:Config.t ->
  ?n:int ->
  ?fraction:float ->
  ?app:Encore_sysenv.Image.app ->
  dir:string ->
  seed:int ->
  unit ->
  (durability_outcome, Encore_util.Resilience.diagnostic) result
(** Run the drill under [dir] (checkpoint directories and a snapshot
    store are created beneath it; the caller owns cleanup) on a stormed
    population of [n] images (default 12, [fraction] damaged).
    Deterministic in [seed].  [Error] only when the reference run
    itself cannot learn. *)

val durability_outcome_to_string : durability_outcome -> string

(** {1 Serve storm}

    The robustness drill for the resident daemon: replay a large
    request storm — bursts that overflow the bounded queue, malformed
    and oversized lines, crash-injection ops, a mid-storm reload —
    against an {!Encore_serve.Server} driven directly through
    [offer]/[step], and check the daemon's contract: it sheds load but
    never crashes, answers every request it queued, keeps the alert
    ring inside its bound, keeps incremental watch verdicts
    byte-identical to full checks of the mutated image, and drains
    cleanly on shutdown.

    The storm also exercises the telemetry verbs: [metrics] scrapes and
    [health] probes ride in the mix (including one right behind each
    crash burst, while the breaker is open), so it checks that both
    stay serviceable under overload, that the exposition body is valid
    Prometheus text, that the health verdict degrades when the breaker
    opens and recovers to [ok] by the end, and that every check/watch
    response carries a trace id. *)

type serve_outcome = {
  serve_requests : int;   (** request lines replayed *)
  serve_malformed : int;  (** mangled lines in the mix (>= 5%) *)
  serve_oversized : int;  (** over-limit lines in the mix (>= 5%) *)
  serve_crash_ops : int;  (** crash-injection ops in the mix *)
  serve_queued : int;     (** lines the server accepted onto its queue *)
  serve_answered : int;   (** responses produced for queued lines *)
  serve_shed : int;       (** requests answered [overloaded] at the door *)
  serve_restarts : int;   (** supervised worker crashes *)
  serve_ring_dropped : int;
  serve_all_answered : bool;  (** answered = queued (nothing lost) *)
  serve_ring_bound_ok : bool;
      (** the ring length never exceeded its capacity (sampled at every
          status response) *)
  serve_drained : bool;   (** bye emitted, daemon stopped *)
  serve_watch_verified : int;
      (** watch verdicts compared against an independent full check *)
  serve_watch_identical : bool;  (** every comparison was byte-identical *)
  serve_metrics_served : int;  (** ok metrics scrapes answered *)
  serve_metrics_valid : bool;
      (** every scrape body was well-formed Prometheus text with
          counter, gauge and histogram families *)
  serve_rule_counters_seen : bool;
      (** a [detect_rule_fired] per-rule counter appeared in a scrape *)
  serve_health_served : int;  (** ok health probes answered *)
  serve_health_degraded_seen : bool;
      (** a non-[ok] verdict was observed (breaker open after a crash
          burst) *)
  serve_health_final : string;  (** verdict of the last probe ("ok") *)
  serve_traced : bool;
      (** every check/watch response carried a trace id *)
  serve_exit : int;       (** the daemon's exit code (0 or 3) *)
  serve_notes : string list;  (** discrepancies (empty on success) *)
}

val serve_storm :
  ?config:Config.t ->
  ?requests:int ->
  ?n:int ->
  ?app:Encore_sysenv.Image.app ->
  seed:int ->
  unit ->
  (serve_outcome, Encore_util.Resilience.diagnostic) result
(** Replay [requests] lines (default 10000) against a daemon serving a
    model learned from [n] (default 16) generated [app] images.
    Deterministic in [seed]. *)

val serve_outcome_to_string : serve_outcome -> string

(** {1 Transport storm and crash replay}

    The robustness drill for the multiplexed transport and the
    write-ahead request journal (PR 9).  Phase A drives an in-process
    {!Encore_serve.Mux} with concurrent socketpair clients injecting
    transport faults — torn frames followed by mid-write disconnects,
    unterminated floods past the frame bound, one-byte-per-poll slow
    writers — and checks that no committed (intact, correlated) request
    loses its response, responses never land on the wrong client,
    health verdicts stay truthful (non-[ok] iff reasons are listed),
    and every surviving client receives the drain bye.

    Phase B proves crash recovery: journal a request storm, abandon the
    server mid-processing (the in-process [kill -9]), append a torn
    record to the journal tail, then recover.  The replayed responses
    and the rebuilt alert ring must be byte-identical to an
    uninterrupted reference run over the same committed prefix, the
    torn tail must be detected and truncated, and a second
    restart-and-replay must land on identical state (idempotence). *)

type transport_outcome = {
  tr_clients : int;
  tr_frames : int;        (** scripted frames across all clients *)
  tr_faults : int;        (** torn / flood / slow frames (>= 5%) *)
  tr_committed : int;     (** intact correlated requests sent *)
  tr_lost : int;          (** committed requests never answered (0) *)
  tr_misrouted : int;     (** responses seen on the wrong client (0) *)
  tr_overflow_answers : int;
      (** typed uncorrelated overflow rejections received by flooders *)
  tr_reconnects : int;    (** client reconnects after injected tears *)
  tr_health_probes : int;
  tr_health_truthful : bool;
      (** every verdict was ok/degraded/unhealthy and non-[ok] iff
          reasons were listed *)
  tr_bye_all : bool;      (** every surviving client got the drain bye *)
  tr_exit : int;          (** daemon exit code after the drain *)
  cr_requests : int;      (** requests offered before the kill *)
  cr_journaled : int;     (** entries recovered from the journal *)
  cr_completed : int;     (** entries with completion marks *)
  cr_replayed : int;      (** uncompleted entries re-emitted on recovery *)
  cr_tail_truncated : bool;  (** the injected torn tail was cut *)
  cr_responses_identical : bool;
      (** per-entry responses (pre-crash committed + replayed) match the
          uninterrupted reference byte-for-byte *)
  cr_ring_identical : bool;  (** recovered alert ring matches reference *)
  cr_replay_idempotent : bool;  (** second replay lands on same state *)
  tr_notes : string list;  (** discrepancies (empty on success) *)
}

val transport_storm :
  ?config:Config.t ->
  ?requests:int ->
  ?clients:int ->
  ?n:int ->
  ?app:Encore_sysenv.Image.app ->
  dir:string ->
  seed:int ->
  unit ->
  (transport_outcome, string) result
(** Run both phases under [dir] (journals are created beneath it; the
    caller owns cleanup): [clients] concurrent clients (default 6,
    minimum 2) exchange up to [min requests 2000] transport-phase
    frames, then the crash drill journals [requests] (default 10000)
    storm lines and kills at 60%.  Deterministic in [seed] (socketpair
    scheduling does not affect the committed-response accounting). *)

val transport_ok : transport_outcome -> bool
(** Every contract held: nothing lost or misrouted, fault mix >= 5%,
    health truthful, byes delivered, torn tail truncated, replay
    converged and idempotent, no notes. *)

val transport_outcome_to_string : transport_outcome -> string
