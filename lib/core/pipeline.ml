module Res = Encore_util.Resilience
module Prng = Encore_util.Prng
module Otrace = Encore_obs.Trace
module Ometrics = Encore_obs.Metrics
module Oevents = Encore_obs.Events
module Json = Encore_obs.Jsonenc
module Image = Encore_sysenv.Image
module Flaky = Encore_sysenv.Flaky
module Registry = Encore_confparse.Registry
module Assemble = Encore_dataset.Assemble
module Detector = Encore_detect.Detector
module Template = Encore_rules.Template

type model = Detector.model

let templates_result custom =
  match custom with
  | None -> Ok Template.predefined
  | Some text -> (
      match Encore_rules.Customfile.parse text with
      | Ok parsed ->
          Ok (Template.predefined @ parsed.Encore_rules.Customfile.templates)
      | Error e ->
          Error
            (Res.diag Res.Custom_rule_error ~subject:"customization file"
               (Printf.sprintf "line %d: %s" e.Encore_rules.Customfile.line
                  e.Encore_rules.Customfile.message)))

(* Run [f] with the caller's pool, a transient pool of [config.jobs]
   workers, or none (sequential) — the learned artifacts are identical
   in all three cases. *)
let with_configured_pool ~config pool f =
  match pool with
  | Some _ -> f pool
  | None when config.Config.jobs > 1 ->
      Encore_util.Pool.with_pool ?chunk:config.Config.chunk
        ~jobs:config.Config.jobs (fun p -> f (Some p))
  | None -> f None

let learn_result ?(config = Config.default) ?custom ?pool images =
  match templates_result custom with
  | Error d -> Error d
  | Ok templates ->
      Ok
        (with_configured_pool ~config pool (fun pool ->
             Detector.learn
               ~params:(Config.rule_params config)
               ~templates
               ~entropy_threshold:config.Config.entropy_threshold ?pool images))

let learn ?config ?custom ?pool images =
  match learn_result ?config ?custom ?pool images with
  | Ok model -> model
  | Error d -> invalid_arg (d.Res.subject ^ ", " ^ d.Res.detail)

(* --- mergeable sufficient-statistics learning ----------------------------- *)

let stats_of_images ?(config = Config.default) ?pool ?shards images =
  with_configured_pool ~config pool (fun pool ->
      Encore_rules.Suffstats.of_images ?pool ?shards images)

let learner_result ?(config = Config.default) ?custom ?pool
    ?(mining_cap = 100_000) stats =
  match templates_result custom with
  | Error d -> Error d
  | Ok templates ->
      Ok
        (with_configured_pool ~config pool (fun pool ->
             Encore_rules.Suffstats.learner_of ?pool
               ~params:(Config.rule_params config)
               ~templates
               ~entropy_threshold:config.Config.entropy_threshold
               ~mining_frac:config.Config.min_support_frac ~mining_cap stats))

let learn_append ?(config = Config.default) ?pool learner images =
  with_configured_pool ~config pool (fun pool ->
      Encore_rules.Suffstats.append ?pool learner images)

let model_of_learner learner =
  Detector.model_of_finalized (Encore_rules.Suffstats.current learner)

let learn_sharded_result ?config ?custom ?pool ?shards ?mining_cap images =
  let stats = stats_of_images ?config ?pool ?shards images in
  match learner_result ?config ?custom ?pool ?mining_cap stats with
  | Error d -> Error d
  | Ok learner -> Ok (model_of_learner learner, learner)

let check ?config:_ model img = Detector.check model img

let detections ?(config = Config.default) model img =
  List.filter
    (fun w -> w.Encore_detect.Warning.score >= config.Config.detection_score)
    (check model img)

(* --- resilient ingestion ------------------------------------------------- *)

type mode = Keep_going | Fail_fast

let mode_to_string = function
  | Keep_going -> "keep-going"
  | Fail_fast -> "fail-fast"

type run_status = Completed | Timed_out_at of Checkpoint.stage

let run_status_to_string = function
  | Completed -> "completed"
  | Timed_out_at stage -> "timed-out:" ^ Checkpoint.stage_to_string stage

type ingest_report = {
  total : int;
  ok : int;
  quarantined : (string * Res.diagnostic list) list;
  retried : int;
  total_backoff_ms : int;
  warnings : Res.diagnostic list;
  histogram : (Res.error_kind * int) list;
  mining_overflowed : bool;
  status : run_status;
}

type outcome = {
  model : Detector.model option;
  report : ingest_report;
  resumed : Checkpoint.stage list;
  checkpointed : Checkpoint.stage list;
}

let default_mining_cap = 100_000

(* Mining capacity probe: the learning path itself mines rules pairwise,
   but Table 3's failure mode — frequent-itemset blow-up past the
   miner's cap — is what degrades real deployments.  Run the counting
   miner against the assembled table so the model can carry the
   degraded-mode bit. *)
let mining_probe ~config ~mining_cap ?pool table =
  let transactions, _dict =
    Otrace.with_span "discretize" (fun () ->
        Encore_dataset.Discretize.transactions table)
  in
  let n_tx = Array.length transactions in
  if n_tx = 0 then false
  else
    let min_support =
      max 2
        (int_of_float
           (ceil (config.Config.min_support_frac *. float_of_int n_tx)))
    in
    let _count, overflowed =
      Otrace.with_span "fpgrowth"
        ~attrs:[ ("transactions", Json.Int n_tx) ]
        (fun () ->
          Encore_mining.Fpgrowth.count_only ~max_itemsets:mining_cap ?pool
            ~min_support transactions)
    in
    overflowed

(* --- ingestion telemetry -------------------------------------------------- *)

let m_images_total = Ometrics.counter "ingest.images_total"
let m_images_ok = Ometrics.counter "ingest.images_ok"
let m_images_quarantined = Ometrics.counter "ingest.images_quarantined"
let m_retries = Ometrics.counter "ingest.retries"
let m_backoff_ms = Ometrics.counter "ingest.backoff_ms"
let m_warnings = Ometrics.counter "ingest.warnings"

let emit_report_telemetry report =
  List.iter
    (fun (d : Res.diagnostic) ->
      Oevents.emit_diag
        ~kind:(Res.kind_to_string d.Res.kind)
        ~subject:d.Res.subject ~detail:d.Res.detail)
    (List.concat_map snd report.quarantined @ report.warnings);
  Oevents.emit "ingest_report"
    ~fields:
      [
        ("total", Json.Int report.total);
        ("ok", Json.Int report.ok);
        ("quarantined", Json.Int (List.length report.quarantined));
        ("retried", Json.Int report.retried);
        ("backoff_ms", Json.Int report.total_backoff_ms);
        ("mining_overflowed", Json.Bool report.mining_overflowed);
        ("status", Json.Str (run_status_to_string report.status));
      ]

let learn_durable ?(config = Config.default) ?custom ?(mode = Keep_going)
    ?max_retries ?flaky ?(mining_cap = default_mining_cap) ?pool ?checkpoint
    ?resume ?(deadline = Encore_util.Deadline.none) ?kill_after images =
  with_configured_pool ~config pool
  @@ fun pool ->
  Otrace.with_span "learn"
    ~attrs:[ ("images", Json.Int (List.length images)) ]
  @@ fun () ->
  let ( let* ) = Result.bind in
  let* templates = templates_result custom in
  let fp =
    Checkpoint.fingerprint ~config ~custom ~mode:(mode_to_string mode)
      ~max_retries ~mining_cap images
  in
  let resumed = ref [] and checkpointed = ref [] in
  (* Persist runs after a stage completes; the kill-at-checkpoint hook
     fires right after the write, so a "crashed" run always left a
     loadable checkpoint behind. *)
  let persist stage save =
    match checkpoint with
    | None -> ()
    | Some ck ->
        save ck;
        checkpointed := !checkpointed @ [ stage ];
        if kill_after = Some stage then raise (Checkpoint.Simulated_crash stage)
  in
  let restore stage load =
    match resume with
    | None -> None
    | Some ck -> (
        match load ck with
        | Some v ->
            resumed := !resumed @ [ stage ];
            Some v
        | None -> None)
  in
  let flaky =
    match flaky with
    | Some f -> f
    | None -> Flaky.reliable ~rng:(Prng.create (config.Config.seed + 101))
  in
  (* one fatal diagnostic is enough to distrust an image for training *)
  let breaker = Res.breaker ~threshold:1 () in
  let retried = ref 0 and backoff = ref 0 in
  (* newest-first; read through [warnings ()] — appending per image
     made warning accumulation quadratic in the fleet size *)
  let warnings_rev = ref [] in
  let add_warnings ds =
    List.iter (fun d -> warnings_rev := d :: !warnings_rev) ds
  in
  let warnings () = List.rev !warnings_rev in
  let probe_with sim img =
    Encore_util.Deadline.raise_if_expired deadline;
    Otrace.with_span "probe"
      ~attrs:[ ("image", Json.Str img.Image.image_id) ]
      (fun () -> Flaky.collect_with_retries ?max_retries sim img)
  in
  let probe img =
    let att = probe_with flaky img in
    retried := !retried + att.Res.retries;
    backoff := !backoff + att.Res.backoff_ms;
    att.Res.outcome
  in
  let parse img =
    Otrace.with_span "parse"
      ~attrs:[ ("image", Json.Str img.Image.image_id) ]
      (fun () -> Registry.parse_image_diag img)
  in
  (* Fail-fast path: probe and parse strictly interleaved, aborting on
     the first fatal diagnostic, exactly as a sequential run would —
     the flaky simulator's PRNG must not be drawn for images past the
     failure point. *)
  let rec ingest_fail_fast acc = function
    | [] -> Ok (List.rev acc)
    | img :: rest -> (
        let id = img.Image.image_id in
        match probe img with
        | Error d ->
            Res.record_failure breaker ~subject:id d;
            Error d
        | Ok (_records, probe_diags) -> (
            add_warnings probe_diags;
            let parsed = parse img in
            match parsed.Registry.fatal with
            | first :: _ -> Error first
            | [] ->
                add_warnings parsed.Registry.warnings;
                Res.record_success breaker ~subject:id;
                ingest_fail_fast (img :: acc) rest))
  in
  (* Keep-going path, in three phases, all pool-parallel.  Probing used
     to stay sequential because the flaky simulator owned one PRNG
     stream whose draw order defined reproducibility; instead each
     image now probes against its own fork of that stream, taken in
     image order before fan-out — a stable (seed, image-index) stream —
     so draws are identical no matter which domain runs the probe or
     how the pool interleaves tasks.  The final merge walks images in
     order, so the breaker's quarantine list, the warning order, the
     retry/backoff totals and the ingest report are byte-identical to a
     sequential run at any [--jobs]. *)
  let ingest_keep_going () =
    let with_sims = List.map (fun img -> (img, Flaky.fork flaky)) images in
    let probe_task (img, sim) = (img, probe_with sim img) in
    let attempts =
      match pool with
      | Some p -> Encore_util.Pool.map p probe_task with_sims
      | None -> List.map probe_task with_sims
    in
    let probed =
      List.map
        (fun (img, (att : _ Res.attempt)) ->
          retried := !retried + att.Res.retries;
          backoff := !backoff + att.Res.backoff_ms;
          (img, att.Res.outcome))
        attempts
    in
    let to_parse =
      List.filter_map
        (fun (img, outcome) ->
          match outcome with Ok _ -> Some img | Error _ -> None)
        probed
    in
    let parsed =
      match pool with
      | Some p -> Encore_util.Pool.map p (fun img -> (img, parse img)) to_parse
      | None -> List.map (fun img -> (img, parse img)) to_parse
    in
    (* [parsed] is the Ok-subsequence of [probed] in the same order, so
       the merge consumes it head-first — the [List.assq] it replaces
       rescanned the list per image. *)
    let remaining = ref parsed in
    let next_parsed img =
      match !remaining with
      | (img', p) :: tl when img' == img ->
          remaining := tl;
          Some p
      | _ -> None
    in
    let survivors =
      List.filter_map
        (fun (img, outcome) ->
          let id = img.Image.image_id in
          match outcome with
          | Error d ->
              Res.record_failure breaker ~subject:id d;
              None
          | Ok (_records, probe_diags) -> (
              add_warnings probe_diags;
              match next_parsed img with
              | None -> None
              | Some parsed -> (
                  match parsed.Registry.fatal with
                  | _ :: _ as fatal ->
                      List.iter
                        (fun d -> Res.record_failure breaker ~subject:id d)
                        fatal;
                      None
                  | [] ->
                      add_warnings parsed.Registry.warnings;
                      Res.record_success breaker ~subject:id;
                      Some img)))
        probed
    in
    Ok survivors
  in
  let current = ref Checkpoint.Ingest in
  let ingest_state : Checkpoint.ingest_state option ref = ref None in
  (* One report builder for every way a run can end, so the histogram
     and the metric counters always reconcile with the diagnostics. *)
  let build_report ~status ~mining_overflowed ~extra_warnings () =
    let quarantined, base_warnings, ret, back, ok =
      match !ingest_state with
      | Some st ->
          ( st.Checkpoint.quarantined, st.Checkpoint.warnings,
            st.Checkpoint.retried, st.Checkpoint.total_backoff_ms,
            List.length st.Checkpoint.survivor_ids )
      | None -> ([], warnings (), !retried, !backoff, 0)
    in
    let warnings = base_warnings @ extra_warnings in
    let all_diags = List.concat_map snd quarantined @ warnings in
    {
      total = List.length images;
      ok;
      quarantined;
      retried = ret;
      total_backoff_ms = back;
      warnings;
      histogram = Res.histogram all_diags;
      mining_overflowed;
      status;
    }
  in
  let finalize report =
    Ometrics.incr ~by:report.total m_images_total;
    Ometrics.incr ~by:report.retried m_retries;
    Ometrics.incr ~by:report.total_backoff_ms m_backoff_ms;
    Ometrics.incr ~by:report.ok m_images_ok;
    Ometrics.incr ~by:(List.length report.quarantined) m_images_quarantined;
    Ometrics.incr ~by:(List.length report.warnings) m_warnings;
    Otrace.with_span "report" (fun () -> emit_report_telemetry report);
    if Oevents.enabled () then Oevents.emit_metrics ();
    report
  in
  let run () =
    (* --- stage 1: ingest -------------------------------------------- *)
    current := Checkpoint.Ingest;
    Encore_util.Deadline.raise_if_expired deadline;
    let* st =
      match
        restore Checkpoint.Ingest (fun ck ->
            Checkpoint.load_ingest ck ~fingerprint:fp)
      with
      | Some st -> Ok st
      | None ->
          let* survivors =
            Otrace.with_span "ingest" (fun () ->
                match mode with
                | Fail_fast -> ingest_fail_fast [] images
                | Keep_going -> ingest_keep_going ())
          in
          let st =
            {
              Checkpoint.survivor_ids =
                List.map (fun img -> img.Image.image_id) survivors;
              quarantined = Res.quarantined breaker;
              warnings = warnings ();
              retried = !retried;
              total_backoff_ms = !backoff;
            }
          in
          persist Checkpoint.Ingest (fun ck ->
              Checkpoint.save_ingest ck ~fingerprint:fp st);
          Ok st
    in
    ingest_state := Some st;
    let survivors =
      (* hashed membership: the [List.mem] filter it replaces was
         quadratic in the fleet size *)
      let ids = Hashtbl.create (List.length st.Checkpoint.survivor_ids) in
      List.iter
        (fun id -> Hashtbl.replace ids id ())
        st.Checkpoint.survivor_ids;
      List.filter (fun img -> Hashtbl.mem ids img.Image.image_id) images
    in
    match survivors with
    | [] ->
        ignore
          (finalize
             (build_report ~status:Completed ~mining_overflowed:false
                ~extra_warnings:[] ()));
        Error
          (Res.diag Res.Corrupt_image ~subject:"training population"
             (Printf.sprintf
                "all %d image(s) quarantined; nothing to learn from"
                (List.length images)))
    | _ ->
        (* Post-ingest stages key their checkpoints on the survivor set
           the ingest stage actually produced, so a resume after a
           flaky run cannot reuse artifacts from a different one. *)
        let sfp =
          Checkpoint.stage_fingerprint ~fingerprint:fp
            ~survivor_ids:st.Checkpoint.survivor_ids
            ~quarantined_ids:(List.map fst st.Checkpoint.quarantined)
        in
        (* --- stage 2: assemble -------------------------------------- *)
        current := Checkpoint.Assemble;
        Encore_util.Deadline.raise_if_expired deadline;
        let assembled =
          match
            restore Checkpoint.Assemble (fun ck ->
                Checkpoint.load_assemble ck ~fingerprint:sfp)
          with
          | Some a -> a
          | None ->
              let a =
                Otrace.with_span "assemble" (fun () ->
                    Assemble.assemble_training ?pool survivors)
              in
              persist Checkpoint.Assemble (fun ck ->
                  Checkpoint.save_assemble ck ~fingerprint:sfp a);
              a
        in
        (* --- stage 3: model + mining probe -------------------------- *)
        current := Checkpoint.Model;
        Encore_util.Deadline.raise_if_expired deadline;
        let model =
          match
            restore Checkpoint.Model (fun ck ->
                Checkpoint.load_model ck ~fingerprint:sfp)
          with
          | Some m -> m
          | None ->
              let rows = Encore_dataset.Table.rows assembled.Assemble.table in
              let training =
                List.map2 (fun img (_, row) -> (img, row)) survivors rows
              in
              let model =
                Detector.model_of_training
                  ~params:(Config.rule_params config)
                  ~templates
                  ~entropy_threshold:config.Config.entropy_threshold ?pool
                  ~types:assembled.Assemble.types training
              in
              let mining_overflowed =
                Otrace.with_span "mining-probe" (fun () ->
                    mining_probe ~config ~mining_cap ?pool
                      assembled.Assemble.table)
              in
              let model =
                { model with Detector.overflowed = mining_overflowed }
              in
              persist Checkpoint.Model (fun ck ->
                  Checkpoint.save_model ck ~fingerprint:sfp model);
              model
        in
        let extra_warnings =
          if model.Detector.overflowed then
            [
              Res.diag Res.Overflow ~subject:"fp-growth"
                (Printf.sprintf "frequent itemsets exceeded cap %d" mining_cap);
            ]
          else []
        in
        let report =
          finalize
            (build_report ~status:Completed
               ~mining_overflowed:model.Detector.overflowed ~extra_warnings ())
        in
        Ok
          {
            model = Some model;
            report;
            resumed = !resumed;
            checkpointed = !checkpointed;
          }
  in
  let with_pool_deadline f =
    match pool with
    | Some p -> Encore_util.Pool.with_deadline p deadline f
    | None -> f ()
  in
  match with_pool_deadline run with
  | result -> result
  | exception Encore_util.Deadline.Expired reason ->
      (* graceful degradation: every completed stage already has its
         checkpoint on disk; report how far the run got *)
      let stage = !current in
      Oevents.emit_deadline
        ~stage:(Checkpoint.stage_to_string stage)
        ~reason:(Encore_util.Deadline.reason_to_string reason);
      let timeout_warning =
        Res.diag Res.Timed_out
          ~subject:(Checkpoint.stage_to_string stage)
          (Printf.sprintf "deadline expired (%s) during the %s stage"
             (Encore_util.Deadline.reason_to_string reason)
             (Checkpoint.stage_to_string stage))
      in
      let report =
        finalize
          (build_report ~status:(Timed_out_at stage) ~mining_overflowed:false
             ~extra_warnings:[ timeout_warning ] ())
      in
      Ok
        {
          model = None;
          report;
          resumed = !resumed;
          checkpointed = !checkpointed;
        }

let learn_resilient ?config ?custom ?mode ?max_retries ?flaky ?mining_cap ?pool
    images =
  match
    learn_durable ?config ?custom ?mode ?max_retries ?flaky ?mining_cap ?pool
      images
  with
  | Error d -> Error d
  | Ok { model = Some model; report; _ } -> Ok (model, report)
  | Ok { model = None; _ } ->
      (* unreachable: without a deadline the pipeline cannot time out *)
      Error
        (Res.diag Res.Timed_out ~subject:"pipeline"
           "pipeline timed out without a deadline")

let exit_code = function
  | Error _ -> 1
  | Ok { report; _ } ->
      if
        report.status <> Completed
        || report.quarantined <> []
        || report.mining_overflowed
      then 3
      else 0

let report_to_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "ingested %d/%d image(s); %d quarantined; %d probe retrie(s), %d ms \
        virtual backoff\n"
       r.ok r.total
       (List.length r.quarantined)
       r.retried r.total_backoff_ms);
  Buffer.add_string buf "error histogram:";
  List.iter
    (fun (kind, n) ->
      Buffer.add_string buf
        (Printf.sprintf " %s=%d" (Res.kind_to_string kind) n))
    r.histogram;
  Buffer.add_char buf '\n';
  List.iter
    (fun (subject, diags) ->
      let cause =
        match diags with
        | d :: _ -> Res.diagnostic_to_string d
        | [] -> "unknown"
      in
      Buffer.add_string buf
        (Printf.sprintf "quarantined %s: %s\n" subject cause))
    r.quarantined;
  if r.mining_overflowed then
    Buffer.add_string buf
      "degraded: itemset mining overflowed; correlation rules may be \
       incomplete\n";
  (match r.status with
   | Completed -> ()
   | Timed_out_at stage ->
       Buffer.add_string buf
         (Printf.sprintf
            "degraded: deadline expired during the %s stage; completed \
             stages were checkpointed\n"
            (Checkpoint.stage_to_string stage)));
  Buffer.contents buf

(* --- degraded-mode checking ---------------------------------------------- *)

type degraded_check = {
  result : Encore_detect.Warning.t list;
  notes : string list;  (** degradations that limit detection coverage *)
}

(* --- fleet checking (the serving path) ----------------------------------- *)

type fleet_image_report = {
  fi_image : string;
  fi_warnings : Encore_detect.Warning.t list;
  fi_detections : int;
}

type fleet_status = Fleet_completed | Fleet_timed_out

let fleet_status_to_string = function
  | Fleet_completed -> "completed"
  | Fleet_timed_out -> "timed-out"

type fleet_report = {
  fleet_total : int;
  fleet_checked : int;
  fleet_warning_count : int;
  fleet_detection_count : int;
  fleet_images : fleet_image_report list;
  fleet_status : fleet_status;
}

let m_fleet_images = Ometrics.counter "fleet.images_checked"
let m_fleet_warnings = Ometrics.counter "fleet.warnings"

let fleet_image_line r =
  Json.to_string
    (Json.Obj
       [
         ("image", Json.Str r.fi_image);
         ("warnings", Json.Int (List.length r.fi_warnings));
         ("detections", Json.Int r.fi_detections);
         ( "items",
           Json.Arr (List.map Encore_detect.Report.warning_json r.fi_warnings)
         );
       ])

let check_fleet ?(config = Config.default) ?pool
    ?(deadline = Encore_util.Deadline.none) ?stream model targets =
  with_configured_pool ~config pool
  @@ fun pool ->
  Otrace.with_span "check-fleet"
    ~attrs:[ ("images", Json.Int (List.length targets)) ]
  @@ fun () ->
  (* compile once; the engine is immutable, so the worker domains share
     it without copies *)
  let engine = Encore_detect.Engine.compile model in
  let check_one img =
    let ws = Encore_detect.Engine.check engine img in
    {
      fi_image = img.Image.image_id;
      fi_warnings = ws;
      fi_detections =
        List.length
          (List.filter
             (fun (w : Encore_detect.Warning.t) ->
               w.Encore_detect.Warning.score >= config.Config.detection_score)
             ws);
    }
  in
  let emit_batch rs =
    match stream with
    | None -> ()
    | Some out -> List.iter (fun r -> out (fleet_image_line r)) rs
  in
  let result =
    match pool with
    | Some p ->
        Encore_util.Pool.map_batched p ~deadline ~yield:emit_batch check_one
          targets
    | None ->
        (* sequential serving: the deadline stops between images, so the
           partial report covers a prefix of the targets — the same
           shape the pooled path produces at batch granularity *)
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | img :: rest -> (
              match
                Encore_util.Deadline.raise_if_expired deadline;
                check_one img
              with
              | r ->
                  emit_batch [ r ];
                  go (r :: acc) rest
              | exception Encore_util.Deadline.Expired _ ->
                  Error (List.rev acc))
        in
        go [] targets
  in
  let images, status =
    match result with
    | Ok rs -> (rs, Fleet_completed)
    | Error rs -> (rs, Fleet_timed_out)
  in
  let warning_count =
    List.fold_left (fun n r -> n + List.length r.fi_warnings) 0 images
  in
  let detection_count =
    List.fold_left (fun n r -> n + r.fi_detections) 0 images
  in
  Ometrics.incr ~by:(List.length images) m_fleet_images;
  Ometrics.incr ~by:warning_count m_fleet_warnings;
  (match status with
  | Fleet_completed -> ()
  | Fleet_timed_out ->
      let reason =
        match Encore_util.Deadline.status deadline with
        | Some r -> Encore_util.Deadline.reason_to_string r
        | None -> "timed-out"
      in
      Oevents.emit_deadline ~stage:"check-fleet" ~reason);
  Oevents.emit_fleet
    ~images_total:(List.length targets)
    ~images_checked:(List.length images)
    ~warnings:warning_count
    ~status:(fleet_status_to_string status);
  {
    fleet_total = List.length targets;
    fleet_checked = List.length images;
    fleet_warning_count = warning_count;
    fleet_detection_count = detection_count;
    fleet_images = images;
    fleet_status = status;
  }

let fleet_exit_code r =
  match r.fleet_status with Fleet_completed -> 0 | Fleet_timed_out -> 3

let fleet_report_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "checked %d/%d image(s): %d warning(s), %d detection(s)\n"
       r.fleet_checked r.fleet_total r.fleet_warning_count
       r.fleet_detection_count);
  List.iter
    (fun i ->
      match i.fi_warnings with
      | [] -> ()
      | top :: _ ->
          Buffer.add_string buf
            (Printf.sprintf "  %s: %d warning(s), top: %s\n" i.fi_image
               (List.length i.fi_warnings)
               top.Encore_detect.Warning.message))
    r.fleet_images;
  (match r.fleet_status with
  | Fleet_completed -> ()
  | Fleet_timed_out ->
      Buffer.add_string buf
        (Printf.sprintf
           "degraded: deadline expired after %d of %d image(s); partial \
            report above\n"
           r.fleet_checked r.fleet_total));
  Buffer.contents buf

let check_degraded ?config ?report model img =
  let result =
    match config with
    | Some config -> check ~config model img
    | None -> check model img
  in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  if model.Detector.overflowed then
    note
      "itemset mining hit its cap during learning: correlation rules may be \
       incomplete";
  (match report with
  | Some r when r.quarantined <> [] ->
      note
        "%d of %d training image(s) quarantined: value statistics cover less \
         of the corpus"
        (List.length r.quarantined) r.total
  | Some _ | None -> ());
  (match report with
  | Some r
    when List.exists
           (fun (d : Res.diagnostic) -> d.Res.kind = Res.Custom_rule_error)
           (List.concat_map snd r.quarantined) ->
      note "a custom lens failed during ingestion: its app's entries are absent"
  | Some _ | None -> ());
  let learned_classes =
    List.sort_uniq compare
      (List.map
         (fun (r : Template.rule) -> r.Template.template.Template.tname)
         model.Detector.rules)
  in
  let missing =
    List.filter
      (fun (t : Template.t) -> not (List.mem t.Template.tname learned_classes))
      Template.predefined
  in
  if missing <> [] then
    note "no rules learned for template class(es) %s: their violations cannot \
          be flagged"
      (String.concat ", "
         (List.map (fun (t : Template.t) -> t.Template.tname) missing));
  { result; notes = List.rev !notes }
