(** Global thresholds of the EnCore pipeline, with the paper's defaults
    (section 7.3): confidence 90 %, support 10 % of the training set,
    entropy threshold Ht = 0.325, plus this reproduction's warning-score
    detection threshold used when a binary detected/missed verdict is
    needed. *)

type t = {
  min_confidence : float;
  min_support_frac : float;
  entropy_threshold : float;
  detection_score : float;
      (** a warning counts as a detection when its score reaches this *)
  seed : int;  (** master seed for the deterministic experiments *)
  jobs : int;
      (** worker domains for the learning pipeline (default 1 =
          sequential; the CLI defaults its [-j] flag to
          [Domain.recommended_domain_count]).  Learned models are
          identical for every value. *)
  chunk : int option;
      (** per-worker chunk factor for transient pools ([--chunk];
          [None] = the pool default).  Scheduling only — results never
          depend on it. *)
}

val default : t

val rule_params : t -> Encore_rules.Infer.params
