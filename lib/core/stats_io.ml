module Snapshot = Encore_util.Snapshot
module Suffstats = Encore_rules.Suffstats

type load_error = Snapshot.error

let load_error_to_string = Snapshot.error_to_string
let snapshot_kind = "suffstats"

let to_string stats =
  Snapshot.frame ~schema:Suffstats.payload_schema (Suffstats.to_payload stats)

let of_string ~path text =
  match Snapshot.unframe ~schema:Suffstats.payload_schema ~path text with
  | Error _ as e -> e
  | Ok payload -> (
      match Suffstats.of_payload payload with
      | Ok stats -> Ok stats
      | Error detail ->
          Error
            (Snapshot.Malformed
               { path;
                 offset = String.length Suffstats.payload_schema + 1;
                 detail }))

let save path stats =
  Snapshot.write_atomic ~kind:snapshot_kind path (to_string stats)

let load path =
  match Snapshot.read ~kind:snapshot_kind path with
  | Error _ as e -> e
  | Ok payload -> of_string ~path payload

module Store = struct
  type t = Snapshot.Store.t

  let create ?keep ~dir () =
    Snapshot.Store.create ?keep ~kind:snapshot_kind ~dir ()

  let dir = Snapshot.Store.dir
  let snapshots = Snapshot.Store.snapshots
  let latest_path = Snapshot.Store.latest_path
  let save t stats = Snapshot.Store.save t (to_string stats)

  let load_latest t =
    match Snapshot.Store.load_latest t with
    | Error _ as e -> e
    | Ok (payload, path) -> (
        match of_string ~path payload with
        | Ok stats -> Ok (stats, path)
        | Error _ as e -> e)
end
