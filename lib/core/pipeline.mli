(** End-to-end EnCore pipeline (paper Figure 2): data collection and
    assembly, rule inference, anomaly detection — one facade over the
    substrate libraries, parameterized by {!Config}.

    Two learning entry points are exposed.  {!learn} is the historical
    strict path: it assumes a clean corpus and raises on a malformed
    customization file.  {!learn_resilient} is total: every fallible
    ingestion step reports through
    {!Encore_util.Resilience.diagnostic}, damaged images are
    quarantined instead of killing the run, and the returned
    {!ingest_report} accounts for every failure. *)

type model = Encore_detect.Detector.model

val learn_result :
  ?config:Config.t -> ?custom:string -> ?pool:Encore_util.Pool.t ->
  Encore_sysenv.Image.t list ->
  (model, Encore_util.Resilience.diagnostic) result
(** Learn a model from training images.  [custom] is the text of a
    customization file (paper Figure 6): its types are registered and
    its templates used in addition to the predefined ones.  A malformed
    customization file yields [Error] with kind [Custom_rule_error].

    Parallelism: with [pool], assembly and candidate-rule evaluation run
    on its worker domains.  Without [pool], a transient pool of
    [config.jobs] workers is used when [config.jobs > 1]; otherwise the
    pipeline is sequential.  The learned model is byte-identical in all
    cases. *)

val learn :
  ?config:Config.t -> ?custom:string -> ?pool:Encore_util.Pool.t ->
  Encore_sysenv.Image.t list -> model
(** Raising wrapper over {!learn_result}, kept for API compatibility.
    @raise Invalid_argument when the customization file is malformed. *)

(** {1 Mergeable sufficient-statistics learning}

    The incremental/sharded face of learning: statistics fold per image
    and merge associatively ({!Encore_rules.Suffstats}), a resident
    learner finalizes them into a model and extends in sublinear time.
    All entry points produce models byte-identical to the batch path
    under the same {!Config}. *)

val stats_of_images :
  ?config:Config.t -> ?pool:Encore_util.Pool.t -> ?shards:int ->
  Encore_sysenv.Image.t list -> Encore_rules.Suffstats.t
(** Fold the corpus into sufficient statistics.  With [shards > 1] the
    corpus is partitioned into contiguous chunks learned on the
    configured pool and recombined with an order-preserving merge
    reduction; the result is identical for every shard count and pool
    size. *)

val learner_result :
  ?config:Config.t -> ?custom:string -> ?pool:Encore_util.Pool.t ->
  ?mining_cap:int -> Encore_rules.Suffstats.t ->
  (Encore_rules.Suffstats.learner, Encore_util.Resilience.diagnostic) result
(** Finalize statistics into a resident learner under the configured
    thresholds (and optional customization file, as {!learn_result}).
    The learner's model matches {!learn_resilient}'s on the same
    corpus, mining-overflow bit included. *)

val learn_append :
  ?config:Config.t -> ?pool:Encore_util.Pool.t ->
  Encore_rules.Suffstats.learner -> Encore_sysenv.Image.t list ->
  Encore_rules.Suffstats.learner
(** Fold new images into a resident learner — sublinear in corpus size
    while type decisions hold (see {!Encore_rules.Suffstats.append});
    the refreshed model always equals a batch relearn over the grown
    corpus. *)

val model_of_learner : Encore_rules.Suffstats.learner -> model

val learn_sharded_result :
  ?config:Config.t -> ?custom:string -> ?pool:Encore_util.Pool.t ->
  ?shards:int -> ?mining_cap:int -> Encore_sysenv.Image.t list ->
  (model * Encore_rules.Suffstats.learner,
   Encore_util.Resilience.diagnostic) result
(** [stats_of_images] then [learner_result]: the [learn --shards]
    entry point. *)

val check :
  ?config:Config.t -> model -> Encore_sysenv.Image.t ->
  Encore_detect.Warning.t list
(** Ranked warnings for a target image. *)

val detections :
  ?config:Config.t -> model -> Encore_sysenv.Image.t ->
  Encore_detect.Warning.t list
(** Warnings at or above the configured detection score. *)

(** {1 Resilient ingestion} *)

type mode =
  | Keep_going  (** quarantine damaged images, train on the survivors *)
  | Fail_fast   (** surface the first fatal diagnostic as [Error] *)

type run_status =
  | Completed
  | Timed_out_at of Checkpoint.stage
      (** the deadline expired while this stage was running; stages
          before it completed (and were checkpointed when a checkpoint
          directory was given) *)

val run_status_to_string : run_status -> string

type ingest_report = {
  total : int;            (** images offered for training *)
  ok : int;               (** images that survived probing and parsing *)
  quarantined : (string * Encore_util.Resilience.diagnostic list) list;
      (** image id -> fatal diagnostics, in quarantine order *)
  retried : int;          (** probe retries performed across the run *)
  total_backoff_ms : int; (** virtual backoff accumulated by retries *)
  warnings : Encore_util.Resilience.diagnostic list;
      (** recoverable diagnostics: skipped config lines, dropped or
          truncated metadata records, mining overflow *)
  histogram : (Encore_util.Resilience.error_kind * int) list;
      (** every diagnostic of the run (fatal and recoverable) counted
          by kind; total = quarantine diagnostics + warnings *)
  mining_overflowed : bool;
  status : run_status;
}

val default_mining_cap : int

type outcome = {
  model : model option;
      (** [None] only when the run timed out before the model stage
          finished *)
  report : ingest_report;
  resumed : Checkpoint.stage list;
      (** stages restored from checkpoints instead of recomputed *)
  checkpointed : Checkpoint.stage list;
      (** stages persisted by this run *)
}

val learn_durable :
  ?config:Config.t ->
  ?custom:string ->
  ?mode:mode ->
  ?max_retries:int ->
  ?flaky:Encore_sysenv.Flaky.t ->
  ?mining_cap:int ->
  ?pool:Encore_util.Pool.t ->
  ?checkpoint:Checkpoint.t ->
  ?resume:Checkpoint.t ->
  ?deadline:Encore_util.Deadline.t ->
  ?kill_after:Checkpoint.stage ->
  Encore_sysenv.Image.t list ->
  (outcome, Encore_util.Resilience.diagnostic) result
(** {!learn_resilient} with durability.  The run proceeds in three
    stages — ingest, assemble, model — and:

    - with [checkpoint], persists each completed stage's artifact
      through the atomic snapshot writer;
    - with [resume], restores any stage whose checkpoint verifies and
      matches the run's fingerprint (population + parameters), skipping
      its computation.  Stale or damaged checkpoints are recomputed, so
      an interrupted-then-resumed run always produces a model
      byte-identical to an uninterrupted one;
    - with [deadline], polls the token at every stage boundary, before
      every probe, and (via {!Encore_util.Pool.with_deadline}) at every
      pooled work item.  Expiry is graceful: completed stages keep
      their checkpoints and the result is [Ok] with [model = None] and
      [report.status = Timed_out_at stage], plus a [Timed_out] warning
      diagnostic and a [deadline] event.

    [kill_after] is the chaos hook: it raises
    [Checkpoint.Simulated_crash] immediately after the given stage's
    checkpoint is written — the only exception this function lets
    escape. *)

val exit_code : (outcome, Encore_util.Resilience.diagnostic) result -> int
(** Process exit code for a durable run: [0] for a clean completed run,
    [3] for a degraded one (timed out, quarantined images or mining
    overflow), [1] for a failed one.  [2] is reserved for usage errors
    (set by the CLI's argument parser). *)

val learn_resilient :
  ?config:Config.t ->
  ?custom:string ->
  ?mode:mode ->
  ?max_retries:int ->
  ?flaky:Encore_sysenv.Flaky.t ->
  ?mining_cap:int ->
  ?pool:Encore_util.Pool.t ->
  Encore_sysenv.Image.t list ->
  (model * ingest_report, Encore_util.Resilience.diagnostic) result
(** Total learning path.  Each image is probed through [flaky] (default:
    a reliable simulator — only the image's own flakiness can fail it)
    with up to [max_retries] deterministic retries, then parsed through
    the diagnostic lens registry.  Images whose probe never succeeds or
    whose config payload is damaged are quarantined ([Keep_going],
    default) or returned as [Error] ([Fail_fast]).  The model is
    trained on the survivors; an FP-growth capacity probe (cap
    [mining_cap], default {!default_mining_cap}) sets the model's
    [overflowed] bit.  [Error] in keep-going mode only for a malformed
    customization file or a fully-quarantined population.  Never
    raises.

    Parallelism follows the same rule as {!learn_result}: an explicit
    [pool], else a transient pool of [config.jobs] workers.  Probing
    stays sequential (the flaky simulator's PRNG draw order defines
    reproducibility); parsing, assembly and rule inference fan out.
    The model and ingest report are byte-identical for any pool
    size. *)

val report_to_string : ingest_report -> string

(** {1 Fleet checking (the serving path)} *)

type fleet_image_report = {
  fi_image : string;                              (** image id *)
  fi_warnings : Encore_detect.Warning.t list;     (** ranked, best first *)
  fi_detections : int;
      (** warnings at or above the configured detection score *)
}

type fleet_status =
  | Fleet_completed
  | Fleet_timed_out
      (** the deadline expired; the report covers the prefix of the
          targets checked before expiry *)

val fleet_status_to_string : fleet_status -> string

type fleet_report = {
  fleet_total : int;            (** targets offered *)
  fleet_checked : int;          (** targets actually checked *)
  fleet_warning_count : int;
  fleet_detection_count : int;
  fleet_images : fleet_image_report list;  (** in target order *)
  fleet_status : fleet_status;
}

val fleet_image_line : fleet_image_report -> string
(** One image's report as a single JSON line:
    [{"image":…,"warnings":n,"detections":n,"items":[…]}] with each
    item's kind label, score, implicated attributes and message. *)

val check_fleet :
  ?config:Config.t ->
  ?pool:Encore_util.Pool.t ->
  ?deadline:Encore_util.Deadline.t ->
  ?stream:(string -> unit) ->
  model ->
  Encore_sysenv.Image.t list ->
  fleet_report
(** Check many target images against one model.  The model is compiled
    once ({!Encore_detect.Engine.compile}) and the compiled engine —
    immutable — is shared by every worker; each image is checked under
    its own [check] span.  Pool selection follows {!learn_result}: an
    explicit [pool], else a transient pool of [config.jobs] workers,
    else sequential.  Per-image reports come back in target order and
    the rendered output is byte-identical for any pool size.

    [stream] receives each completed image's {!fleet_image_line} in
    target order, as soon as its batch completes — a JSONL sink for
    fleets too large to hold a report in memory.

    With [deadline], expiry is graceful: checking stops at a batch
    boundary (per image when sequential), the report covers the
    completed prefix with [fleet_status = Fleet_timed_out], and a
    [deadline] event is emitted.  A [fleet_report] event plus the
    [fleet.images_checked] / [fleet.warnings] counters account for
    every run. *)

val fleet_exit_code : fleet_report -> int
(** [0] for a completed run, [3] for a timed-out (degraded) one —
    the same contract as {!exit_code}; [1]/[2] remain load-failure and
    usage errors, set by the CLI. *)

val fleet_report_to_string : fleet_report -> string

type degraded_check = {
  result : Encore_detect.Warning.t list;
  notes : string list;  (** degradations that limit detection coverage *)
}

val check_degraded :
  ?config:Config.t -> ?report:ingest_report -> model ->
  Encore_sysenv.Image.t -> degraded_check
(** {!check}, annotated with what the model {e cannot} see: mining
    overflow, quarantined training images, failed custom lenses, and
    predefined template classes for which no rule survived learning. *)
