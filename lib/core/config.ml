type t = {
  min_confidence : float;
  min_support_frac : float;
  entropy_threshold : float;
  detection_score : float;
  seed : int;
  jobs : int;
  chunk : int option;
}

let default =
  {
    min_confidence = 0.90;
    min_support_frac = 0.10;
    entropy_threshold = Encore_util.Stats.entropy_threshold_90_10;
    detection_score = 0.55;
    seed = 42;
    jobs = 1;
    chunk = None;
  }

let rule_params t =
  {
    Encore_rules.Infer.min_support_frac = t.min_support_frac;
    min_confidence = t.min_confidence;
  }
