(** Stage checkpoints for crash-safe learning.

    {!Pipeline.learn_durable} persists its intermediate artifacts —
    the ingest survivor set, the assembled attribute table with its
    type environment, and the learned model — after each stage, all
    through the atomic {!Encore_util.Snapshot} writer.  A run that is
    killed or times out can then resume, skip every completed stage,
    and still produce a byte-identical model: the stages downstream of
    a checkpoint are deterministic functions of its contents.

    Every checkpoint payload is keyed by a {!fingerprint} of the
    training population and the learning parameters.  A checkpoint
    whose fingerprint does not match the current run — or that fails
    snapshot verification, or does not parse — is treated as absent
    and its stage recomputed, so resume always converges on the same
    model as an uninterrupted run. *)

type stage = Ingest | Assemble | Model

val all_stages : stage list
(** In pipeline order. *)

val stage_to_string : stage -> string
val stage_of_string : string -> stage option

exception Simulated_crash of stage
(** Raised by the chaos harness's kill-at-checkpoint hook immediately
    after the given stage's checkpoint is written — never by normal
    pipeline execution. *)

type t
(** A checkpoint directory: one snapshot file per stage. *)

val create : dir:string -> t
(** Open (creating the directory if needed) a checkpoint directory. *)

val dir : t -> string

val stage_path : t -> stage -> string
(** Where the given stage's checkpoint lives ([<dir>/<stage>.ckpt]). *)

val fingerprint :
  config:Config.t ->
  custom:string option ->
  mode:string ->
  max_retries:int option ->
  mining_cap:int ->
  Encore_sysenv.Image.t list ->
  string
(** Digest of the training population (every image's full content)
    and every parameter that can change the learned artifacts.  Two
    runs share checkpoints only when their fingerprints match. *)

val stage_fingerprint :
  fingerprint:string ->
  survivor_ids:string list ->
  quarantined_ids:string list ->
  string
(** The key for post-ingest (assemble/model) checkpoints: the run
    {!fingerprint} extended with the ids that survived and were
    quarantined by the ingest stage.  Binding later stages to the
    {e actual} image set means a [--resume] after a flaky run can never
    silently reuse an assemble/model checkpoint computed from a
    different survivor set than the one the current ingest produced. *)

(** What the ingest stage learned about the population; together with
    the input image list (re-supplied on resume) this reconstructs the
    survivor set and the ingest half of the report exactly. *)
type ingest_state = {
  survivor_ids : string list;  (** image ids that survived, input order *)
  quarantined : (string * Encore_util.Resilience.diagnostic list) list;
  warnings : Encore_util.Resilience.diagnostic list;
  retried : int;
  total_backoff_ms : int;
}

val save_ingest : t -> fingerprint:string -> ingest_state -> unit
val load_ingest : t -> fingerprint:string -> ingest_state option

val save_assemble :
  t -> fingerprint:string -> Encore_dataset.Assemble.assembled -> unit

val load_assemble :
  t -> fingerprint:string -> Encore_dataset.Assemble.assembled option
(** Type-decision floats round-trip through hex notation, so the
    restored environment is bit-identical to the saved one. *)

val save_model : t -> fingerprint:string -> Encore_detect.Detector.model -> unit
val load_model : t -> fingerprint:string -> Encore_detect.Detector.model option
