module Prng = Encore_util.Prng
module Res = Encore_util.Resilience
module Image = Encore_sysenv.Image
module Fault = Encore_inject.Fault
module Chaos = Encore_inject.Chaos
module Conferr = Encore_inject.Conferr
module Population = Encore_workloads.Population
module Profile = Encore_workloads.Profile
module Report = Encore_detect.Report
module Warning = Encore_detect.Warning

type outcome = {
  population : int;
  victims : string list;
  report : Pipeline.ingest_report;
  quarantine_exact : bool;
  telemetry_consistent : bool;
  telemetry_notes : string list;
  injected : int;
  clean_detected : int;
  chaos_detected : int;
  notes : string list;
}

(* Every diagnostic the resilient path counts into
   [ingest_report.histogram] is also emitted as one [diag] event, and
   every probe retry as one [retry] event.  Capture the event log of
   the learning run and check both tallies reconcile exactly — the
   telemetry layer must not drop or double-count anything. *)
let reconcile_telemetry (summary : Encore_obs.Summary.t)
    (report : Pipeline.ingest_report) =
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  List.iter
    (fun (kind, expected) ->
      let key = Encore_util.Resilience.kind_to_string kind in
      let got =
        Option.value ~default:0
          (List.assoc_opt key summary.Encore_obs.Summary.diag_kinds)
      in
      if got <> expected then
        note "diag events for %s: %d logged, %d in histogram" key got expected)
    report.Pipeline.histogram;
  List.iter
    (fun (key, _) ->
      if
        not
          (List.exists
             (fun (kind, _) -> Encore_util.Resilience.kind_to_string kind = key)
             report.Pipeline.histogram)
      then note "diag events of unknown kind %s" key)
    summary.Encore_obs.Summary.diag_kinds;
  let retry_events =
    Option.value ~default:0
      (List.assoc_opt "retry" summary.Encore_obs.Summary.event_kinds)
  in
  if retry_events <> report.Pipeline.retried then
    note "retry events: %d logged, %d in report" retry_events
      report.Pipeline.retried;
  (!notes = [], List.rev !notes)

(* Same detection criterion as the Table 8/10 experiments: a strong
   warning naming the faulted attribute. *)
let injection_detected ~config warnings (inj : Fault.injection) =
  let strong =
    List.filter
      (fun w -> w.Warning.score >= config.Config.detection_score)
      warnings
  in
  let base = Encore_confparse.Kv.key_basename inj.Fault.target_attr in
  let needles =
    match inj.Fault.fault with
    | Fault.Config_fault Fault.Key_typo ->
        [ Encore_confparse.Kv.key_basename inj.Fault.after; base ]
    | _ -> [ base ]
  in
  List.exists (fun needle -> Report.rank_of_attr strong needle <> None) needles

let count_detected ~config warnings injections =
  List.length (List.filter (injection_detected ~config warnings) injections)

let run ?(config = Config.default) ?(n = 50) ?(fraction = 0.3) ?faults
    ?max_retries ?(app = Image.Mysql) ~seed () =
  let profile = { Profile.ec2 with Profile.latent_error_rate = 0.0 } in
  let images =
    Population.images (Population.generate ~profile ~seed app ~n)
  in
  let rng = Prng.create (seed + 31) in
  let stormed = Chaos.storm ~fraction ?faults ~rng images in
  let victims =
    List.map (fun (v : Chaos.victim) -> v.Chaos.image_id) stormed.Chaos.victims
  in
  (* Capture the learning run's event log for reconciliation, then
     replay it into whatever sink the caller had installed (e.g. a
     --trace file), so capturing is invisible from the outside. *)
  let outer_sink = Encore_obs.Events.sink () in
  let captured = Buffer.create 4096 in
  Encore_obs.Events.set_sink (Encore_obs.Events.Buffer captured);
  let learned =
    Fun.protect
      ~finally:(fun () ->
        Encore_obs.Events.set_sink outer_sink;
        List.iter
          (fun line -> if line <> "" then Encore_obs.Events.write_line line)
          (String.split_on_char '\n' (Buffer.contents captured)))
      (fun () ->
        Pipeline.learn_resilient ~config ?max_retries
          ~mode:Pipeline.Keep_going stormed.Chaos.images)
  in
  match learned with
  | Error d -> Error d
  | Ok (chaos_model, report) ->
      let telemetry_consistent, telemetry_notes =
        reconcile_telemetry
          (Encore_obs.Summary.of_lines
             (String.split_on_char '\n' (Buffer.contents captured)))
          report
      in
      let clean_model = Pipeline.learn ~config images in
      let quarantine_exact =
        let ids = List.map fst report.Pipeline.quarantined in
        List.sort_uniq compare ids = List.sort_uniq compare victims
      in
      (* held-out clean target, ConfErr-injected *)
      let target_rng = Prng.create (seed + 7777) in
      let target =
        Population.generator_for app Profile.ec2 target_rng
          ~id:("chaos-target-" ^ Image.app_to_string app)
      in
      let campaign = Conferr.inject target_rng app target ~n:10 in
      let injections = campaign.Conferr.injections in
      let clean_detected =
        count_detected ~config
          (Pipeline.check ~config clean_model campaign.Conferr.image)
          injections
      in
      let degraded =
        Pipeline.check_degraded ~config ~report chaos_model
          campaign.Conferr.image
      in
      let chaos_detected =
        count_detected ~config degraded.Pipeline.result injections
      in
      Ok
        {
          population = List.length images;
          victims;
          report;
          quarantine_exact;
          telemetry_consistent;
          telemetry_notes;
          injected = List.length injections;
          clean_detected;
          chaos_detected;
          notes = degraded.Pipeline.notes;
        }

(* --- durability drill ------------------------------------------------------ *)

module Model_io = Encore_detect.Model_io

type durability_outcome = {
  kill_stages : (string * bool) list;
  truncate_detected : bool;
  bitflip_detected : bool;
  rollback_ok : bool;
  durability_notes : string list;
}

let durability ?(config = Config.default) ?(n = 12) ?(fraction = 0.25)
    ?(app = Image.Mysql) ~dir ~seed () =
  let profile = { Profile.ec2 with Profile.latent_error_rate = 0.0 } in
  let images = Population.images (Population.generate ~profile ~seed app ~n) in
  let rng = Prng.create (seed + 31) in
  (* drill on a stormed population so the resumed ingest state carries a
     real quarantine, not just the happy path *)
  let stormed = Chaos.storm ~fraction ~rng images in
  let images = stormed.Chaos.images in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := !notes @ [ s ]) fmt in
  match Pipeline.learn_durable ~config images with
  | Error d -> Error d
  | Ok { Pipeline.model = None; _ } ->
      Error
        (Res.diag Res.Timed_out ~subject:"durability drill"
           "reference run timed out without a deadline")
  | Ok { Pipeline.model = Some reference; _ } ->
      let reference_text = Model_io.to_string reference in
      (* 1. kill right after each stage checkpoint, resume, compare *)
      let kill_stages =
        List.map
          (fun stage ->
            let name = Checkpoint.stage_to_string stage in
            let ck =
              Checkpoint.create ~dir:(Filename.concat dir ("kill-" ^ name))
            in
            let crashed =
              match
                Pipeline.learn_durable ~config ~checkpoint:ck ~kill_after:stage
                  images
              with
              | exception Checkpoint.Simulated_crash s -> s = stage
              | Ok _ | Error _ -> false
            in
            if not crashed then note "kill hook did not fire at %s" name;
            let converged =
              match
                Pipeline.learn_durable ~config ~checkpoint:ck ~resume:ck images
              with
              | Ok { Pipeline.model = Some m; resumed; _ } ->
                  let identical = Model_io.to_string m = reference_text in
                  if not identical then
                    note "resume after kill at %s diverged from reference" name;
                  if not (List.mem stage resumed) then
                    note "stage %s recomputed instead of resumed" name;
                  identical && List.mem stage resumed
              | Ok { Pipeline.model = None; _ } ->
                  note "resume after kill at %s timed out" name;
                  false
              | Error d ->
                  note "resume after kill at %s failed: %s" name
                    (Res.diagnostic_to_string d);
                  false
            in
            (name, crashed && converged))
          Checkpoint.all_stages
      in
      (* 2. snapshot store: torn write detected, rollback to the last
         good snapshot; bitflip at rest detected *)
      let store =
        Model_io.Store.create ~keep:3 ~dir:(Filename.concat dir "store") ()
      in
      let _first = Model_io.Store.save store reference in
      let head = Model_io.Store.save store reference in
      let frng = Prng.create (seed + 97) in
      Chaos.truncate_file ~rng:frng head;
      let truncate_detected =
        match Model_io.load head with
        | Error _ -> true
        | Ok _ ->
            note "torn snapshot %s loaded as valid" head;
            false
      in
      let rollback_ok =
        match Model_io.Store.load_latest store with
        | Ok (m, path) ->
            let ok = path <> head && Model_io.to_string m = reference_text in
            if not ok then note "store rollback returned the torn head";
            ok
        | Error e ->
            note "store failed to roll back: %s"
              (Model_io.load_error_to_string e);
            false
      in
      let flipped = Model_io.Store.save store reference in
      Chaos.bitflip_file ~rng:frng flipped;
      let bitflip_detected =
        match Model_io.load flipped with
        | Error _ -> true
        | Ok _ ->
            note "bit-flipped snapshot %s loaded as valid" flipped;
            false
      in
      Ok
        {
          kill_stages;
          truncate_detected;
          bitflip_detected;
          rollback_ok;
          durability_notes = !notes;
        }

let durability_outcome_to_string o =
  let buf = Buffer.create 256 in
  List.iter
    (fun (stage, ok) ->
      Buffer.add_string buf
        (Printf.sprintf "kill after %s checkpoint: %s\n" stage
           (if ok then "resume converged byte-identical" else "FAILED")))
    o.kill_stages;
  Buffer.add_string buf
    (Printf.sprintf "torn snapshot detected: %s\n"
       (if o.truncate_detected then "yes" else "NO"));
  Buffer.add_string buf
    (Printf.sprintf "bit-flip detected: %s\n"
       (if o.bitflip_detected then "yes" else "NO"));
  Buffer.add_string buf
    (Printf.sprintf "store rollback to last good snapshot: %s\n"
       (if o.rollback_ok then "ok" else "FAILED"));
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n))
    o.durability_notes;
  Buffer.contents buf

let outcome_to_string o =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "chaos storm: %d image(s), %d victim(s); quarantine %s\n"
       o.population (List.length o.victims)
       (if o.quarantine_exact then "exact" else "INEXACT"));
  Buffer.add_string buf (Pipeline.report_to_string o.report);
  Buffer.add_string buf
    (if o.telemetry_consistent then
       "telemetry: event log reconciles with the ingest report\n"
     else "telemetry: INCONSISTENT with the ingest report\n");
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "telemetry: %s\n" n))
    o.telemetry_notes;
  Buffer.add_string buf
    (Printf.sprintf
       "detection on injected target: clean-trained %d/%d, chaos-trained \
        %d/%d\n"
       o.clean_detected o.injected o.chaos_detected o.injected);
  List.iter
    (fun note -> Buffer.add_string buf (Printf.sprintf "note: %s\n" note))
    o.notes;
  Buffer.contents buf
