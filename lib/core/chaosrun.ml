module Prng = Encore_util.Prng
module Res = Encore_util.Resilience
module Image = Encore_sysenv.Image
module Fault = Encore_inject.Fault
module Chaos = Encore_inject.Chaos
module Conferr = Encore_inject.Conferr
module Population = Encore_workloads.Population
module Profile = Encore_workloads.Profile
module Report = Encore_detect.Report
module Warning = Encore_detect.Warning

type outcome = {
  population : int;
  victims : string list;
  report : Pipeline.ingest_report;
  quarantine_exact : bool;
  telemetry_consistent : bool;
  telemetry_notes : string list;
  injected : int;
  clean_detected : int;
  chaos_detected : int;
  notes : string list;
}

(* Every diagnostic the resilient path counts into
   [ingest_report.histogram] is also emitted as one [diag] event, and
   every probe retry as one [retry] event.  Capture the event log of
   the learning run and check both tallies reconcile exactly — the
   telemetry layer must not drop or double-count anything. *)
let reconcile_telemetry (summary : Encore_obs.Summary.t)
    (report : Pipeline.ingest_report) =
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  List.iter
    (fun (kind, expected) ->
      let key = Encore_util.Resilience.kind_to_string kind in
      let got =
        Option.value ~default:0
          (List.assoc_opt key summary.Encore_obs.Summary.diag_kinds)
      in
      if got <> expected then
        note "diag events for %s: %d logged, %d in histogram" key got expected)
    report.Pipeline.histogram;
  List.iter
    (fun (key, _) ->
      if
        not
          (List.exists
             (fun (kind, _) -> Encore_util.Resilience.kind_to_string kind = key)
             report.Pipeline.histogram)
      then note "diag events of unknown kind %s" key)
    summary.Encore_obs.Summary.diag_kinds;
  let retry_events =
    Option.value ~default:0
      (List.assoc_opt "retry" summary.Encore_obs.Summary.event_kinds)
  in
  if retry_events <> report.Pipeline.retried then
    note "retry events: %d logged, %d in report" retry_events
      report.Pipeline.retried;
  (!notes = [], List.rev !notes)

(* Same detection criterion as the Table 8/10 experiments: a strong
   warning naming the faulted attribute. *)
let injection_detected ~config warnings (inj : Fault.injection) =
  let strong =
    List.filter
      (fun w -> w.Warning.score >= config.Config.detection_score)
      warnings
  in
  let base = Encore_confparse.Kv.key_basename inj.Fault.target_attr in
  let needles =
    match inj.Fault.fault with
    | Fault.Config_fault Fault.Key_typo ->
        [ Encore_confparse.Kv.key_basename inj.Fault.after; base ]
    | _ -> [ base ]
  in
  List.exists (fun needle -> Report.rank_of_attr strong needle <> None) needles

let count_detected ~config warnings injections =
  List.length (List.filter (injection_detected ~config warnings) injections)

let run ?(config = Config.default) ?(n = 50) ?(fraction = 0.3) ?faults
    ?max_retries ?(app = Image.Mysql) ~seed () =
  let profile = { Profile.ec2 with Profile.latent_error_rate = 0.0 } in
  let images =
    Population.images (Population.generate ~profile ~seed app ~n)
  in
  let rng = Prng.create (seed + 31) in
  let stormed = Chaos.storm ~fraction ?faults ~rng images in
  let victims =
    List.map (fun (v : Chaos.victim) -> v.Chaos.image_id) stormed.Chaos.victims
  in
  (* Capture the learning run's event log for reconciliation, then
     replay it into whatever sink the caller had installed (e.g. a
     --trace file), so capturing is invisible from the outside. *)
  let outer_sink = Encore_obs.Events.sink () in
  let captured = Buffer.create 4096 in
  Encore_obs.Events.set_sink (Encore_obs.Events.Buffer captured);
  let learned =
    Fun.protect
      ~finally:(fun () ->
        Encore_obs.Events.set_sink outer_sink;
        List.iter
          (fun line -> if line <> "" then Encore_obs.Events.write_line line)
          (String.split_on_char '\n' (Buffer.contents captured)))
      (fun () ->
        Pipeline.learn_resilient ~config ?max_retries
          ~mode:Pipeline.Keep_going stormed.Chaos.images)
  in
  match learned with
  | Error d -> Error d
  | Ok (chaos_model, report) ->
      let telemetry_consistent, telemetry_notes =
        reconcile_telemetry
          (Encore_obs.Summary.of_lines
             (String.split_on_char '\n' (Buffer.contents captured)))
          report
      in
      let clean_model = Pipeline.learn ~config images in
      let quarantine_exact =
        let ids = List.map fst report.Pipeline.quarantined in
        List.sort_uniq compare ids = List.sort_uniq compare victims
      in
      (* held-out clean target, ConfErr-injected *)
      let target_rng = Prng.create (seed + 7777) in
      let target =
        Population.generator_for app Profile.ec2 target_rng
          ~id:("chaos-target-" ^ Image.app_to_string app)
      in
      let campaign = Conferr.inject target_rng app target ~n:10 in
      let injections = campaign.Conferr.injections in
      let clean_detected =
        count_detected ~config
          (Pipeline.check ~config clean_model campaign.Conferr.image)
          injections
      in
      let degraded =
        Pipeline.check_degraded ~config ~report chaos_model
          campaign.Conferr.image
      in
      let chaos_detected =
        count_detected ~config degraded.Pipeline.result injections
      in
      Ok
        {
          population = List.length images;
          victims;
          report;
          quarantine_exact;
          telemetry_consistent;
          telemetry_notes;
          injected = List.length injections;
          clean_detected;
          chaos_detected;
          notes = degraded.Pipeline.notes;
        }

(* --- durability drill ------------------------------------------------------ *)

module Model_io = Encore_detect.Model_io

type durability_outcome = {
  kill_stages : (string * bool) list;
  truncate_detected : bool;
  bitflip_detected : bool;
  rollback_ok : bool;
  durability_notes : string list;
}

let durability ?(config = Config.default) ?(n = 12) ?(fraction = 0.25)
    ?(app = Image.Mysql) ~dir ~seed () =
  let profile = { Profile.ec2 with Profile.latent_error_rate = 0.0 } in
  let images = Population.images (Population.generate ~profile ~seed app ~n) in
  let rng = Prng.create (seed + 31) in
  (* drill on a stormed population so the resumed ingest state carries a
     real quarantine, not just the happy path *)
  let stormed = Chaos.storm ~fraction ~rng images in
  let images = stormed.Chaos.images in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := !notes @ [ s ]) fmt in
  match Pipeline.learn_durable ~config images with
  | Error d -> Error d
  | Ok { Pipeline.model = None; _ } ->
      Error
        (Res.diag Res.Timed_out ~subject:"durability drill"
           "reference run timed out without a deadline")
  | Ok { Pipeline.model = Some reference; _ } ->
      let reference_text = Model_io.to_string reference in
      (* 1. kill right after each stage checkpoint, resume, compare *)
      let kill_stages =
        List.map
          (fun stage ->
            let name = Checkpoint.stage_to_string stage in
            let ck =
              Checkpoint.create ~dir:(Filename.concat dir ("kill-" ^ name))
            in
            let crashed =
              match
                Pipeline.learn_durable ~config ~checkpoint:ck ~kill_after:stage
                  images
              with
              | exception Checkpoint.Simulated_crash s -> s = stage
              | Ok _ | Error _ -> false
            in
            if not crashed then note "kill hook did not fire at %s" name;
            let converged =
              match
                Pipeline.learn_durable ~config ~checkpoint:ck ~resume:ck images
              with
              | Ok { Pipeline.model = Some m; resumed; _ } ->
                  let identical = Model_io.to_string m = reference_text in
                  if not identical then
                    note "resume after kill at %s diverged from reference" name;
                  if not (List.mem stage resumed) then
                    note "stage %s recomputed instead of resumed" name;
                  identical && List.mem stage resumed
              | Ok { Pipeline.model = None; _ } ->
                  note "resume after kill at %s timed out" name;
                  false
              | Error d ->
                  note "resume after kill at %s failed: %s" name
                    (Res.diagnostic_to_string d);
                  false
            in
            (name, crashed && converged))
          Checkpoint.all_stages
      in
      (* 2. snapshot store: torn write detected, rollback to the last
         good snapshot; bitflip at rest detected *)
      let store =
        Model_io.Store.create ~keep:3 ~dir:(Filename.concat dir "store") ()
      in
      let _first = Model_io.Store.save store reference in
      let head = Model_io.Store.save store reference in
      let frng = Prng.create (seed + 97) in
      Chaos.truncate_file ~rng:frng head;
      let truncate_detected =
        match Model_io.load head with
        | Error _ -> true
        | Ok _ ->
            note "torn snapshot %s loaded as valid" head;
            false
      in
      let rollback_ok =
        match Model_io.Store.load_latest store with
        | Ok (m, path) ->
            let ok = path <> head && Model_io.to_string m = reference_text in
            if not ok then note "store rollback returned the torn head";
            ok
        | Error e ->
            note "store failed to roll back: %s"
              (Model_io.load_error_to_string e);
            false
      in
      let flipped = Model_io.Store.save store reference in
      Chaos.bitflip_file ~rng:frng flipped;
      let bitflip_detected =
        match Model_io.load flipped with
        | Error _ -> true
        | Ok _ ->
            note "bit-flipped snapshot %s loaded as valid" flipped;
            false
      in
      Ok
        {
          kill_stages;
          truncate_detected;
          bitflip_detected;
          rollback_ok;
          durability_notes = !notes;
        }

let durability_outcome_to_string o =
  let buf = Buffer.create 256 in
  List.iter
    (fun (stage, ok) ->
      Buffer.add_string buf
        (Printf.sprintf "kill after %s checkpoint: %s\n" stage
           (if ok then "resume converged byte-identical" else "FAILED")))
    o.kill_stages;
  Buffer.add_string buf
    (Printf.sprintf "torn snapshot detected: %s\n"
       (if o.truncate_detected then "yes" else "NO"));
  Buffer.add_string buf
    (Printf.sprintf "bit-flip detected: %s\n"
       (if o.bitflip_detected then "yes" else "NO"));
  Buffer.add_string buf
    (Printf.sprintf "store rollback to last good snapshot: %s\n"
       (if o.rollback_ok then "ok" else "FAILED"));
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n))
    o.durability_notes;
  Buffer.contents buf

(* --- serve storm ----------------------------------------------------------- *)

module Serve_server = Encore_serve.Server
module Serve_cache = Encore_serve.Cache
module Serve_proto = Encore_serve.Proto
module Json = Encore_obs.Jsonenc
module Collector = Encore_sysenv.Collector
module Engine = Encore_detect.Engine

type serve_outcome = {
  serve_requests : int;
  serve_malformed : int;
  serve_oversized : int;
  serve_crash_ops : int;
  serve_queued : int;
  serve_answered : int;
  serve_shed : int;
  serve_restarts : int;
  serve_ring_dropped : int;
  serve_all_answered : bool;
  serve_ring_bound_ok : bool;
  serve_drained : bool;
  serve_watch_verified : int;
  serve_watch_identical : bool;
  serve_metrics_served : int;
  serve_metrics_valid : bool;
  serve_rule_counters_seen : bool;
  serve_health_served : int;
  serve_health_degraded_seen : bool;
  serve_health_final : string;
  serve_traced : bool;
  serve_exit : int;
  serve_notes : string list;
}

(* Shallow validity check over a Prometheus exposition body: every line
   is a [# TYPE] header or a sample whose last token is a number, and
   all three instrument kinds appear.  Catches a garbled exposition
   without re-implementing a full parser. *)
let prom_valid body =
  let kinds = Hashtbl.create 4 in
  body <> String.empty
  && List.for_all
       (fun line ->
         line = ""
         ||
         if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
           (match String.rindex_opt line ' ' with
           | Some sp ->
               Hashtbl.replace kinds
                 (String.sub line (sp + 1) (String.length line - sp - 1))
                 ()
           | None -> ());
           true
         end
         else
           match String.rindex_opt line ' ' with
           | None -> false
           | Some sp ->
               let v =
                 String.sub line (sp + 1) (String.length line - sp - 1)
               in
               v = "+Inf" || v = "-Inf" || v = "NaN"
               || float_of_string_opt v <> None)
       (String.split_on_char '\n' body)
  && Hashtbl.mem kinds "counter"
  && Hashtbl.mem kinds "gauge"
  && Hashtbl.mem kinds "histogram"

let string_contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let serve_storm ?(config = Config.default) ?(requests = 10_000) ?(n = 16)
    ?(app = Image.Mysql) ~seed () =
  let profile = { Profile.ec2 with Profile.latent_error_rate = 0.0 } in
  let images = Population.images (Population.generate ~profile ~seed app ~n) in
  let model = Pipeline.learn ~config images in
  (* independent compile of the same model: the oracle for watch-mode
     byte-identity *)
  let reference = Engine.compile model in
  let cache = Serve_cache.create ~provider:(fun ~app:_ -> Ok model) in
  let sconfig =
    {
      Serve_server.default_config with
      Serve_server.queue_capacity = 32;
      ring_capacity = 64;
      max_request_bytes = 1 lsl 18;
    }
  in
  let server = Serve_server.create ~config:sconfig cache in
  let rng = Prng.create (seed + 4242) in
  let arr = Array.of_list images in
  let npop = Array.length arr in
  let dumps = Array.map Collector.image_to_text arr in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := !notes @ [ s ]) fmt in
  let originals = Hashtbl.create 32 in
  (* the server seeds sessions from the parsed dump, and the dump
     round-trip canonicalizes the environment (implied primary groups
     etc.) — the verification shadow must mirror the parsed image, not
     the pre-serialization one, or reference checks drift *)
  Array.iteri
    (fun k (img : Image.t) ->
      let canonical =
        match Collector.image_of_text dumps.(k) with
        | Ok restored -> restored
        | Error _ -> img
      in
      Hashtbl.replace originals img.Image.image_id canonical)
    arr;
  (* mirror of the server's session images, advanced only by ok
     responses, in response order — the base for reference checks *)
  let shadow : (string, Image.t) Hashtbl.t = Hashtbl.create 32 in
  let pending :
      (string, [ `Check of Image.t | `Watch of string * Image.app * string ])
      Hashtbl.t =
    Hashtbl.create 256
  in
  let queued = ref 0 and stepped = ref 0 in
  let malformed = ref 0 and oversized = ref 0 and crashes = ref 0 in
  let watch_verified = ref 0 and watch_mismatch = ref 0 in
  let ring_max = ref 0 in
  let bye_seen = ref false in
  let metrics_served = ref 0 and metrics_valid = ref true in
  let rule_counters_seen = ref false in
  let health_served = ref 0 and health_nonok_seen = ref false in
  let last_health = ref "" in
  let traced = ref true in
  let handle_response j =
    (match
       Option.bind
         (Option.bind (Json.member "ring" j) (Json.member "length"))
         Json.to_int_opt
     with
    | Some len -> ring_max := max !ring_max len
    | None -> ());
    (match Json.member "op" j with
    | Some (Json.Str "bye") -> bye_seen := true
    | _ -> ());
    let ok =
      match Json.member "ok" j with Some (Json.Bool b) -> b | _ -> false
    in
    (* telemetry contract: check/watch responses must carry the trace
       id assigned at admission; metrics/health must stay serviceable
       (breaker-bypassing) and structurally sound under the storm *)
    (match Json.member "op" j with
    | Some (Json.Str ("check" | "watch")) ->
        if Json.member "trace" j = None && !traced then begin
          traced := false;
          note "check/watch response without a trace id"
        end
    | Some (Json.Str "metrics") when ok ->
        incr metrics_served;
        (match Json.member "body" j with
        | Some (Json.Str body) ->
            if not (prom_valid body) && !metrics_valid then begin
              metrics_valid := false;
              note "metrics body is not valid Prometheus text"
            end;
            if string_contains body "detect_rule_fired" then
              rule_counters_seen := true
        | _ ->
            if !metrics_valid then begin
              metrics_valid := false;
              note "metrics response without a body"
            end)
    | Some (Json.Str "health") when ok -> (
        incr health_served;
        match
          Option.bind (Json.member "health" j) Json.to_string_opt
        with
        | Some verdict ->
            last_health := verdict;
            if verdict <> "ok" then health_nonok_seen := true
        | None ->
            if !metrics_valid then begin
              metrics_valid := false;
              note "health response without a verdict"
            end)
    | _ -> ());
    match Option.bind (Json.member "id" j) Json.to_string_opt with
    | None -> ()
    | Some id -> (
        match Hashtbl.find_opt pending id with
        | None -> ()
        | Some action -> (
            Hashtbl.remove pending id;
            if ok then
              match action with
              | `Check img ->
                  (* a fresh check reseeds the session from the parsed
                     dump — mirror exactly that image *)
                  Hashtbl.replace shadow img.Image.image_id img
              | `Watch (iid, wapp, cfg) -> (
                  match Hashtbl.find_opt shadow iid with
                  | None ->
                      (* unverifiable: an id-corrupted mangled request
                         reset this image at an unknown position *)
                      ()
                  | Some img ->
                      let img' = Image.set_config img wapp cfg in
                      Hashtbl.replace shadow iid img';
                      incr watch_verified;
                      let expect =
                        Json.to_string
                          (Json.Arr
                             (List.map Report.warning_json
                                (Engine.check reference img')))
                      in
                      let got =
                        match Json.member "items" j with
                        | Some items -> Json.to_string items
                        | None -> ""
                      in
                      if got <> expect then begin
                        incr watch_mismatch;
                        note "watch %s: incremental verdict diverged from \
                              full check" iid
                      end)))
  in
  let offer line =
    match Serve_server.offer server line with
    | [] -> incr queued
    | resps -> List.iter handle_response resps
  in
  let step () =
    match Serve_server.step server with
    | [] -> ()
    | resps ->
        stepped := !stepped + List.length resps;
        List.iter handle_response resps
  in
  let req_id i = Printf.sprintf "r%06d" i in
  let mk_check i k =
    Hashtbl.replace pending (req_id i)
      (`Check (Hashtbl.find originals arr.(k).Image.image_id));
    Json.to_string
      (Json.Obj
         [
           ("op", Json.Str "check");
           ("id", Json.Str (req_id i));
           ("image", Json.Str dumps.(k));
         ])
  in
  let mk_watch i =
    let ids = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) shadow []) in
    match ids with
    | [] -> None
    | ids ->
        let iid = List.nth ids (Prng.int rng (List.length ids)) in
        let img = Hashtbl.find shadow iid in
        (* a realistic drift: ConfErr-mutate the current config, ship
           the new text as the delta *)
        let campaign = Conferr.inject rng app img ~n:1 in
        let cfg =
          match Image.config_for campaign.Conferr.image app with
          | Some c -> c.Image.text
          | None -> ""
        in
        Hashtbl.replace pending (req_id i) (`Watch (iid, app, cfg));
        Some
          (Json.to_string
             (Json.Obj
                [
                  ("op", Json.Str "watch");
                  ("id", Json.Str (req_id i));
                  ("image", Json.Str iid);
                  ("app", Json.Str (Image.app_to_string app));
                  ("config", Json.Str cfg);
                ]))
  in
  (* A mangled line is usually rejected, but a control-byte splice can
     land inside a JSON string operand and still parse — and when the
     payload also survives the server's integrity scan (e.g. the splice
     only corrupted the correlation id), the daemon serves it.  Mirror
     the server's semantics for whatever the damaged line actually says,
     so the shadow tracks the session state exactly. *)
  let scan_image_clean (img : Image.t) =
    List.for_all
      (fun (c : Image.config_file) ->
        Res.scan_text ~subject:c.Image.path c.Image.text = [])
      img.Image.configs
  in
  let register_mangled line =
    match Serve_proto.parse line with
    | Error _ -> ()
    | Ok (Serve_proto.Check { id; source = Serve_proto.Inline text }) -> (
        match (Collector.image_of_text text, id) with
        | Ok img, Some id when scan_image_clean img ->
            Hashtbl.replace pending id (`Check img)
        | Ok img, None when scan_image_clean img ->
            (* the splice ate the correlation id but left a servable
               request: the session will reset at an unknowable queue
               position, so stop verifying this image until a
               correlated check re-seeds the shadow *)
            Hashtbl.remove shadow img.Image.image_id
        | (Ok _ | Error _), _ -> ())
    | Ok (Serve_proto.Watch { id; image_id; app; config }) -> (
        match (Image.app_of_string app, id) with
        | Some wapp, Some id when Res.scan_text ~subject:image_id config = [] ->
            Hashtbl.replace pending id (`Watch (image_id, wapp, config))
        | Some _, None when Res.scan_text ~subject:image_id config = [] ->
            Hashtbl.remove shadow image_id
        | _ -> ())
    | Ok _ -> ()
  in
  for i = 0 to requests - 1 do
    let line =
      if i = requests / 2 then
        (* mid-storm reload: every session re-seeds under the fresh
           engine on its next delta *)
        Json.to_string
          (Json.Obj [ ("op", Json.Str "reload"); ("id", Json.Str (req_id i)) ])
      else if i mod 20 = 3 then begin
        incr malformed;
        let base = mk_check i (Prng.int rng npop) in
        Hashtbl.remove pending (req_id i);
        let mangled = Chaos.mangle_request ~rng base in
        register_mangled mangled;
        mangled
      end
      else if i mod 20 = 7 then begin
        incr oversized;
        String.make (sconfig.Serve_server.max_request_bytes + 1) 'x'
      end
      else if i mod 503 >= 251 && i mod 503 < 254 then begin
        (* a burst of consecutive crashes, long enough to trip the
           breaker (threshold 3), so the health verdict visibly
           degrades and then recovers *)
        incr crashes;
        Json.to_string
          (Json.Obj [ ("op", Json.Str "crash"); ("id", Json.Str (req_id i)) ])
      end
      else if i mod 503 = 254 then
        (* probe health right behind the crash burst: the breaker just
           opened, so this must answer (breaker-bypassing) and report a
           degraded verdict *)
        Json.to_string
          (Json.Obj [ ("op", Json.Str "health"); ("id", Json.Str (req_id i)) ])
      else if i mod 101 = 25 then
        Json.to_string
          (Json.Obj
             [
               ("op", Json.Str "metrics");
               ("format", Json.Str "prometheus");
               ("id", Json.Str (req_id i));
             ])
      else if i mod 101 = 50 then
        Json.to_string
          (Json.Obj [ ("op", Json.Str "status"); ("id", Json.Str (req_id i)) ])
      else if i mod 5 = 1 then
        match mk_watch i with
        | Some line -> line
        | None -> mk_check i (Prng.int rng npop)
      else mk_check i (Prng.int rng npop)
    in
    offer line;
    (* pacing: hold processing back for a stretch every ~1k requests so
       the burst piles onto the bounded queue and sheds; elsewhere
       process faster than arrival *)
    if i mod 997 >= 40 then begin
      step ();
      step ()
    end
  done;
  (* settle the backlog, then take a final health reading: the breaker
     must have recovered (half-open trial succeeded) by now *)
  while Serve_server.pending server > 0 do
    step ()
  done;
  offer
    (Json.to_string
       (Json.Obj [ ("op", Json.Str "health"); ("id", Json.Str "h-final") ]));
  while Serve_server.pending server > 0 do
    step ()
  done;
  offer
    (Json.to_string
       (Json.Obj [ ("op", Json.Str "shutdown"); ("id", Json.Str "bye") ]));
  while Serve_server.pending server > 0 do
    step ()
  done;
  (match Serve_server.state server with
  | `Draining -> List.iter handle_response (Serve_server.drain_flush server)
  | `Running -> note "shutdown request did not start the drain"
  | `Stopped -> ());
  if !malformed * 20 < requests then note "malformed mix below 5%%";
  if !oversized * 20 < requests then note "oversized mix below 5%%";
  Ok
    {
      serve_requests = requests;
      serve_malformed = !malformed;
      serve_oversized = !oversized;
      serve_crash_ops = !crashes;
      serve_queued = !queued;
      serve_answered = !stepped;
      serve_shed = Serve_server.shed_count server;
      serve_restarts = Serve_server.restart_count server;
      serve_ring_dropped = Serve_server.ring_dropped server;
      serve_all_answered = !stepped = !queued;
      serve_ring_bound_ok = !ring_max <= sconfig.Serve_server.ring_capacity;
      serve_drained = !bye_seen && Serve_server.state server = `Stopped;
      serve_watch_verified = !watch_verified;
      serve_watch_identical = !watch_mismatch = 0;
      serve_metrics_served = !metrics_served;
      serve_metrics_valid = !metrics_valid;
      serve_rule_counters_seen = !rule_counters_seen;
      serve_health_served = !health_served;
      serve_health_degraded_seen = !health_nonok_seen;
      serve_health_final = !last_health;
      serve_traced = !traced;
      serve_exit = Serve_server.exit_code server;
      serve_notes = !notes;
    }

let serve_outcome_to_string o =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "serve storm: %d request(s) (%d malformed, %d oversized, %d crash \
        op(s))\n"
       o.serve_requests o.serve_malformed o.serve_oversized o.serve_crash_ops);
  Buffer.add_string buf
    (Printf.sprintf "queued %d, answered %d%s; shed %d; worker restarts %d\n"
       o.serve_queued o.serve_answered
       (if o.serve_all_answered then "" else " (UNANSWERED REQUESTS)")
       o.serve_shed o.serve_restarts);
  Buffer.add_string buf
    (Printf.sprintf "alert ring: bound %s, %d dropped\n"
       (if o.serve_ring_bound_ok then "held" else "EXCEEDED")
       o.serve_ring_dropped);
  Buffer.add_string buf
    (Printf.sprintf "watch deltas: %d verified %s full checks\n"
       o.serve_watch_verified
       (if o.serve_watch_identical then "byte-identical to"
        else "DIVERGED from"));
  Buffer.add_string buf
    (Printf.sprintf
       "telemetry: %d metrics scrape(s) (%s%s), %d health probe(s) \
        (degraded %s, final '%s'), trace ids %s\n"
       o.serve_metrics_served
       (if o.serve_metrics_valid then "valid prometheus" else "INVALID")
       (if o.serve_rule_counters_seen then ", rule counters present" else "")
       o.serve_health_served
       (if o.serve_health_degraded_seen then "observed" else "NOT OBSERVED")
       o.serve_health_final
       (if o.serve_traced then "present" else "MISSING"));
  Buffer.add_string buf
    (Printf.sprintf "drain: %s; exit code %d\n"
       (if o.serve_drained then "clean" else "INCOMPLETE")
       o.serve_exit);
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n))
    o.serve_notes;
  Buffer.contents buf

let outcome_to_string o =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "chaos storm: %d image(s), %d victim(s); quarantine %s\n"
       o.population (List.length o.victims)
       (if o.quarantine_exact then "exact" else "INEXACT"));
  Buffer.add_string buf (Pipeline.report_to_string o.report);
  Buffer.add_string buf
    (if o.telemetry_consistent then
       "telemetry: event log reconciles with the ingest report\n"
     else "telemetry: INCONSISTENT with the ingest report\n");
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "telemetry: %s\n" n))
    o.telemetry_notes;
  Buffer.add_string buf
    (Printf.sprintf
       "detection on injected target: clean-trained %d/%d, chaos-trained \
        %d/%d\n"
       o.clean_detected o.injected o.chaos_detected o.injected);
  List.iter
    (fun note -> Buffer.add_string buf (Printf.sprintf "note: %s\n" note))
    o.notes;
  Buffer.contents buf

(* --- transport storm & crash replay ---------------------------------------- *)

module Serve_mux = Encore_serve.Mux
module Serve_journal = Encore_serve.Journal

type transport_outcome = {
  tr_clients : int;
  tr_frames : int;
  tr_faults : int;
  tr_committed : int;
  tr_lost : int;
  tr_misrouted : int;
  tr_overflow_answers : int;
  tr_reconnects : int;
  tr_health_probes : int;
  tr_health_truthful : bool;
  tr_bye_all : bool;
  tr_exit : int;
  cr_requests : int;
  cr_journaled : int;
  cr_completed : int;
  cr_replayed : int;
  cr_tail_truncated : bool;
  cr_responses_identical : bool;
  cr_ring_identical : bool;
  cr_replay_idempotent : bool;
  tr_notes : string list;
}

(* one scripted frame of a storm client *)
type client_action =
  | Send of string  (* intact frame; its id, if any, must be answered *)
  | Send_slow of string  (* intact, dribbled one byte per driver turn *)
  | Torn of string  (* strict prefix, then disconnect and reconnect *)
  | Flood of int  (* unterminated junk of this size, then a newline *)

type storm_client = {
  index : int;
  mutable fd : Unix.file_descr;
  mutable script : client_action list;
  mutable outq : string;
  mutable out_off : int;
  mutable slow : bool;
  mutable close_after : bool;  (* mid-write disconnect once outq flushes *)
  rbuf : Buffer.t;
  mutable received : string list;  (* complete response lines, reverse *)
  mutable bye : bool;
  mutable anon_errors : int;  (* uncorrelated error responses (overflow) *)
  mutable alive : bool;
  mutable reconnects : int;
}

let transport_ok o =
  o.tr_lost = 0 && o.tr_misrouted = 0
  && o.tr_faults * 20 >= o.tr_frames
  && o.tr_health_truthful && o.tr_bye_all
  && o.cr_tail_truncated && o.cr_responses_identical && o.cr_ring_identical
  && o.cr_replay_idempotent
  && o.tr_notes = []

let transport_storm ?(config = Config.default) ?(requests = 10_000)
    ?(clients = 6) ?(n = 16) ?(app = Image.Mysql) ~dir ~seed () =
  if clients < 2 then Error "transport storm needs at least 2 clients"
  else begin
    (* writes to a peer that disconnected mid-response must surface as
       EPIPE, not kill the process *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let profile = { Profile.ec2 with Profile.latent_error_rate = 0.0 } in
    let images =
      Population.images (Population.generate ~profile ~seed app ~n)
    in
    let model = Pipeline.learn ~config images in
    let arr = Array.of_list images in
    let npop = Array.length arr in
    let dumps = Array.map Collector.image_to_text arr in
    let notes = ref [] in
    let note fmt = Printf.ksprintf (fun s -> notes := !notes @ [ s ]) fmt in

    (* ---- phase A: concurrent clients under transport faults ---- *)
    let frames_total = max (clients * 8) (min requests 2_000) in
    let sconfig =
      {
        Serve_server.default_config with
        Serve_server.queue_capacity = 64;
        ring_capacity = 64;
        max_request_bytes = 1 lsl 16;
      }
    in
    let mconfig =
      {
        Serve_mux.default_config with
        Serve_mux.max_line_bytes = (1 lsl 16) + (1 lsl 13);
        idle_polls_budget = 50_000;
      }
    in
    match Serve_journal.open_ ~path:(Filename.concat dir "transport.wal") with
    | Error e -> Error ("transport journal: " ^ e)
    | Ok (jnl, _) ->
        let cache = Serve_cache.create ~provider:(fun ~app:_ -> Ok model) in
        let server = Serve_server.create ~config:sconfig ~journal:jnl cache in
        let mux = Serve_mux.create ~config:mconfig server in
        let mk_client index =
          let cfd, sfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.set_nonblock cfd;
          ignore (Serve_mux.adopt mux sfd);
          {
            index;
            fd = cfd;
            script = [];
            outq = "";
            out_off = 0;
            slow = false;
            close_after = false;
            rbuf = Buffer.create 256;
            received = [];
            bye = false;
            anon_errors = 0;
            alive = true;
            reconnects = 0;
          }
        in
        let cls = Array.init clients mk_client in
        (* expected correlation ids and which client owns each *)
        let expected : (string, int) Hashtbl.t = Hashtbl.create 512 in
        let got : (string, unit) Hashtbl.t = Hashtbl.create 512 in
        let misrouted = ref 0 in
        let health_probes = ref 0 and health_truthful = ref true in
        let faults = ref 0 in
        let json_line op id extra =
          Json.to_string
            (Json.Obj ([ ("op", Json.Str op); ("id", Json.Str id) ] @ extra))
        in
        let mk_check id k =
          json_line "check" id [ ("image", Json.Str dumps.(k)) ]
        in
        let mk_watch id k =
          let cfg =
            match Image.config_for arr.(k) app with
            | Some c -> c.Image.text
            | None -> ""
          in
          json_line "watch" id
            [
              ("image", Json.Str arr.(k).Image.image_id);
              ("app", Json.Str (Image.app_to_string app));
              ("config", Json.Str cfg);
            ]
        in
        let expect c id = Hashtbl.replace expected id c.index in
        let gid = ref 0 in
        let next_id c =
          incr gid;
          Printf.sprintf "t%d-%06d" c.index !gid
        in
        (* client 0 stays fault-free (it later requests the shutdown and
           carries the health probes); the others tear, flood and crawl *)
        Array.iter
          (fun c ->
            let per = frames_total / clients in
            let acc = ref [] in
            for j = 0 to per - 1 do
              let id = next_id c in
              let k = (c.index + (j * clients)) mod npop in
              let action =
                if c.index = 0 then
                  if j mod 7 = 3 then begin
                    incr health_probes;
                    expect c id;
                    Send (json_line "health" id [])
                  end
                  else begin
                    expect c id;
                    Send (mk_check id k)
                  end
                else if j mod 20 = 5 then begin
                  incr faults;
                  Torn (mk_check id k)
                end
                else if j mod 20 = 11 then begin
                  incr faults;
                  Flood (mconfig.Serve_mux.max_line_bytes + 4096)
                end
                else if j mod 20 = 17 then begin
                  incr faults;
                  expect c id;
                  Send_slow (json_line "status" id [])
                end
                else if j mod 6 = 2 && j > 0 then begin
                  expect c id;
                  Send (mk_watch id c.index)
                end
                else begin
                  expect c id;
                  Send (mk_check id k)
                end
              in
              acc := action :: !acc
            done;
            (* first frame seeds the client's watch session *)
            let seed_id = next_id c in
            expect c seed_id;
            c.script <- Send (mk_check seed_id c.index) :: List.rev !acc)
          cls;
        let drain_reads c =
          if c.alive then begin
            let chunk = Bytes.create 4096 in
            let rec go () =
              match Unix.read c.fd chunk 0 (Bytes.length chunk) with
              | 0 -> ()
              | nread ->
                  Buffer.add_subbytes c.rbuf chunk 0 nread;
                  go ()
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                ->
                  ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | exception Unix.Unix_error (_, _, _) -> ()
            in
            go ();
            let text = Buffer.contents c.rbuf in
            Buffer.clear c.rbuf;
            let rec split start =
              match String.index_from_opt text start '\n' with
              | Some nl ->
                  let line = String.sub text start (nl - start) in
                  if line <> "" then begin
                    c.received <- line :: c.received;
                    (match Json.of_string line with
                    | Error _ -> note "client %d: unparsable response" c.index
                    | Ok j -> (
                        let ok =
                          match Json.member "ok" j with
                          | Some (Json.Bool b) -> b
                          | _ -> false
                        in
                        (match Json.member "op" j with
                        | Some (Json.Str "bye") -> c.bye <- true
                        | Some (Json.Str "health") when ok -> (
                            let verdict =
                              Option.bind (Json.member "health" j)
                                Json.to_string_opt
                            in
                            let reasons =
                              match Json.member "reasons" j with
                              | Some (Json.Arr l) -> l
                              | _ -> []
                            in
                            match verdict with
                            | Some (("ok" | "degraded" | "unhealthy") as v) ->
                                if v = "ok" <> (reasons = []) then begin
                                  health_truthful := false;
                                  note
                                    "health verdict '%s' inconsistent with %d \
                                     reason(s)"
                                    v (List.length reasons)
                                end
                            | _ ->
                                health_truthful := false;
                                note "health response without a verdict")
                        | _ -> ());
                        match
                          Option.bind (Json.member "id" j) Json.to_string_opt
                        with
                        | Some id -> (
                            match Hashtbl.find_opt expected id with
                            | Some owner when owner <> c.index ->
                                incr misrouted
                            | Some _ -> Hashtbl.replace got id ()
                            | None -> ())
                        | None -> if not ok then c.anon_errors <- c.anon_errors + 1
                        ))
                  end;
                  split (nl + 1)
              | None -> Buffer.add_substring c.rbuf text start (String.length text - start)
            in
            split 0
          end
        in
        let reconnect c =
          let cfd, sfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.set_nonblock cfd;
          ignore (Serve_mux.adopt mux sfd);
          c.fd <- cfd;
          c.reconnects <- c.reconnects + 1
        in
        let write_step c =
          if c.alive then
            if c.out_off < String.length c.outq then begin
              let len = String.length c.outq - c.out_off in
              let nwrite = if c.slow then 1 else len in
              (match Unix.write_substring c.fd c.outq c.out_off nwrite with
              | nw -> c.out_off <- c.out_off + nw
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                ->
                  ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
                ->
                  (* server closed us mid-script: reconnect and move on *)
                  drain_reads c;
                  Unix.close c.fd;
                  reconnect c;
                  c.outq <- "";
                  c.out_off <- 0);
              if c.out_off >= String.length c.outq && c.close_after then begin
                (* mid-write disconnect: the prefix is on the wire, the
                   frame will never terminate *)
                drain_reads c;
                Unix.close c.fd;
                reconnect c;
                c.close_after <- false;
                c.outq <- "";
                c.out_off <- 0
              end
            end
            else
              match c.script with
              | [] -> ()
              | action :: rest ->
                  c.script <- rest;
                  c.slow <- false;
                  c.out_off <- 0;
                  (match action with
                  | Send s -> c.outq <- s ^ "\n"
                  | Send_slow s ->
                      c.slow <- true;
                      c.outq <- s ^ "\n"
                  | Torn s ->
                      c.close_after <- true;
                      c.outq <- String.sub s 0 (max 1 (String.length s / 2))
                  | Flood size -> c.outq <- String.make size 'z' ^ "\n")
        in
        let turn () =
          Array.iter write_step cls;
          Serve_mux.step ~wait:false mux;
          Array.iter drain_reads cls
        in
        let work_left () =
          Array.exists
            (fun c ->
              c.script <> [] || c.out_off < String.length c.outq)
            cls
          || Hashtbl.length got < Hashtbl.length expected
        in
        let iters = ref 0 in
        let last_progress = ref 0 and stall = ref 0 in
        while work_left () && !stall < 5_000 && !iters < 400_000 do
          incr iters;
          turn ();
          let progress =
            Hashtbl.length got
            + Array.fold_left
                (fun acc c -> acc - List.length c.script)
                0 cls
          in
          if progress = !last_progress then incr stall
          else begin
            stall := 0;
            last_progress := progress
          end
        done;
        if work_left () then
          note "transport storm stalled after %d turn(s)" !iters;
        (* shutdown through client 0; every surviving client gets a bye *)
        cls.(0).script <- [ Send (json_line "shutdown" "t-bye" []) ];
        let budget = ref 0 in
        while (not (Serve_mux.stopped mux)) && !budget < 60_000 do
          incr budget;
          turn ()
        done;
        Array.iter drain_reads cls;
        if not (Serve_mux.stopped mux) then begin
          note "mux did not stop after shutdown";
          Serve_mux.shutdown_fds mux
        end;
        let lost =
          Hashtbl.fold
            (fun id _ acc ->
              if Hashtbl.mem got id then acc else id :: acc)
            expected []
        in
        List.iteri
          (fun i id -> if i < 5 then note "committed request %s unanswered" id)
          (List.sort compare lost);
        let bye_all = Array.for_all (fun c -> c.bye) cls in
        let overflow_answers =
          Array.fold_left (fun acc c -> acc + c.anon_errors) 0 cls
        in
        if overflow_answers = 0 then
          note "flooding clients saw no typed overflow response";
        let reconnects =
          Array.fold_left (fun acc c -> acc + c.reconnects) 0 cls
        in
        Array.iter
          (fun c -> if c.alive then try Unix.close c.fd with Unix.Unix_error _ -> ())
          cls;
        let tr_exit = Serve_server.exit_code server in

        (* ---- phase B: kill -9 mid-storm, replay, converge ---- *)
        let wal = Filename.concat dir "requests.wal" in
        (match Serve_journal.open_ ~path:wal with
        | Error e -> Error ("crash journal: " ^ e)
        | Ok (j1, _) ->
            let rng = Prng.create (seed + 777) in
            let bad_dumps =
              Array.init 8 (fun j ->
                  let campaign = Conferr.inject rng app arr.(j mod npop) ~n:2 in
                  Collector.image_to_text campaign.Conferr.image)
            in
            let cconfig =
              {
                sconfig with
                Serve_server.queue_capacity = 256;
                ring_capacity = 32;
              }
            in
            let mk_server journal =
              let c = Serve_cache.create ~provider:(fun ~app:_ -> Ok model) in
              Serve_server.create ~config:cconfig ?journal c
            in
            let server1 = mk_server (Some j1) in
            let storm_line i =
              let id = Printf.sprintf "k%06d" i in
              if i mod 211 = 17 then json_line "crash" id []
              else if i mod 20 = 3 then
                Chaos.mangle_request ~rng (mk_check id (Prng.int rng npop))
              else if i mod 7 = 2 then
                json_line "check" id
                  [ ("image", Json.Str bad_dumps.(i mod 8)) ]
              else if i mod 5 = 1 then mk_watch id (i mod npop)
              else mk_check id (Prng.int rng npop)
            in
            (* trace -> the responses the uninterrupted prefix produced *)
            let precrash : (string, string) Hashtbl.t = Hashtbl.create 512 in
            let record_step () =
              List.iter
                (fun j ->
                  match
                    Option.bind (Json.member "trace" j) Json.to_string_opt
                  with
                  | Some trace ->
                      Hashtbl.replace precrash trace (Json.to_string j)
                  | None -> ())
                (Serve_server.step server1)
            in
            let kill_at = max 1 (requests * 3 / 5) in
            (for i = 0 to kill_at - 1 do
               ignore (Serve_server.offer server1 (storm_line i));
               if i mod 3 = 0 then record_step ()
             done);
            (* kill -9: abandon the server with its queue still loaded;
               the journal fd goes away without a reset *)
            Serve_journal.close j1;
            (* a crash mid-append leaves a torn record at the tail *)
            let tear =
              "EJRNL1 R 999999 64 0123456789abcdef0123456789abcdef\ntorn"
            in
            (let fd =
               Unix.openfile wal [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644
             in
             ignore (Unix.write_substring fd tear 0 (String.length tear));
             Unix.close fd);
            (match Serve_journal.open_ ~path:wal with
            | Error e -> Error ("crash recovery: " ^ e)
            | Ok (j2, recovery) ->
                let entries = recovery.Serve_journal.entries in
                let journaled = List.length entries in
                let completed =
                  List.length
                    (List.filter
                       (fun (e : Serve_journal.entry) -> e.completed)
                       entries)
                in
                let collect_replay server journal_entries =
                  let emitted : (int, string) Hashtbl.t =
                    Hashtbl.create 512
                  in
                  ignore
                    (Serve_server.replay server ~entries:journal_entries
                       ~emit:(fun (e : Serve_journal.entry) resps ->
                         Hashtbl.replace emitted e.seq
                           (String.concat "\n"
                              (List.map Json.to_string resps))));
                  ( emitted,
                    List.map Json.to_string (Serve_server.alerts server) )
                in
                let server2 = mk_server (Some j2) in
                let recovered, ring2 = collect_replay server2 entries in
                let server3 = mk_server None in
                let reference, ring3 = collect_replay server3 entries in
                let identical = ref true in
                List.iter
                  (fun (e : Serve_journal.entry) ->
                    let want = Hashtbl.find_opt reference e.seq in
                    let got_resp =
                      if e.completed then
                        let trace =
                          match String.index_opt e.payload ' ' with
                          | Some sp -> String.sub e.payload 0 sp
                          | None -> e.payload
                        in
                        Hashtbl.find_opt precrash trace
                      else Hashtbl.find_opt recovered e.seq
                    in
                    if want <> got_resp && !identical then begin
                      identical := false;
                      note "crash replay diverged at seq %d" e.seq
                    end)
                  entries;
                let ring_identical = ring2 = ring3 in
                if not ring_identical then
                  note "alert ring diverged after crash replay";
                Serve_journal.close j2;
                (* second restart: everything is marked complete, and a
                   second replay lands on byte-identical state *)
                let idempotent =
                  match Serve_journal.open_ ~path:wal with
                  | Error e ->
                      note "reopen after replay: %s" e;
                      false
                  | Ok (j4, recovery2) ->
                      Serve_journal.close j4;
                      let entries2 = recovery2.Serve_journal.entries in
                      let server4 = mk_server None in
                      let again, ring4 = collect_replay server4 entries2 in
                      List.length entries2 = journaled
                      && List.for_all
                           (fun (e : Serve_journal.entry) -> e.completed)
                           entries2
                      && ring4 = ring2
                      && List.for_all
                           (fun (e : Serve_journal.entry) ->
                             Hashtbl.find_opt again e.seq
                             = Hashtbl.find_opt recovered e.seq)
                           entries2
                in
                if not idempotent then note "replay is not idempotent";
                Ok
                  {
                    tr_clients = clients;
                    tr_frames = frames_total + clients;
                    tr_faults = !faults;
                    tr_committed = Hashtbl.length expected;
                    tr_lost = List.length lost;
                    tr_misrouted = !misrouted;
                    tr_overflow_answers = overflow_answers;
                    tr_reconnects = reconnects;
                    tr_health_probes = !health_probes;
                    tr_health_truthful = !health_truthful;
                    tr_bye_all = bye_all;
                    tr_exit;
                    cr_requests = kill_at;
                    cr_journaled = journaled;
                    cr_completed = completed;
                    cr_replayed = journaled - completed;
                    cr_tail_truncated =
                      recovery.Serve_journal.truncated_at <> None;
                    cr_responses_identical = !identical;
                    cr_ring_identical = ring_identical;
                    cr_replay_idempotent = idempotent;
                    tr_notes = !notes;
                  }))
  end

let transport_outcome_to_string o =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "transport storm: %d client(s), %d frame(s), %d injected fault(s) \
        (%.1f%%), %d reconnect(s)\n"
       o.tr_clients o.tr_frames o.tr_faults
       (100.0 *. float_of_int o.tr_faults /. float_of_int (max 1 o.tr_frames))
       o.tr_reconnects);
  Buffer.add_string buf
    (Printf.sprintf
       "committed requests: %d, lost %d%s, misrouted %d; %d typed overflow \
        answer(s)\n"
       o.tr_committed o.tr_lost
       (if o.tr_lost = 0 then "" else " (RESPONSES LOST)")
       o.tr_misrouted o.tr_overflow_answers);
  Buffer.add_string buf
    (Printf.sprintf
       "health: %d probe(s), verdicts %s; drain byes %s; exit code %d\n"
       o.tr_health_probes
       (if o.tr_health_truthful then "truthful" else "UNTRUTHFUL")
       (if o.tr_bye_all then "delivered to every client" else "MISSING")
       o.tr_exit);
  Buffer.add_string buf
    (Printf.sprintf
       "crash drill: killed after %d request(s); %d journaled (%d completed, \
        %d replayed), torn tail %s\n"
       o.cr_requests o.cr_journaled o.cr_completed o.cr_replayed
       (if o.cr_tail_truncated then "truncated" else "NOT DETECTED"));
  Buffer.add_string buf
    (Printf.sprintf "crash replay: responses %s, alert ring %s, replay %s\n"
       (if o.cr_responses_identical then "byte-identical" else "DIVERGED")
       (if o.cr_ring_identical then "byte-identical" else "DIVERGED")
       (if o.cr_replay_idempotent then "idempotent" else "NOT IDEMPOTENT"));
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n))
    o.tr_notes;
  Buffer.contents buf
