module Image = Encore_sysenv.Image
module Population = Encore_workloads.Population
module Profile = Encore_workloads.Profile
module Cases = Encore_workloads.Cases
module Study = Encore_workloads.Study
module Spec = Encore_workloads.Spec
module Assemble = Encore_dataset.Assemble
module Table_ds = Encore_dataset.Table
module Discretize = Encore_dataset.Discretize
module Fpgrowth = Encore_mining.Fpgrowth
module Detector = Encore_detect.Detector
module Baseline = Encore_detect.Baseline
module Warning = Encore_detect.Warning
module Report = Encore_detect.Report
module Rinfer = Encore_rules.Infer
module Filters = Encore_rules.Filters
module Template = Encore_rules.Template
module Conferr = Encore_inject.Conferr
module Fault = Encore_inject.Fault
module Prng = Encore_util.Prng
module Strutil = Encore_util.Strutil
module Ctype = Encore_typing.Ctype
module Tinfer = Encore_typing.Infer

type table = {
  exp_id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string;
}

let render t =
  Encore_util.Texttab.render ~title:(t.exp_id ^ ": " ^ t.title) ~header:t.header
    t.rows
  ^ (if t.notes = "" then "" else "\n" ^ t.notes ^ "\n")

type scale = {
  training : int;
  ec2_targets : int;
  cloud_targets : int;
  mining_cap : int;
}

let paper_scale =
  { training = 0; ec2_targets = 120; cloud_targets = 300; mining_cap = 200_000 }

let test_scale =
  { training = 25; ec2_targets = 20; cloud_targets = 30; mining_cap = 20_000 }

let eval_apps = [ Image.Apache; Image.Mysql; Image.Php ]

let app_label = function
  | Image.Apache -> "Apache"
  | Image.Mysql -> "MySQL"
  | Image.Php -> "PHP"
  | Image.Sshd -> "sshd"

let training_size scale app =
  if scale.training > 0 then scale.training
  else
    match List.assoc_opt app Population.paper_training_sizes with
    | Some n -> n
    | None -> 100

(* Memoize trained populations and models per (seed, app, size): several
   experiments share them, and learning is the expensive step. *)
let population_cache : (string, Population.labeled list) Hashtbl.t =
  Hashtbl.create 8

let training_population ~seed ~scale app =
  let n = training_size scale app in
  let key = Printf.sprintf "%d/%s/%d" seed (Image.app_to_string app) n in
  match Hashtbl.find_opt population_cache key with
  | Some p -> p
  | None ->
      let p = Population.generate ~profile:Profile.ec2 ~seed app ~n in
      Hashtbl.add population_cache key p;
      p

let model_cache : (string, Detector.model) Hashtbl.t = Hashtbl.create 8

let trained_model ~config ~scale app =
  let seed = config.Config.seed in
  let n = training_size scale app in
  let key = Printf.sprintf "%d/%s/%d" seed (Image.app_to_string app) n in
  match Hashtbl.find_opt model_cache key with
  | Some m -> m
  | None ->
      let images = Population.clean (training_population ~seed ~scale app) in
      let m =
        Detector.learn
          ~params:(Config.rule_params config)
          ~entropy_threshold:config.Config.entropy_threshold images
      in
      Hashtbl.add model_cache key m;
      m

let assembled_cache : (string, Assemble.assembled) Hashtbl.t = Hashtbl.create 8

let assembled_training ~config ~scale app =
  let seed = config.Config.seed in
  let n = training_size scale app in
  let key = Printf.sprintf "%d/%s/%d" seed (Image.app_to_string app) n in
  match Hashtbl.find_opt assembled_cache key with
  | Some a -> a
  | None ->
      let images = Population.clean (training_population ~seed ~scale app) in
      let a = Assemble.assemble_training images in
      Hashtbl.add assembled_cache key a;
      a

(* ---------------------------------------------------------------- T1 *)

let table1 () =
  let ours = Study.rows () in
  let pct part total =
    if total = 0 then "0%" else Printf.sprintf "%d%%" (100 * part / total)
  in
  let rows =
    List.map2
      (fun (r : Study.row) (pname, ptotal, penv, pcorr) ->
        [ app_label r.Study.app;
          string_of_int r.Study.total;
          Printf.sprintf "%d (%s)" r.Study.env_related
            (pct r.Study.env_related r.Study.total);
          Printf.sprintf "%d (%s)" r.Study.correlated
            (pct r.Study.correlated r.Study.total);
          Printf.sprintf "%s: %d / %d (%s) / %d (%s)" pname ptotal penv
            (pct penv ptotal) pcorr (pct pcorr ptotal) ])
      ours Study.paper_rows
  in
  {
    exp_id = "table1";
    title = "Configuration parameters associated with environment and correlations";
    header = [ "App"; "Total"; "Env-Related"; "Correlated"; "Paper (total/env/corr)" ];
    rows;
    notes =
      "Shape: >=17% of entries env-related and >=27% correlated per app, \
       as in the paper's manual study.";
  }

(* ---------------------------------------------------------------- T2 *)

let table2 ?(config = Config.default) ?(scale = paper_scale) () =
  let rows =
    List.map
      (fun app ->
        let assembled = assembled_training ~config ~scale app in
        let table = assembled.Assemble.table in
        let augmented = Table_ds.column_count table in
        let original =
          List.length
            (List.filter
               (fun col ->
                 Strutil.contains_char col '/'
                 && not (Encore_dataset.Augment.is_augmented col))
               (Table_ds.columns table))
        in
        let binomial = Discretize.binomial_count table in
        [ app_label app; string_of_int original; string_of_int augmented;
          string_of_int binomial ])
      eval_apps
  in
  {
    exp_id = "table2";
    title = "Attributes generated by the data-mining pipeline";
    header = [ "App"; "Original"; "Augmented"; "Binomial" ];
    rows;
    notes =
      "Shape: environment integration grows the attribute count and boolean \
       discretization grows it again (paper: Apache 5773/9853/12921, MySQL \
       175/555/859, PHP 1672/1942/2374; magnitudes differ with the synthetic \
       populations, ordering must hold).";
  }

(* ---------------------------------------------------------------- T3 *)

let table3 ?(config = Config.default) ?(scale = paper_scale) () =
  let attr_steps = [ 60; 120; 180; 250 ] in
  let rows =
    List.concat_map
      (fun app ->
        let assembled = assembled_training ~config ~scale app in
        let table = assembled.Assemble.table in
        let transactions, dict = Discretize.transactions table in
        let n_tx = Array.length transactions in
        let min_support = max 2 (n_tx * 6 / 10) in
        (* the paper randomly selects configuration entries; pick item
           columns with a seeded shuffle so each step is a superset *)
        let rng = Prng.create (config.Config.seed + 3) in
        let item_order = Prng.shuffle rng (List.init (Array.length dict) Fun.id) in
        List.map
          (fun n_attrs ->
            let allowed = Hashtbl.create n_attrs in
            List.iteri
              (fun i item -> if i < n_attrs then Hashtbl.replace allowed item ())
              item_order;
            let restricted =
              Array.map
                (fun tx ->
                  Array.of_list
                    (List.filter (Hashtbl.mem allowed) (Array.to_list tx)))
                transactions
            in
            let t0 = Sys.time () in
            let count, overflowed =
              Fpgrowth.count_only ~max_itemsets:scale.mining_cap ~min_support
                restricted
            in
            let elapsed = Sys.time () -. t0 in
            [ app_label app; string_of_int n_attrs;
              Printf.sprintf "%.3f" elapsed;
              (if overflowed then Printf.sprintf ">%d (OOM)" scale.mining_cap
               else string_of_int count) ])
          attr_steps)
      eval_apps
  in
  {
    exp_id = "table3";
    title = "FP-Growth cost vs number of attributes";
    header = [ "App"; "Attrs"; "Time(s)"; "FrequentItemsets" ];
    rows;
    notes =
      "Shape: the frequent-item-set population grows super-linearly with the \
       attribute count and blows past the memory cap (the paper's OOM) at \
       the largest sizes.";
  }

(* ---------------------------------------------------------------- T8 *)

let needles_of_injection (inj : Fault.injection) =
  let base = Encore_confparse.Kv.key_basename inj.Fault.target_attr in
  match inj.Fault.fault with
  | Fault.Config_fault Fault.Key_typo ->
      [ Encore_confparse.Kv.key_basename inj.Fault.after; base ]
  | _ -> [ base ]

let injection_detected ~config warnings inj =
  let strong =
    List.filter
      (fun w -> w.Warning.score >= config.Config.detection_score)
      warnings
  in
  List.exists
    (fun needle -> Report.rank_of_attr strong needle <> None)
    (needles_of_injection inj)

let table8 ?(config = Config.default) ?(scale = paper_scale) () =
  let n_faults = 15 in
  let rows =
    List.map
      (fun app ->
        let model = trained_model ~config ~scale app in
        let bl_model =
          Baseline.baseline_model
            (Population.clean (training_population ~seed:config.Config.seed ~scale app))
        in
        let ble_model =
          Baseline.baseline_env_model
            (Population.clean (training_population ~seed:config.Config.seed ~scale app))
        in
        (* held-out target image, different seed stream *)
        let rng = Prng.create (config.Config.seed + 7777) in
        let target =
          Population.generator_for app Profile.ec2 rng
            ~id:("inject-target-" ^ Image.app_to_string app)
        in
        let campaign =
          Conferr.inject ~env_fault_fraction:0.0 rng app target ~n:n_faults
        in
        let count check_fn model =
          let warnings = check_fn model campaign.Conferr.image in
          List.length
            (List.filter (injection_detected ~config warnings)
               campaign.Conferr.injections)
        in
        let bl = count Baseline.baseline_check bl_model in
        let ble = count Baseline.baseline_env_check ble_model in
        let enc = count (fun m img -> Detector.check m img) model in
        [ app_label app;
          string_of_int (List.length campaign.Conferr.injections);
          string_of_int bl; string_of_int ble; string_of_int enc ])
      eval_apps
  in
  {
    exp_id = "table8";
    title = "Injected misconfigurations detected";
    header = [ "App"; "Total"; "Baseline"; "Baseline+Env"; "EnCore" ];
    rows;
    notes =
      "Shape: EnCore >= Baseline+Env >= Baseline, with EnCore detecting \
       1.6x-3.5x the Baseline (paper: Apache 4/9/14, MySQL 5/14/15, PHP \
       9/12/15 of 15).";
  }

(* ---------------------------------------------------------------- T9 *)

let table9 ?(config = Config.default) ?(scale = paper_scale) () =
  let cases = Cases.all ~seed:(config.Config.seed + 900) in
  let rows =
    List.map
      (fun (c : Cases.case) ->
        let model = trained_model ~config ~scale c.Cases.app in
        let warnings = Detector.check model c.Cases.target in
        let strong =
          Report.merge_by_attr
            (List.filter
               (fun w -> w.Warning.score >= config.Config.detection_score)
               warnings)
        in
        let rank = Report.rank_of_attr strong c.Cases.expected_attr in
        let rank_str =
          match rank with
          | Some r -> Printf.sprintf "%d(%d)" r (List.length strong)
          | None -> "-"
        in
        [ string_of_int c.Cases.case_id; app_label c.Cases.app;
          Cases.info_to_string c.Cases.info; rank_str;
          (if c.Cases.expect_miss then "miss expected" else "");
          c.Cases.description ])
      cases
  in
  {
    exp_id = "table9";
    title = "Detection of real-world misconfigurations";
    header = [ "ID"; "Software"; "Info"; "Rank(total)"; "Paper"; "Problem" ];
    rows;
    notes =
      "Shape: 9 of 10 cases detected with the true cause ranked at or near \
       the top; case 8 missed for lack of hardware data in EC2-style \
       training (as in the paper).";
  }

(* --------------------------------------------------------------- T10 *)

let category_of_fault = function
  | Fault.Config_fault Fault.Wrong_path | Fault.Config_fault Fault.Path_to_file ->
      "FilePath"
  | Fault.Env_fault Fault.Chown_flip | Fault.Env_fault Fault.Perm_flip
  | Fault.Env_fault Fault.Symlink_inject ->
      "Permission"
  | Fault.Config_fault Fault.Size_inversion | Fault.Config_fault Fault.Wrong_user
  | Fault.Config_fault Fault.Key_typo | Fault.Config_fault Fault.Value_typo
  | Fault.Config_fault Fault.Value_swap ->
      "ValueCompare"
  | Fault.Pipeline_fault _ -> "Ingestion"
  | Fault.Durability_fault _ -> "Durability"

let scan_population ~config ~scale ~profile ~seed_offset ~total =
  (* split the target population evenly across the three apps *)
  let per_app = max 1 (total / List.length eval_apps) in
  let counts = Hashtbl.create 4 in
  let detected = ref 0 in
  let images_with = ref 0 in
  List.iter
    (fun app ->
      let model = trained_model ~config ~scale app in
      let targets =
        Population.generate ~profile
          ~seed:(config.Config.seed + seed_offset) app ~n:per_app
      in
      List.iter
        (fun (l : Population.labeled) ->
          match l.Population.latent with
          | [] -> ()
          | injections ->
              let warnings = Detector.check model l.Population.image in
              let hits =
                List.filter (injection_detected ~config warnings) injections
              in
              if hits <> [] then incr images_with;
              List.iter
                (fun (inj : Fault.injection) ->
                  incr detected;
                  let cat = category_of_fault inj.Fault.fault in
                  Hashtbl.replace counts cat
                    (1 + Option.value ~default:0 (Hashtbl.find_opt counts cat)))
                hits)
        targets)
    eval_apps;
  let get cat = Option.value ~default:0 (Hashtbl.find_opt counts cat) in
  (get "FilePath", get "Permission", get "ValueCompare", !detected, !images_with)

let table10 ?(config = Config.default) ?(scale = paper_scale) () =
  let ec2_profile = Profile.ec2 in
  let cloud_profile = Profile.private_cloud in
  let fp1, perm1, vc1, tot1, img1 =
    scan_population ~config ~scale ~profile:ec2_profile ~seed_offset:1000
      ~total:scale.ec2_targets
  in
  let fp2, perm2, vc2, tot2, img2 =
    scan_population ~config ~scale ~profile:cloud_profile ~seed_offset:2000
      ~total:scale.cloud_targets
  in
  {
    exp_id = "table10";
    title = "New misconfigurations detected in fresh images";
    header = [ "Source"; "FilePath"; "Permission"; "ValueCompare"; "Total"; "Images" ];
    rows =
      [ [ "EC2"; string_of_int fp1; string_of_int perm1; string_of_int vc1;
          string_of_int tot1; string_of_int img1 ];
        [ "PrivateCloud"; string_of_int fp2; string_of_int perm2;
          string_of_int vc2; string_of_int tot2; string_of_int img2 ] ];
    notes =
      "Shape: pristine EC2-style templates carry more latent problems than \
       long-deployed private-cloud images (paper: 37 in 25 EC2 images vs 24 \
       in 22 private-cloud images); every detection needs environment or \
       correlation information.";
  }

(* --------------------------------------------------------------- T11 *)

(* Ground-truth lookup that masks the variable bracket arguments, e.g.
   apache/Directory[/var/www]/Options matches the catalog entry
   Directory[DOCROOT]/Options. *)
let mask_brackets key =
  let buf = Buffer.create (String.length key) in
  let inside = ref false in
  String.iter
    (fun c ->
      match c with
      | '[' ->
          inside := true;
          Buffer.add_string buf "[*"
      | ']' ->
          inside := false;
          Buffer.add_char buf ']'
      | c -> if not !inside then Buffer.add_char buf c)
    key;
  Buffer.contents buf

let ground_truth_type catalog attr =
  let masked = mask_brackets attr in
  List.find_map
    (fun (key, ct) ->
      if mask_brackets key = masked then Some ct else None)
    (Spec.ground_truth_types catalog)

let types_compatible ~truth ~inferred =
  Ctype.equal truth inferred
  || (Ctype.is_trivial truth
      && (Ctype.is_trivial inferred
          || match inferred with Ctype.Enum _ -> true | _ -> false))
  || (match (truth, inferred) with
      | Ctype.Bool_t, Ctype.Enum values ->
          List.for_all
            (fun v ->
              List.mem (Strutil.lowercase_ascii v)
                [ "on"; "off"; "true"; "false"; "yes"; "no"; "0"; "1" ])
            values
      | _ -> false)

let table11 ?(config = Config.default) ?(scale = paper_scale) () =
  let rows =
    List.map
      (fun app ->
        let assembled = assembled_training ~config ~scale app in
        let catalog = Population.catalog_for app in
        let config_cols =
          List.filter
            (fun col ->
              Strutil.contains_char col '/'
              && not (Encore_dataset.Augment.is_augmented col))
            (Table_ds.columns assembled.Assemble.table)
        in
        let entries = List.length config_cols in
        let nontrivial = ref 0 and false_types = ref 0 and undetected = ref 0 in
        List.iter
          (fun col ->
            match ground_truth_type catalog col with
            | None -> ()
            | Some truth ->
                let inferred =
                  Assemble.type_of assembled.Assemble.types col
                in
                if not (Ctype.is_trivial truth) then incr nontrivial;
                if not (types_compatible ~truth ~inferred) then
                  if Ctype.is_trivial inferred then incr undetected
                  else incr false_types)
          config_cols;
        [ app_label app; string_of_int entries; string_of_int !nontrivial;
          string_of_int !false_types; string_of_int !undetected ])
      eval_apps
  in
  {
    exp_id = "table11";
    title = "Data-type inference accuracy";
    header = [ "App"; "Entries"; "NonTrivial"; "FalseTypes"; "Undetected" ];
    rows;
    notes =
      "Shape: the two-step inference types the large majority of non-trivial \
       entries correctly, with small false/undetected tails (paper: Apache \
       371/207/14/20, MySQL 131/86/3/11, PHP 249/164/13/8).";
  }

(* ----------------------------------------------------------- T12/T13 *)

(* Rules are judged against the per-app correlation ground truth: the
   union-find closure of the generator's true_correlations connects
   attributes into correlated families; a rule is a true positive when
   both of its (base, bracket-masked) attributes fall in one family. *)
let correlation_families app =
  let pairs = Population.true_correlations_for app in
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some "" -> x
    | Some p -> if p = x then x else find p
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun (a, b) ->
      let a = mask_brackets a and b = mask_brackets b in
      if not (Hashtbl.mem parent a) then Hashtbl.replace parent a a;
      if not (Hashtbl.mem parent b) then Hashtbl.replace parent b b;
      union a b)
    pairs;
  fun a b ->
    let norm attr = mask_brackets (Encore_dataset.Augment.base_attr attr) in
    let a = norm a and b = norm b in
    Hashtbl.mem parent a && Hashtbl.mem parent b && find a = find b

let rules_with_and_without_entropy ~config ~scale app =
  let assembled = assembled_training ~config ~scale app in
  let images =
    Population.clean (training_population ~seed:config.Config.seed ~scale app)
  in
  let training =
    List.map2
      (fun img (_, row) -> (img, row))
      images
      (Table_ds.rows assembled.Assemble.table)
  in
  let unfiltered =
    Filters.reduce_redundant
      (Rinfer.infer ~params:(Config.rule_params config)
         ~types:assembled.Assemble.types training)
  in
  let kept, dropped =
    Filters.entropy_filter ~threshold:config.Config.entropy_threshold training
      unfiltered
  in
  (unfiltered, kept, dropped)

let table12 ?(config = Config.default) ?(scale = paper_scale) () =
  let rows =
    List.map
      (fun app ->
        let _, kept, _ = rules_with_and_without_entropy ~config ~scale app in
        let is_true = correlation_families app in
        let false_pos =
          List.length
            (List.filter
               (fun (r : Template.rule) ->
                 not (is_true r.Template.attr_a r.Template.attr_b))
               kept)
        in
        [ app_label app; string_of_int (List.length kept);
          string_of_int false_pos ])
      eval_apps
  in
  {
    exp_id = "table12";
    title = "Correlation rules detected (with all filters)";
    header = [ "App"; "DetectedRules"; "FalsePositives" ];
    rows;
    notes =
      "Shape: tens of concrete rules per application with a modest \
       false-positive tail (paper: Apache 42/9, MySQL 29/4, PHP 31/10).";
  }

let table13 ?(config = Config.default) ?(scale = paper_scale) () =
  let rows =
    List.map
      (fun app ->
        let unfiltered, _, dropped =
          rules_with_and_without_entropy ~config ~scale app
        in
        let is_true = correlation_families app in
        let fp_reduced =
          List.length
            (List.filter
               (fun (r : Template.rule) ->
                 not (is_true r.Template.attr_a r.Template.attr_b))
               dropped)
        in
        let fn_introduced =
          List.length
            (List.filter
               (fun (r : Template.rule) ->
                 is_true r.Template.attr_a r.Template.attr_b)
               dropped)
        in
        [ app_label app; string_of_int (List.length unfiltered);
          string_of_int fp_reduced; string_of_int fn_introduced ])
      eval_apps
  in
  {
    exp_id = "table13";
    title = "Effectiveness of the entropy filter";
    header = [ "App"; "Original"; "FP Reduced"; "FN Introduced" ];
    rows;
    notes =
      "Shape: the entropy filter removes a large share of the false rules at \
       the cost of a few true ones (paper: Apache 113/71/7, MySQL 52/23/1, \
       PHP 567/536/1).";
  }

let all ?(config = Config.default) ?(scale = paper_scale) () =
  [ table1 ();
    table2 ~config ~scale ();
    table3 ~config ~scale ();
    table8 ~config ~scale ();
    table9 ~config ~scale ();
    table10 ~config ~scale ();
    table11 ~config ~scale ();
    table12 ~config ~scale ();
    table13 ~config ~scale () ]
