module Res = Encore_util.Resilience
module Snapshot = Encore_util.Snapshot
module Csvio = Encore_util.Csvio
module Oevents = Encore_obs.Events
module Ometrics = Encore_obs.Metrics
module Image = Encore_sysenv.Image
module Assemble = Encore_dataset.Assemble
module Table = Encore_dataset.Table
module Row = Encore_dataset.Row
module Tinfer = Encore_typing.Infer
module Ctype = Encore_typing.Ctype
module Model_io = Encore_detect.Model_io

type stage = Ingest | Assemble | Model

let all_stages = [ Ingest; Assemble; Model ]

let stage_to_string = function
  | Ingest -> "ingest"
  | Assemble -> "assemble"
  | Model -> "model"

let stage_of_string = function
  | "ingest" -> Some Ingest
  | "assemble" -> Some Assemble
  | "model" -> Some Model
  | _ -> None

exception Simulated_crash of stage

type t = { ckpt_dir : string }

let create ~dir =
  Snapshot.mkdir_p dir;
  { ckpt_dir = dir }

let dir t = t.ckpt_dir

let stage_path t stage =
  Filename.concat t.ckpt_dir (stage_to_string stage ^ ".ckpt")

let kind_of_stage stage = "ckpt-" ^ stage_to_string stage

let m_saves = Ometrics.counter "checkpoint.saves"
let m_resumes = Ometrics.counter "checkpoint.resumes"
let m_stale = Ometrics.counter "checkpoint.stale"

(* --- fingerprint ---------------------------------------------------------- *)

(* Images and configs are plain data, so marshalling digests their full
   content — any change to the training population or to a parameter
   that reaches the learner invalidates every checkpoint. *)
let fingerprint ~config ~custom ~mode ~max_retries ~mining_cap images =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Digest.to_hex (Digest.string (Marshal.to_string (config : Config.t) [])));
  Buffer.add_string buf mode;
  Buffer.add_string buf
    (match custom with
     | None -> "-"
     | Some c -> Digest.to_hex (Digest.string c));
  Buffer.add_string buf
    (match max_retries with None -> "-" | Some n -> string_of_int n);
  Buffer.add_string buf (string_of_int mining_cap);
  List.iter
    (fun (img : Image.t) ->
      Buffer.add_string buf
        (Digest.to_hex (Digest.string (Marshal.to_string img []))))
    images;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- framed save / load --------------------------------------------------- *)

(* Assemble/model checkpoints are functions of the images that actually
   survived ingest, not of the requested population alone: a flaky run
   that quarantined images must not share post-ingest checkpoints with
   a clean run (or a differently-flaky one) over the same corpus, or a
   [--resume] would silently rebuild from the wrong survivor set.  The
   stage fingerprint therefore folds the survivor and quarantine ids
   into the base run fingerprint. *)
let stage_fingerprint ~fingerprint ~survivor_ids ~quarantined_ids =
  let buf = Buffer.create 256 in
  Buffer.add_string buf fingerprint;
  Buffer.add_string buf "\ns:";
  List.iter
    (fun id ->
      Buffer.add_string buf id;
      Buffer.add_char buf '\n')
    survivor_ids;
  Buffer.add_string buf "q:";
  List.iter
    (fun id ->
      Buffer.add_string buf id;
      Buffer.add_char buf '\n')
    quarantined_ids;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let save_payload t stage payload =
  let path = stage_path t stage in
  Snapshot.write_atomic ~kind:(kind_of_stage stage) path payload;
  Ometrics.incr m_saves;
  Oevents.emit_checkpoint ~stage:(stage_to_string stage) ~path
    ~bytes:(String.length payload) ~action:"saved"

let note_stale t stage =
  Ometrics.incr m_stale;
  Oevents.emit_checkpoint ~stage:(stage_to_string stage)
    ~path:(stage_path t stage) ~bytes:0 ~action:"stale"

let note_resumed t stage bytes =
  Ometrics.incr m_resumes;
  Oevents.emit_checkpoint ~stage:(stage_to_string stage)
    ~path:(stage_path t stage) ~bytes ~action:"resumed"

(* Every checkpoint payload begins with its fingerprint line; a payload
   that fails verification, carries the wrong fingerprint or does not
   parse is reported stale and the stage recomputed. *)
let load_payload t stage ~fingerprint =
  let path = stage_path t stage in
  if not (Sys.file_exists path) then None
  else
    match Snapshot.read ~kind:(kind_of_stage stage) path with
    | Error _ ->
        note_stale t stage;
        None
    | Ok payload -> (
        match String.index_opt payload '\n' with
        | None ->
            note_stale t stage;
            None
        | Some nl ->
            let fp = String.sub payload 0 nl in
            if fp <> fingerprint then begin
              note_stale t stage;
              None
            end
            else
              Some
                (String.sub payload (nl + 1) (String.length payload - nl - 1)))

let ( let* ) = Option.bind

let cut ~sep s =
  let n = String.length s and m = String.length sep in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sep then
      Some (String.sub s 0 i, String.sub s (i + m) (n - i - m))
    else go (i + 1)
  in
  go 0

let strip_prefix prefix s =
  if
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  then Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

(* --- ingest state --------------------------------------------------------- *)

type ingest_state = {
  survivor_ids : string list;
  quarantined : (string * Res.diagnostic list) list;
  warnings : Res.diagnostic list;
  retried : int;
  total_backoff_ms : int;
}

let diag_row (d : Res.diagnostic) =
  [ Res.kind_to_string d.Res.kind; d.Res.subject; d.Res.detail ]

let diag_of_row = function
  | [ kind; subject; detail ] ->
      Option.map
        (fun k -> Res.diag k ~subject detail)
        (Res.kind_of_string kind)
  | _ -> None

let ingest_payload st =
  let buf = Buffer.create 1024 in
  let row fields =
    Buffer.add_string buf (Csvio.row_to_string fields);
    Buffer.add_char buf '\n'
  in
  row [ string_of_int st.retried; string_of_int st.total_backoff_ms ];
  Buffer.add_string buf "@survivors\n";
  List.iter (fun id -> row [ id ]) st.survivor_ids;
  Buffer.add_string buf "@quarantined\n";
  List.iter
    (fun (subject, diags) ->
      match diags with
      | [] -> row [ subject ]
      | diags -> List.iter (fun d -> row (subject :: diag_row d)) diags)
    st.quarantined;
  Buffer.add_string buf "@warnings\n";
  List.iter (fun d -> row (diag_row d)) st.warnings;
  Buffer.contents buf

let group_quarantined rows =
  (* rows for one subject are written consecutively *)
  let grouped =
    List.fold_left
      (fun acc row ->
        match (row, acc) with
        | [ subject ], _ -> (subject, []) :: acc
        | subject :: diag, (s, ds) :: rest when s = subject -> (
            match diag_of_row diag with
            | Some d -> (s, d :: ds) :: rest
            | None -> acc)
        | subject :: diag, acc -> (
            match diag_of_row diag with
            | Some d -> (subject, [ d ]) :: acc
            | None -> (subject, []) :: acc)
        | [], acc -> acc)
      [] rows
  in
  List.rev_map (fun (s, ds) -> (s, List.rev ds)) grouped

let parse_ingest text =
  let* counters, rest = cut ~sep:"@survivors\n" text in
  let* survivors_text, rest = cut ~sep:"@quarantined\n" rest in
  let* quarantined_text, warnings_text = cut ~sep:"@warnings\n" rest in
  let* retried, total_backoff_ms =
    match Csvio.parse counters with
    | [ [ r; b ] ] -> (
        match (int_of_string_opt r, int_of_string_opt b) with
        | Some r, Some b -> Some (r, b)
        | _ -> None)
    | _ -> None
  in
  let survivor_ids =
    List.filter_map
      (function [ id ] -> Some id | _ -> None)
      (Csvio.parse survivors_text)
  in
  let quarantined = group_quarantined (Csvio.parse quarantined_text) in
  let warnings = List.filter_map diag_of_row (Csvio.parse warnings_text) in
  Some { survivor_ids; quarantined; warnings; retried; total_backoff_ms }

let save_ingest t ~fingerprint st =
  save_payload t Ingest (fingerprint ^ "\n" ^ ingest_payload st)

let load_ingest t ~fingerprint =
  let* rest = load_payload t Ingest ~fingerprint in
  match parse_ingest rest with
  | Some st ->
      note_resumed t Ingest (String.length rest);
      Some st
  | None ->
      note_stale t Ingest;
      None

(* --- assembled table ------------------------------------------------------ *)

(* The generic [Table.to_csv]/[of_csv] cell encoding is lossy: an
   attribute present with an empty value is indistinguishable from an
   absent one (so all-empty columns vanish on reload), and ';' inside
   a value collides with the multi-value cell separator.  The
   checkpoint therefore stores the underlying rows pair-by-pair and
   rebuilds with [Table.of_rows], which reproduces the table — column
   set, order and duplicates included — exactly. *)
let table_payload buf table =
  List.iter
    (fun (id, row) ->
      Buffer.add_string buf (Csvio.row_to_string [ "r"; id ]);
      Buffer.add_char buf '\n';
      List.iter
        (fun (attr, value) ->
          Buffer.add_string buf (Csvio.row_to_string [ "c"; attr; value ]);
          Buffer.add_char buf '\n')
        (Row.to_list row))
    (Table.rows table)

let parse_table text =
  let close_current rows = function
    | None -> rows
    | Some (id, rev_pairs) -> (id, Row.of_list (List.rev rev_pairs)) :: rows
  in
  let rec go rows current = function
    | [] -> Some (List.rev (close_current rows current))
    | [ "r"; id ] :: rest -> go (close_current rows current) (Some (id, [])) rest
    | [ "c"; attr; value ] :: rest -> (
        match current with
        | None -> None
        | Some (id, rev_pairs) ->
            go rows (Some (id, (attr, value) :: rev_pairs)) rest)
    | _ -> None
  in
  Option.map Table.of_rows (go [] None (Csvio.parse text))

(* Agreement fractions are written in hexadecimal float notation so the
   restored type environment is bit-identical to the saved one. *)
let assemble_payload (a : Assemble.assembled) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "@types\n";
  List.iter
    (fun (attr, (d : Tinfer.decision)) ->
      Buffer.add_string buf
        (Csvio.row_to_string
           [
             attr; Ctype.to_string d.Tinfer.ctype;
             Printf.sprintf "%h" d.Tinfer.agreement;
             string_of_int d.Tinfer.samples;
           ]);
      Buffer.add_char buf '\n')
    a.Assemble.types;
  Buffer.add_string buf "@table\n";
  table_payload buf a.Assemble.table;
  Buffer.contents buf

let parse_assemble text =
  let* rest = strip_prefix "@types\n" text in
  let* types_text, table_text = cut ~sep:"@table\n" rest in
  let* types =
    List.fold_left
      (fun acc row ->
        let* acc = acc in
        match row with
        | [ attr; ctype; agreement; samples ] -> (
            match
              ( Ctype.of_string ctype,
                float_of_string_opt agreement,
                int_of_string_opt samples )
            with
            | Some ctype, Some agreement, Some samples ->
                Some ((attr, { Tinfer.ctype; agreement; samples }) :: acc)
            | _ -> None)
        | _ -> None)
      (Some []) (Csvio.parse types_text)
  in
  match parse_table table_text with
  | Some table -> Some { Assemble.table; types = List.rev types }
  | None -> None

let save_assemble t ~fingerprint a =
  save_payload t Assemble (fingerprint ^ "\n" ^ assemble_payload a)

let load_assemble t ~fingerprint =
  let* rest = load_payload t Assemble ~fingerprint in
  match parse_assemble rest with
  | Some a ->
      note_resumed t Assemble (String.length rest);
      Some a
  | None ->
      note_stale t Assemble;
      None

(* --- model ---------------------------------------------------------------- *)

let save_model t ~fingerprint model =
  save_payload t Model (fingerprint ^ "\n" ^ Model_io.to_string model)

let load_model t ~fingerprint =
  let* rest = load_payload t Model ~fingerprint in
  match Model_io.parse_payload rest with
  | Ok model ->
      note_resumed t Model (String.length rest);
      Some model
  | Error _ ->
      note_stale t Model;
      None
