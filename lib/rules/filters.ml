module Row = Encore_dataset.Row

let attribute_entropy training attr =
  let values = List.concat_map (fun (_, row) -> Row.get_all row attr) training in
  Encore_util.Stats.entropy values

(* Same value sequence as {!attribute_entropy} — the column's cells are
   the rows' instance lists in row order — so the entropy is bit-equal,
   without a per-row hashtable probe. *)
let attribute_entropy_view view attr =
  match Encore_dataset.Colview.id view attr with
  | None -> Encore_util.Stats.entropy []
  | Some id ->
      let col = Encore_dataset.Colview.column view id in
      Encore_util.Stats.entropy (Array.fold_right ( @ ) col [])

let pair_key (r : Template.rule) =
  if r.attr_a <= r.attr_b then (r.attr_a, r.attr_b) else (r.attr_b, r.attr_a)

let by_confidence rules =
  List.sort
    (fun (a : Template.rule) b ->
      match compare b.confidence a.confidence with
      | 0 -> compare b.support a.support
      | c -> c)
    rules

(* Spanning tree per equivalence class: keep a rule only if its two
   attributes were not already connected by kept rules. *)
let spanning_tree rules =
  let parent = Hashtbl.create 32 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None -> x
    | Some p -> if p = x then x else find p
  in
  List.filter
    (fun (r : Template.rule) ->
      let ra = find r.attr_a and rb = find r.attr_b in
      if ra = rb then false
      else begin
        Hashtbl.replace parent ra rb;
        true
      end)
    (by_confidence rules)

(* Hasse reduction of a strict order: drop (a,c) when kept rules give
   a<b and b<c. *)
let order_reduce rules =
  let edges = Hashtbl.create 32 in
  List.iter
    (fun (r : Template.rule) -> Hashtbl.replace edges (r.attr_a, r.attr_b) ())
    rules;
  List.filter
    (fun (r : Template.rule) ->
      let has_midpoint =
        List.exists
          (fun (m : Template.rule) ->
            m.attr_a = r.attr_a && m.attr_b <> r.attr_b
            && Hashtbl.mem edges (m.attr_b, r.attr_b))
          rules
      in
      not has_midpoint)
    rules

let reduce_redundant rules =
  let is_rel rel (r : Template.rule) = r.template.Template.relation = rel in
  let eq_all = List.filter (is_rel Relation.Eq_all) rules in
  let eq_pairs = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace eq_pairs (pair_key r) ()) eq_all;
  let eq_exists =
    List.filter
      (fun r ->
        is_rel Relation.Eq_exists r && not (Hashtbl.mem eq_pairs (pair_key r)))
      rules
  in
  let num_less = List.filter (is_rel Relation.Num_less) rules in
  let size_less = List.filter (is_rel Relation.Size_less) rules in
  let others =
    List.filter
      (fun (r : Template.rule) ->
        match r.template.Template.relation with
        | Relation.Eq_all | Relation.Eq_exists | Relation.Num_less
        | Relation.Size_less ->
            false
        | _ -> true)
      rules
  in
  by_confidence
    (spanning_tree eq_all @ spanning_tree eq_exists @ order_reduce num_less
     @ order_reduce size_less @ others)

let entropy_filter ?(threshold = Encore_util.Stats.entropy_threshold_90_10)
    ?view training rules =
  let attr_entropy =
    match view with
    | Some v -> attribute_entropy_view v
    | None -> attribute_entropy training
  in
  (* memoize per-attribute entropy: many rules share attributes *)
  let cache = Hashtbl.create 64 in
  let entropy attr =
    match Hashtbl.find_opt cache attr with
    | Some h -> h
    | None ->
        let h = attr_entropy attr in
        Hashtbl.add cache attr h;
        h
  in
  List.partition
    (fun (r : Template.rule) ->
      entropy r.attr_a > threshold && entropy r.attr_b > threshold)
    rules
