(** Template-guided rule inference (paper section 5.1, Figure 5).

    For each template, every ordered pair of attributes whose inferred
    types match the slots is a candidate instantiation.  The relation's
    validation method is evaluated on every training image where both
    attributes are present; an instantiation becomes a candidate rule
    when it is applicable often enough (support) and holds almost always
    (confidence).  The entropy filter is applied separately (see
    {!Filters}) so its effect can be measured, as the paper does in
    Table 13. *)

type training = (Encore_sysenv.Image.t * Encore_dataset.Row.t) list

type params = {
  min_support_frac : float;  (** fraction of training images, default 0.10 *)
  min_confidence : float;    (** default 0.90 *)
}

val default_params : params

val instantiations :
  types:Encore_typing.Infer.env -> Template.t -> string list ->
  (string * string) list
(** Eligible ordered attribute pairs for a template, excluding
    self-pairs and pairs of augmented attributes sharing one base entry
    (an entry trivially correlates with its own augmentation). *)

val expand_polarities : Template.t list -> Template.t list
(** The predefined extended-boolean template names one relation but
    stands for every implication polarity; expand each [Bool_implies]
    template into its four (antecedent, consequent) polarity variants
    under the same template name. *)

type verdict =
  | Kept of Template.rule
  | Rejected_support      (** applicable too rarely, or vacuous *)
  | Rejected_confidence   (** confident too rarely, or no lift *)

val sort_rules : Template.rule list -> Template.rule list
(** The final rule order of {!infer}: confidence desc, then support
    desc; stable. *)

val min_support_of : params:params -> int -> int
(** Minimum applicable count over a training set of the given size. *)

val emit_metrics :
  candidates:int -> rej_support:int -> rej_confidence:int -> kept:int -> unit
(** Bump the [rules.*] counters, exactly as {!infer} does. *)

(** {2 Counts engine}

    The per-candidate arithmetic of {!infer} over a prebuilt columnar
    view and bitset overlay, for callers (the sufficient-statistics
    learner) that cache per-candidate [(applicable, valid)] counts and
    re-derive verdicts without re-scanning the training rows.  Every
    entry point reuses {!infer}'s own code paths, so verdicts computed
    through the engine are byte-identical to the batch judge's. *)

type engine

val engine_of :
  types:Encore_typing.Infer.env ->
  ctxs:Relation.ctx array ->
  view:Encore_dataset.Colview.t ->
  bits:Encore_dataset.Bitcol.t ->
  engine
(** [ctxs], [view] and [bits] must cover the same rows in the same
    order. *)

val engine_instantiations :
  engine -> Template.t -> (Template.t * int * int) list
(** Candidates of one template over the engine's attributes, as
    (template, attr-id, attr-id) in {!infer}'s generation order. *)

val engine_attr : engine -> int -> string
(** Attribute name of a column id. *)

val engine_counts : engine -> Template.t * int * int -> int * int
(** [(applicable, valid)] for a candidate over all rows — the fast
    bitset path, without the support pruning (the counts themselves
    decide support). *)

val engine_counts_from :
  engine -> from_row:int -> Template.t * int * int -> int * int
(** [(applicable, valid)] restricted to rows [>= from_row]: the
    incremental delta when rows are appended.  Counts are additive over
    a row partition, so [engine_counts eng c = old_counts + delta] when
    the engine extends an overlay whose counts were [old_counts]. *)

val engine_verdict :
  engine -> params:params -> min_support:int -> Template.t * int * int ->
  applicable:int -> valid:int -> verdict
(** The fate {!infer} would assign the candidate given its counts:
    vacuity and lift are answered from the engine's per-attribute
    caches, support and confidence from the supplied counts. *)

val infer :
  ?params:params -> ?templates:Template.t list -> ?jobs:int ->
  ?pool:Encore_util.Pool.t -> ?view:Encore_dataset.Colview.t ->
  types:Encore_typing.Infer.env -> training -> Template.rule list
(** Learn concrete rules; [templates] defaults to
    {!Template.predefined}.  Rules are sorted by decreasing confidence,
    then support.

    The training set is lowered to a columnar interned view
    ({!Encore_dataset.Colview}, or [view] when the caller already built
    one over the same rows) plus a bitset/index overlay
    ({!Encore_dataset.Bitcol}): per-attribute presence bitsets, dense
    index arrays, interned single-value ids, truthy bitsets for boolean
    columns and pre-parsed numeric/size arrays.  A candidate whose
    co-presence popcount cannot reach minimum support is rejected
    without evaluating its relation on any row; the equality, boolean
    implication and numeric/size order relations then count support and
    violations with popcounts and flat array scans, and only
    environment-dependent relations (paths, accounts, subnets) fall
    back to per-row {!Relation.eval} over the co-presence intersection.

    Candidates fan out to the pool in fixed-size shards, each folding
    into a domain-local accumulator (kept rules + rejection counters);
    shard boundaries are independent of the job count and the merge
    preserves shard order, so the result is byte-identical for every
    pool size and [jobs] value — the paper notes the instantiation loop
    "is highly parallelizable because there is zero state sharing"
    (section 5.1).  Without [pool], [jobs] (default 1) spins up a
    transient pool of that many domains. *)

val infer_reference :
  ?params:params -> ?templates:Template.t list -> ?jobs:int ->
  ?pool:Encore_util.Pool.t -> ?view:Encore_dataset.Colview.t ->
  types:Encore_typing.Infer.env -> training -> Template.rule list
(** The pre-bitset evaluator: one task per candidate, each walking the
    full columnar row range through {!Relation.eval}.  Kept as the
    semantic reference — tests pin {!infer} to it, and the bench's
    learn stage reports the bitset path's speedup against it.  Produces
    the same rules as {!infer} on any training set. *)

val evaluate_instantiation :
  Template.t -> training -> a:string -> b:string -> int * int
(** [(applicable, valid)] counts over the training set. *)
