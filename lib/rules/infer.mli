(** Template-guided rule inference (paper section 5.1, Figure 5).

    For each template, every ordered pair of attributes whose inferred
    types match the slots is a candidate instantiation.  The relation's
    validation method is evaluated on every training image where both
    attributes are present; an instantiation becomes a candidate rule
    when it is applicable often enough (support) and holds almost always
    (confidence).  The entropy filter is applied separately (see
    {!Filters}) so its effect can be measured, as the paper does in
    Table 13. *)

type training = (Encore_sysenv.Image.t * Encore_dataset.Row.t) list

type params = {
  min_support_frac : float;  (** fraction of training images, default 0.10 *)
  min_confidence : float;    (** default 0.90 *)
}

val default_params : params

val instantiations :
  types:Encore_typing.Infer.env -> Template.t -> string list ->
  (string * string) list
(** Eligible ordered attribute pairs for a template, excluding
    self-pairs and pairs of augmented attributes sharing one base entry
    (an entry trivially correlates with its own augmentation). *)

val expand_polarities : Template.t list -> Template.t list
(** The predefined extended-boolean template names one relation but
    stands for every implication polarity; expand each [Bool_implies]
    template into its four (antecedent, consequent) polarity variants
    under the same template name. *)

val infer :
  ?params:params -> ?templates:Template.t list -> ?jobs:int ->
  ?pool:Encore_util.Pool.t ->
  types:Encore_typing.Infer.env -> training -> Template.rule list
(** Learn concrete rules; [templates] defaults to
    {!Template.predefined}.  Rules are sorted by decreasing confidence,
    then support.

    The training set is first lowered to a columnar interned view
    ({!Encore_dataset.Colview}); each candidate then indexes two column
    arrays per row instead of hashing attribute strings.

    Candidate evaluation fans out over [pool]'s worker domains — the
    paper notes the instantiation loop "is highly parallelizable
    because there is zero state sharing" (section 5.1) and runs EnCore
    as a multi-process program.  Without [pool], [jobs] (default 1)
    spins up a transient pool of that many domains.  The result is
    byte-identical for every pool size and [jobs] value. *)

val evaluate_instantiation :
  Template.t -> training -> a:string -> b:string -> int * int
(** [(applicable, valid)] counts over the training set. *)
