module Row = Encore_dataset.Row
module Tinfer = Encore_typing.Infer
module Augment = Encore_dataset.Augment
module Bitcol = Encore_dataset.Bitcol
module Bitset = Bitcol.Bitset

type training = (Encore_sysenv.Image.t * Row.t) list

type params = { min_support_frac : float; min_confidence : float }

let default_params = { min_support_frac = 0.10; min_confidence = 0.90 }

let type_of types attr =
  match Tinfer.find types attr with
  | Some d -> d.Tinfer.ctype
  | None ->
      if Augment.is_augmented attr then Augment.augmented_type attr
      else Encore_typing.Ctype.String_t

(* Equality and boolean-implication templates are how augmented
   environment attributes enter rules; the remaining (path/user/number)
   relations instantiate over configuration entries and image globals
   only — pairing every path with every augmented .owner/.group copy
   would restate the same fact quadratically. *)
let augmented_slots_allowed (template : Template.t) =
  match template.Template.relation with
  | Relation.Eq_all | Relation.Eq_exists | Relation.Bool_implies _ -> true
  | Relation.Subnet | Relation.Concat_path | Relation.Substring
  | Relation.User_in_group | Relation.Not_accessible | Relation.Ownership
  | Relation.Num_less | Relation.Size_less ->
      false

let instantiations ~types template attrs =
  let slot_ok attr =
    augmented_slots_allowed template || not (Augment.is_augmented attr)
  in
  let eligible_a =
    List.filter
      (fun a -> slot_ok a && Template.eligible_a template (type_of types a))
      attrs
  in
  let eligible_b =
    List.filter
      (fun b -> slot_ok b && Template.eligible_b template (type_of types b))
      attrs
  in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if a = b then None
          else if
            (* symmetric relations: one orientation suffices; boolean
               implications: the a>b orientation is the contrapositive
               of an a<b rule with flipped polarities, so it is learned
               iff that one is — keep the canonical orientation only *)
            (Relation.symmetric template.Template.relation
            || match template.Template.relation with
               | Relation.Bool_implies _ -> true
               | _ -> false)
            && a > b
          then None
          else if Augment.base_attr a = Augment.base_attr b then
            (* an entry and its own augmentation correlate trivially *)
            None
          else if
            Relation.same_type_required template.Template.relation
            && not
                 (Encore_typing.Ctype.equal (type_of types a) (type_of types b))
          then None
          else Some (a, b))
        eligible_b)
    eligible_a

let evaluate_instantiation template training ~a ~b =
  List.fold_left
    (fun (applicable, valid) (image, row) ->
      let va = Row.get_all row a and vb = Row.get_all row b in
      if va = [] || vb = [] then (applicable, valid)
      else
        match
          Relation.eval template.Template.relation
            { Relation.image; row } ~a:va ~b:vb
        with
        | None -> (applicable, valid)
        | Some true -> (applicable + 1, valid + 1)
        | Some false -> (applicable + 1, valid))
    (0, 0) training

let expand_polarities templates =
  List.concat_map
    (fun t ->
      match t.Template.relation with
      | Relation.Bool_implies _ ->
          List.map
            (fun (pa, pb) ->
              { t with Template.relation = Relation.Bool_implies (pa, pb) })
            [ (true, true); (true, false); (false, true); (false, false) ]
      | _ -> [ t ])
    templates

(* For implication rules, vacuous truth (antecedent never holding) must
   not count as evidence: require the antecedent polarity to actually
   occur in a minimum number of training images. *)
let truthy v =
  match Encore_util.Strutil.lowercase_ascii (String.trim v) with
  | "on" | "true" | "yes" | "1" | "enabled" -> Some true
  | "off" | "false" | "no" | "0" | "disabled" -> Some false
  | _ -> None

let min_lift_margin = 0.05

(* One candidate's fate; tallied by the caller in candidate order so
   parallel evaluation never shares mutable state. *)
type verdict =
  | Kept of Template.rule
  | Rejected_support     (* applicable too rarely, or vacuous *)
  | Rejected_confidence  (* confident too rarely, or no lift *)

(* Columnar training set: [columns.(attr_id).(row)] is the instance
   list, [ctxs.(row)] the per-image evaluation context.  Candidate
   evaluation touches every (attribute, row) cell once per candidate;
   interning the attribute once per candidate and indexing arrays per
   row replaces a string hash + hashtable probe per cell. *)
type columnar = {
  cols : Encore_dataset.Colview.t;
  ctxs : Relation.ctx array;
}

let columnar_of_training ?view training =
  {
    cols =
      (match view with
       | Some v -> v
       | None -> Encore_dataset.Colview.of_rows (List.map snd training));
    ctxs =
      Array.of_list
        (List.map (fun (image, row) -> { Relation.image; row }) training);
  }

let empty_column = [||]

let column c attr =
  match Encore_dataset.Colview.id c.cols attr with
  | Some id -> Encore_dataset.Colview.column c.cols id
  | None -> empty_column

let evaluate_instantiation_cols template c ~ca ~cb =
  let applicable = ref 0 and valid = ref 0 in
  let n = Array.length c.ctxs in
  if Array.length ca = n && Array.length cb = n then
    for i = 0 to n - 1 do
      let va = ca.(i) and vb = cb.(i) in
      if va <> [] && vb <> [] then
        match
          Relation.eval template.Template.relation c.ctxs.(i) ~a:va ~b:vb
        with
        | None -> ()
        | Some true ->
            incr applicable;
            incr valid
        | Some false -> incr applicable
    done;
  (!applicable, !valid)

let antecedent_support_cols relation ~ca =
  match relation with
  | Relation.Bool_implies (pa, _) ->
      Some
        (Array.fold_left
           (fun acc values ->
             if List.exists (fun v -> truthy v = Some pa) values then acc + 1
             else acc)
           0 ca)
  | _ -> None

(* The consequent's base rate: fraction of images carrying B whose value
   already equals the implied polarity.  An implication whose confidence
   does not beat this base rate carries no information (lift ≈ 1) — the
   dominant source of binomial association noise. *)
let consequent_base_rate_cols relation ~cb =
  match relation with
  | Relation.Bool_implies (_, pb) ->
      let present = ref 0 and matching = ref 0 in
      Array.iter
        (fun values ->
          if values <> [] then begin
            incr present;
            if List.for_all (fun v -> truthy v = Some pb) values then
              incr matching
          end)
        cb;
      if !present = 0 then None
      else Some (float_of_int !matching /. float_of_int !present)
  | _ -> None

(* Judge one (template, a, b) candidate against the columnar view. *)
let evaluate_candidate ~params ~min_support c (template, a, b) =
  let ca = column c a and cb = column c b in
  let applicable, valid = evaluate_instantiation_cols template c ~ca ~cb in
  let vacuous =
    match antecedent_support_cols template.Template.relation ~ca with
    | Some s -> s < min_support
    | None -> false
  in
  if applicable < min_support || vacuous then Rejected_support
  else
    let min_conf =
      Option.value ~default:params.min_confidence
        template.Template.min_confidence
    in
    let confidence = float_of_int valid /. float_of_int applicable in
    let lifts =
      match consequent_base_rate_cols template.Template.relation ~cb with
      | Some base -> confidence >= base +. min_lift_margin
      | None -> true
    in
    if confidence >= min_conf && lifts then
      Kept
        { Template.template; attr_a = a; attr_b = b;
          support = applicable; confidence }
    else Rejected_confidence

(* --- bitset evaluation (the fast path) ------------------------------------ *)

(* Per-attribute metadata interned once per inference run: everything
   the pair filters of {!instantiations} ask per candidate
   ([Augment.base_attr] allocates a fresh string per call — quadratic
   noise when asked per pair) becomes an array lookup. *)
type meta = {
  names : string array;  (* id -> attribute, in view interning order *)
  ctypes : Encore_typing.Ctype.t array;
  augmented : bool array;
  bases : string array;  (* Augment.base_attr, precomputed *)
}

let meta_of ~types view =
  let names = Array.of_list (Encore_dataset.Colview.attrs view) in
  {
    names;
    ctypes = Array.map (type_of types) names;
    augmented = Array.map Augment.is_augmented names;
    bases = Array.map Augment.base_attr names;
  }

(* Id-based candidate generation: same filters, same order as
   {!instantiations} over the view's attribute list (ids are interning
   order), but every per-pair question is an array access. *)
let instantiations_idx meta template =
  let n = Array.length meta.names in
  let slot_ok i = augmented_slots_allowed template || not meta.augmented.(i) in
  let ea = ref [] and eb = ref [] in
  for i = n - 1 downto 0 do
    if slot_ok i then begin
      if Template.eligible_a template meta.ctypes.(i) then ea := i :: !ea;
      if Template.eligible_b template meta.ctypes.(i) then eb := i :: !eb
    end
  done;
  let canonical_only =
    Relation.symmetric template.Template.relation
    ||
    match template.Template.relation with
    | Relation.Bool_implies _ -> true
    | _ -> false
  in
  let same_type = Relation.same_type_required template.Template.relation in
  List.concat_map
    (fun ia ->
      List.filter_map
        (fun ib ->
          if ia = ib then None
          else if canonical_only && meta.names.(ia) > meta.names.(ib) then None
          else if meta.bases.(ia) = meta.bases.(ib) then None
          else if
            same_type
            && not (Encore_typing.Ctype.equal meta.ctypes.(ia) meta.ctypes.(ib))
          then None
          else Some (template, ia, ib))
        !eb)
    !ea

(* Per-attribute derived bitsets and parse caches, built once per
   training set before candidates fan out.  Every structure here is
   immutable afterwards, so pool worker domains share them freely.

   [tru]/[fls] are only built for single-instance Bool-typed columns
   (boolean-implication slots); [numv]/[sizv] for Number-/Size-typed
   ones.  Attributes with multi-instance cells fall back to the generic
   per-row evaluator.  [ante_cnt] and [base_rate] pre-answer the
   vacuity and lift questions per attribute, so per-candidate they cost
   one array read instead of a popcount. *)
type fast = {
  c : columnar;
  meta : meta;
  bits : Bitcol.t;
  tru : Bitset.t option array;   (* single value truthy-true, per attr id *)
  fls : Bitset.t option array;   (* single value truthy-false *)
  tany : Bitset.t option array;  (* tru OR fls *)
  ante_cnt : (int * int) option array;      (* (|tru|, |fls|) *)
  base_rate : (float * float) option array; (* consequent base rate, pb=(t,f) *)
  numv : (float array * Bitset.t) option array;  (* parsed Strutil numbers *)
  sizv : (int array * Bitset.t) option array;    (* parsed Strutil sizes *)
}

let build_value_cache bits view a ~zero parse =
  match Bitcol.single_ids bits a with
  | None -> None
  | Some _ ->
      let col = Encore_dataset.Colview.column view a in
      let n = Array.length col in
      let vals = Array.make n zero in
      let ok = Bitset.create n in
      Array.iter
        (fun i ->
          match col.(i) with
          | [ v ] -> (
              match parse v with
              | Some f ->
                  vals.(i) <- f;
                  Bitset.set ok i
              | None -> ())
          | _ -> ())
        (Bitcol.index bits a);
      Some (vals, ok)

let build_fast ?bits ~meta c =
  let view = c.cols in
  let bits =
    match bits with Some b -> b | None -> Bitcol.of_colview view
  in
  let n_attrs = Encore_dataset.Colview.n_attrs view in
  let tru = Array.make n_attrs None
  and fls = Array.make n_attrs None
  and tany = Array.make n_attrs None
  and ante_cnt = Array.make n_attrs None
  and base_rate = Array.make n_attrs None
  and numv = Array.make n_attrs None
  and sizv = Array.make n_attrs None in
  Array.iteri
    (fun a (ctype : Encore_typing.Ctype.t) ->
      match ctype with
      | Encore_typing.Ctype.Bool_t -> (
          match Bitcol.single_ids bits a with
          | None -> ()
          | Some _ ->
              let col = Encore_dataset.Colview.column view a in
              let t = Bitset.create (Bitcol.n_rows bits)
              and f = Bitset.create (Bitcol.n_rows bits) in
              Array.iter
                (fun i ->
                  match col.(i) with
                  | [ v ] -> (
                      match truthy v with
                      | Some true -> Bitset.set t i
                      | Some false -> Bitset.set f i
                      | None -> ())
                  | _ -> ())
                (Bitcol.index bits a);
              tru.(a) <- Some t;
              fls.(a) <- Some f;
              tany.(a) <- Some (Bitset.union t f);
              let ct = Bitset.count t and cf = Bitset.count f in
              ante_cnt.(a) <- Some (ct, cf);
              let present = Bitset.count (Bitcol.presence bits a) in
              if present > 0 then
                base_rate.(a) <-
                  Some
                    ( float_of_int ct /. float_of_int present,
                      float_of_int cf /. float_of_int present ))
      | Encore_typing.Ctype.Number | Encore_typing.Ctype.Port_number ->
          numv.(a) <-
            build_value_cache bits view a ~zero:0.0
              Encore_util.Strutil.parse_number
      | Encore_typing.Ctype.Size ->
          sizv.(a) <-
            build_value_cache bits view a ~zero:0
              Encore_util.Strutil.parse_size
      | _ -> ())
    meta.ctypes;
  { c; meta; bits; tru; fls; tany; ante_cnt; base_rate; numv; sizv }

(* Generic per-row fallback, restricted to the co-presence intersection:
   walk the sparser attribute's dense index and test membership in the
   other's presence bitset, so absent rows are never touched. *)
let eval_generic_inter fast template ia ib =
  let ca = Encore_dataset.Colview.column fast.c.cols ia
  and cb = Encore_dataset.Colview.column fast.c.cols ib in
  let pa = Bitcol.presence fast.bits ia
  and pb = Bitcol.presence fast.bits ib in
  let ixa = Bitcol.index fast.bits ia and ixb = Bitcol.index fast.bits ib in
  let applicable = ref 0 and valid = ref 0 in
  let visit i =
    match
      Relation.eval template.Template.relation fast.c.ctxs.(i) ~a:ca.(i)
        ~b:cb.(i)
    with
    | None -> ()
    | Some true ->
        incr applicable;
        incr valid
    | Some false -> incr applicable
  in
  if Array.length ixa <= Array.length ixb then
    Array.iter (fun i -> if Bitset.mem pb i then visit i) ixa
  else Array.iter (fun i -> if Bitset.mem pa i then visit i) ixb;
  (!applicable, !valid)

(* (applicable, valid) for one candidate, via popcounts and typed value
   arrays where the columns allow it, the generic evaluator otherwise.
   Must agree exactly with {!evaluate_instantiation_cols}. *)
let counts_fast fast template ia ib ~co_present =
  match template.Template.relation with
  | Relation.Eq_all | Relation.Eq_exists -> (
      match (Bitcol.single_ids fast.bits ia, Bitcol.single_ids fast.bits ib) with
      | Some va, Some vb ->
          (* single-instance cells: both equality flavours degenerate to
             one interned-id comparison per co-present row *)
          let valid =
            Bitset.fold_inter
              (Bitcol.presence fast.bits ia)
              (Bitcol.presence fast.bits ib)
              ~init:0
              (fun acc i -> if va.(i) = vb.(i) then acc + 1 else acc)
          in
          (co_present, valid)
      | _ -> eval_generic_inter fast template ia ib)
  | Relation.Bool_implies (pa, pb) -> (
      match (fast.tany.(ia), fast.tany.(ib)) with
      | Some ta, Some tb ->
          let applicable = Bitset.inter_count ta tb in
          let ante =
            match (if pa then fast.tru.(ia) else fast.fls.(ia)) with
            | Some s -> s
            | None -> assert false
          and not_cons =
            match (if pb then fast.fls.(ib) else fast.tru.(ib)) with
            | Some s -> s
            | None -> assert false
          in
          (applicable, applicable - Bitset.inter_count ante not_cons)
      | _ -> eval_generic_inter fast template ia ib)
  | Relation.Num_less -> (
      match (fast.numv.(ia), fast.numv.(ib)) with
      | Some (va, oka), Some (vb, okb) ->
          let applicable = Bitset.inter_count oka okb in
          let valid =
            Bitset.fold_inter oka okb ~init:0 (fun acc i ->
                if va.(i) < vb.(i) then acc + 1 else acc)
          in
          (applicable, valid)
      | _ -> eval_generic_inter fast template ia ib)
  | Relation.Size_less -> (
      match (fast.sizv.(ia), fast.sizv.(ib)) with
      | Some (va, oka), Some (vb, okb) ->
          let applicable = Bitset.inter_count oka okb in
          let valid =
            Bitset.fold_inter oka okb ~init:0 (fun acc i ->
                if va.(i) < vb.(i) then acc + 1 else acc)
          in
          (applicable, valid)
      | _ -> eval_generic_inter fast template ia ib)
  | Relation.Subnet | Relation.Concat_path | Relation.Substring
  | Relation.User_in_group | Relation.Not_accessible | Relation.Ownership ->
      eval_generic_inter fast template ia ib

let antecedent_support_fast fast relation ia =
  match relation with
  | Relation.Bool_implies (pa, _) ->
      Some
        (match fast.ante_cnt.(ia) with
         | Some (t, f) -> if pa then t else f
         | None ->
             (* multi-instance boolean column: count per row *)
             let col = Encore_dataset.Colview.column fast.c.cols ia in
             Array.fold_left
               (fun acc i ->
                 if List.exists (fun v -> truthy v = Some pa) col.(i) then
                   acc + 1
                 else acc)
               0 (Bitcol.index fast.bits ia))
  | _ -> None

let consequent_base_rate_fast fast relation ib =
  match relation with
  | Relation.Bool_implies (_, pb) -> (
      match fast.base_rate.(ib) with
      | Some (t, f) -> Some (if pb then t else f)
      | None ->
          let present = Bitset.count (Bitcol.presence fast.bits ib) in
          if present = 0 then None
          else
            let col = Encore_dataset.Colview.column fast.c.cols ib in
            let matching =
              Array.fold_left
                (fun acc i ->
                  if List.for_all (fun v -> truthy v = Some pb) col.(i) then
                    acc + 1
                  else acc)
                0 (Bitcol.index fast.bits ib)
            in
            Some (float_of_int matching /. float_of_int present))
  | _ -> None

let evaluate_candidate_fast ~params ~min_support fast (template, ia, ib) =
  let relation = template.Template.relation in
  let vacuous =
    match antecedent_support_fast fast relation ia with
    | Some s -> s < min_support
    | None -> false
  in
  if vacuous then Rejected_support
  else
    let co_present =
      Bitset.inter_count
        (Bitcol.presence fast.bits ia)
        (Bitcol.presence fast.bits ib)
    in
    (* applicable <= co-presence: the popcount alone disposes of
       candidates that cannot reach minimum support *)
    if co_present < min_support then Rejected_support
    else
      let applicable, valid = counts_fast fast template ia ib ~co_present in
      if applicable < min_support then Rejected_support
      else
        let min_conf =
          Option.value ~default:params.min_confidence
            template.Template.min_confidence
        in
        let confidence = float_of_int valid /. float_of_int applicable in
        let lifts =
          match consequent_base_rate_fast fast relation ib with
          | Some base -> confidence >= base +. min_lift_margin
          | None -> true
        in
        if confidence >= min_conf && lifts then
          Kept
            { Template.template;
              attr_a = fast.meta.names.(ia);
              attr_b = fast.meta.names.(ib);
              support = applicable; confidence }
        else Rejected_confidence

(* --- sharded evaluation --------------------------------------------------- *)

(* Candidates are judged in fixed-size shards, each folding into a
   domain-local accumulator; shard boundaries depend only on the
   candidate list, never on the job count, and the merge walks shards
   in order — so the rule list and the rejection counters are
   byte-identical at any [--jobs]. *)
type shard_acc = {
  kept_rev : Template.rule list;
  rej_support : int;
  rej_confidence : int;
}

let shard_size = 256

let shard_candidates candidates =
  let arr = Array.of_list candidates in
  let n = Array.length arr in
  let n_shards = (n + shard_size - 1) / shard_size in
  List.init n_shards (fun s ->
      Array.sub arr (s * shard_size) (min shard_size (n - (s * shard_size))))

let evaluate_shard judge shard =
  Array.fold_left
    (fun acc cand ->
      match judge cand with
      | Kept rule -> { acc with kept_rev = rule :: acc.kept_rev }
      | Rejected_support -> { acc with rej_support = acc.rej_support + 1 }
      | Rejected_confidence ->
          { acc with rej_confidence = acc.rej_confidence + 1 })
    { kept_rev = []; rej_support = 0; rej_confidence = 0 }
    shard

let sort_rules rules =
  List.sort
    (fun (a : Template.rule) b ->
      match compare b.confidence a.confidence with
      | 0 -> compare b.support a.support
      | c -> c)
    rules

let emit_metrics ~candidates ~rej_support ~rej_confidence ~kept =
  Encore_obs.Metrics.incr ~by:candidates
    (Encore_obs.Metrics.counter "rules.candidates");
  Encore_obs.Metrics.incr ~by:rej_support
    (Encore_obs.Metrics.counter "rules.rejected_support");
  Encore_obs.Metrics.incr ~by:rej_confidence
    (Encore_obs.Metrics.counter "rules.rejected_confidence");
  Encore_obs.Metrics.incr ~by:kept (Encore_obs.Metrics.counter "rules.kept")

(* --- counts engine -------------------------------------------------------- *)

(* The per-candidate arithmetic of {!infer}, exposed as a handle over a
   prebuilt view/overlay so {!Suffstats} can maintain (applicable,
   valid) counts as mergeable integers: candidates and verdicts are
   regenerated from cached counts instead of re-scanning every row.
   Every function here reuses the exact code paths of {!infer}, so a
   verdict computed from counts equals the batch verdict bit for bit. *)
type engine = { fast : fast }

let engine_of ~types ~ctxs ~view ~bits =
  let c = { cols = view; ctxs } in
  let meta = meta_of ~types view in
  { fast = build_fast ~bits ~meta c }

let engine_instantiations eng template = instantiations_idx eng.fast.meta template
let engine_attr eng i = eng.fast.meta.names.(i)

let engine_counts eng (template, ia, ib) =
  let co_present =
    Bitset.inter_count
      (Bitcol.presence eng.fast.bits ia)
      (Bitcol.presence eng.fast.bits ib)
  in
  counts_fast eng.fast template ia ib ~co_present

(* First index position whose row id is >= [x] (the arrays are
   ascending), so tail scans skip the already-counted prefix. *)
let lower_bound arr x =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let engine_counts_from eng ~from_row (template, ia, ib) =
  let fast = eng.fast in
  let ixa = Bitcol.index fast.bits ia and ixb = Bitcol.index fast.bits ib in
  let sa = lower_bound ixa from_row and sb = lower_bound ixb from_row in
  let la = Array.length ixa - sa and lb = Array.length ixb - sb in
  if la = 0 || lb = 0 then (0, 0)
  else begin
    let ca = Encore_dataset.Colview.column fast.c.cols ia
    and cb = Encore_dataset.Colview.column fast.c.cols ib in
    let pa = Bitcol.presence fast.bits ia
    and pb = Bitcol.presence fast.bits ib in
    let applicable = ref 0 and valid = ref 0 in
    let visit i =
      match
        Relation.eval template.Template.relation fast.c.ctxs.(i) ~a:ca.(i)
          ~b:cb.(i)
      with
      | None -> ()
      | Some true ->
          incr applicable;
          incr valid
      | Some false -> incr applicable
    in
    if la <= lb then
      for p = sa to Array.length ixa - 1 do
        let i = ixa.(p) in
        if Bitset.mem pb i then visit i
      done
    else
      for p = sb to Array.length ixb - 1 do
        let i = ixb.(p) in
        if Bitset.mem pa i then visit i
      done;
    (!applicable, !valid)
  end

let engine_verdict eng ~params ~min_support (template, ia, ib) ~applicable
    ~valid =
  let relation = template.Template.relation in
  let vacuous =
    match antecedent_support_fast eng.fast relation ia with
    | Some s -> s < min_support
    | None -> false
  in
  (* [applicable <= co_present], so one comparison covers both of the
     fast judge's support rejections *)
  if vacuous || applicable < min_support then Rejected_support
  else
    let min_conf =
      Option.value ~default:params.min_confidence template.Template.min_confidence
    in
    let confidence = float_of_int valid /. float_of_int applicable in
    let lifts =
      match consequent_base_rate_fast eng.fast relation ib with
      | Some base -> confidence >= base +. min_lift_margin
      | None -> true
    in
    if confidence >= min_conf && lifts then
      Kept
        { Template.template;
          attr_a = eng.fast.meta.names.(ia);
          attr_b = eng.fast.meta.names.(ib);
          support = applicable; confidence }
    else Rejected_confidence

let candidates_of ~types ~templates attrs =
  List.concat_map
    (fun template ->
      List.map
        (fun (a, b) -> (template, a, b))
        (instantiations ~types template attrs))
    templates

let min_support_of ~params n =
  max 2 (int_of_float (ceil (params.min_support_frac *. float_of_int n)))

let infer ?(params = default_params) ?(templates = Template.predefined)
    ?jobs ?pool ?view ~types training =
  let templates = expand_polarities templates in
  let min_support = min_support_of ~params (List.length training) in
  let columnar = columnar_of_training ?view training in
  let meta = meta_of ~types columnar.cols in
  let fast = build_fast ~meta columnar in
  (* candidates are generated over interned column ids (the view's
     first-appearance order), so the judging loop never touches an
     attribute name until a rule is actually kept *)
  let candidates =
    List.concat_map (fun t -> instantiations_idx meta t) templates
  in
  let judge = evaluate_candidate_fast ~params ~min_support fast in
  let shards = shard_candidates candidates in
  let accs =
    (* zero state sharing between shard evaluations: each shard folds
       into its own accumulator on whichever domain runs it; [Pool.map]
       keeps shard order for the merge below *)
    match pool with
    | Some p -> Encore_util.Pool.map p (evaluate_shard judge) shards
    | None -> (
        match jobs with
        | Some j when j > 1 ->
            Encore_util.Pool.with_pool ~jobs:j (fun p ->
                Encore_util.Pool.map p (evaluate_shard judge) shards)
        | Some _ | None -> List.map (evaluate_shard judge) shards)
  in
  let rej_support =
    List.fold_left (fun n s -> n + s.rej_support) 0 accs
  and rej_confidence =
    List.fold_left (fun n s -> n + s.rej_confidence) 0 accs
  in
  let rules = List.concat_map (fun s -> List.rev s.kept_rev) accs in
  emit_metrics ~candidates:(List.length candidates) ~rej_support
    ~rej_confidence ~kept:(List.length rules);
  sort_rules rules

(* The pre-bitset evaluator, retained verbatim as the semantic
   reference: every candidate walks the full columnar row range through
   {!Relation.eval}.  Equivalence tests pin the fast path to it, and
   the bench's learn stage reports the speedup against it. *)
let infer_reference ?(params = default_params)
    ?(templates = Template.predefined) ?jobs ?pool ?view ~types training =
  let templates = expand_polarities templates in
  let min_support = min_support_of ~params (List.length training) in
  let columnar = columnar_of_training ?view training in
  let attrs = Encore_dataset.Colview.attrs columnar.cols in
  let candidates = candidates_of ~types ~templates attrs in
  let judge = evaluate_candidate ~params ~min_support columnar in
  let verdicts =
    match pool with
    | Some p -> Encore_util.Pool.map p judge candidates
    | None -> (
        match jobs with
        | Some j when j > 1 ->
            Encore_util.Pool.with_pool ~jobs:j (fun p ->
                Encore_util.Pool.map p judge candidates)
        | Some _ | None -> List.map judge candidates)
  in
  let rej_support = ref 0 and rej_confidence = ref 0 in
  let rules =
    List.filter_map
      (function
        | Kept rule -> Some rule
        | Rejected_support ->
            incr rej_support;
            None
        | Rejected_confidence ->
            incr rej_confidence;
            None)
      verdicts
  in
  emit_metrics ~candidates:(List.length candidates) ~rej_support:!rej_support
    ~rej_confidence:!rej_confidence ~kept:(List.length rules);
  sort_rules rules
