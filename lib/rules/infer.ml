module Row = Encore_dataset.Row
module Tinfer = Encore_typing.Infer
module Augment = Encore_dataset.Augment

type training = (Encore_sysenv.Image.t * Row.t) list

type params = { min_support_frac : float; min_confidence : float }

let default_params = { min_support_frac = 0.10; min_confidence = 0.90 }

let type_of types attr =
  match Tinfer.find types attr with
  | Some d -> d.Tinfer.ctype
  | None ->
      if Augment.is_augmented attr then Augment.augmented_type attr
      else Encore_typing.Ctype.String_t

(* Equality and boolean-implication templates are how augmented
   environment attributes enter rules; the remaining (path/user/number)
   relations instantiate over configuration entries and image globals
   only — pairing every path with every augmented .owner/.group copy
   would restate the same fact quadratically. *)
let augmented_slots_allowed (template : Template.t) =
  match template.Template.relation with
  | Relation.Eq_all | Relation.Eq_exists | Relation.Bool_implies _ -> true
  | Relation.Subnet | Relation.Concat_path | Relation.Substring
  | Relation.User_in_group | Relation.Not_accessible | Relation.Ownership
  | Relation.Num_less | Relation.Size_less ->
      false

let instantiations ~types template attrs =
  let slot_ok attr =
    augmented_slots_allowed template || not (Augment.is_augmented attr)
  in
  let eligible_a =
    List.filter
      (fun a -> slot_ok a && Template.eligible_a template (type_of types a))
      attrs
  in
  let eligible_b =
    List.filter
      (fun b -> slot_ok b && Template.eligible_b template (type_of types b))
      attrs
  in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if a = b then None
          else if
            (* symmetric relations: one orientation suffices; boolean
               implications: the a>b orientation is the contrapositive
               of an a<b rule with flipped polarities, so it is learned
               iff that one is — keep the canonical orientation only *)
            (Relation.symmetric template.Template.relation
            || match template.Template.relation with
               | Relation.Bool_implies _ -> true
               | _ -> false)
            && a > b
          then None
          else if Augment.base_attr a = Augment.base_attr b then
            (* an entry and its own augmentation correlate trivially *)
            None
          else if
            Relation.same_type_required template.Template.relation
            && not
                 (Encore_typing.Ctype.equal (type_of types a) (type_of types b))
          then None
          else Some (a, b))
        eligible_b)
    eligible_a

let evaluate_instantiation template training ~a ~b =
  List.fold_left
    (fun (applicable, valid) (image, row) ->
      let va = Row.get_all row a and vb = Row.get_all row b in
      if va = [] || vb = [] then (applicable, valid)
      else
        match
          Relation.eval template.Template.relation
            { Relation.image; row } ~a:va ~b:vb
        with
        | None -> (applicable, valid)
        | Some true -> (applicable + 1, valid + 1)
        | Some false -> (applicable + 1, valid))
    (0, 0) training

let expand_polarities templates =
  List.concat_map
    (fun t ->
      match t.Template.relation with
      | Relation.Bool_implies _ ->
          List.map
            (fun (pa, pb) ->
              { t with Template.relation = Relation.Bool_implies (pa, pb) })
            [ (true, true); (true, false); (false, true); (false, false) ]
      | _ -> [ t ])
    templates

(* For implication rules, vacuous truth (antecedent never holding) must
   not count as evidence: require the antecedent polarity to actually
   occur in a minimum number of training images. *)
let truthy v =
  match Encore_util.Strutil.lowercase_ascii (String.trim v) with
  | "on" | "true" | "yes" | "1" | "enabled" -> Some true
  | "off" | "false" | "no" | "0" | "disabled" -> Some false
  | _ -> None

let min_lift_margin = 0.05

(* One candidate's fate; tallied by the caller in candidate order so
   parallel evaluation never shares mutable state. *)
type verdict =
  | Kept of Template.rule
  | Rejected_support     (* applicable too rarely, or vacuous *)
  | Rejected_confidence  (* confident too rarely, or no lift *)

(* Columnar training set: [columns.(attr_id).(row)] is the instance
   list, [ctxs.(row)] the per-image evaluation context.  Candidate
   evaluation touches every (attribute, row) cell once per candidate;
   interning the attribute once per candidate and indexing arrays per
   row replaces a string hash + hashtable probe per cell. *)
type columnar = {
  cols : Encore_dataset.Colview.t;
  ctxs : Relation.ctx array;
}

let columnar_of_training training =
  {
    cols = Encore_dataset.Colview.of_rows (List.map snd training);
    ctxs =
      Array.of_list
        (List.map (fun (image, row) -> { Relation.image; row }) training);
  }

let empty_column = [||]

let column c attr =
  match Encore_dataset.Colview.id c.cols attr with
  | Some id -> Encore_dataset.Colview.column c.cols id
  | None -> empty_column

let evaluate_instantiation_cols template c ~ca ~cb =
  let applicable = ref 0 and valid = ref 0 in
  let n = Array.length c.ctxs in
  if Array.length ca = n && Array.length cb = n then
    for i = 0 to n - 1 do
      let va = ca.(i) and vb = cb.(i) in
      if va <> [] && vb <> [] then
        match
          Relation.eval template.Template.relation c.ctxs.(i) ~a:va ~b:vb
        with
        | None -> ()
        | Some true ->
            incr applicable;
            incr valid
        | Some false -> incr applicable
    done;
  (!applicable, !valid)

let antecedent_support_cols relation ~ca =
  match relation with
  | Relation.Bool_implies (pa, _) ->
      Some
        (Array.fold_left
           (fun acc values ->
             if List.exists (fun v -> truthy v = Some pa) values then acc + 1
             else acc)
           0 ca)
  | _ -> None

(* The consequent's base rate: fraction of images carrying B whose value
   already equals the implied polarity.  An implication whose confidence
   does not beat this base rate carries no information (lift ≈ 1) — the
   dominant source of binomial association noise. *)
let consequent_base_rate_cols relation ~cb =
  match relation with
  | Relation.Bool_implies (_, pb) ->
      let present = ref 0 and matching = ref 0 in
      Array.iter
        (fun values ->
          if values <> [] then begin
            incr present;
            if List.for_all (fun v -> truthy v = Some pb) values then
              incr matching
          end)
        cb;
      if !present = 0 then None
      else Some (float_of_int !matching /. float_of_int !present)
  | _ -> None

(* Judge one (template, a, b) candidate against the columnar view. *)
let evaluate_candidate ~params ~min_support c (template, a, b) =
  let ca = column c a and cb = column c b in
  let applicable, valid = evaluate_instantiation_cols template c ~ca ~cb in
  let vacuous =
    match antecedent_support_cols template.Template.relation ~ca with
    | Some s -> s < min_support
    | None -> false
  in
  if applicable < min_support || vacuous then Rejected_support
  else
    let min_conf =
      Option.value ~default:params.min_confidence
        template.Template.min_confidence
    in
    let confidence = float_of_int valid /. float_of_int applicable in
    let lifts =
      match consequent_base_rate_cols template.Template.relation ~cb with
      | Some base -> confidence >= base +. min_lift_margin
      | None -> true
    in
    if confidence >= min_conf && lifts then
      Kept
        { Template.template; attr_a = a; attr_b = b;
          support = applicable; confidence }
    else Rejected_confidence

let infer ?(params = default_params) ?(templates = Template.predefined)
    ?jobs ?pool ~types training =
  let templates = expand_polarities templates in
  let n = List.length training in
  let min_support =
    max 2 (int_of_float (ceil (params.min_support_frac *. float_of_int n)))
  in
  let columnar = columnar_of_training training in
  (* all attributes seen anywhere in the training rows, in
     first-appearance order (the interning order of the view) *)
  let attrs = Encore_dataset.Colview.attrs columnar.cols in
  let candidates =
    List.concat_map
      (fun template ->
        List.map
          (fun (a, b) -> (template, a, b))
          (instantiations ~types template attrs))
      templates
  in
  let judge = evaluate_candidate ~params ~min_support columnar in
  let verdicts =
    (* zero state sharing between candidate evaluations: fan them out
       over the pool's domains; [Pool.map] keeps candidate order *)
    match pool with
    | Some p -> Encore_util.Pool.map p judge candidates
    | None -> (
        match jobs with
        | Some j when j > 1 ->
            Encore_util.Pool.with_pool ~jobs:j (fun p ->
                Encore_util.Pool.map p judge candidates)
        | Some _ | None -> List.map judge candidates)
  in
  let rej_support = ref 0 and rej_confidence = ref 0 in
  let rules =
    List.filter_map
      (function
        | Kept rule -> Some rule
        | Rejected_support ->
            incr rej_support;
            None
        | Rejected_confidence ->
            incr rej_confidence;
            None)
      verdicts
  in
  Encore_obs.Metrics.incr
    ~by:(List.length candidates)
    (Encore_obs.Metrics.counter "rules.candidates");
  Encore_obs.Metrics.incr ~by:!rej_support
    (Encore_obs.Metrics.counter "rules.rejected_support");
  Encore_obs.Metrics.incr ~by:!rej_confidence
    (Encore_obs.Metrics.counter "rules.rejected_confidence");
  Encore_obs.Metrics.incr ~by:(List.length rules)
    (Encore_obs.Metrics.counter "rules.kept");
  List.sort
    (fun (a : Template.rule) b ->
      match compare b.confidence a.confidence with
      | 0 -> compare b.support a.support
      | c -> c)
    rules
