module Row = Encore_dataset.Row
module Tinfer = Encore_typing.Infer
module Augment = Encore_dataset.Augment

type training = (Encore_sysenv.Image.t * Row.t) list

type params = { min_support_frac : float; min_confidence : float }

let default_params = { min_support_frac = 0.10; min_confidence = 0.90 }

let type_of types attr =
  match Tinfer.find types attr with
  | Some d -> d.Tinfer.ctype
  | None ->
      if Augment.is_augmented attr then Augment.augmented_type attr
      else Encore_typing.Ctype.String_t

(* Equality and boolean-implication templates are how augmented
   environment attributes enter rules; the remaining (path/user/number)
   relations instantiate over configuration entries and image globals
   only — pairing every path with every augmented .owner/.group copy
   would restate the same fact quadratically. *)
let augmented_slots_allowed (template : Template.t) =
  match template.Template.relation with
  | Relation.Eq_all | Relation.Eq_exists | Relation.Bool_implies _ -> true
  | Relation.Subnet | Relation.Concat_path | Relation.Substring
  | Relation.User_in_group | Relation.Not_accessible | Relation.Ownership
  | Relation.Num_less | Relation.Size_less ->
      false

let instantiations ~types template attrs =
  let slot_ok attr =
    augmented_slots_allowed template || not (Augment.is_augmented attr)
  in
  let eligible_a =
    List.filter
      (fun a -> slot_ok a && Template.eligible_a template (type_of types a))
      attrs
  in
  let eligible_b =
    List.filter
      (fun b -> slot_ok b && Template.eligible_b template (type_of types b))
      attrs
  in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if a = b then None
          else if
            (* symmetric relations: one orientation suffices; boolean
               implications: the a>b orientation is the contrapositive
               of an a<b rule with flipped polarities, so it is learned
               iff that one is — keep the canonical orientation only *)
            (Relation.symmetric template.Template.relation
            || match template.Template.relation with
               | Relation.Bool_implies _ -> true
               | _ -> false)
            && a > b
          then None
          else if Augment.base_attr a = Augment.base_attr b then
            (* an entry and its own augmentation correlate trivially *)
            None
          else if
            Relation.same_type_required template.Template.relation
            && not
                 (Encore_typing.Ctype.equal (type_of types a) (type_of types b))
          then None
          else Some (a, b))
        eligible_b)
    eligible_a

let evaluate_instantiation template training ~a ~b =
  List.fold_left
    (fun (applicable, valid) (image, row) ->
      let va = Row.get_all row a and vb = Row.get_all row b in
      if va = [] || vb = [] then (applicable, valid)
      else
        match
          Relation.eval template.Template.relation
            { Relation.image; row } ~a:va ~b:vb
        with
        | None -> (applicable, valid)
        | Some true -> (applicable + 1, valid + 1)
        | Some false -> (applicable + 1, valid))
    (0, 0) training

let expand_polarities templates =
  List.concat_map
    (fun t ->
      match t.Template.relation with
      | Relation.Bool_implies _ ->
          List.map
            (fun (pa, pb) ->
              { t with Template.relation = Relation.Bool_implies (pa, pb) })
            [ (true, true); (true, false); (false, true); (false, false) ]
      | _ -> [ t ])
    templates

(* For implication rules, vacuous truth (antecedent never holding) must
   not count as evidence: require the antecedent polarity to actually
   occur in a minimum number of training images. *)
let truthy v =
  match Encore_util.Strutil.lowercase_ascii (String.trim v) with
  | "on" | "true" | "yes" | "1" | "enabled" -> Some true
  | "off" | "false" | "no" | "0" | "disabled" -> Some false
  | _ -> None

let antecedent_support relation training ~a =
  match relation with
  | Relation.Bool_implies (pa, _) ->
      Some
        (List.fold_left
           (fun acc (_, row) ->
             let holds =
               List.exists
                 (fun v -> truthy v = Some pa)
                 (Row.get_all row a)
             in
             if holds then acc + 1 else acc)
           0 training)
  | _ -> None

(* The consequent's base rate: fraction of images carrying B whose value
   already equals the implied polarity.  An implication whose confidence
   does not beat this base rate carries no information (lift ≈ 1) — the
   dominant source of binomial association noise. *)
let consequent_base_rate relation training ~b =
  match relation with
  | Relation.Bool_implies (_, pb) ->
      let present, matching =
        List.fold_left
          (fun (present, matching) (_, row) ->
            match Row.get_all row b with
            | [] -> (present, matching)
            | values ->
                let all_pb = List.for_all (fun v -> truthy v = Some pb) values in
                (present + 1, if all_pb then matching + 1 else matching))
          (0, 0) training
      in
      if present = 0 then None
      else Some (float_of_int matching /. float_of_int present)
  | _ -> None

let min_lift_margin = 0.05

(* One chunk's outcome, with the rejection tally the telemetry layer
   reports.  The tallies are accumulated per chunk and summed by the
   caller so parallel evaluation never shares mutable state. *)
type eval_result = {
  kept_rules : Template.rule list;
  rejected_support : int;     (* applicable too rarely, or vacuous *)
  rejected_confidence : int;  (* confident too rarely, or no lift *)
}

(* Evaluate a list of (template, a, b) candidates into rules. *)
let evaluate_candidates ~params ~min_support training candidates =
  let rej_support = ref 0 and rej_confidence = ref 0 in
  let kept =
    List.filter_map
      (fun (template, a, b) ->
        let applicable, valid = evaluate_instantiation template training ~a ~b in
        let vacuous =
          match antecedent_support template.Template.relation training ~a with
          | Some s -> s < min_support
          | None -> false
        in
        if applicable < min_support || vacuous then begin
          incr rej_support;
          None
        end
        else
          let min_conf =
            Option.value ~default:params.min_confidence
              template.Template.min_confidence
          in
          let confidence = float_of_int valid /. float_of_int applicable in
          let lifts =
            match consequent_base_rate template.Template.relation training ~b with
            | Some base -> confidence >= base +. min_lift_margin
            | None -> true
          in
          if confidence >= min_conf && lifts then
            Some
              { Template.template; attr_a = a; attr_b = b;
                support = applicable; confidence }
          else begin
            incr rej_confidence;
            None
          end)
      candidates
  in
  {
    kept_rules = kept;
    rejected_support = !rej_support;
    rejected_confidence = !rej_confidence;
  }

(* Split [xs] into [n] chunks of near-equal length, preserving order. *)
let chunks n xs =
  let len = List.length xs in
  let size = max 1 ((len + n - 1) / n) in
  let rec go acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
        if count = size then go (List.rev current :: acc) [ x ] 1 rest
        else go acc (x :: current) (count + 1) rest
  in
  go [] [] 0 xs

let infer ?(params = default_params) ?(templates = Template.predefined)
    ?(jobs = 1) ~types training =
  let templates = expand_polarities templates in
  let n = List.length training in
  let min_support =
    max 2 (int_of_float (ceil (params.min_support_frac *. float_of_int n)))
  in
  (* all attributes seen anywhere in the training rows *)
  let attrs =
    let seen = Hashtbl.create 256 in
    let order = ref [] in
    List.iter
      (fun (_, row) ->
        List.iter
          (fun attr ->
            if not (Hashtbl.mem seen attr) then begin
              Hashtbl.add seen attr ();
              order := attr :: !order
            end)
          (Row.attrs row))
      training;
    List.rev !order
  in
  let candidates =
    List.concat_map
      (fun template ->
        List.map
          (fun (a, b) -> (template, a, b))
          (instantiations ~types template attrs))
      templates
  in
  let results =
    if jobs <= 1 then
      [ evaluate_candidates ~params ~min_support training candidates ]
    else
      (* zero state sharing between candidate evaluations: fan the
         chunks out over domains and keep chunk order for determinism *)
      chunks jobs candidates
      |> List.map (fun chunk ->
             Domain.spawn (fun () ->
                 evaluate_candidates ~params ~min_support training chunk))
      |> List.map Domain.join
  in
  let rules = List.concat_map (fun r -> r.kept_rules) results in
  Encore_obs.Metrics.incr
    ~by:(List.length candidates)
    (Encore_obs.Metrics.counter "rules.candidates");
  Encore_obs.Metrics.incr
    ~by:(List.fold_left (fun acc r -> acc + r.rejected_support) 0 results)
    (Encore_obs.Metrics.counter "rules.rejected_support");
  Encore_obs.Metrics.incr
    ~by:(List.fold_left (fun acc r -> acc + r.rejected_confidence) 0 results)
    (Encore_obs.Metrics.counter "rules.rejected_confidence");
  Encore_obs.Metrics.incr ~by:(List.length rules)
    (Encore_obs.Metrics.counter "rules.kept");
  List.sort
    (fun (a : Template.rule) b ->
      match compare b.confidence a.confidence with
      | 0 -> compare b.support a.support
      | c -> c)
    rules
