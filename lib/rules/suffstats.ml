module Image = Encore_sysenv.Image
module Collector = Encore_sysenv.Collector
module Row = Encore_dataset.Row
module Colview = Encore_dataset.Colview
module Bitcol = Encore_dataset.Bitcol
module Bitset = Bitcol.Bitset
module Assemble = Encore_dataset.Assemble
module Augment = Encore_dataset.Augment
module Discretize = Encore_dataset.Discretize
module Tinfer = Encore_typing.Infer
module Ctype = Encore_typing.Ctype
module Rinfer = Infer
module Stats = Encore_util.Stats
module Csvio = Encore_util.Csvio
module Otrace = Encore_obs.Trace
module Ometrics = Encore_obs.Metrics
module Smap = Map.Make (String)

(* --- the mergeable core --------------------------------------------------- *)

(* Enum refinement needs the exact distinct-value set only while it can
   still be small enough to promote (enum_max_cardinality = 4); one
   extra slot detects "too many" exactly, and past that the set is
   discarded ([overflow]) — the absorbing state keeps [merge]
   associative without unbounded storage. *)
let distinct_cap = 5

type colstat = {
  tally : Tinfer.tally;
  samples : int;
  distinct : string list;  (* exact, first-occurrence order; [] once overflowed *)
  overflow : bool;
}

let empty_col = { tally = Tinfer.tally_empty; samples = 0; distinct = []; overflow = false }

type t = {
  n : int;
  images_rev : (Image.t * Row.t) list;  (* (image, raw parsed row), newest first *)
  raw_order_rev : string list;          (* raw attr first-appearance order, reversed *)
  raw : colstat Smap.t;
  glob_order_rev : string list;
  glob : colstat Smap.t;                (* per global attr: one sample per image *)
}

let empty =
  { n = 0; images_rev = []; raw_order_rev = []; raw = Smap.empty;
    glob_order_rev = []; glob = Smap.empty }

let n_images t = t.n
let images t = List.rev_map fst t.images_rev

let colstat_add_value cs v =
  if cs.overflow then cs
  else if List.mem v cs.distinct then cs
  else if List.length cs.distinct >= distinct_cap then
    { cs with distinct = []; overflow = true }
  else { cs with distinct = cs.distinct @ [ v ] }

let add_parsed t img row =
  let raw_order_rev = ref t.raw_order_rev and raw = ref t.raw in
  List.iter
    (fun (attr, v) ->
      let cs =
        match Smap.find_opt attr !raw with
        | Some cs -> cs
        | None ->
            raw_order_rev := attr :: !raw_order_rev;
            empty_col
      in
      let cs =
        { cs with tally = Tinfer.tally_add cs.tally img v;
          samples = cs.samples + 1 }
      in
      raw := Smap.add attr (colstat_add_value cs v) !raw)
    (Row.to_list row);
  (* the global branch of [Assemble.assemble_training] samples each
     image-global attribute once per image, first instance *)
  let glob_order_rev = ref t.glob_order_rev and glob = ref t.glob in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (attr, v) ->
      if not (Hashtbl.mem seen attr) then begin
        Hashtbl.add seen attr ();
        let cs =
          match Smap.find_opt attr !glob with
          | Some cs -> cs
          | None ->
              glob_order_rev := attr :: !glob_order_rev;
              empty_col
        in
        glob :=
          Smap.add attr
            { cs with tally = Tinfer.tally_add cs.tally img v;
              samples = cs.samples + 1 }
            !glob
      end)
    (Augment.globals img);
  { n = t.n + 1;
    images_rev = (img, row) :: t.images_rev;
    raw_order_rev = !raw_order_rev; raw = !raw;
    glob_order_rev = !glob_order_rev; glob = !glob }

let add_image t img = add_parsed t img (Assemble.parse_only img)

let colstat_merge a b =
  let distinct, overflow =
    if a.overflow || b.overflow then ([], true)
    else
      let u =
        a.distinct
        @ List.filter (fun v -> not (List.mem v a.distinct)) b.distinct
      in
      if List.length u > distinct_cap then ([], true) else (u, false)
  in
  { tally = Tinfer.tally_merge a.tally b.tally;
    samples = a.samples + b.samples; distinct; overflow }

(* first-occurrence order of the concatenated streams: left order, then
   the right's unseen attrs in their own order *)
let merge_order a_rev b_rev =
  let seen = Hashtbl.create 64 in
  List.iter (fun x -> Hashtbl.replace seen x ()) a_rev;
  let extra = List.filter (fun x -> not (Hashtbl.mem seen x)) (List.rev b_rev) in
  List.rev_append extra a_rev

let merge a b =
  let union = Smap.union (fun _ ca cb -> Some (colstat_merge ca cb)) in
  { n = a.n + b.n;
    images_rev = b.images_rev @ a.images_rev;
    raw_order_rev = merge_order a.raw_order_rev b.raw_order_rev;
    raw = union a.raw b.raw;
    glob_order_rev = merge_order a.glob_order_rev b.glob_order_rev;
    glob = union a.glob b.glob }

let pmap pool f xs =
  match pool with Some p -> Encore_util.Pool.map p f xs | None -> List.map f xs

let of_images ?pool ?(shards = 1) images =
  if shards <= 1 || images = [] then List.fold_left add_image empty images
  else begin
    let arr = Array.of_list images in
    let n = Array.length arr in
    let k = min shards n in
    let bounds = List.init k (fun s -> (s * n / k, (s + 1) * n / k)) in
    let learn_chunk (lo, hi) =
      let acc = ref empty in
      for i = lo to hi - 1 do
        acc := add_image !acc arr.(i)
      done;
      !acc
    in
    (* order-preserving reduction: shard results merge left to right,
       so the outcome is the single-shard fold exactly *)
    List.fold_left merge empty (pmap pool learn_chunk bounds)
  end

(* --- finalize: the batch model from the statistics ------------------------ *)

type finalized = {
  f_types : Tinfer.env;
  f_rules : Template.rule list;
  f_value_stats : (string * string list) list;
  f_known_attrs : string list;
  f_training_count : int;
  f_overflowed : bool;
}

(* [Tinfer.infer] over the raw rows, from the tallies: same decision
   rule, same column order, no re-verification of any sample. *)
let config_types t =
  List.map
    (fun attr ->
      let cs = Smap.find attr t.raw in
      let d = Tinfer.decide ~samples:cs.samples ?hint:(Tinfer.hint_of attr) cs.tally in
      let d =
        Tinfer.refine_enum
          ~distinct:(if cs.overflow then None else Some cs.distinct)
          d
      in
      (attr, d))
    (List.rev t.raw_order_rev)

(* the augmented/global half of [Assemble.assemble_training]'s type
   environment, in the assembled table's column order *)
let aug_types t ~cfg_types view bits =
  List.filter_map
    (fun col ->
      if Tinfer.find cfg_types col <> None then None
      else if Augment.is_augmented col then begin
        let support =
          match Colview.id view col with
          | Some a -> Bitset.count (Bitcol.presence bits a)
          | None -> 0
        in
        Some
          ( col,
            { Tinfer.ctype = Augment.augmented_type col;
              agreement = 1.0; samples = support } )
      end
      else
        let cs =
          match Smap.find_opt col t.glob with Some cs -> cs | None -> empty_col
        in
        Some (col, Tinfer.decide ~samples:cs.samples cs.tally))
    (Colview.attrs view)

(* distinct values per attribute over the reverse instance stream — the
   order [Detector.model_of_training]'s hashtable walk produces *)
let value_stats_of view =
  List.mapi
    (fun a attr ->
      let col = Colview.column view a in
      let stream_rev =
        Array.fold_left (fun acc cell -> List.rev_append cell acc) [] col
      in
      (attr, Stats.distinct stream_rev))
    (Colview.attrs view)

(* --- mining cache --------------------------------------------------------- *)

type numsum = { nvals : int; nparsed : int; lo : float; hi : float }

let empty_sum = { nvals = 0; nparsed = 0; lo = infinity; hi = neg_infinity }

let sum_add s v =
  match Encore_util.Strutil.parse_number v with
  | Some f ->
      { nvals = s.nvals + 1; nparsed = s.nparsed + 1;
        lo = min s.lo f; hi = max s.hi f }
  | None -> { s with nvals = s.nvals + 1 }

let kind_of_sum s : Discretize.column_kind =
  if s.nvals > 0 && s.nparsed = s.nvals then Discretize.Numeric (s.lo, s.hi)
  else Discretize.Text

let summaries_of view =
  List.fold_left
    (fun (acc, a) attr ->
      let s =
        Array.fold_left
          (fun s cell -> List.fold_left sum_add s cell)
          empty_sum (Colview.column view a)
      in
      (Smap.add attr s acc, a + 1))
    (Smap.empty, 0) (Colview.attrs view)
  |> fst

let summaries_add summaries rows =
  List.fold_left
    (fun acc row ->
      List.fold_left
        (fun acc (attr, v) ->
          let s =
            match Smap.find_opt attr acc with Some s -> s | None -> empty_sum
          in
          Smap.add attr (sum_add s v) acc)
        acc (Row.to_list row))
    summaries rows

let encode_tx tab items =
  Array.of_list
    (List.sort_uniq compare
       (List.map (Encore_util.Symtab.intern tab) items))

(* item strings of rows [from_row ..] straight off the view — the same
   (attribute, value) multiset per row as the batch discretizer's
   [Row.to_list] walk, and the items are sort_uniq'd, so the encoded
   transaction is the same item set *)
let transactions_of_view ~summaries ~tab ~from_row view =
  let n_rows = Colview.n_rows view in
  let items = Array.make (max 0 (n_rows - from_row)) [] in
  List.iteri
    (fun a attr ->
      let kind =
        kind_of_sum
          (match Smap.find_opt attr summaries with
           | Some s -> s
           | None -> empty_sum)
      in
      let col = Colview.column view a in
      for i = from_row to n_rows - 1 do
        List.iter
          (fun v ->
            items.(i - from_row) <-
              Discretize.item_of attr kind v :: items.(i - from_row))
          col.(i)
      done)
    (Colview.attrs view);
  Array.map (encode_tx tab) items

let mining_overflow ?pool ~mining_frac ~mining_cap tx =
  let n_tx = Array.length tx in
  if n_tx = 0 then false
  else
    let min_support =
      max 2 (int_of_float (ceil (mining_frac *. float_of_int n_tx)))
    in
    snd
      (Encore_mining.Fpgrowth.count_only ~max_itemsets:mining_cap ?pool
         ~min_support tx)

(* --- the resident learner ------------------------------------------------- *)

type learner = {
  stats : t;
  params : Rinfer.params;
  templates : Template.t list;
  etemplates : Template.t list;  (* polarity-expanded, cached *)
  entropy_threshold : float option;
  mining_frac : float;
  mining_cap : int;
  (* derived caches, all consistent with [stats] *)
  env : Tinfer.env;
  raw_ctypes : (string * Ctype.t) list;
  training : (Image.t * Row.t) list;  (* augmented rows, corpus order *)
  ctxs : Relation.ctx array;
  view : Colview.t;
  bits : Bitcol.t;
  counts : (int * string * string, int * int) Hashtbl.t;
  m_summaries : numsum Smap.t;
  m_tab : Encore_util.Symtab.t;
  m_tx : Encore_mining.Itemset.t array;
  last_probe_n : int;  (* corpus size at the last full mining probe *)
  result : finalized;
}

let stats l = l.stats
let current l = l.result

let shard_list n xs =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = n then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let indexed_candidates ~etemplates engine =
  List.concat
    (List.mapi
       (fun ti tmpl ->
         List.map (fun c -> (ti, c)) (Rinfer.engine_instantiations engine tmpl))
       etemplates)

let m_filtered_redundant = Ometrics.counter "rules.filtered_redundant"
let m_filtered_entropy = Ometrics.counter "rules.filtered_entropy"

(* Candidate verdicts from the cached counts, then the detector's
   filter chain — the exact sequence of [Rinfer.infer] +
   [Detector.model_of_training], fed from integers instead of row
   scans. *)
let finalize_from ~params ~entropy_threshold ~n ~training ~view engine cands
    counts =
  let min_support = Rinfer.min_support_of ~params n in
  let kept_rev = ref [] and rej_support = ref 0 and rej_confidence = ref 0 in
  List.iter
    (fun (ti, ((_, ia, ib) as c)) ->
      let applicable, valid =
        match
          Hashtbl.find_opt counts
            (ti, Rinfer.engine_attr engine ia, Rinfer.engine_attr engine ib)
        with
        | Some c -> c
        | None -> assert false (* counts is built over this candidate list *)
      in
      match
        Rinfer.engine_verdict engine ~params ~min_support c ~applicable ~valid
      with
      | Rinfer.Kept rule -> kept_rev := rule :: !kept_rev
      | Rinfer.Rejected_support -> incr rej_support
      | Rinfer.Rejected_confidence -> incr rej_confidence)
    cands;
  Rinfer.emit_metrics
    ~candidates:(List.length cands)
    ~rej_support:!rej_support ~rej_confidence:!rej_confidence
    ~kept:(List.length !kept_rev);
  let inferred = Rinfer.sort_rules (List.rev !kept_rev) in
  let reduced = Filters.reduce_redundant inferred in
  Ometrics.incr
    ~by:(List.length inferred - List.length reduced)
    m_filtered_redundant;
  let kept, dropped =
    Filters.entropy_filter ?threshold:entropy_threshold ~view training reduced
  in
  Ometrics.incr ~by:(List.length dropped) m_filtered_entropy;
  kept

let capture_counts ?pool engine cands =
  let eval (ti, ((_, ia, ib) as c)) =
    ( (ti, Rinfer.engine_attr engine ia, Rinfer.engine_attr engine ib),
      Rinfer.engine_counts engine c )
  in
  let shards = shard_list 256 cands in
  let results = List.concat (pmap pool (List.map eval) shards) in
  let tbl = Hashtbl.create (2 * List.length results + 1) in
  List.iter (fun (key, cnt) -> Hashtbl.replace tbl key cnt) results;
  tbl

let build ?pool ~params ~templates ~etemplates ~entropy_threshold ~mining_frac
    ~mining_cap stats =
  Otrace.with_span "suffstats-finalize" @@ fun () ->
  let parsed = List.rev stats.images_rev in
  let cfg_types = config_types stats in
  let training =
    pmap pool
      (fun (img, raw) -> (img, Assemble.augment_row ~types:cfg_types img raw))
      parsed
  in
  let rows = List.map snd training in
  let view = Colview.of_rows rows in
  let bits = Bitcol.of_colview view in
  let ctxs =
    Array.of_list
      (List.map (fun (image, row) -> { Relation.image; row }) training)
  in
  let env = cfg_types @ aug_types stats ~cfg_types view bits in
  let engine = Rinfer.engine_of ~types:env ~ctxs ~view ~bits in
  let cands = indexed_candidates ~etemplates engine in
  let counts = capture_counts ?pool engine cands in
  let rules =
    finalize_from ~params ~entropy_threshold ~n:stats.n ~training ~view engine
      cands counts
  in
  let m_summaries = summaries_of view in
  let m_tab = Encore_util.Symtab.create ~size:256 () in
  let m_tx = transactions_of_view ~summaries:m_summaries ~tab:m_tab ~from_row:0 view in
  let overflowed = mining_overflow ?pool ~mining_frac ~mining_cap m_tx in
  {
    stats; params; templates; etemplates; entropy_threshold; mining_frac;
    mining_cap; env;
    raw_ctypes = List.map (fun (a, d) -> (a, d.Tinfer.ctype)) cfg_types;
    training; ctxs; view; bits; counts; m_summaries; m_tab; m_tx;
    last_probe_n = stats.n;
    result =
      {
        f_types = env;
        f_rules = rules;
        f_value_stats = value_stats_of view;
        f_known_attrs = Colview.attrs view;
        f_training_count = stats.n;
        f_overflowed = overflowed;
      };
  }

let learner_of ?pool ?(params = Rinfer.default_params)
    ?(templates = Template.predefined) ?entropy_threshold ?mining_frac
    ?(mining_cap = 100_000) stats =
  let mining_frac =
    match mining_frac with Some f -> f | None -> params.Rinfer.min_support_frac
  in
  build ?pool ~params ~templates
    ~etemplates:(Rinfer.expand_polarities templates)
    ~entropy_threshold ~mining_frac ~mining_cap stats

let rec take k = function
  | x :: rest when k > 0 -> x :: take (k - 1) rest
  | _ -> []

(* Numeric discretization bins are corpus bounds; a shifted bound (or a
   column degrading to text) re-labels existing rows' items, so only an
   unchanged kind keeps the cached transactions valid. *)
let kinds_stable ~before ~after =
  Smap.for_all
    (fun attr s ->
      match Smap.find_opt attr after with
      | None -> false
      | Some s' -> kind_of_sum s = kind_of_sum s')
    before

let append ?pool learner images =
  if images = [] then learner
  else begin
    let stats' = List.fold_left add_image learner.stats images in
    let cfg_types' = config_types stats' in
    let stable =
      List.for_all
        (fun (attr, ct) ->
          match Tinfer.find cfg_types' attr with
          | Some d -> Ctype.equal d.Tinfer.ctype ct
          | None -> false)
        learner.raw_ctypes
    in
    if not stable then
      (* a type decision moved: cached augmented rows no longer match
         what a batch run over the grown corpus would assemble *)
      build ?pool ~params:learner.params ~templates:learner.templates
        ~etemplates:learner.etemplates
        ~entropy_threshold:learner.entropy_threshold
        ~mining_frac:learner.mining_frac ~mining_cap:learner.mining_cap stats'
    else begin
      Otrace.with_span "suffstats-append" @@ fun () ->
      let old_n = Array.length learner.ctxs in
      let new_parsed = List.rev (take (List.length images) stats'.images_rev) in
      let new_training =
        List.map
          (fun (img, raw) ->
            (img, Assemble.augment_row ~types:cfg_types' img raw))
          new_parsed
      in
      let new_rows = List.map snd new_training in
      let view = Colview.append_rows learner.view new_rows in
      let bits = Bitcol.append learner.bits view in
      let ctxs =
        Array.append learner.ctxs
          (Array.of_list
             (List.map
                (fun (image, row) -> { Relation.image; row })
                new_training))
      in
      let training = learner.training @ new_training in
      let env = cfg_types' @ aug_types stats' ~cfg_types:cfg_types' view bits in
      let engine = Rinfer.engine_of ~types:env ~ctxs ~view ~bits in
      let cands = indexed_candidates ~etemplates:learner.etemplates engine in
      let counts = Hashtbl.create (2 * List.length cands + 1) in
      List.iter
        (fun (ti, ((_, ia, ib) as c)) ->
          let key =
            (ti, Rinfer.engine_attr engine ia, Rinfer.engine_attr engine ib)
          in
          let cnt =
            match Hashtbl.find_opt learner.counts key with
            | Some (a0, v0) ->
                let da, dv = Rinfer.engine_counts_from engine ~from_row:old_n c in
                (a0 + da, v0 + dv)
            | None ->
                (* newly eligible pair (fresh attribute or a non-raw
                   type decision moved): count it over the full corpus *)
                Rinfer.engine_counts engine c
          in
          Hashtbl.replace counts key cnt)
        cands;
      let rules =
        finalize_from ~params:learner.params
          ~entropy_threshold:learner.entropy_threshold ~n:stats'.n ~training
          ~view engine cands counts
      in
      let m_summaries = summaries_add learner.m_summaries new_rows in
      let m_tx =
        if kinds_stable ~before:learner.m_summaries ~after:m_summaries then
          Array.append learner.m_tx
            (transactions_of_view ~summaries:m_summaries ~tab:learner.m_tab
               ~from_row:old_n view)
        else
          transactions_of_view ~summaries:m_summaries ~tab:learner.m_tab
            ~from_row:0 view
      in
      (* The probe is the one diagnostic that is not decomposable:
         FP-growth itemset counts cannot be maintained under corpus
         concatenation, so a fresh probe costs a full mining pass.
         Re-arm it only once the corpus has grown >= 1 % past the last
         probed size — small-corpus appends (every identity test)
         always re-probe, while a single image folded into a large
         fleet keeps append sublinear and the degraded flag at worst
         1 % of corpus growth stale. *)
      let refresh_probe =
        stats'.n - learner.last_probe_n >= max 1 (learner.last_probe_n / 100)
      in
      let overflowed =
        if refresh_probe then
          mining_overflow ?pool ~mining_frac:learner.mining_frac
            ~mining_cap:learner.mining_cap m_tx
        else learner.result.f_overflowed
      in
      {
        learner with
        stats = stats';
        env;
        raw_ctypes = List.map (fun (a, d) -> (a, d.Tinfer.ctype)) cfg_types';
        training; ctxs; view; bits; counts; m_summaries; m_tx;
        last_probe_n =
          (if refresh_probe then stats'.n else learner.last_probe_n);
        result =
          {
            f_types = env;
            f_rules = rules;
            f_value_stats = value_stats_of view;
            f_known_attrs = Colview.attrs view;
            f_training_count = stats'.n;
            f_overflowed = overflowed;
          };
      }
    end
  end

(* --- versioned payload ---------------------------------------------------- *)

let payload_schema = "ENCORE-SUFFSTATS 1"

(* One record per line.  Fields go through [String.escaped] before CSV
   quoting so no field can smuggle a newline past the line-based
   reader (attribute names and values come from arbitrary config
   text). *)
let emit_record buf fields =
  Buffer.add_string buf (Csvio.row_to_string (List.map String.escaped fields));
  Buffer.add_char buf '\n'

let unescape s =
  try Scanf.sscanf ("\"" ^ s ^ "\"") "%S%!" Fun.id with _ -> s

let emit_colstat buf tag attr cs =
  emit_record buf
    [ tag; attr; string_of_int cs.samples; (if cs.overflow then "1" else "0") ];
  List.iter
    (fun (ct, c) ->
      emit_record buf [ "t"; Ctype.to_string ct; string_of_int c ])
    cs.tally;
  List.iter (fun v -> emit_record buf [ "d"; v ]) cs.distinct

let to_payload t =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "images %d\n" t.n);
  List.iter
    (fun (img, _) ->
      let dump = Collector.image_to_text img in
      Buffer.add_string buf (Printf.sprintf "@image %d\n" (String.length dump));
      Buffer.add_string buf dump;
      Buffer.add_char buf '\n')
    (List.rev t.images_rev);
  Buffer.add_string buf "@stats\n";
  List.iter
    (fun attr -> emit_colstat buf "raw" attr (Smap.find attr t.raw))
    (List.rev t.raw_order_rev);
  List.iter
    (fun attr -> emit_colstat buf "glob" attr (Smap.find attr t.glob))
    (List.rev t.glob_order_rev);
  Buffer.contents buf

type cursor = { text : string; mutable pos : int }

let next_line cur =
  if cur.pos >= String.length cur.text then None
  else
    let j =
      match String.index_from_opt cur.text cur.pos '\n' with
      | Some j -> j
      | None -> String.length cur.text
    in
    let line = String.sub cur.text cur.pos (j - cur.pos) in
    cur.pos <- min (String.length cur.text) (j + 1);
    Some line

let of_payload text =
  let ( let* ) = Result.bind in
  let cur = { text; pos = 0 } in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* n =
    match next_line cur with
    | Some line -> (
        match String.split_on_char ' ' line with
        | [ "images"; n ] -> (
            match int_of_string_opt n with
            | Some n when n >= 0 -> Ok n
            | _ -> fail "bad image count %S" n)
        | _ -> fail "expected image count, got %S" line)
    | None -> fail "empty payload"
  in
  let rec read_images k acc =
    if k = 0 then Ok (List.rev acc)
    else
      match next_line cur with
      | Some line when Encore_util.Strutil.starts_with ~prefix:"@image " line
        -> (
          let len_s = String.sub line 7 (String.length line - 7) in
          match int_of_string_opt len_s with
          | Some len
            when len >= 0 && cur.pos + len <= String.length cur.text -> (
              let dump = String.sub cur.text cur.pos len in
              cur.pos <- cur.pos + len;
              (* the separating newline after the dump *)
              (match next_line cur with _ -> ());
              match Collector.image_of_text dump with
              | Ok img -> read_images (k - 1) (img :: acc)
              | Error e -> fail "image %d: %s" (n - k + 1) e)
          | _ -> fail "bad image frame %S" line)
      | Some line -> fail "expected @image, got %S" line
      | None -> fail "truncated image list"
  in
  let* imgs = read_images n [] in
  let* () =
    match next_line cur with
    | Some "@stats" -> Ok ()
    | Some line -> fail "expected @stats, got %S" line
    | None -> fail "missing @stats section"
  in
  (* column records: a raw/glob header line followed by its tally and
     distinct lines *)
  let rec read_cols acc_raw order_raw acc_glob order_glob cur_col =
    let flush () =
      match cur_col with
      | None -> (acc_raw, order_raw, acc_glob, order_glob)
      | Some (`Raw, attr, cs) ->
          (Smap.add attr cs acc_raw, attr :: order_raw, acc_glob, order_glob)
      | Some (`Glob, attr, cs) ->
          (acc_raw, order_raw, Smap.add attr cs acc_glob, attr :: order_glob)
    in
    match next_line cur with
    | None ->
        let acc_raw, order_raw, acc_glob, order_glob = flush () in
        Ok (acc_raw, order_raw, acc_glob, order_glob)
    | Some "" ->
        read_cols acc_raw order_raw acc_glob order_glob cur_col
    | Some line -> (
        match List.map (List.map unescape) (Csvio.parse line) with
        | [ [ tag; attr; samples; overflow ] ]
          when tag = "raw" || tag = "glob" -> (
            match (int_of_string_opt samples, overflow) with
            | Some samples, ("0" | "1") ->
                let acc_raw, order_raw, acc_glob, order_glob = flush () in
                let cs =
                  { empty_col with samples; overflow = overflow = "1" }
                in
                let side = if tag = "raw" then `Raw else `Glob in
                read_cols acc_raw order_raw acc_glob order_glob
                  (Some (side, attr, cs))
            | _ -> fail "bad column header %S" line)
        | [ [ "t"; ct; c ] ] -> (
            match (cur_col, Ctype.of_string ct, int_of_string_opt c) with
            | Some (side, attr, cs), Some ct, Some c ->
                read_cols acc_raw order_raw acc_glob order_glob
                  (Some (side, attr, { cs with tally = cs.tally @ [ (ct, c) ] }))
            | _ -> fail "bad tally line %S" line)
        | [ [ "d"; v ] ] -> (
            match cur_col with
            | Some (side, attr, cs) ->
                read_cols acc_raw order_raw acc_glob order_glob
                  (Some (side, attr, { cs with distinct = cs.distinct @ [ v ] }))
            | None -> fail "distinct line outside a column %S" line)
        | _ -> fail "unrecognized stats line %S" line)
  in
  let* raw, raw_order_rev, glob, glob_order_rev =
    read_cols Smap.empty [] Smap.empty [] None
  in
  (* raw rows re-derive from the images: parsing is deterministic, so
     the restored value equals the one that was saved *)
  let images_rev =
    List.rev_map (fun img -> (img, Assemble.parse_only img)) imgs
  in
  Ok { n; images_rev; raw_order_rev; raw; glob_order_rev; glob }
