(** Rule filtering (paper section 5.2).

    Support and confidence thresholds are enforced during inference; the
    third metric, Shannon entropy, is applied here as a separate pass so
    that its cost/benefit can be measured (paper Table 13): a rule
    survives only if *every* participating attribute has entropy above
    the threshold in the training table — near-constant attributes
    mostly generate noise rules. *)

val attribute_entropy : Infer.training -> string -> float
(** Entropy of an attribute's values over the training rows. *)

val entropy_filter :
  ?threshold:float -> ?view:Encore_dataset.Colview.t -> Infer.training ->
  Template.rule list -> Template.rule list * Template.rule list
(** [(kept, dropped)] partition.  [threshold] defaults to
    {!Encore_util.Stats.entropy_threshold_90_10} (0.325).  With [view]
    (a columnar view over the same rows, typically shared with
    {!Infer.infer}), per-attribute entropy reads column arrays instead
    of probing each row's hashtable — bit-identical results, an order
    of magnitude less allocation on large fleets. *)

val reduce_redundant : Template.rule list -> Template.rule list
(** Drop rules implied by the remaining ones:
    - an Eq-exists rule shadowed by an Eq rule on the same pair;
    - transitively redundant equality rules (for each equivalence class
      a spanning tree of rules is kept, highest confidence first);
    - transitively redundant orderings ([a<c] dropped when [a<b] and
      [b<c] are kept).
    Detection power is preserved up to rule granularity while the rule
    list stays close to the minimal set a human would write. *)
