(** Mergeable sufficient statistics for the learning pipeline.

    Every model quantity — per-attribute typing tallies and
    distinct-value summaries, candidate-rule (applicable, valid)
    counts, discretization summaries for the mining probe — derives
    from a value of type {!t} with the algebra

    {[ empty   add_image   merge   finalize ]}

    where [merge] is associative, [add_image t img = merge t
    (add_image empty img)], and finalizing (through {!learner_of} /
    {!current}) reproduces the batch learner byte-identically:
    partitioning a corpus arbitrarily, folding each part and merging
    in corpus order yields the exact model of a one-shot batch learn.

    On top of the algebra sits a resident {!learner} that keeps the
    derived caches (columnar view, bitset overlay, per-candidate
    counts, mining transactions) alive so {!append} folds new images
    in sublinear time: only appended rows are scanned unless a type
    decision shifts, in which case it transparently falls back to a
    full rebuild — the result is identical either way. *)

type t
(** Sufficient statistics over a multiset of system images.  Includes
    the images themselves (models need the training rows for
    redundancy/entropy filtering and value statistics); everything
    else is per-attribute summaries whose size is independent of the
    corpus. *)

val empty : t
val add_image : t -> Encore_sysenv.Image.t -> t

val merge : t -> t -> t
(** Associative; [merge empty t = merge t empty = t].  Corpus order is
    left-then-right, so a deterministic left-to-right reduction over
    corpus-ordered shards equals the sequential fold. *)

val of_images :
  ?pool:Encore_util.Pool.t -> ?shards:int ->
  Encore_sysenv.Image.t list -> t
(** Fold the corpus, optionally partitioned into [shards] contiguous
    chunks learned on the pool's domains and recombined with an
    order-preserving [merge] reduction.  Identical result for every
    [shards] and pool size. *)

val n_images : t -> int
val images : t -> Encore_sysenv.Image.t list
(** Corpus order. *)

(** The finalized model quantities, structurally what
    [Detector.model] carries (duplicated here because [detect]
    depends on [rules], not the reverse). *)
type finalized = {
  f_types : Encore_typing.Infer.env;
  f_rules : Template.rule list;
  f_value_stats : (string * string list) list;
  f_known_attrs : string list;
  f_training_count : int;
  f_overflowed : bool;  (** mining probe hit its itemset cap *)
}

type learner
(** Resident finalized state: the model plus the caches needed to
    extend it incrementally. *)

val learner_of :
  ?pool:Encore_util.Pool.t ->
  ?params:Infer.params ->
  ?templates:Template.t list ->
  ?entropy_threshold:float ->
  ?mining_frac:float ->
  ?mining_cap:int ->
  t -> learner
(** Finalize: assemble the corpus under the tallied type decisions,
    judge every candidate through the counts engine, filter, and run
    the mining probe.  [mining_frac] defaults to
    [params.min_support_frac]; [mining_cap] to 100_000 itemsets. *)

val append :
  ?pool:Encore_util.Pool.t ->
  learner -> Encore_sysenv.Image.t list -> learner
(** Fold new images into the statistics and refresh the model.  When
    every previously-decided raw column keeps its type, only the new
    rows are assembled and scanned (candidate counts extend by their
    row-range delta, mining transactions append); otherwise the
    learner rebuilds from the merged statistics.  In both cases the
    result equals [learner_of (fold add_image stats images)], with one
    amortization: the mining overflow probe — the lone diagnostic that
    cannot be maintained incrementally — re-runs only once the corpus
    has grown at least 1 % past its last probed size, so
    [f_overflowed] can lag by up to that much growth on very large
    corpora (appends into small corpora always re-probe). *)

val stats : learner -> t
val current : learner -> finalized

(** {2 Versioned persistence payload}

    Line-oriented text: the corpus as byte-framed
    {!Encore_sysenv.Collector} image dumps, then the per-column
    tallies.  Raw rows are re-derived by parsing on load (parsing is
    deterministic), so the payload never stores derived state.  Framed
    by {!payload_schema} at the snapshot layer. *)

val payload_schema : string
(** ["ENCORE-SUFFSTATS 1"]. *)

val to_payload : t -> string

val of_payload : string -> (t, string) result
(** Total inverse of {!to_payload}. *)
