module Ctype = Encore_typing.Ctype
module Fs = Encore_sysenv.Fs
module Accounts = Encore_sysenv.Accounts
module Strutil = Encore_util.Strutil

type t =
  | Eq_all
  | Eq_exists
  | Bool_implies of bool * bool
  | Subnet
  | Concat_path
  | Substring
  | User_in_group
  | Not_accessible
  | Ownership
  | Num_less
  | Size_less

let to_string = function
  | Eq_all -> "equal"
  | Eq_exists -> "equal-exists"
  | Bool_implies (a, b) ->
      Printf.sprintf "bool-implies(%b,%b)" a b
  | Subnet -> "subnet"
  | Concat_path -> "concat-path"
  | Substring -> "substring"
  | User_in_group -> "user-in-group"
  | Not_accessible -> "not-accessible"
  | Ownership -> "ownership"
  | Num_less -> "num-less"
  | Size_less -> "size-less"

let symbol = function
  | Eq_all -> "=="
  | Eq_exists -> "=~"
  | Bool_implies (true, true) -> "~>TT"
  | Bool_implies (true, false) -> "~>TF"
  | Bool_implies (false, true) -> "~>FT"
  | Bool_implies (false, false) -> "~>FF"
  | Subnet -> "<<"
  | Concat_path -> "+"
  | Substring -> "<:"
  | User_in_group -> "@"
  | Not_accessible -> "!@"
  | Ownership -> "=>"
  | Num_less -> "<"
  | Size_less -> "<#"

let of_symbol = function
  | "==" -> Some Eq_all
  | "=~" -> Some Eq_exists
  | "~>TT" -> Some (Bool_implies (true, true))
  | "~>TF" -> Some (Bool_implies (true, false))
  | "~>FT" -> Some (Bool_implies (false, true))
  | "~>FF" -> Some (Bool_implies (false, false))
  | "<<" -> Some Subnet
  | "+" -> Some Concat_path
  | "<:" -> Some Substring
  | "@" -> Some User_in_group
  | "!@" -> Some Not_accessible
  | "=>" -> Some Ownership
  | "<" -> Some Num_less
  | "<#" -> Some Size_less
  | _ -> None

type ctx = { image : Encore_sysenv.Image.t; row : Encore_dataset.Row.t }

let is_pathish = function
  | Ctype.File_path | Ctype.Partial_file_path | Ctype.File_name | Ctype.Url ->
      true
  | _ -> false

let is_comparable_eq = function
  (* type-based attribute selection: trivial strings and enums carry no
     cross-entry identity; boolean coincidence is covered by the
     extended-boolean template instead *)
  | Ctype.String_t | Ctype.Enum _ | Ctype.Bool_t -> false
  | _ -> true

let slot_a_ok rel (t : Ctype.t) =
  match rel with
  | Eq_all | Eq_exists -> is_comparable_eq t
  | Bool_implies _ -> ( match t with Ctype.Bool_t -> true | _ -> false)
  | Subnet -> t = Ctype.Ip_address
  | Concat_path -> t = Ctype.File_path
  | Substring -> is_pathish t
  | User_in_group -> t = Ctype.User_name
  | Not_accessible -> t = Ctype.File_path
  | Ownership -> t = Ctype.File_path
  | Num_less -> ( match t with Ctype.Number | Ctype.Port_number -> true | _ -> false)
  | Size_less -> t = Ctype.Size

let slot_b_ok rel (t : Ctype.t) =
  match rel with
  | Eq_all | Eq_exists -> is_comparable_eq t
  | Bool_implies _ -> ( match t with Ctype.Bool_t -> true | _ -> false)
  | Subnet -> t = Ctype.Ip_address
  | Concat_path -> t = Ctype.Partial_file_path
  | Substring -> is_pathish t
  | User_in_group -> t = Ctype.Group_name
  | Not_accessible -> t = Ctype.User_name
  | Ownership -> t = Ctype.User_name
  | Num_less -> ( match t with Ctype.Number | Ctype.Port_number -> true | _ -> false)
  | Size_less -> t = Ctype.Size

let symmetric = function
  | Eq_all | Eq_exists -> true
  | Bool_implies _ | Subnet | Concat_path | Substring | User_in_group
  | Not_accessible | Ownership | Num_less | Size_less ->
      false

let same_type_required = function
  | Eq_all | Eq_exists | Substring -> true
  | Bool_implies _ | Subnet | Concat_path | User_in_group | Not_accessible
  | Ownership | Num_less | Size_less ->
      false

let truthy v =
  match Strutil.lowercase_ascii (String.trim v) with
  | "on" | "true" | "yes" | "1" | "enabled" -> Some true
  | "off" | "false" | "no" | "0" | "disabled" -> Some false
  | _ -> None

(* B as an address prefix: "10.0.0.0/8" CIDR or a bare address compared
   by dotted prefix. *)
let in_subnet a b =
  match String.index_opt b '/' with
  | Some slash -> (
      let net = String.sub b 0 slash in
      let bits = String.sub b (slash + 1) (String.length b - slash - 1) in
      match int_of_string_opt bits with
      | None -> None
      | Some bits ->
          let octets s =
            List.filter_map int_of_string_opt (String.split_on_char '.' s)
          in
          let to_int32 = function
            | [ x; y; z; w ] -> Some ((x lsl 24) lor (y lsl 16) lor (z lsl 8) lor w)
            | _ -> None
          in
          (match (to_int32 (octets a), to_int32 (octets net)) with
           | Some ia, Some inet when bits >= 0 && bits <= 32 ->
               let mask = if bits = 0 then 0 else -1 lsl (32 - bits) land 0xFFFFFFFF in
               Some (ia land mask = inet land mask)
           | _ -> None))
  | None -> if a = b then Some true else Some (Strutil.starts_with ~prefix:(b ^ ".") (a ^ "."))

let all_pairs f xs ys =
  List.for_all (fun x -> List.for_all (fun y -> f x y) ys) xs

let exists_pair f xs ys =
  List.exists (fun x -> List.exists (fun y -> f x y) ys) xs

let opt_all_pairs (f : string -> string -> bool option) xs ys =
  (* None if any pair is inapplicable; Some conjunction otherwise.
     One pass, no materialized pair-result list: this runs per row per
     generic-fallback candidate, where the cons garbage was measurable
     at fleet scale. *)
  if xs = [] || ys = [] then None
  else
    let rec outer conj = function
      | [] -> Some conj
      | x :: xs' -> (
          let rec inner conj = function
            | [] -> Some conj
            | y :: ys' -> (
                match f x y with
                | None -> None
                | Some b -> inner (conj && b) ys')
          in
          match inner conj ys with
          | None -> None
          | Some conj -> outer conj xs')
    in
    outer true xs

let eval rel ctx ~a ~b =
  if a = [] || b = [] then None
  else
    match rel with
    | Eq_all -> Some (all_pairs String.equal a b)
    | Eq_exists -> Some (exists_pair String.equal a b)
    | Bool_implies (pa, pb) ->
        (* No |a|*|b| pair list: inapplicable when any instance fails to
           parse as a boolean; otherwise ∀(x,y). x=pa ⇒ y=pb factors
           into per-side for_alls because the pair predicate is a
           disjunction of per-side predicates. *)
        if
          List.exists (fun x -> truthy x = None) a
          || List.exists (fun y -> truthy y = None) b
        then None
        else
          Some
            (List.for_all (fun x -> truthy x <> Some pa) a
            || List.for_all (fun y -> truthy y = Some pb) b)
    | Subnet -> opt_all_pairs in_subnet a b
    | Concat_path ->
        Some
          (all_pairs
             (fun root frag ->
               Fs.exists ctx.image.fs (Strutil.path_join root frag))
             a b)
    | Substring -> Some (all_pairs (fun x y -> Strutil.contains_sub y x) a b)
    | User_in_group ->
        Some
          (all_pairs
             (fun user group -> Accounts.user_in_group ctx.image.accounts ~user ~group)
             a b)
    | Not_accessible ->
        Some
          (all_pairs
             (fun path user ->
               let groups = Accounts.groups_of_user ctx.image.accounts user in
               Fs.exists ctx.image.fs path
               && not (Fs.readable_by ctx.image.fs ~user ~groups path))
             a b)
    | Ownership ->
        Some
          (all_pairs
             (fun path user ->
               match Fs.lookup ctx.image.fs path with
               | Some m -> m.Fs.owner = user
               | None -> false)
             a b)
    | Num_less ->
        opt_all_pairs
          (fun x y ->
            match (Strutil.parse_number x, Strutil.parse_number y) with
            | Some fx, Some fy -> Some (fx < fy)
            | _ -> None)
          a b
    | Size_less ->
        opt_all_pairs
          (fun x y ->
            match (Strutil.parse_size x, Strutil.parse_size y) with
            | Some sx, Some sy -> Some (sx < sy)
            | _ -> None)
          a b
