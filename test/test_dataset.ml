(* Tests for encore_dataset: rows, tables, environment augmentation,
   the two-pass assembler and boolean discretization. *)

module Row = Encore_dataset.Row
module Table = Encore_dataset.Table
module Augment = Encore_dataset.Augment
module Assemble = Encore_dataset.Assemble
module Discretize = Encore_dataset.Discretize
module Ctype = Encore_typing.Ctype
module Fs = Encore_sysenv.Fs
module Accounts = Encore_sysenv.Accounts
module Image = Encore_sysenv.Image

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Row ------------------------------------------------------------------ *)

let test_row_basic () =
  let r = Row.of_list [ ("a", "1"); ("b", "2") ] in
  check (Alcotest.option Alcotest.string) "get" (Some "1") (Row.get r "a");
  check Alcotest.bool "mem" true (Row.mem r "b");
  check Alcotest.bool "not mem" false (Row.mem r "c");
  check Alcotest.int "cardinal" 2 (Row.cardinal r)

let test_row_multi_instance () =
  let r = Row.of_list [ ("listen", "80"); ("listen", "443") ] in
  check (Alcotest.list Alcotest.string) "instances" [ "80"; "443" ]
    (Row.get_all r "listen");
  check (Alcotest.option Alcotest.string) "first" (Some "80") (Row.get r "listen");
  check (Alcotest.list Alcotest.string) "distinct attrs" [ "listen" ] (Row.attrs r)

let test_row_add_appends () =
  let r = Row.add (Row.of_list [ ("a", "1") ]) "a" "2" in
  check (Alcotest.list Alcotest.string) "appended" [ "1"; "2" ] (Row.get_all r "a")

let test_row_union () =
  let r = Row.union (Row.of_list [ ("a", "1") ]) (Row.of_list [ ("b", "2") ]) in
  check (Alcotest.list Alcotest.string) "attrs" [ "a"; "b" ] (Row.attrs r)

let prop_row_roundtrip =
  let pair_gen =
    QCheck.Gen.(pair (string_size ~gen:(char_range 'a' 'e') (return 1))
                  (string_size ~gen:(char_range '0' '9') (return 1)))
  in
  QCheck.Test.make ~name:"row of_list/to_list roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 12) pair_gen))
    (fun pairs -> Row.to_list (Row.of_list pairs) = pairs)

(* --- Colview ----------------------------------------------------------------- *)

module Colview = Encore_dataset.Colview

let test_colview_shape_and_order () =
  let rows =
    [ Row.of_list [ ("a", "1"); ("b", "2") ];
      Row.of_list [ ("b", "3"); ("c", "4") ] ]
  in
  let v = Colview.of_rows rows in
  check Alcotest.int "rows" 2 (Colview.n_rows v);
  check Alcotest.int "attrs" 3 (Colview.n_attrs v);
  check (Alcotest.list Alcotest.string) "first-appearance order"
    [ "a"; "b"; "c" ] (Colview.attrs v)

let test_colview_cells () =
  let rows =
    [ Row.of_list [ ("listen", "80"); ("listen", "443") ];
      Row.of_list [ ("port", "22") ] ]
  in
  let v = Colview.of_rows rows in
  let listen = Option.get (Colview.id v "listen") in
  let port = Option.get (Colview.id v "port") in
  check (Alcotest.list Alcotest.string) "multi-instance cell"
    [ "80"; "443" ] (Colview.values v ~attr:listen ~row:0);
  check (Alcotest.list Alcotest.string) "absent cell is empty" []
    (Colview.values v ~attr:listen ~row:1);
  check (Alcotest.list Alcotest.string) "column array"
    [ "22" ] (Colview.column v port).(1);
  check (Alcotest.option Alcotest.int) "unknown attr" None
    (Colview.id v "nope")

let prop_colview_matches_rows =
  let pair_gen =
    QCheck.Gen.(pair (string_size ~gen:(char_range 'a' 'e') (return 1))
                  (string_size ~gen:(char_range '0' '9') (return 1)))
  in
  QCheck.Test.make ~name:"colview cells = Row.get_all" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 6)
                     (list_size (int_range 0 10) pair_gen)))
    (fun rows_pairs ->
      let rows = List.map Row.of_list rows_pairs in
      let v = Colview.of_rows rows in
      List.for_all
        (fun attr ->
          let id = Option.get (Colview.id v attr) in
          List.mapi (fun _ r -> Row.get_all r attr) rows
          = Array.to_list (Colview.column v id))
        (Colview.attrs v))

(* --- Bitcol ----------------------------------------------------------------- *)

module Bitcol = Encore_dataset.Bitcol
module Bitset = Bitcol.Bitset

let test_bitset_word_edges () =
  (* 62 payload bits per word: indices 61 / 62 / 63 / 123 / 124 straddle
     the first two word boundaries *)
  List.iter
    (fun len ->
      let s = Bitset.create len in
      List.iter
        (fun i -> if i < len then Bitset.set s i)
        [ 0; 61; 62; 63; 123; 124 ];
      let expect = List.filter (fun i -> i < len) [ 0; 61; 62; 63; 123; 124 ] in
      check Alcotest.int
        (Printf.sprintf "count len=%d" len)
        (List.length expect) (Bitset.count s);
      List.iter
        (fun i ->
          check Alcotest.bool
            (Printf.sprintf "mem %d (len=%d)" i len)
            (List.mem i expect)
            (i < len && Bitset.mem s i))
        [ 0; 1; 60; 61; 62; 63; 122; 123; 124 ])
    [ 62; 63; 124; 125; 200 ]

let test_bitset_inter_iter () =
  let a = Bitset.create 130 and b = Bitset.create 130 in
  List.iter (Bitset.set a) [ 0; 5; 61; 62; 100; 124; 129 ];
  List.iter (Bitset.set b) [ 5; 61; 63; 124; 129 ];
  check Alcotest.int "inter_count" 4 (Bitset.inter_count a b);
  let seen = ref [] in
  Bitset.iter_inter a b (fun i -> seen := i :: !seen);
  check (Alcotest.list Alcotest.int) "iter_inter ascending" [ 5; 61; 124; 129 ]
    (List.rev !seen);
  check Alcotest.int "fold_inter" (5 + 61 + 124 + 129)
    (Bitset.fold_inter a b ~init:0 ( + ))

let test_bitset_empty () =
  let s = Bitset.create 0 in
  check Alcotest.int "empty count" 0 (Bitset.count s);
  check Alcotest.int "empty length" 0 (Bitset.length s);
  let a = Bitset.create 70 and b = Bitset.create 70 in
  check Alcotest.int "disjoint inter" 0 (Bitset.inter_count a b);
  Bitset.iter_inter a b (fun _ -> Alcotest.fail "no bits expected")

let test_bitcol_empty_and_absent () =
  (* attribute "gone" appears in the view (mentioned by a row) but with
     no instances anywhere after filtering: simulate with an attribute
     present in only one row, and one view with zero rows *)
  let v0 = Colview.of_rows [] in
  let b0 = Bitcol.of_colview v0 in
  check Alcotest.int "no rows" 0 (Bitcol.n_rows b0);
  let rows =
    [ Row.of_list [ ("a", "1") ];
      Row.of_list [ ("a", "2"); ("multi", "x"); ("multi", "y") ];
      Row.of_list [ ("b", "3") ] ]
  in
  let v = Colview.of_rows rows in
  let b = Bitcol.of_colview v in
  let ia = Option.get (Colview.id v "a") in
  let ib = Option.get (Colview.id v "b") in
  let im = Option.get (Colview.id v "multi") in
  check Alcotest.int "presence a" 2 (Bitset.count (Bitcol.presence b ia));
  check (Alcotest.list Alcotest.int) "index a" [ 0; 1 ]
    (Array.to_list (Bitcol.index b ia));
  check (Alcotest.list Alcotest.int) "index b" [ 2 ]
    (Array.to_list (Bitcol.index b ib));
  (* single-instance columns intern ids; multi-instance columns do not *)
  check Alcotest.bool "a single" true (Bitcol.single_ids b ia <> None);
  check Alcotest.bool "multi not single" true (Bitcol.single_ids b im = None);
  (match Bitcol.single_ids b ia with
   | Some ids ->
       check Alcotest.bool "absent row id is -1" true (ids.(2) = -1);
       check Alcotest.bool "present rows have ids" true
         (ids.(0) >= 0 && ids.(1) >= 0 && ids.(0) <> ids.(1))
   | None -> Alcotest.fail "expected single ids for a")

let test_bitcol_shared_value_ids () =
  (* equal values intern to the same id even across attributes *)
  let rows =
    [ Row.of_list [ ("x", "same"); ("y", "same") ];
      Row.of_list [ ("x", "other") ] ]
  in
  let v = Colview.of_rows rows in
  let b = Bitcol.of_colview v in
  let ix = Option.get (Colview.id v "x") in
  let iy = Option.get (Colview.id v "y") in
  match (Bitcol.single_ids b ix, Bitcol.single_ids b iy) with
  | Some xs, Some ys ->
      check Alcotest.bool "cross-column equality" true (xs.(0) = ys.(0));
      check Alcotest.bool "distinct values differ" true (xs.(1) <> xs.(0))
  | _ -> Alcotest.fail "expected single-instance columns"

let prop_bitset_count_matches_mem =
  QCheck.Test.make ~name:"bitset count = |set bits|" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 200) (list_size (int_range 0 50) (int_range 0 199))))
    (fun (len, bits) ->
      let s = Bitset.create len in
      let bits = List.filter (fun i -> i < len) bits in
      List.iter (Bitset.set s) bits;
      let distinct = List.sort_uniq compare bits in
      Bitset.count s = List.length distinct
      && List.for_all (Bitset.mem s) distinct)

(* --- Table ------------------------------------------------------------------ *)

let sample_table () =
  Table.of_rows
    [ ("i1", Row.of_list [ ("a", "x"); ("b", "1") ]);
      ("i2", Row.of_list [ ("a", "x"); ("c", "z") ]);
      ("i3", Row.of_list [ ("a", "y") ]) ]

let test_table_columns_union () =
  check (Alcotest.list Alcotest.string) "columns" [ "a"; "b"; "c" ]
    (Table.columns (sample_table ()))

let test_table_column_values_support () =
  let t = sample_table () in
  check (Alcotest.list Alcotest.string) "values" [ "x"; "x"; "y" ]
    (Table.column_values t "a");
  check Alcotest.int "support a" 3 (Table.column_support t "a");
  check Alcotest.int "support b" 1 (Table.column_support t "b")

let test_table_entropy () =
  let t = sample_table () in
  check Alcotest.bool "diverse column has entropy" true (Table.column_entropy t "a" > 0.0);
  check (Alcotest.float 1e-9) "constant column" 0.0 (Table.column_entropy t "b")

let test_table_csv_roundtrip () =
  let t = sample_table () in
  let t2 = Table.of_csv (Table.to_csv t) in
  check (Alcotest.list Alcotest.string) "columns preserved" (Table.columns t) (Table.columns t2);
  check Alcotest.int "rows preserved" (Table.row_count t) (Table.row_count t2);
  check (Alcotest.list Alcotest.string) "cell values" (Table.column_values t "a")
    (Table.column_values t2 "a")

let test_table_csv_multi_instance () =
  let t = Table.of_rows [ ("i", Row.of_list [ ("l", "80"); ("l", "443") ]) ] in
  let t2 = Table.of_csv (Table.to_csv t) in
  check (Alcotest.list Alcotest.string) "instances survive csv" [ "80"; "443" ]
    (Table.column_values t2 "l")

(* --- Augment ------------------------------------------------------------------ *)

let env_image () =
  let fs = Fs.add_dir ~owner:"mysql" ~group:"mysql" ~perm:0o750 Fs.empty "/data" in
  let fs = Fs.add_dir fs "/data/sub" in
  let fs = Fs.add_symlink fs "/data/link" ~target:"/etc" in
  let fs = Fs.add_file ~owner:"mysql" ~group:"adm" ~perm:0o640 fs "/var/log/err.log" in
  let accounts = Accounts.add_service_account Accounts.base "mysql" in
  Image.make ~id:"aug" ~fs ~accounts []

let test_augment_file_path_dir () =
  let img = env_image () in
  let attrs = Augment.entry img "m/datadir" Ctype.File_path "/data" in
  let get k = List.assoc_opt k attrs in
  check (Alcotest.option Alcotest.string) "owner" (Some "mysql") (get "m/datadir.owner");
  check (Alcotest.option Alcotest.string) "type" (Some "dir") (get "m/datadir.type");
  check (Alcotest.option Alcotest.string) "permission" (Some "750") (get "m/datadir.permission");
  check (Alcotest.option Alcotest.string) "hasDir" (Some "True") (get "m/datadir.hasDir");
  check (Alcotest.option Alcotest.string) "hasSymLink" (Some "True") (get "m/datadir.hasSymLink")

let test_augment_file_path_file () =
  let img = env_image () in
  let attrs = Augment.entry img "m/log" Ctype.File_path "/var/log/err.log" in
  check (Alcotest.option Alcotest.string) "type" (Some "file")
    (List.assoc_opt "m/log.type" attrs);
  check Alcotest.bool "no dir attrs for files" true
    (List.assoc_opt "m/log.hasDir" attrs = None)

let test_augment_missing_path () =
  let img = env_image () in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    "missing marker" [ ("m/x.type", "missing") ]
    (Augment.entry img "m/x" Ctype.File_path "/nope")

let test_augment_ip () =
  let img = env_image () in
  let attrs = Augment.entry img "a/addr" Ctype.Ip_address "192.168.1.5" in
  check (Alcotest.option Alcotest.string) "local" (Some "True")
    (List.assoc_opt "a/addr.Local" attrs);
  let attrs = Augment.entry img "a/addr" Ctype.Ip_address "0.0.0.0" in
  check (Alcotest.option Alcotest.string) "any" (Some "True")
    (List.assoc_opt "a/addr.AnyAddr" attrs);
  let attrs = Augment.entry img "a/addr" Ctype.Ip_address "8.8.8.8" in
  check (Alcotest.option Alcotest.string) "public not local" (Some "False")
    (List.assoc_opt "a/addr.Local" attrs);
  let attrs = Augment.entry img "a/addr" Ctype.Ip_address "172.20.0.1" in
  check (Alcotest.option Alcotest.string) "rfc1918 172.16/12" (Some "True")
    (List.assoc_opt "a/addr.Local" attrs)

let test_augment_user () =
  let img = env_image () in
  let attrs = Augment.entry img "m/user" Ctype.User_name "mysql" in
  check (Alcotest.option Alcotest.string) "isAdmin" (Some "False")
    (List.assoc_opt "m/user.isAdmin" attrs);
  check (Alcotest.option Alcotest.string) "isGroup" (Some "mysql")
    (List.assoc_opt "m/user.isGroup" attrs);
  let attrs = Augment.entry img "m/user" Ctype.User_name "root" in
  check (Alcotest.option Alcotest.string) "root admin" (Some "True")
    (List.assoc_opt "m/user.isAdmin" attrs)

let test_augment_port_and_size () =
  let img = env_image () in
  let attrs = Augment.entry img "m/port" Ctype.Port_number "3306" in
  check (Alcotest.option Alcotest.string) "service" (Some "mysql")
    (List.assoc_opt "m/port.service" attrs);
  check (Alcotest.option Alcotest.string) "privileged" (Some "False")
    (List.assoc_opt "m/port.privileged" attrs);
  let attrs = Augment.entry img "m/buf" Ctype.Size "8K" in
  check (Alcotest.option Alcotest.string) "bytes" (Some "8192")
    (List.assoc_opt "m/buf.bytes" attrs)

let test_augment_suffix_typing () =
  check Alcotest.bool "owner is augmented" true (Augment.is_augmented "x.owner");
  check Alcotest.bool "plain not" false (Augment.is_augmented "mysql/mysqld/datadir");
  check Alcotest.string "base" "m/datadir" (Augment.base_attr "m/datadir.owner");
  check Alcotest.bool "owner type" true
    (Ctype.equal (Augment.augmented_type "x.owner") Ctype.User_name);
  check Alcotest.bool "permission type" true
    (Ctype.equal (Augment.augmented_type "x.permission") Ctype.Permission)

let test_augment_globals () =
  let img = env_image () in
  let g = Augment.globals img in
  check Alcotest.bool "hostname" true (List.mem_assoc "Sys.HostName" g);
  check Alcotest.bool "os" true (List.mem_assoc "OS.DistName" g);
  check Alcotest.bool "hw present" true (List.mem_assoc "MemSize" g);
  let dormant = Image.make ~id:"d" ~hardware:None [] in
  check Alcotest.bool "no hw when dormant" false
    (List.mem_assoc "MemSize" (Augment.globals dormant))

(* --- Assemble ------------------------------------------------------------------ *)

let mysql_image id port =
  let fs = Fs.add_dir ~owner:"mysql" ~group:"mysql" Fs.empty "/var/lib/mysql" in
  let accounts = Accounts.add_service_account Accounts.base "mysql" in
  let text = Printf.sprintf "[mysqld]\nport = %s\ndatadir = /var/lib/mysql\nuser = mysql\n" port in
  Image.make ~id ~fs ~accounts
    [ { Image.app = Image.Mysql; path = "/etc/my.cnf"; text } ]

let test_assemble_parse_only () =
  let row = Assemble.parse_only (mysql_image "p" "3306") in
  check (Alcotest.option Alcotest.string) "entry" (Some "3306")
    (Row.get row "mysql/mysqld/port");
  check Alcotest.bool "no augmentation" false (Row.mem row "mysql/mysqld/datadir.owner")

let test_assemble_training_augments () =
  let images = List.init 6 (fun i -> mysql_image (string_of_int i) "3306") in
  let asm = Assemble.assemble_training images in
  let _, row = List.hd (Table.rows asm.Assemble.table) in
  check (Alcotest.option Alcotest.string) "augmented owner" (Some "mysql")
    (Row.get row "mysql/mysqld/datadir.owner");
  check Alcotest.bool "globals present" true (Row.mem row "Sys.HostName");
  (* types inferred for both original and augmented columns *)
  check Alcotest.bool "datadir typed" true
    (Encore_typing.Infer.find asm.Assemble.types "mysql/mysqld/datadir" <> None);
  check Alcotest.bool "owner typed" true
    (Encore_typing.Infer.find asm.Assemble.types "mysql/mysqld/datadir.owner" <> None)

let test_assemble_target_uses_training_types () =
  let images = List.init 6 (fun i -> mysql_image (string_of_int i) "3306") in
  let asm = Assemble.assemble_training images in
  let target = mysql_image "t" "3306" in
  let row = Assemble.assemble_target ~types:asm.Assemble.types target in
  check (Alcotest.option Alcotest.string) "target augmented" (Some "mysql")
    (Row.get row "mysql/mysqld/datadir.owner")

let test_assemble_type_of_fallbacks () =
  check Alcotest.bool "augmented fallback" true
    (Ctype.equal (Assemble.type_of [] "x.owner") Ctype.User_name);
  check Alcotest.bool "unknown fallback" true
    (Ctype.equal (Assemble.type_of [] "unknown") Ctype.String_t)

(* --- Discretize ------------------------------------------------------------------ *)

let test_discretize_nominal_items () =
  let t =
    Table.of_rows
      [ ("1", Row.of_list [ ("color", "red") ]);
        ("2", Row.of_list [ ("color", "blue") ]) ]
  in
  let universe, rows = Discretize.items_of_table ~numeric:false t in
  check Alcotest.int "two items" 2 (List.length universe);
  check Alcotest.bool "labels" true (List.mem "color=red" universe);
  check Alcotest.int "rows" 2 (Array.length rows)

let test_discretize_numeric_binning () =
  let t =
    Table.of_rows
      (List.mapi
         (fun i v -> (string_of_int i, Row.of_list [ ("n", string_of_int v) ]))
         [ 0; 10; 50; 90; 100 ])
  in
  let universe, _ = Discretize.items_of_table t in
  check Alcotest.bool "binned labels" true
    (List.for_all (fun i -> Encore_util.Strutil.contains_sub i "n in [") universe);
  check Alcotest.bool "at most 4 bins" true (List.length universe <= Discretize.numeric_bins)

let test_discretize_transactions_encoding () =
  let t =
    Table.of_rows
      [ ("1", Row.of_list [ ("a", "x"); ("b", "y") ]);
        ("2", Row.of_list [ ("a", "x") ]) ]
  in
  let txs, dict = Discretize.transactions t in
  check Alcotest.int "dict size" 2 (Array.length dict);
  check Alcotest.int "tx1 items" 2 (Array.length txs.(0));
  check Alcotest.int "tx2 items" 1 (Array.length txs.(1));
  (* ids are valid indices *)
  Array.iter
    (fun tx -> Array.iter (fun i -> check Alcotest.bool "valid id" true (i >= 0 && i < 2)) tx)
    txs

let test_discretize_binomial_grows () =
  (* the binomial universe is at least as large as the column count *)
  let t = sample_table () in
  check Alcotest.bool "binomial >= columns" true
    (Discretize.binomial_count t >= Table.column_count t)

let () =
  Alcotest.run "encore_dataset"
    [
      ( "row",
        [
          Alcotest.test_case "basic" `Quick test_row_basic;
          Alcotest.test_case "multi-instance" `Quick test_row_multi_instance;
          Alcotest.test_case "add appends" `Quick test_row_add_appends;
          Alcotest.test_case "union" `Quick test_row_union;
          qtest prop_row_roundtrip;
        ] );
      ( "colview",
        [
          Alcotest.test_case "shape and order" `Quick test_colview_shape_and_order;
          Alcotest.test_case "cells" `Quick test_colview_cells;
          qtest prop_colview_matches_rows;
        ] );
      ( "bitcol",
        [
          Alcotest.test_case "word edges" `Quick test_bitset_word_edges;
          Alcotest.test_case "intersection ops" `Quick test_bitset_inter_iter;
          Alcotest.test_case "empty sets" `Quick test_bitset_empty;
          Alcotest.test_case "empty and absent columns" `Quick
            test_bitcol_empty_and_absent;
          Alcotest.test_case "shared value ids" `Quick
            test_bitcol_shared_value_ids;
          qtest prop_bitset_count_matches_mem;
        ] );
      ( "table",
        [
          Alcotest.test_case "columns union" `Quick test_table_columns_union;
          Alcotest.test_case "values/support" `Quick test_table_column_values_support;
          Alcotest.test_case "entropy" `Quick test_table_entropy;
          Alcotest.test_case "csv roundtrip" `Quick test_table_csv_roundtrip;
          Alcotest.test_case "csv multi-instance" `Quick test_table_csv_multi_instance;
        ] );
      ( "augment",
        [
          Alcotest.test_case "file path dir" `Quick test_augment_file_path_dir;
          Alcotest.test_case "file path file" `Quick test_augment_file_path_file;
          Alcotest.test_case "missing path" `Quick test_augment_missing_path;
          Alcotest.test_case "ip" `Quick test_augment_ip;
          Alcotest.test_case "user" `Quick test_augment_user;
          Alcotest.test_case "port and size" `Quick test_augment_port_and_size;
          Alcotest.test_case "suffix typing" `Quick test_augment_suffix_typing;
          Alcotest.test_case "globals" `Quick test_augment_globals;
        ] );
      ( "assemble",
        [
          Alcotest.test_case "parse only" `Quick test_assemble_parse_only;
          Alcotest.test_case "training augments" `Quick test_assemble_training_augments;
          Alcotest.test_case "target reuses types" `Quick test_assemble_target_uses_training_types;
          Alcotest.test_case "type_of fallbacks" `Quick test_assemble_type_of_fallbacks;
        ] );
      ( "discretize",
        [
          Alcotest.test_case "nominal items" `Quick test_discretize_nominal_items;
          Alcotest.test_case "numeric binning" `Quick test_discretize_numeric_binning;
          Alcotest.test_case "transaction encoding" `Quick test_discretize_transactions_encoding;
          Alcotest.test_case "binomial grows" `Quick test_discretize_binomial_grows;
        ] );
    ]
