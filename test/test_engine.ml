(* Tests for the compiled detection engine and the fleet serving path:
   the equivalence contract against a reference interpreted checker,
   pool-size independence of fleet reports, deadline degradation,
   degraded-check annotations, advisor output, and the collector image
   dump round-trip. *)

module Detector = Encore_detect.Detector
module Engine = Encore_detect.Engine
module Warning = Encore_detect.Warning
module Advisor = Encore_detect.Advisor
module Pipeline = Encore.Pipeline
module Config = Encore.Config
module Testgen = Encore.Testgen
module Population = Encore_workloads.Population
module Profile = Encore_workloads.Profile
module Image = Encore_sysenv.Image
module Collector = Encore_sysenv.Collector
module Row = Encore_dataset.Row
module Assemble = Encore_dataset.Assemble
module Augment = Encore_dataset.Augment
module Tinfer = Encore_typing.Infer
module Ctype = Encore_typing.Ctype
module Syntactic = Encore_typing.Syntactic
module Semantic = Encore_typing.Semantic
module Template = Encore_rules.Template
module Relation = Encore_rules.Relation
module Strutil = Encore_util.Strutil
module Kv = Encore_confparse.Kv
module Pool = Encore_util.Pool
module Deadline = Encore_util.Deadline
module Prng = Encore_util.Prng

let check = Alcotest.check

(* --- reference interpreted checker ---------------------------------------

   A direct port of the pre-engine [Detector.check]: linear assoc-list
   walks over the model, no compiled indices, no telemetry.  The
   equivalence property below pins [Engine.check] (and the thin
   [Detector.check] wrapper) to this implementation — comparing the
   wrapper against [Engine.check] alone would be vacuous now that the
   wrapper delegates. *)

let ref_config_attrs row =
  List.filter
    (fun attr ->
      (not (Augment.is_augmented attr)) && Strutil.contains_char attr '/')
    (Row.attrs row)

let ref_name_warnings (model : Detector.model) row =
  let known = Hashtbl.create 256 in
  List.iter (fun a -> Hashtbl.add known a ()) model.known_attrs;
  List.filter_map
    (fun attr ->
      if Hashtbl.mem known attr then None
      else
        let base = Kv.key_basename attr in
        let nearest =
          List.fold_left
            (fun best candidate ->
              let cbase = Kv.key_basename candidate in
              let d = Strutil.damerau_levenshtein base cbase in
              match best with
              | Some (_, bd) when bd <= d -> best
              | _ -> Some (candidate, d))
            None model.known_attrs
        in
        let nearest_name, distance =
          match nearest with
          | Some (n, d) -> (Some n, d)
          | None -> (None, max_int)
        in
        let score =
          if distance <= 2 then 0.9 -. (0.1 *. float_of_int distance) else 0.3
        in
        let message =
          match nearest_name with
          | Some n when distance <= 2 ->
              Printf.sprintf "unknown entry '%s': possible misspelling of '%s'"
                attr n
          | Some _ | None ->
              Printf.sprintf "unknown entry '%s': never seen in training" attr
        in
        Some
          {
            Warning.kind =
              Warning.Entry_name_violation { unseen = attr; nearest = nearest_name };
            attrs = [ attr ];
            message;
            score;
          })
    (ref_config_attrs row)

let ref_rule_warnings (model : Detector.model) ctx =
  List.filter_map
    (fun (rule : Template.rule) ->
      match Template.rule_holds rule ctx with
      | Some false ->
          Some
            {
              Warning.kind = Warning.Correlation_violation rule;
              attrs = [ rule.Template.attr_a; rule.Template.attr_b ];
              message =
                Printf.sprintf "correlation violated: %s"
                  (Template.rule_to_string rule);
              score = 0.5 +. (0.5 *. rule.Template.confidence);
            }
      | Some true | None -> None)
    model.rules

let ref_type_warnings (model : Detector.model) row img =
  List.concat_map
    (fun (attr, value) ->
      match Tinfer.find model.types attr with
      | None -> []
      | Some decision ->
          let t = decision.Tinfer.ctype in
          if Ctype.equal t Ctype.String_t then []
          else if Syntactic.matches t value && Semantic.verify img t value then
            []
          else
            [
              {
                Warning.kind = Warning.Type_violation { attr; expected = t; value };
                attrs = [ attr ];
                message =
                  Printf.sprintf "type violation: %s='%s' fails %s check" attr
                    value (Ctype.to_string t);
                score = 0.4 +. (0.5 *. decision.Tinfer.agreement);
              };
            ])
    (Row.to_list row)

let ref_value_warnings (model : Detector.model) row =
  List.filter_map
    (fun (attr, value) ->
      match List.assoc_opt attr model.value_stats with
      | None -> None
      | Some seen ->
          if List.mem value seen then None
          else
            let cardinality = List.length seen in
            let icf = 1.0 /. float_of_int (max 1 cardinality) in
            Some
              {
                Warning.kind =
                  Warning.Suspicious_value
                    { attr; value; training_cardinality = cardinality };
                attrs = [ attr ];
                message =
                  Printf.sprintf
                    "suspicious value: %s='%s' unseen in training (%d distinct \
                     values seen)"
                    attr value cardinality;
                score = 0.2 +. (0.6 *. icf);
              })
    (Row.to_list row)

let ref_check ?(checks = Detector.all_checks) (model : Detector.model) img =
  let row = Assemble.assemble_target ~types:model.types img in
  let ctx = { Relation.image = img; row } in
  let warnings =
    (if checks.Detector.check_names then ref_name_warnings model row else [])
    @ (if checks.Detector.check_rules then ref_rule_warnings model ctx else [])
    @ (if checks.Detector.check_types then ref_type_warnings model row img
       else [])
    @ (if checks.Detector.check_values then ref_value_warnings model row
       else [])
  in
  List.sort Warning.compare_rank warnings

(* --- fixtures -------------------------------------------------------------- *)

let training () = Population.clean (Population.generate ~seed:11 Image.Mysql ~n:40)
let model () = Detector.learn (training ())

let targets seed n =
  List.init n (fun i ->
      Population.generator_for Image.Mysql Profile.ec2
        (Prng.create (seed + i))
        ~id:(Printf.sprintf "target-%03d" i))

let warning_str (w : Warning.t) =
  Printf.sprintf "%s score=%.9f attrs=[%s] %s" (Warning.kind_label w)
    w.Warning.score
    (String.concat "," w.Warning.attrs)
    w.Warning.message

let check_equivalent ~ctx m img =
  let expected = ref_check m img in
  let engine = Engine.check (Engine.compile m) img in
  let wrapper = Detector.check m img in
  check
    Alcotest.(list string)
    (ctx ^ ": engine = reference")
    (List.map warning_str expected)
    (List.map warning_str engine);
  check Alcotest.bool
    (ctx ^ ": engine structurally equal")
    true (expected = engine);
  check Alcotest.bool
    (ctx ^ ": Detector.check = Engine.check")
    true (engine = wrapper)

(* --- equivalence property -------------------------------------------------- *)

let test_equivalence_clean_targets () =
  let m = model () in
  List.iter
    (fun img -> check_equivalent ~ctx:img.Image.image_id m img)
    (targets 500 15)

let test_equivalence_testgen_mutants () =
  (* Testgen derives, per learned rule, a mutated image violating that
     rule — ideal adversarial inputs for the equivalence contract *)
  let m = model () in
  let base =
    Population.generator_for Image.Mysql Profile.ec2 (Prng.create 77) ~id:"base"
  in
  let cases = Testgen.generate m base in
  check Alcotest.bool "testgen produced cases" true (cases <> []);
  List.iter
    (fun (c : Testgen.test_case) ->
      check_equivalent ~ctx:c.Testgen.description m c.Testgen.image)
    cases

let test_equivalence_partial_checks () =
  let m = model () in
  let img =
    Population.generator_for Image.Mysql Profile.ec2 (Prng.create 42)
      ~id:"partial"
  in
  List.iter
    (fun (label, checks) ->
      let expected = ref_check ~checks m img in
      let engine = Engine.check ~checks (Engine.compile m) img in
      check
        Alcotest.(list string)
        (Printf.sprintf "%s subset identical" label)
        (List.map warning_str expected)
        (List.map warning_str engine))
    [
      ("names", { Detector.all_checks with check_rules = false;
                  check_types = false; check_values = false });
      ("rules", { Detector.all_checks with check_names = false;
                  check_types = false; check_values = false });
      ("types", { Detector.all_checks with check_names = false;
                  check_rules = false; check_values = false });
      ("values", { Detector.all_checks with check_names = false;
                   check_rules = false; check_types = false });
      ("none", { Detector.check_names = false; check_rules = false;
                 check_types = false; check_values = false });
    ]

(* --- fleet checking -------------------------------------------------------- *)

let fleet_with_jobs jobs =
  let m = model () in
  let imgs = targets 900 12 in
  let lines = ref [] in
  let report =
    Pool.with_pool ~jobs (fun pool ->
        Pipeline.check_fleet ~pool ~stream:(fun l -> lines := l :: !lines) m
          imgs)
  in
  (report, List.rev !lines)

let test_fleet_jobs_byte_identical () =
  let r1, s1 = fleet_with_jobs 1 in
  let r4, s4 = fleet_with_jobs 4 in
  check Alcotest.(list string) "streamed JSONL identical" s1 s4;
  check Alcotest.bool "reports structurally identical" true (r1 = r4);
  check
    Alcotest.(list string)
    "rendered lines match report order"
    (List.map Pipeline.fleet_image_line r1.Pipeline.fleet_images)
    s1;
  check Alcotest.string "rendered summary identical"
    (Pipeline.fleet_report_to_string r1)
    (Pipeline.fleet_report_to_string r4)

let test_fleet_report_accounting () =
  let m = model () in
  let imgs = targets 1300 8 in
  let r = Pipeline.check_fleet m imgs in
  check Alcotest.int "total" 8 r.Pipeline.fleet_total;
  check Alcotest.int "checked" 8 r.Pipeline.fleet_checked;
  check Alcotest.bool "completed" true
    (r.Pipeline.fleet_status = Pipeline.Fleet_completed);
  check Alcotest.int "exit code 0" 0 (Pipeline.fleet_exit_code r);
  check Alcotest.int "warning count is the sum" r.Pipeline.fleet_warning_count
    (List.fold_left
       (fun acc (fi : Pipeline.fleet_image_report) ->
         acc + List.length fi.Pipeline.fi_warnings)
       0 r.Pipeline.fleet_images);
  List.iter2
    (fun (img : Image.t) (fi : Pipeline.fleet_image_report) ->
      check Alcotest.string "target order" img.Image.image_id
        fi.Pipeline.fi_image)
    imgs r.Pipeline.fleet_images

let test_fleet_deadline_degrades () =
  let m = model () in
  let imgs = targets 1700 10 in
  (* expires after a handful of polls: the run must degrade to a
     completed prefix, not raise *)
  let r = Pipeline.check_fleet ~deadline:(Deadline.after_polls 3) m imgs in
  check Alcotest.bool "timed out" true
    (r.Pipeline.fleet_status = Pipeline.Fleet_timed_out);
  check Alcotest.bool "prefix only" true (r.Pipeline.fleet_checked < 10);
  check Alcotest.int "prefix length matches" r.Pipeline.fleet_checked
    (List.length r.Pipeline.fleet_images);
  check Alcotest.int "exit code 3" 3 (Pipeline.fleet_exit_code r)

(* --- degraded-check annotations -------------------------------------------- *)

let test_degraded_notes_overflow_and_quarantine () =
  let m = { (model ()) with Detector.overflowed = true } in
  let img =
    Population.generator_for Image.Mysql Profile.ec2 (Prng.create 3) ~id:"deg"
  in
  let report =
    {
      Pipeline.total = 5;
      ok = 3;
      quarantined =
        [ ("bad-1", []); ("bad-2", []) ];
      retried = 0;
      total_backoff_ms = 0;
      warnings = [];
      histogram = [];
      mining_overflowed = false;
      status = Pipeline.Completed;
    }
  in
  let d = Pipeline.check_degraded ~report m img in
  let has needle =
    List.exists (fun n -> Strutil.contains_sub n needle) d.Pipeline.notes
  in
  check Alcotest.bool "overflow note" true (has "itemset mining hit its cap");
  check Alcotest.bool "quarantine note" true (has "2 of 5 training image(s)");
  check Alcotest.bool "missing template classes note" true
    (has "no rules learned for template class(es)");
  check Alcotest.bool "result matches plain check" true
    (d.Pipeline.result = Detector.check m img)

let test_degraded_no_spurious_notes () =
  let m = model () in
  let img =
    Population.generator_for Image.Mysql Profile.ec2 (Prng.create 4) ~id:"ok"
  in
  let d = Pipeline.check_degraded m img in
  check Alcotest.bool "no overflow note without overflow" false
    (List.exists
       (fun n -> Strutil.contains_sub n "itemset mining")
       d.Pipeline.notes);
  check Alcotest.bool "no quarantine note without report" false
    (List.exists
       (fun n -> Strutil.contains_sub n "quarantined")
       d.Pipeline.notes)

(* --- advisor ---------------------------------------------------------------- *)

let test_advisor_covers_every_warning () =
  let m = model () in
  let base =
    Population.generator_for Image.Mysql Profile.ec2 (Prng.create 55) ~id:"adv"
  in
  let img =
    match Testgen.generate m base with
    | c :: _ -> c.Testgen.image
    | [] -> base
  in
  let warnings = Detector.check m img in
  check Alcotest.bool "mutant raises warnings" true (warnings <> []);
  let suggestions = Advisor.advise m img warnings in
  check Alcotest.int "one suggestion per warning" (List.length warnings)
    (List.length suggestions);
  List.iter2
    (fun (w : Warning.t) (s : Advisor.suggestion) ->
      check Alcotest.string "suggestion order follows warnings" w.Warning.message
        s.Advisor.warning.Warning.message;
      check Alcotest.bool "action is non-empty" true (s.Advisor.action <> "");
      check Alcotest.bool "rationale is non-empty" true
        (s.Advisor.rationale <> ""))
    warnings suggestions;
  let rendered = Advisor.to_string suggestions in
  check Alcotest.bool "report mentions the first action" true
    (Strutil.contains_sub rendered (List.hd suggestions).Advisor.action)

(* --- collector image dumps -------------------------------------------------- *)

let test_image_dump_roundtrip () =
  List.iter
    (fun (img : Image.t) ->
      let text = Collector.image_to_text img in
      match Collector.image_of_text text with
      | Error e -> Alcotest.failf "round trip failed for %s: %s" img.Image.image_id e
      | Ok restored ->
          check Alcotest.string "id preserved" img.Image.image_id
            restored.Image.image_id;
          check (Alcotest.float 1e-9) "flakiness preserved" img.Image.flakiness
            restored.Image.flakiness;
          (* restore canonicalizes the environment (e.g. implied
             primary groups), so the fixed point is reached after one
             round: serializing the restored image must be stable *)
          let text' = Collector.image_to_text restored in
          (match Collector.image_of_text text' with
          | Error e -> Alcotest.failf "second round trip failed: %s" e
          | Ok again ->
              check Alcotest.string "dump is byte-stable after restore" text'
                (Collector.image_to_text again));
          check Alcotest.bool "same warnings from restored image" true
            (Detector.check (model ()) img = Detector.check (model ()) restored))
    (targets 2100 3)

let test_image_dump_framing_survives_at_lines () =
  (* a config payload whose lines mimic the dump's own directives must
     survive: the byte-count framing, not line shape, delimits it *)
  let tricky = "@env fake 1\n@config evil 0 /x\nkey = value\n@flakiness 9\n" in
  let img =
    Image.make ~id:"tricky" ~fs:Encore_sysenv.Fs.empty
      ~accounts:Encore_sysenv.Accounts.base
      [ { Image.app = Image.Mysql; path = "/etc/my.cnf"; text = tricky } ]
  in
  match Collector.image_of_text (Collector.image_to_text img) with
  | Error e -> Alcotest.failf "framing broke: %s" e
  | Ok restored -> (
      match restored.Image.configs with
      | [ c ] -> check Alcotest.string "payload intact" tricky c.Image.text
      | cs -> Alcotest.failf "expected one config, got %d" (List.length cs))

let test_image_dump_rejects_garbage () =
  List.iter
    (fun text ->
      match Collector.image_of_text text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage: %S" text)
    [ ""; "not a dump"; "ENCORE-IMAGE 2 future"; "ENCORE-IMAGE 1 x\n@config a b c\n" ]

let () =
  Alcotest.run "encore_engine"
    [
      ( "equivalence",
        [
          Alcotest.test_case "clean targets" `Quick test_equivalence_clean_targets;
          Alcotest.test_case "testgen mutants" `Quick
            test_equivalence_testgen_mutants;
          Alcotest.test_case "partial check subsets" `Quick
            test_equivalence_partial_checks;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "jobs 1 vs 4 byte-identical" `Quick
            test_fleet_jobs_byte_identical;
          Alcotest.test_case "report accounting" `Quick
            test_fleet_report_accounting;
          Alcotest.test_case "deadline degrades to prefix" `Quick
            test_fleet_deadline_degrades;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "notes for overflow and quarantine" `Quick
            test_degraded_notes_overflow_and_quarantine;
          Alcotest.test_case "no spurious notes" `Quick
            test_degraded_no_spurious_notes;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "covers every warning" `Quick
            test_advisor_covers_every_warning;
        ] );
      ( "collector-dump",
        [
          Alcotest.test_case "round trip" `Quick test_image_dump_roundtrip;
          Alcotest.test_case "framing survives @-lines" `Quick
            test_image_dump_framing_survives_at_lines;
          Alcotest.test_case "rejects garbage" `Quick
            test_image_dump_rejects_garbage;
        ] );
    ]
