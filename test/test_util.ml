(* Tests for encore_util: PRNG, statistics, string helpers, CSV, tables. *)

module Prng = Encore_util.Prng
module Stats = Encore_util.Stats
module Strutil = Encore_util.Strutil
module Csvio = Encore_util.Csvio
module Texttab = Encore_util.Texttab
module Symtab = Encore_util.Symtab

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- Prng --------------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_changes_stream () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let da = List.init 10 (fun _ -> Prng.bits64 a) in
  let db = List.init 10 (fun _ -> Prng.bits64 b) in
  check Alcotest.bool "different streams" true (da <> db)

let test_prng_int_bounds () =
  let rng = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    check Alcotest.bool "in bounds" true (v >= 0 && v < 17)
  done

let test_prng_int_rejects_nonpositive () =
  let rng = Prng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_int_in_inclusive () =
  let rng = Prng.create 5 in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 500 do
    let v = Prng.int_in rng 2 4 in
    check Alcotest.bool "in range" true (v >= 2 && v <= 4);
    Hashtbl.replace seen v ()
  done;
  check Alcotest.int "all values reached" 3 (Hashtbl.length seen)

let test_prng_float_bounds () =
  let rng = Prng.create 11 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    check Alcotest.bool "in bounds" true (v >= 0.0 && v < 2.5)
  done

let test_prng_pick_singleton () =
  let rng = Prng.create 1 in
  check Alcotest.int "singleton" 42 (Prng.pick rng [ 42 ])

let test_prng_pick_empty () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty list")
    (fun () -> ignore (Prng.pick rng []))

let test_prng_weighted_heavy () =
  let rng = Prng.create 2 in
  let heavy = ref 0 in
  for _ = 1 to 1000 do
    if Prng.weighted rng [ (99.0, `A); (1.0, `B) ] = `A then incr heavy
  done;
  check Alcotest.bool "heavy side dominates" true (!heavy > 900)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 9 in
  let xs = List.init 50 Fun.id in
  let shuffled = Prng.shuffle rng xs in
  check (Alcotest.list Alcotest.int) "same multiset" xs (List.sort compare shuffled)

let test_prng_sample_distinct () =
  let rng = Prng.create 13 in
  let s = Prng.sample rng 5 (List.init 20 Fun.id) in
  check Alcotest.int "five drawn" 5 (List.length s);
  check Alcotest.int "distinct" 5 (List.length (List.sort_uniq compare s))

let test_prng_copy_replays () =
  let a = Prng.create 21 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues the stream" (Prng.bits64 a) (Prng.bits64 b)

let test_prng_weighted_rejects_zero () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "no positive weight"
    (Invalid_argument "Prng.weighted: no positive weight")
    (fun () -> ignore (Prng.weighted rng [ (0.0, `A) ]))

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let xs = List.init 5 (fun _ -> Prng.bits64 a) in
  let ys = List.init 5 (fun _ -> Prng.bits64 b) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let prop_prng_int_nonnegative =
  QCheck.Test.make ~name:"prng int always in [0,bound)" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

(* --- Stats -------------------------------------------------------------- *)

let test_entropy_empty () = check (Alcotest.float 1e-9) "0" 0.0 (Stats.entropy [])

let test_entropy_constant () =
  check (Alcotest.float 1e-9) "0" 0.0 (Stats.entropy [ "x"; "x"; "x" ])

let test_entropy_uniform_two () =
  check (Alcotest.float 1e-6) "ln 2" (log 2.0) (Stats.entropy [ "a"; "b" ])

let test_entropy_90_10 () =
  let values = List.init 9 (fun _ -> "a") @ [ "b" ] in
  check (Alcotest.float 1e-3) "threshold value" 0.325 (Stats.entropy values)

let test_counts_order () =
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "first appearance order"
    [ ("b", 2); ("a", 1) ]
    (Stats.counts [ "b"; "a"; "b" ])

let test_majority () =
  check
    (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.int))
    "majority" (Some ("x", 3))
    (Stats.majority [ "y"; "x"; "x"; "z"; "x" ])

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check (Alcotest.float 1e-9) "median" 3.0 (Stats.percentile 0.5 xs);
  check (Alcotest.float 1e-9) "max" 5.0 (Stats.percentile 1.0 xs)

let prop_entropy_nonnegative =
  QCheck.Test.make ~name:"entropy >= 0" ~count:300
    QCheck.(list (string_of_size (Gen.return 1)))
    (fun values -> Stats.entropy values >= 0.0)

let prop_entropy_bounded_by_log_n =
  QCheck.Test.make ~name:"entropy <= ln(distinct)" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 30) (string_of_size (Gen.return 1)))
    (fun values ->
      let distinct = List.length (Stats.distinct values) in
      Stats.entropy values <= log (float_of_int (max 1 distinct)) +. 1e-9)

(* --- Strutil ------------------------------------------------------------ *)

let dl = Strutil.damerau_levenshtein

let test_dl_identity () = check Alcotest.int "0" 0 (dl "datadir" "datadir")
let test_dl_empty () = check Alcotest.int "len" 4 (dl "" "abcd")
let test_dl_substitution () = check Alcotest.int "1" 1 (dl "kitten" "sitten")
let test_dl_transposition () = check Alcotest.int "1" 1 (dl "datadir" "datadri")
let test_dl_insert_delete () =
  check Alcotest.int "1 ins" 1 (dl "port" "porrt");
  check Alcotest.int "1 del" 1 (dl "socket" "ocket")

let prop_dl_symmetric =
  QCheck.Test.make ~name:"edit distance symmetric" ~count:300
    QCheck.(pair (string_of_size (Gen.int_range 0 8)) (string_of_size (Gen.int_range 0 8)))
    (fun (a, b) -> dl a b = dl b a)

let prop_dl_triangle =
  QCheck.Test.make ~name:"edit distance triangle inequality" ~count:200
    QCheck.(triple (string_of_size (Gen.int_range 0 8))
              (string_of_size (Gen.int_range 0 8)) (string_of_size (Gen.int_range 0 8)))
    (fun (a, b, c) -> dl a c <= dl a b + dl b c)

let test_path_join () =
  check Alcotest.string "plain" "/var/lib/mysql" (Strutil.path_join "/var/lib" "mysql");
  check Alcotest.string "trailing slash" "/var/lib/mysql" (Strutil.path_join "/var/lib/" "mysql");
  check Alcotest.string "leading slash" "/var/lib/mysql" (Strutil.path_join "/var/lib" "/mysql");
  check Alcotest.string "root" "/etc" (Strutil.path_join "/" "etc")

let test_dirname_basename () =
  check Alcotest.string "dirname" "/var/lib" (Strutil.dirname "/var/lib/mysql");
  check Alcotest.string "top" "/" (Strutil.dirname "/etc");
  check Alcotest.string "basename" "mysql" (Strutil.basename "/var/lib/mysql")

let test_parse_size () =
  let s v = Strutil.parse_size v in
  check (Alcotest.option Alcotest.int) "bare" (Some 300) (s "300");
  check (Alcotest.option Alcotest.int) "K" (Some 8192) (s "8K");
  check (Alcotest.option Alcotest.int) "M" (Some (16 * 1024 * 1024)) (s "16M");
  check (Alcotest.option Alcotest.int) "lowercase g" (Some (1024 * 1024 * 1024)) (s "1g");
  check (Alcotest.option Alcotest.int) "junk" None (s "eight");
  check (Alcotest.option Alcotest.int) "negative" None (s "-5M");
  check (Alcotest.option Alcotest.int) "suffix only" None (s "M")

let prop_size_roundtrip =
  QCheck.Test.make ~name:"format_size/parse_size roundtrip" ~count:500
    QCheck.(int_range 0 (1 lsl 40))
    (fun bytes ->
      match Strutil.parse_size (Strutil.format_size bytes) with
      | Some v -> v = bytes
      | None -> false)

let test_split_once () =
  check
    (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
    "found" (Some ("a ", " b")) (Strutil.split_once "a -- b" "--");
  check
    (Alcotest.option (Alcotest.pair Alcotest.string Alcotest.string))
    "missing" None (Strutil.split_once "a b" "--")

let test_contains_sub () =
  check Alcotest.bool "yes" true (Strutil.contains_sub "datadir.owner" "datadir");
  check Alcotest.bool "no" false (Strutil.contains_sub "data" "datadir");
  check Alcotest.bool "empty" true (Strutil.contains_sub "x" "")

(* --- Csvio -------------------------------------------------------------- *)

let test_csv_escape () =
  check Alcotest.string "comma" "\"a,b\"" (Csvio.escape_field "a,b");
  check Alcotest.string "quote" "\"a\"\"b\"" (Csvio.escape_field "a\"b");
  check Alcotest.string "plain" "ab" (Csvio.escape_field "ab")

let test_csv_roundtrip_simple () =
  let rows = [ [ "a"; "b" ]; [ "c"; "d" ] ] in
  let text = Csvio.to_string ~header:[ "x"; "y" ] rows in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "roundtrip" ([ "x"; "y" ] :: rows) (Csvio.parse text)

let test_csv_quoted_content () =
  let rows = [ [ "a,b"; "c\nd"; "e\"f" ] ] in
  let text = Csvio.to_string ~header:[ "1"; "2"; "3" ] rows in
  check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "quoted roundtrip" ([ "1"; "2"; "3" ] :: rows) (Csvio.parse text)

let prop_csv_roundtrip =
  let field = QCheck.Gen.string_size ~gen:QCheck.Gen.printable (QCheck.Gen.int_range 0 12) in
  QCheck.Test.make ~name:"csv roundtrip arbitrary fields" ~count:300
    QCheck.(make (Gen.list_size (Gen.int_range 1 5)
                    (Gen.list_size (Gen.int_range 1 5) field)))
    (fun rows ->
      (* normalize: every row padded to header length is not required;
         generate uniform width instead *)
      let width = List.length (List.hd rows) in
      let rows = List.map (fun r ->
          let r = if List.length r > width then List.filteri (fun i _ -> i < width) r
                  else r @ List.init (width - List.length r) (fun _ -> "") in
          (* CR characters are canonicalized away by the reader *)
          List.map (fun f -> String.concat "" (String.split_on_char '\r' f)) r)
          rows
      in
      let header = List.init width string_of_int in
      Csvio.parse (Csvio.to_string ~header rows) = header :: rows)

(* --- Symtab ------------------------------------------------------------- *)

let test_symtab_dense_ids () =
  let t = Symtab.create () in
  check Alcotest.int "first" 0 (Symtab.intern t "a");
  check Alcotest.int "second" 1 (Symtab.intern t "b");
  check Alcotest.int "re-intern stable" 0 (Symtab.intern t "a");
  check Alcotest.int "size" 2 (Symtab.size t)

let test_symtab_find_and_name () =
  let t = Symtab.create ~size:1 () in
  ignore (Symtab.intern t "x");
  check (Alcotest.option Alcotest.int) "found" (Some 0) (Symtab.find t "x");
  check (Alcotest.option Alcotest.int) "absent" None (Symtab.find t "y");
  check Alcotest.string "inverse" "x" (Symtab.name t 0);
  check Alcotest.bool "bad id raises" true
    (try ignore (Symtab.name t 1); false with Invalid_argument _ -> true)

let test_symtab_to_array_order () =
  let t = Symtab.create ~size:2 () in
  let names = List.init 100 (fun i -> "s" ^ string_of_int i) in
  List.iter (fun s -> ignore (Symtab.intern t s)) names;
  check (Alcotest.list Alcotest.string) "interning order" names
    (Array.to_list (Symtab.to_array t))

let prop_symtab_bijection =
  QCheck.Test.make ~name:"symtab id/name bijection" ~count:200
    QCheck.(small_list (string_of_size (Gen.int_range 0 6)))
    (fun names ->
      let t = Symtab.create () in
      List.for_all
        (fun s -> Symtab.name t (Symtab.intern t s) = s)
        names)

(* --- Texttab ------------------------------------------------------------ *)

let test_texttab_contains_cells () =
  let out = Texttab.render ~header:[ "App"; "N" ] [ [ "mysql"; "42" ] ] in
  check Alcotest.bool "has header" true (Strutil.contains_sub out "App");
  check Alcotest.bool "has cell" true (Strutil.contains_sub out "mysql")

let test_texttab_ragged_rows () =
  let out = Texttab.render ~header:[ "a" ] [ [ "1"; "2"; "3" ] ] in
  check Alcotest.bool "extra columns rendered" true (Strutil.contains_sub out "3")

let test_texttab_right_align () =
  let out =
    Texttab.render ~aligns:[ Texttab.Right ] ~header:[ "n" ] [ [ "7" ] ]
  in
  check Alcotest.bool "padded number" true (Strutil.contains_sub out "| 7 |")

let () =
  Alcotest.run "encore_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed changes stream" `Quick test_prng_seed_changes_stream;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int rejects bound<=0" `Quick test_prng_int_rejects_nonpositive;
          Alcotest.test_case "int_in inclusive" `Quick test_prng_int_in_inclusive;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "pick singleton" `Quick test_prng_pick_singleton;
          Alcotest.test_case "pick empty raises" `Quick test_prng_pick_empty;
          Alcotest.test_case "weighted favors heavy" `Quick test_prng_weighted_heavy;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_prng_sample_distinct;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_prng_copy_replays;
          Alcotest.test_case "weighted rejects zero" `Quick test_prng_weighted_rejects_zero;
          qtest prop_prng_int_nonnegative;
        ] );
      ( "stats",
        [
          Alcotest.test_case "entropy empty" `Quick test_entropy_empty;
          Alcotest.test_case "entropy constant" `Quick test_entropy_constant;
          Alcotest.test_case "entropy uniform two" `Quick test_entropy_uniform_two;
          Alcotest.test_case "entropy 90/10 is Ht" `Quick test_entropy_90_10;
          Alcotest.test_case "counts order" `Quick test_counts_order;
          Alcotest.test_case "majority" `Quick test_majority;
          Alcotest.test_case "percentile" `Quick test_percentile;
          qtest prop_entropy_nonnegative;
          qtest prop_entropy_bounded_by_log_n;
        ] );
      ( "strutil",
        [
          Alcotest.test_case "dl identity" `Quick test_dl_identity;
          Alcotest.test_case "dl empty" `Quick test_dl_empty;
          Alcotest.test_case "dl substitution" `Quick test_dl_substitution;
          Alcotest.test_case "dl transposition" `Quick test_dl_transposition;
          Alcotest.test_case "dl insert/delete" `Quick test_dl_insert_delete;
          Alcotest.test_case "path_join" `Quick test_path_join;
          Alcotest.test_case "dirname/basename" `Quick test_dirname_basename;
          Alcotest.test_case "parse_size" `Quick test_parse_size;
          Alcotest.test_case "split_once" `Quick test_split_once;
          Alcotest.test_case "contains_sub" `Quick test_contains_sub;
          qtest prop_dl_symmetric;
          qtest prop_dl_triangle;
          qtest prop_size_roundtrip;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "roundtrip simple" `Quick test_csv_roundtrip_simple;
          Alcotest.test_case "roundtrip quoted" `Quick test_csv_quoted_content;
          qtest prop_csv_roundtrip;
        ] );
      ( "symtab",
        [
          Alcotest.test_case "dense ids" `Quick test_symtab_dense_ids;
          Alcotest.test_case "find and name" `Quick test_symtab_find_and_name;
          Alcotest.test_case "to_array order" `Quick test_symtab_to_array_order;
          qtest prop_symtab_bijection;
        ] );
      ( "texttab",
        [
          Alcotest.test_case "cells rendered" `Quick test_texttab_contains_cells;
          Alcotest.test_case "ragged rows" `Quick test_texttab_ragged_rows;
          Alcotest.test_case "right align" `Quick test_texttab_right_align;
        ] );
    ]
