(* Tests for Encore_util.Pool: deterministic ordering, exception
   propagation, worker reuse across calls, map_reduce, deadline
   cancellation firing inside worker domains, and the map = List.map
   property at every pool size. *)

module Pool = Encore_util.Pool
module Deadline = Encore_util.Deadline

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

exception Boom of int

let ints = Alcotest.list Alcotest.int

(* --- ordering ------------------------------------------------------------ *)

let test_map_ordering () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  let xs = List.init 1000 Fun.id in
  check ints "results in input order"
    (List.map (fun x -> x * x) xs)
    (Pool.map p (fun x -> x * x) xs)

let test_map_inline_when_sequential () =
  Pool.with_pool ~jobs:1 @@ fun p ->
  (* jobs=1 must run in the calling domain: domain-local state is
     visible to the closures *)
  let acc = ref [] in
  let _ = Pool.map p (fun x -> acc := x :: !acc) [ 1; 2; 3 ] in
  check ints "ran inline, in order" [ 3; 2; 1 ] !acc

let test_map_empty_and_singleton () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  check ints "empty" [] (Pool.map p succ []);
  check ints "singleton" [ 8 ] (Pool.map p succ [ 7 ])

let test_map_more_workers_than_items () =
  Pool.with_pool ~jobs:8 @@ fun p ->
  check ints "short list" [ 2; 3; 4 ] (Pool.map p succ [ 1; 2; 3 ])

(* --- exception propagation ----------------------------------------------- *)

let test_exception_lowest_index () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  let xs = List.init 200 Fun.id in
  let f x = if x = 57 || x = 12 || x = 199 then raise (Boom x) else x in
  Alcotest.check_raises "lowest failing index wins" (Boom 12) (fun () ->
      ignore (Pool.map p f xs))

let test_pool_survives_exception () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  (try ignore (Pool.map p (fun _ -> raise (Boom 0)) [ 1; 2; 3 ])
   with Boom _ -> ());
  check ints "usable after a failed call" [ 2; 4; 6 ]
    (Pool.map p (fun x -> 2 * x) [ 1; 2; 3 ])

let test_with_pool_propagates () =
  Alcotest.check_raises "with_pool re-raises" (Boom 1) (fun () ->
      Pool.with_pool ~jobs:2 (fun _ -> raise (Boom 1)))

(* --- reuse across calls --------------------------------------------------- *)

let test_reuse_across_calls () =
  Pool.with_pool ~jobs:3 @@ fun p ->
  for i = 1 to 20 do
    let xs = List.init (17 * i) (fun j -> i + j) in
    check ints (Printf.sprintf "call %d" i) (List.map succ xs)
      (Pool.map p succ xs)
  done

let test_shutdown_idempotent_then_inline () =
  let p = Pool.create ~jobs:4 () in
  check ints "before shutdown" [ 1; 2 ] (Pool.map p succ [ 0; 1 ]);
  Pool.shutdown p;
  Pool.shutdown p;
  check ints "inline after shutdown" [ 1; 2 ] (Pool.map p succ [ 0; 1 ])

(* --- map_reduce ----------------------------------------------------------- *)

let test_map_reduce_sum () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  let xs = List.init 1001 Fun.id in
  check Alcotest.int "sum" 500_500
    (Pool.map_reduce p ~map:Fun.id ~reduce:( + ) ~init:0 xs)

let test_map_reduce_order_sensitive () =
  (* list concatenation is associative with [] neutral, so the result
     must equal the sequential fold even though it is order-sensitive *)
  Pool.with_pool ~jobs:4 @@ fun p ->
  let xs = List.init 300 Fun.id in
  check ints "concat in order" xs
    (Pool.map_reduce p ~map:(fun x -> [ x ]) ~reduce:( @ ) ~init:[] xs)

(* --- deadlines firing inside worker domains -------------------------------- *)

let test_with_deadline_aborts_whole_map () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  let xs = List.init 400 Fun.id in
  (* the poll budget runs out while worker domains are mid-chunk: the
     abort must re-raise in the caller and discard every result *)
  (match
     Pool.with_deadline p (Deadline.after_polls 10) (fun () ->
         Pool.map p (fun x -> x * x) xs)
   with
  | _ -> Alcotest.fail "expected the map to abort"
  | exception Deadline.Expired Deadline.Timed_out -> ());
  check ints "pool survives the abort" [ 2; 3 ] (Pool.map p succ [ 1; 2 ])

let test_map_batched_partial_prefix () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  let xs = List.init 500 Fun.id in
  let f x = (3 * x) + 1 in
  let full = List.map f xs in
  match Pool.map_batched p ~deadline:(Deadline.after_polls 150) ~batch:32 f xs with
  | Ok _ -> Alcotest.fail "a 150-poll budget cannot cover 500 items"
  | Error prefix ->
      let n = List.length prefix in
      check Alcotest.bool "strict prefix" true (n > 0 && n < 500);
      check Alcotest.int "whole batches only" 0 (n mod 32);
      check ints "prefix of the full result"
        (List.filteri (fun i _ -> i < n) full)
        prefix

let test_map_batched_prefix_deterministic_across_jobs () =
  (* [after_polls] counts polls globally, so expiry lands at the same
     batch boundary no matter how many domains race on it: the partial
     result is a deterministic function of the budget, not of worker
     scheduling *)
  let xs = List.init 500 Fun.id in
  let f x = (2 * x) - 5 in
  let run jobs =
    Pool.with_pool ~jobs (fun p ->
        Pool.map_batched p ~deadline:(Deadline.after_polls 200) ~batch:25 f xs)
  in
  let prefix = function
    | Ok _ -> Alcotest.fail "expected expiry"
    | Error prefix -> prefix
  in
  let p1 = prefix (run 1) in
  check ints "jobs=4 = jobs=1" p1 (prefix (run 4));
  check ints "jobs=8 = jobs=1" p1 (prefix (run 8));
  check ints "repeat run identical" p1 (prefix (run 4))

let test_map_batched_completes_under_generous_budget () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  let xs = List.init 200 Fun.id in
  match Pool.map_batched p ~deadline:Deadline.none Fun.id xs with
  | Ok ys -> check ints "all items" xs ys
  | Error _ -> Alcotest.fail "unlimited deadline expired"

let test_map_batched_yield_streams_final_prefix () =
  Pool.with_pool ~jobs:4 @@ fun p ->
  let xs = List.init 300 Fun.id in
  let streamed = ref [] in
  let yield batch = streamed := !streamed @ batch in
  match
    Pool.map_batched p ~deadline:(Deadline.after_polls 120) ~batch:20
      ~yield succ xs
  with
  | Ok _ -> Alcotest.fail "expected expiry"
  | Error prefix ->
      check ints "yield saw exactly the surviving prefix" prefix !streamed

(* --- map = List.map at every pool size ------------------------------------ *)

let prop_map_matches_list_map =
  QCheck.Test.make ~name:"Pool.map = List.map for any jobs" ~count:60
    QCheck.(pair (int_range 1 6) (small_list int))
    (fun (jobs, xs) ->
      Pool.with_pool ~jobs (fun p ->
          Pool.map p (fun x -> (2 * x) - 1) xs
          = List.map (fun x -> (2 * x) - 1) xs))

let () =
  Alcotest.run "encore_pool"
    [
      ( "ordering",
        [
          Alcotest.test_case "map preserves input order" `Quick test_map_ordering;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_map_inline_when_sequential;
          Alcotest.test_case "empty and singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "more workers than items" `Quick test_map_more_workers_than_items;
        ] );
      ( "exceptions",
        [
          Alcotest.test_case "lowest index re-raised" `Quick test_exception_lowest_index;
          Alcotest.test_case "pool survives a failure" `Quick test_pool_survives_exception;
          Alcotest.test_case "with_pool propagates" `Quick test_with_pool_propagates;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "many calls, one pool" `Quick test_reuse_across_calls;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent_then_inline;
        ] );
      ( "map_reduce",
        [
          Alcotest.test_case "sum" `Quick test_map_reduce_sum;
          Alcotest.test_case "order-sensitive reduce" `Quick test_map_reduce_order_sensitive;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "with_deadline aborts whole map" `Quick
            test_with_deadline_aborts_whole_map;
          Alcotest.test_case "map_batched partial prefix" `Quick
            test_map_batched_partial_prefix;
          Alcotest.test_case "prefix deterministic across jobs" `Quick
            test_map_batched_prefix_deterministic_across_jobs;
          Alcotest.test_case "completes under unlimited budget" `Quick
            test_map_batched_completes_under_generous_budget;
          Alcotest.test_case "yield streams the final prefix" `Quick
            test_map_batched_yield_streams_final_prefix;
        ] );
      ("properties", [ qtest prop_map_matches_list_map ]);
    ]
