(* Tests for the resident check daemon: the bounded alert ring, the
   JSONL protocol, the engine cache, incremental watch re-checking
   (byte-identity against a full engine check), the serve reactor's
   robustness contract (shedding, oversize rejection, typed errors,
   supervised crashes with breaker backoff, graceful drain, partial
   verdicts under deadline) and the 10k-request chaos soak. *)

module Detector = Encore_detect.Detector
module Engine = Encore_detect.Engine
module Warning = Encore_detect.Warning
module Image = Encore_sysenv.Image
module Collector = Encore_sysenv.Collector
module Population = Encore_workloads.Population
module Profile = Encore_workloads.Profile
module Prng = Encore_util.Prng
module Deadline = Encore_util.Deadline
module Res = Encore_util.Resilience
module Json = Encore_obs.Jsonenc
module Ring = Encore_serve.Ring
module Proto = Encore_serve.Proto
module Cache = Encore_serve.Cache
module Watch = Encore_serve.Watch
module Server = Encore_serve.Server
module Conferr = Encore_inject.Conferr
module Chaosrun = Encore.Chaosrun

let check = Alcotest.check

(* --- fixtures -------------------------------------------------------------- *)

let model =
  lazy
    (Detector.learn
       (Population.clean (Population.generate ~seed:11 Image.Mysql ~n:40)))

let target seed id =
  Population.generator_for Image.Mysql Profile.ec2 (Prng.create seed) ~id

let warning_str (w : Warning.t) =
  Printf.sprintf "%s score=%.9f attrs=[%s] %s" (Warning.kind_label w)
    w.Warning.score
    (String.concat "," w.Warning.attrs)
    w.Warning.message

let mutate_config rng img =
  let campaign = Conferr.inject rng Image.Mysql img ~n:1 in
  match Image.config_for campaign.Conferr.image Image.Mysql with
  | Some c -> c.Image.text
  | None -> Alcotest.fail "mutant lost its mysql config"

(* --- response introspection ------------------------------------------------ *)

let str_field name j = Option.bind (Json.member name j) Json.to_string_opt

let bool_field name j =
  match Json.member name j with Some (Json.Bool b) -> Some b | _ -> None

let int_field name j = Option.bind (Json.member name j) Json.to_int_opt

let is_ok j = bool_field "ok" j = Some true

let items_str j =
  match Json.member "items" j with
  | Some items -> Json.to_string items
  | None -> "<no items>"

let expect_items ws =
  Json.to_string (Json.Arr (List.map Encore_detect.Report.warning_json ws))

let contains hay needle =
  let n = String.length needle and l = String.length hay in
  let rec scan i = i + n <= l && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let one = function
  | [ j ] -> j
  | l -> Alcotest.failf "expected one response, got %d" (List.length l)

let none ctx = function
  | [] -> ()
  | l -> Alcotest.failf "%s: expected no responses, got %d" ctx (List.length l)

(* --- request lines --------------------------------------------------------- *)

let line fields = Json.to_string (Json.Obj fields)

let check_line ?id img =
  let id = match id with Some i -> [ ("id", Json.Str i) ] | None -> [] in
  line
    (("op", Json.Str "check")
    :: id
    @ [ ("image", Json.Str (Collector.image_to_text img)) ])

let watch_line ~id ~image_id ~config =
  line
    [
      ("op", Json.Str "watch");
      ("id", Json.Str id);
      ("image", Json.Str image_id);
      ("app", Json.Str (Image.app_to_string Image.Mysql));
      ("config", Json.Str config);
    ]

let op_line ?id op =
  let id = match id with Some i -> [ ("id", Json.Str i) ] | None -> [] in
  line (("op", Json.Str op) :: id)

let make_server ?(config = Server.default_config) () =
  Server.create ~config
    (Cache.create ~provider:(fun ~app:_ -> Ok (Lazy.force model)))

(* a queued request answered in one step *)
let ask srv l =
  none "ask: should queue" (Server.offer srv l);
  one (Server.step srv)

(* --- ring ------------------------------------------------------------------- *)

let test_ring_drop_oldest () =
  let r = Ring.create ~capacity:3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  check Alcotest.(list int) "newest survive" [ 3; 4; 5 ] (Ring.to_list r);
  check Alcotest.int "length capped" 3 (Ring.length r);
  check Alcotest.int "two casualties" 2 (Ring.dropped r);
  check Alcotest.(list int) "drain oldest-first" [ 3; 4; 5 ] (Ring.drain r);
  check Alcotest.int "empty after drain" 0 (Ring.length r);
  check Alcotest.int "dropped is lifetime" 2 (Ring.dropped r);
  Ring.push r 9;
  check Alcotest.(list int) "usable after drain" [ 9 ] (Ring.to_list r)

let test_ring_wraparound () =
  (* multiple full wraps: the drop counter never regresses and the
     surviving window is always the newest [capacity] items oldest-first *)
  let r = Ring.create ~capacity:3 in
  let last_dropped = ref 0 in
  for i = 1 to 11 do
    Ring.push r i;
    let d = Ring.dropped r in
    check Alcotest.bool
      (Printf.sprintf "dropped monotone at push %d" i)
      true (d >= !last_dropped);
    last_dropped := d;
    let expect_len = min i 3 in
    let expect =
      List.init expect_len (fun k -> i - expect_len + 1 + k)
    in
    check
      Alcotest.(list int)
      (Printf.sprintf "newest window oldest-first at push %d" i)
      expect (Ring.to_list r)
  done;
  check Alcotest.int "dropped = pushed - capacity" 8 (Ring.dropped r);
  (* drain resets contents but not the lifetime counter; wrapping again
     keeps both properties *)
  check Alcotest.(list int) "drain oldest-first" [ 9; 10; 11 ] (Ring.drain r);
  for i = 20 to 27 do
    Ring.push r i
  done;
  check Alcotest.(list int) "oldest-first after drain and rewrap"
    [ 25; 26; 27 ] (Ring.drain r);
  check Alcotest.int "lifetime drops accumulate across wraps" 13
    (Ring.dropped r)

let test_ring_clamps_capacity () =
  let r = Ring.create ~capacity:0 in
  check Alcotest.int "clamped to 1" 1 (Ring.capacity r);
  Ring.push r "a";
  Ring.push r "b";
  check Alcotest.(list string) "holds the newest" [ "b" ] (Ring.to_list r)

(* --- protocol --------------------------------------------------------------- *)

let test_proto_parse_ok () =
  let img = target 300 "proto-a" in
  (match Proto.parse (check_line ~id:"c1" img) with
  | Ok (Proto.Check { id = Some "c1"; source = Proto.Inline text }) ->
      check Alcotest.string "inline dump intact" (Collector.image_to_text img)
        text
  | _ -> Alcotest.fail "check line did not parse");
  (match Proto.parse {|{"op":"check","path":"/tmp/dump"}|} with
  | Ok (Proto.Check { id = None; source = Proto.Path "/tmp/dump" }) -> ()
  | _ -> Alcotest.fail "path check did not parse");
  (match Proto.parse (watch_line ~id:"w1" ~image_id:"img-7" ~config:"a = 1\n") with
  | Ok (Proto.Watch { id = Some "w1"; image_id = "img-7"; app; config }) ->
      check Alcotest.string "app" "mysql" app;
      check Alcotest.string "config" "a = 1\n" config
  | _ -> Alcotest.fail "watch line did not parse");
  List.iter
    (fun op ->
      match Proto.parse (op_line ~id:"x" op) with
      | Ok req ->
          check Alcotest.string "op echoed" op (Proto.request_op req);
          check Alcotest.(option string) "id echoed" (Some "x")
            (Proto.request_id req)
      | Error d -> Alcotest.failf "%s rejected: %s" op d.Res.detail)
    [ "reload"; "status"; "shutdown"; "crash"; "metrics"; "health" ]

let test_proto_parse_errors () =
  List.iter
    (fun (ctx, l) ->
      match Proto.parse l with
      | Ok _ -> Alcotest.failf "%s: accepted %S" ctx l
      | Error d ->
          check Alcotest.string (ctx ^ " is a parse error") "parse-error"
            (Res.kind_to_string d.Res.kind))
    [
      ("torn json", "{\"op\":\"check\",\"image\":");
      ("no op", {|{"id":"x"}|});
      ("non-object", "[1,2,3]");
      ("unknown op", {|{"op":"zorch"}|});
      ("watch missing config", {|{"op":"watch","image":"i","app":"mysql"}|});
      ("check missing operand", {|{"op":"check","id":"c"}|});
      ("check with both operands", {|{"op":"check","image":"a","path":"b"}|});
    ]

let test_proto_error_response_shape () =
  let d = Res.diag Res.Overflow ~subject:"serve" "queue full" in
  let j = Proto.error_response ~id:"r1" ~overloaded:true d in
  check Alcotest.(option bool) "not ok" (Some false) (bool_field "ok" j);
  check Alcotest.(option string) "id echoed" (Some "r1") (str_field "id" j);
  check Alcotest.(option string) "typed kind" (Some "overflow")
    (str_field "error" j);
  check Alcotest.(option bool) "overloaded marker" (Some true)
    (bool_field "overloaded" j)

(* --- engine cache ----------------------------------------------------------- *)

let test_cache_memoize_and_reload () =
  let calls = ref 0 in
  let provider ~app:_ =
    incr calls;
    Ok (Lazy.force model)
  in
  let c = Cache.create ~provider in
  let fp1 =
    match Cache.engine_for c ~app:"mysql" with
    | Ok (_, fp) -> fp
    | Error d -> Alcotest.failf "first engine_for failed: %s" d.Res.detail
  in
  ignore (Cache.engine_for c ~app:"mysql");
  check Alcotest.int "compiled once" 1 !calls;
  check Alcotest.string "fingerprint is the model digest"
    (Cache.fingerprint_of (Lazy.force model))
    fp1;
  let g0 = Cache.generation c in
  (match Cache.reload c with
  | Ok changed -> check Alcotest.bool "same model, unchanged" false changed
  | Error d -> Alcotest.failf "reload failed: %s" d.Res.detail);
  check Alcotest.bool "generation bumped" true (Cache.generation c > g0);
  check Alcotest.int "provider re-read eagerly" 2 !calls;
  check
    Alcotest.(option string)
    "fingerprint survives reload" (Some fp1)
    (Cache.fingerprint c ~app:"mysql")

let test_cache_provider_failure_is_typed () =
  let c = Cache.create ~provider:(fun ~app:_ -> Error "store unreachable") in
  match Cache.engine_for c ~app:"mysql" with
  | Ok _ -> Alcotest.fail "provider failure went unnoticed"
  | Error d ->
      check Alcotest.string "probe failure" "probe-failure"
        (Res.kind_to_string d.Res.kind)

(* --- incremental watch ------------------------------------------------------ *)

let test_watch_start_seeds_full_check () =
  let m = Lazy.force model in
  let eng = Engine.compile m in
  let img = target 901 "watch-seed" in
  let session, verdict =
    Watch.start eng ~fingerprint:(Cache.fingerprint_of m) img
  in
  check Alcotest.bool "session created" true (session <> None);
  match verdict with
  | Watch.Partial _ -> Alcotest.fail "unexpected partial"
  | Watch.Complete ws ->
      check
        Alcotest.(list string)
        "seed verdict = full check"
        (List.map warning_str (Engine.check eng img))
        (List.map warning_str ws)

let test_watch_delta_byte_identical () =
  (* the acceptance property: a chain of config replacements re-checked
     incrementally must stay byte-identical to a full Engine.check of
     each mutated image *)
  let m = Lazy.force model in
  let eng = Engine.compile m in
  let img = target 902 "watch-delta" in
  let session, _ = Watch.start eng ~fingerprint:(Cache.fingerprint_of m) img in
  let s = Option.get session in
  let rng = Prng.create 77 in
  let cur = ref img in
  for i = 0 to 5 do
    let cfg = mutate_config rng !cur in
    let mutated = Image.set_config !cur Image.Mysql cfg in
    match Watch.update s eng ~app:Image.Mysql ~config:cfg with
    | Error e -> Alcotest.failf "update %d failed: %s" i e
    | Ok (Watch.Partial _, _) -> Alcotest.failf "update %d partial" i
    | Ok (Watch.Complete ws, _) ->
        let full = Engine.check eng mutated in
        check
          Alcotest.(list string)
          (Printf.sprintf "delta %d byte-identical to full check" i)
          (List.map warning_str full)
          (List.map warning_str ws);
        check Alcotest.bool
          (Printf.sprintf "delta %d structurally equal" i)
          true (ws = full);
        cur := mutated
  done

let test_watch_unchanged_config_is_empty_delta () =
  let m = Lazy.force model in
  let eng = Engine.compile m in
  let img = target 903 "watch-same" in
  let session, _ = Watch.start eng ~fingerprint:(Cache.fingerprint_of m) img in
  let s = Option.get session in
  let cfg =
    match Image.config_for img Image.Mysql with
    | Some c -> c.Image.text
    | None -> Alcotest.fail "fixture has no mysql config"
  in
  match Watch.update s eng ~app:Image.Mysql ~config:cfg with
  | Error e -> Alcotest.failf "no-op update failed: %s" e
  | Ok (Watch.Partial _, _) -> Alcotest.fail "no-op update partial"
  | Ok (Watch.Complete ws, stats) ->
      check Alcotest.int "no columns changed" 0 stats.Watch.changed_attrs;
      check Alcotest.int "no rules re-run" 0 stats.Watch.rules_rechecked;
      check Alcotest.bool "verdict identical" true (ws = Engine.check eng img)

let test_watch_missing_app_is_error () =
  let m = Lazy.force model in
  let eng = Engine.compile m in
  let img = target 904 "watch-noapp" in
  let absent =
    match
      List.find_opt (fun a -> Image.config_for img a = None) Image.all_apps
    with
    | Some a -> a
    | None -> Alcotest.fail "fixture carries every app"
  in
  let session, _ = Watch.start eng ~fingerprint:(Cache.fingerprint_of m) img in
  match Watch.update (Option.get session) eng ~app:absent ~config:"x = 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "update for an absent app succeeded"

let test_watch_deadline_partial_leaves_session_intact () =
  let m = Lazy.force model in
  let eng = Engine.compile m in
  let img = target 905 "watch-partial" in
  (* an immediate deadline on the seeding check yields no session *)
  let no_session, verdict =
    Watch.start ~deadline:(Deadline.after_polls 1) eng
      ~fingerprint:(Cache.fingerprint_of m) img
  in
  check Alcotest.bool "partial start yields no session" true (no_session = None);
  (match verdict with
  | Watch.Partial _ -> ()
  | Watch.Complete _ -> Alcotest.fail "expected a partial seed verdict");
  (* a partial update must not half-commit: the next complete update
     from the same session matches a full check of its config *)
  let session, _ = Watch.start eng ~fingerprint:(Cache.fingerprint_of m) img in
  let s = Option.get session in
  let cfg = mutate_config (Prng.create 9) img in
  (match Watch.update ~deadline:(Deadline.after_polls 1) s eng ~app:Image.Mysql
           ~config:cfg
   with
  | Ok (Watch.Partial _, _) -> ()
  | Ok (Watch.Complete _, _) -> Alcotest.fail "expected a partial update"
  | Error e -> Alcotest.failf "partial update errored: %s" e);
  match Watch.update s eng ~app:Image.Mysql ~config:cfg with
  | Error e -> Alcotest.failf "retry after partial failed: %s" e
  | Ok (Watch.Partial _, _) -> Alcotest.fail "retry unexpectedly partial"
  | Ok (Watch.Complete ws, _) ->
      check Alcotest.bool "session was not half-committed" true
        (ws = Engine.check eng (Image.set_config img Image.Mysql cfg))

(* --- server: request handling ---------------------------------------------- *)

let test_server_check_roundtrip () =
  let srv = make_server () in
  let img = target 910 "srv-check" in
  let r = ask srv (check_line ~id:"c1" img) in
  check Alcotest.bool "ok" true (is_ok r);
  check Alcotest.(option string) "op" (Some "check") (str_field "op" r);
  check Alcotest.(option string) "id" (Some "c1") (str_field "id" r);
  check Alcotest.(option string) "image id" (Some "srv-check")
    (str_field "image" r);
  check Alcotest.(option bool) "complete" (Some false) (bool_field "partial" r);
  let eng = Engine.compile (Lazy.force model) in
  check Alcotest.string "items = full engine check"
    (expect_items (Engine.check eng img))
    (items_str r)

let learn_line ?id img =
  let id = match id with Some i -> [ ("id", Json.Str i) ] | None -> [] in
  line
    (("op", Json.Str "learn-append")
    :: id
    @ [ ("image", Json.Str (Collector.image_to_text img)) ])

let test_server_learn_append_folds_and_adopts () =
  let taught = ref [] in
  let hook (img : Image.t) =
    taught := img.Image.image_id :: !taught;
    Ok ("folded " ^ img.Image.image_id)
  in
  let srv =
    Server.create ~learner:hook
      (Cache.create ~provider:(fun ~app:_ -> Ok (Lazy.force model)))
  in
  let r = ask srv (learn_line ~id:"l1" (target 917 "srv-learn")) in
  check Alcotest.bool "ok" true (is_ok r);
  check Alcotest.(option string) "op" (Some "learn-append") (str_field "op" r);
  check Alcotest.(option string) "image" (Some "srv-learn")
    (str_field "image" r);
  check Alcotest.(option string) "hook's note" (Some "folded srv-learn")
    (str_field "trained" r);
  check Alcotest.(option bool) "refreshed model adopted" (Some true)
    (bool_field "adopted" r);
  check Alcotest.(list string) "hook saw the image" [ "srv-learn" ] !taught;
  (* the daemon keeps serving checks afterwards *)
  let r2 = ask srv (check_line ~id:"after" (target 918 "after-learn")) in
  check Alcotest.bool "still serving" true (is_ok r2)

let test_server_learn_append_hook_failure_is_typed () =
  let srv =
    Server.create ~learner:(fun _ -> Error "statistics store unwritable")
      (Cache.create ~provider:(fun ~app:_ -> Ok (Lazy.force model)))
  in
  let r = ask srv (learn_line ~id:"l2" (target 919 "srv-learn-fail")) in
  check Alcotest.bool "not ok" true (not (is_ok r));
  check Alcotest.(option string) "typed error" (Some "custom-rule-error")
    (str_field "error" r)

let test_server_learn_append_without_learner () =
  let srv = make_server () in
  let r = ask srv (learn_line ~id:"l3" (target 920 "srv-nolearner")) in
  check Alcotest.bool "not ok" true (not (is_ok r));
  check Alcotest.(option string) "typed error" (Some "custom-rule-error")
    (str_field "error" r)

let test_server_malformed_gets_typed_error () =
  let srv = make_server () in
  let r = ask srv "{\"op\":\"check\",\"image\":" in
  check Alcotest.bool "not ok" true (not (is_ok r));
  check Alcotest.(option string) "typed parse error" (Some "parse-error")
    (str_field "error" r);
  (* the daemon survives and keeps serving *)
  let r2 = ask srv (check_line ~id:"after" (target 911 "after-garbage")) in
  check Alcotest.bool "still serving" true (is_ok r2)

let test_server_oversize_rejected_unqueued () =
  let srv =
    make_server
      ~config:{ Server.default_config with Server.max_request_bytes = 128 }
      ()
  in
  let r = one (Server.offer srv (String.make 129 'x')) in
  check Alcotest.bool "rejected" true (not (is_ok r));
  check Alcotest.(option string) "typed overflow" (Some "overflow")
    (str_field "error" r);
  check Alcotest.int "never queued" 0 (Server.pending srv);
  check Alcotest.int "oversize is not shedding" 0 (Server.shed_count srv)

let test_server_sheds_at_capacity () =
  let srv =
    make_server ~config:{ Server.default_config with Server.queue_capacity = 2 }
      ()
  in
  let img = target 912 "srv-shed" in
  none "first fits" (Server.offer srv (check_line ~id:"a" img));
  none "second fits" (Server.offer srv (check_line ~id:"b" img));
  let r = one (Server.offer srv (check_line ~id:"c" img)) in
  check Alcotest.bool "shed response" true (not (is_ok r));
  check Alcotest.(option bool) "marked overloaded" (Some true)
    (bool_field "overloaded" r);
  check Alcotest.(option string) "shed echoes its id" (Some "c")
    (str_field "id" r);
  check Alcotest.int "one shed" 1 (Server.shed_count srv);
  check Alcotest.int "queue bounded" 2 (Server.pending srv);
  (* the queued pair still completes, and shedding marks degradation *)
  check Alcotest.bool "queued requests answered" true
    (is_ok (one (Server.step srv)) && is_ok (one (Server.step srv)));
  check Alcotest.int "degraded exit" 3 (Server.exit_code srv)

let test_server_crash_supervision_and_breaker () =
  let srv =
    make_server
      ~config:
        {
          Server.default_config with
          Server.breaker_threshold = 2;
          breaker_cooldown = 2;
        }
      ()
  in
  let img = target 913 "srv-crash" in
  (* two injected crashes: both answered with typed errors, circuit opens *)
  List.iter
    (fun id ->
      let r = ask srv (op_line ~id "crash") in
      check Alcotest.bool (id ^ " answered") true (not (is_ok r)))
    [ "k1"; "k2" ];
  check Alcotest.int "two supervised restarts" 2 (Server.restart_count srv);
  (* open circuit: checks are denied (typed, still answered) during backoff *)
  let denied = ask srv (check_line ~id:"d1" img) in
  check Alcotest.bool "denied while open" true (not (is_ok denied));
  check Alcotest.(option string) "denial is typed" (Some "probe-failure")
    (str_field "error" denied);
  ignore (ask srv (check_line ~id:"d2" img));
  (* cooldown spent: the half-open trial admits work and recloses *)
  let r = ask srv (check_line ~id:"trial" img) in
  check Alcotest.bool "half-open trial served" true (is_ok r);
  let r2 = ask srv (check_line ~id:"steady" img) in
  check Alcotest.bool "circuit closed again" true (is_ok r2);
  (* control ops bypass the breaker throughout *)
  check Alcotest.bool "status always served" true
    (is_ok (ask srv (op_line ~id:"s" "status")));
  check Alcotest.int "crashes degrade the exit code" 3 (Server.exit_code srv)

let test_server_status_and_reload () =
  let srv = make_server () in
  ignore (ask srv (check_line ~id:"c" (target 914 "srv-status")));
  let s = ask srv (op_line ~id:"s1" "status") in
  check Alcotest.bool "status ok" true (is_ok s);
  check Alcotest.bool "reports requests" true
    (match int_field "requests" s with Some n -> n >= 1 | None -> false);
  check Alcotest.bool "reports ring state" true
    (Json.member "ring" s <> None);
  check Alcotest.bool "reports breaker state" true
    (str_field "breaker" s <> None);
  let r = ask srv (op_line ~id:"r1" "reload") in
  check Alcotest.bool "reload ok" true (is_ok r);
  check Alcotest.bool "clean run exits 0" true (Server.exit_code srv = 0)

let test_server_watch_delta_and_reload_fallback () =
  let srv = make_server () in
  let img = target 915 "srv-watch" in
  ignore (ask srv (check_line ~id:"c" img));
  let eng = Engine.compile (Lazy.force model) in
  let rng = Prng.create 21 in
  let cfg = mutate_config rng img in
  let mutated = Image.set_config img Image.Mysql cfg in
  let w = ask srv (watch_line ~id:"w1" ~image_id:"srv-watch" ~config:cfg) in
  check Alcotest.bool "watch ok" true (is_ok w);
  check Alcotest.(option string) "incremental path" (Some "delta")
    (str_field "mode" w);
  check Alcotest.string "delta = full check of the mutant"
    (expect_items (Engine.check eng mutated))
    (items_str w);
  (* a reload staled the session: the next delta falls back to a full
     re-seed and still answers identically *)
  ignore (ask srv (op_line ~id:"r" "reload"));
  let cfg2 = mutate_config rng mutated in
  let mutated2 = Image.set_config mutated Image.Mysql cfg2 in
  let w2 = ask srv (watch_line ~id:"w2" ~image_id:"srv-watch" ~config:cfg2) in
  check Alcotest.bool "watch after reload ok" true (is_ok w2);
  check Alcotest.(option string) "stale session re-seeds" (Some "full")
    (str_field "mode" w2);
  check Alcotest.string "full fallback identical"
    (expect_items (Engine.check eng mutated2))
    (items_str w2);
  (* back on the incremental path after the re-seed *)
  let cfg3 = mutate_config rng mutated2 in
  let w3 = ask srv (watch_line ~id:"w3" ~image_id:"srv-watch" ~config:cfg3) in
  check Alcotest.(option string) "delta again" (Some "delta")
    (str_field "mode" w3)

let test_server_watch_unknown_image () =
  let srv = make_server () in
  let r = ask srv (watch_line ~id:"w" ~image_id:"never-seen" ~config:"a=1\n") in
  check Alcotest.bool "typed error" true (not (is_ok r));
  check Alcotest.(option string) "parse-error kind" (Some "parse-error")
    (str_field "error" r)

let test_server_partial_verdict_under_deadline () =
  let srv =
    make_server
      ~config:{ Server.default_config with Server.deadline_polls = Some 1 } ()
  in
  let img = target 916 "srv-deadline" in
  let r = ask srv (check_line ~id:"c" img) in
  check Alcotest.bool "partial verdict still ok" true (is_ok r);
  check Alcotest.(option bool) "marked partial" (Some true)
    (bool_field "partial" r);
  (* a partial check seeds no session, so watch refuses the image *)
  let w = ask srv (watch_line ~id:"w" ~image_id:"srv-deadline" ~config:"a=1\n") in
  check Alcotest.bool "no session from a partial check" true (not (is_ok w))

let test_server_graceful_drain () =
  let srv = make_server () in
  let img = target 917 "srv-drain" in
  none "queued 1" (Server.offer srv (check_line ~id:"c1" img));
  none "queued 2" (Server.offer srv (check_line ~id:"c2" img));
  none "shutdown accepted" (Server.offer srv (op_line ~id:"bye" "shutdown"));
  check Alcotest.bool "still running until the shutdown op runs" true
    (Server.state srv = `Running);
  (* in-flight requests finish during the drain *)
  check Alcotest.bool "c1 served" true (is_ok (one (Server.step srv)));
  check Alcotest.bool "c2 served" true (is_ok (one (Server.step srv)));
  let bye_ack = one (Server.step srv) in
  check Alcotest.bool "shutdown acknowledged" true (is_ok bye_ack);
  check Alcotest.bool "draining" true (Server.state srv = `Draining);
  (* new arrivals are ignored once draining *)
  none "post-shutdown offer ignored" (Server.offer srv (check_line img));
  let final = Server.drain_flush srv in
  check Alcotest.bool "bye emitted" true
    (List.exists (fun j -> str_field "op" j = Some "bye") final);
  check Alcotest.bool "stopped" true (Server.state srv = `Stopped);
  check Alcotest.int "clean exit" 0 (Server.exit_code srv)

let test_server_run_loop_over_fake_transport () =
  let srv = make_server () in
  let img = target 918 "srv-run" in
  let inbox =
    ref [ check_line ~id:"c1" img; op_line ~id:"bye" "shutdown" ]
  in
  let sent = ref [] in
  let recv ~wait:_ =
    match !inbox with
    | [] -> `Eof
    | l :: rest ->
        inbox := rest;
        `Line l
  in
  let send j = sent := j :: !sent in
  let code = Server.run srv ~recv ~send in
  let sent = List.rev !sent in
  check Alcotest.int "clean exit from the loop" 0 code;
  check Alcotest.bool "check answered" true
    (List.exists (fun j -> str_field "id" j = Some "c1" && is_ok j) sent);
  check Alcotest.bool "bye emitted last" true
    (match List.rev sent with
    | last :: _ -> str_field "op" last = Some "bye"
    | [] -> false);
  check Alcotest.bool "stopped" true (Server.state srv = `Stopped)

(* --- telemetry verbs -------------------------------------------------------- *)

let test_server_metrics_verb () =
  let srv = make_server () in
  ignore (ask srv (check_line ~id:"c" (target 930 "srv-metrics")));
  (* default format is the Prometheus exposition *)
  let m = ask srv (op_line ~id:"m1" "metrics") in
  check Alcotest.bool "metrics ok" true (is_ok m);
  check Alcotest.(option string) "op" (Some "metrics") (str_field "op" m);
  check Alcotest.(option string) "format" (Some "prometheus")
    (str_field "format" m);
  (match str_field "body" m with
  | None -> Alcotest.fail "prometheus body missing"
  | Some body ->
      check Alcotest.bool "TYPE headers present" true
        (contains body "# TYPE ");
      check Alcotest.bool "request counter family" true
        (contains body "serve_requests");
      check Alcotest.bool "latency histogram series" true
        (contains body "serve_request_us_bucket");
      check Alcotest.bool "rolling-window gauges exported" true
        (contains body "serve_window_p99"));
  (* json format carries the window view and the structured registry *)
  let mj =
    ask srv
      (line
         [
           ("op", Json.Str "metrics");
           ("id", Json.Str "m2");
           ("format", Json.Str "json");
         ])
  in
  check Alcotest.bool "json metrics ok" true (is_ok mj);
  check Alcotest.bool "window view present" true
    (Json.member "window" mj <> None);
  check Alcotest.bool "registry present" true (Json.member "metrics" mj <> None);
  (* an unknown format is a typed parse error, not a crash *)
  let mb =
    ask srv (line [ ("op", Json.Str "metrics"); ("format", Json.Str "xml") ])
  in
  check Alcotest.bool "unknown format rejected" true (not (is_ok mb));
  check Alcotest.(option string) "rejection is typed" (Some "parse-error")
    (str_field "error" mb)

let test_server_health_verb_and_breaker () =
  let srv =
    make_server
      ~config:
        {
          Server.default_config with
          Server.breaker_threshold = 2;
          breaker_cooldown = 2;
        }
      ()
  in
  let h = ask srv (op_line ~id:"h0" "health") in
  check Alcotest.bool "health ok" true (is_ok h);
  check Alcotest.(option string) "verdict ok" (Some "ok") (str_field "health" h);
  (match Json.member "reasons" h with
  | Some (Json.Arr []) -> ()
  | _ -> Alcotest.fail "an ok verdict must carry no reasons");
  (* two crashes open the breaker: the verdict degrades but the probe
     is still served (control ops bypass the breaker) *)
  ignore (ask srv (op_line ~id:"k1" "crash"));
  ignore (ask srv (op_line ~id:"k2" "crash"));
  let h1 = ask srv (op_line ~id:"h1" "health") in
  check Alcotest.bool "served while breaker open" true (is_ok h1);
  check Alcotest.(option string) "degraded verdict" (Some "degraded")
    (str_field "health" h1);
  check Alcotest.(option string) "breaker reported open" (Some "open")
    (str_field "breaker" h1);
  (match Json.member "reasons" h1 with
  | Some (Json.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "a degraded verdict must list its reasons");
  (* burn the cooldown with denied checks, serve the half-open trial,
     and the verdict recovers *)
  let img = target 931 "srv-health" in
  ignore (ask srv (check_line ~id:"d1" img));
  ignore (ask srv (check_line ~id:"d2" img));
  let trial = ask srv (check_line ~id:"trial" img) in
  check Alcotest.bool "half-open trial served" true (is_ok trial);
  let h2 = ask srv (op_line ~id:"h2" "health") in
  check Alcotest.(option string) "verdict recovered" (Some "ok")
    (str_field "health" h2)

let test_server_trace_ids () =
  let spans = ref [] in
  Encore_obs.Trace.set_sink
    (Encore_obs.Trace.Stream (fun s -> spans := s :: !spans));
  Fun.protect
    ~finally:(fun () -> Encore_obs.Trace.set_sink Encore_obs.Trace.Nil)
    (fun () ->
      let srv = make_server () in
      let img = target 932 "srv-trace" in
      let r1 = ask srv (check_line ~id:"c1" img) in
      let r2 = ask srv (check_line ~id:"c2" img) in
      let t1 = str_field "trace" r1 and t2 = str_field "trace" r2 in
      check Alcotest.bool "every response carries a trace id" true
        (t1 <> None && t2 <> None);
      check Alcotest.bool "trace ids are distinct" true (t1 <> t2);
      (* responses produced before any processing are traced too *)
      let bad = ask srv "{\"op\":" in
      check Alcotest.bool "parse-error response traced" true
        (str_field "trace" bad <> None);
      let small =
        make_server
          ~config:{ Server.default_config with Server.max_request_bytes = 64 }
          ()
      in
      let rej = one (Server.offer small (String.make 65 'x')) in
      check Alcotest.bool "oversize rejection traced" true
        (str_field "trace" rej <> None);
      (* the echoed id joins the response to its serve-request span *)
      let span_traces =
        List.filter_map
          (fun (s : Encore_obs.Trace.span) ->
            if s.Encore_obs.Trace.name = "serve-request" then
              Option.bind
                (List.assoc_opt "trace" s.Encore_obs.Trace.attrs)
                Json.to_string_opt
            else None)
          !spans
      in
      check Alcotest.bool "trace id resolves to a span" true
        (match t1 with
        | Some tid -> List.mem tid span_traces
        | None -> false))

(* --- alert ring under storm ------------------------------------------------- *)

let test_server_ring_bounds_alerts () =
  let srv =
    make_server
      ~config:
        { Server.default_config with Server.ring_capacity = 4; alert_score = 0.0 }
      ()
  in
  (* every warning is an alert at threshold 0.0: checks on drifted
     images overflow a 4-slot ring without growing it *)
  let rng = Prng.create 33 in
  for i = 0 to 7 do
    let img = target (920 + i) (Printf.sprintf "ring-%d" i) in
    let drifted =
      Image.set_config img Image.Mysql (mutate_config rng img)
    in
    ignore (ask srv (check_line ~id:(Printf.sprintf "c%d" i) drifted))
  done;
  let s = ask srv (op_line ~id:"s" "status") in
  let ring_len =
    Option.bind (Json.member "ring" s) (int_field "length")
  in
  check Alcotest.bool "ring stayed inside its bound" true
    (match ring_len with Some n -> n <= 4 | None -> false);
  check Alcotest.bool "overflow recorded as drops" true
    (Server.ring_dropped srv > 0);
  let final = Server.drain_flush srv in
  let flushed =
    List.filter (fun j -> str_field "ev" j = Some "alert") final
  in
  check Alcotest.bool "drain flushes at most capacity alerts" true
    (List.length flushed <= 4)

(* --- the chaos soak ---------------------------------------------------------- *)

let test_serve_storm_soak () =
  match Chaosrun.serve_storm ~requests:10_000 ~n:12 ~seed:5 () with
  | Error d -> Alcotest.failf "storm failed to launch: %s" d.Res.detail
  | Ok o ->
      check Alcotest.int "10k requests replayed" 10_000 o.Chaosrun.serve_requests;
      check Alcotest.bool ">=5% malformed" true
        (o.Chaosrun.serve_malformed * 20 >= o.Chaosrun.serve_requests);
      check Alcotest.bool ">=5% oversized" true
        (o.Chaosrun.serve_oversized * 20 >= o.Chaosrun.serve_requests);
      check Alcotest.bool "crash ops in the mix" true
        (o.Chaosrun.serve_crash_ops > 0);
      check Alcotest.bool "storm forced shedding" true (o.Chaosrun.serve_shed > 0);
      check Alcotest.bool "supervisor restarted the worker" true
        (o.Chaosrun.serve_restarts > 0);
      check Alcotest.bool "every queued request answered" true
        o.Chaosrun.serve_all_answered;
      check Alcotest.bool "ring bound held" true o.Chaosrun.serve_ring_bound_ok;
      check Alcotest.bool "watch deltas compared" true
        (o.Chaosrun.serve_watch_verified > 0);
      check Alcotest.bool "watch deltas byte-identical" true
        o.Chaosrun.serve_watch_identical;
      check Alcotest.bool "drained cleanly" true o.Chaosrun.serve_drained;
      check Alcotest.int "degraded-but-alive exit" 3 o.Chaosrun.serve_exit;
      check Alcotest.bool "metrics scrapes served under load" true
        (o.Chaosrun.serve_metrics_served > 0);
      check Alcotest.bool "every scrape was valid Prometheus text" true
        o.Chaosrun.serve_metrics_valid;
      check Alcotest.bool "per-rule counters appeared in a scrape" true
        o.Chaosrun.serve_rule_counters_seen;
      check Alcotest.bool "health probes served under load" true
        (o.Chaosrun.serve_health_served > 0);
      check Alcotest.bool "health degraded behind a crash burst" true
        o.Chaosrun.serve_health_degraded_seen;
      check Alcotest.string "health recovered to ok by the end" "ok"
        o.Chaosrun.serve_health_final;
      check Alcotest.bool "every check/watch response traced" true
        o.Chaosrun.serve_traced;
      check Alcotest.(list string) "no contract violations" []
        o.Chaosrun.serve_notes

let () =
  Alcotest.run "encore_serve"
    [
      ( "ring",
        [
          Alcotest.test_case "drop-oldest bound" `Quick test_ring_drop_oldest;
          Alcotest.test_case "wraparound order and drop monotonicity" `Quick
            test_ring_wraparound;
          Alcotest.test_case "capacity clamp" `Quick test_ring_clamps_capacity;
        ] );
      ( "proto",
        [
          Alcotest.test_case "parses every op" `Quick test_proto_parse_ok;
          Alcotest.test_case "typed parse errors" `Quick test_proto_parse_errors;
          Alcotest.test_case "error response shape" `Quick
            test_proto_error_response_shape;
        ] );
      ( "cache",
        [
          Alcotest.test_case "memoize and reload" `Quick
            test_cache_memoize_and_reload;
          Alcotest.test_case "typed provider failure" `Quick
            test_cache_provider_failure_is_typed;
        ] );
      ( "watch",
        [
          Alcotest.test_case "start seeds full check" `Quick
            test_watch_start_seeds_full_check;
          Alcotest.test_case "delta byte-identical to full check" `Quick
            test_watch_delta_byte_identical;
          Alcotest.test_case "unchanged config empty delta" `Quick
            test_watch_unchanged_config_is_empty_delta;
          Alcotest.test_case "missing app is an error" `Quick
            test_watch_missing_app_is_error;
          Alcotest.test_case "partial leaves session intact" `Quick
            test_watch_deadline_partial_leaves_session_intact;
        ] );
      ( "server",
        [
          Alcotest.test_case "check roundtrip" `Quick test_server_check_roundtrip;
          Alcotest.test_case "learn-append folds and adopts" `Quick
            test_server_learn_append_folds_and_adopts;
          Alcotest.test_case "learn-append hook failure typed" `Quick
            test_server_learn_append_hook_failure_is_typed;
          Alcotest.test_case "learn-append without learner" `Quick
            test_server_learn_append_without_learner;
          Alcotest.test_case "malformed typed error" `Quick
            test_server_malformed_gets_typed_error;
          Alcotest.test_case "oversize rejected unqueued" `Quick
            test_server_oversize_rejected_unqueued;
          Alcotest.test_case "sheds at capacity" `Quick
            test_server_sheds_at_capacity;
          Alcotest.test_case "crash supervision and breaker" `Quick
            test_server_crash_supervision_and_breaker;
          Alcotest.test_case "status and reload" `Quick
            test_server_status_and_reload;
          Alcotest.test_case "watch delta and reload fallback" `Quick
            test_server_watch_delta_and_reload_fallback;
          Alcotest.test_case "watch unknown image" `Quick
            test_server_watch_unknown_image;
          Alcotest.test_case "partial verdict under deadline" `Quick
            test_server_partial_verdict_under_deadline;
          Alcotest.test_case "graceful drain" `Quick test_server_graceful_drain;
          Alcotest.test_case "run loop over fake transport" `Quick
            test_server_run_loop_over_fake_transport;
          Alcotest.test_case "ring bounds alerts" `Quick
            test_server_ring_bounds_alerts;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "metrics verb" `Quick test_server_metrics_verb;
          Alcotest.test_case "health verb and breaker transitions" `Quick
            test_server_health_verb_and_breaker;
          Alcotest.test_case "trace ids join responses to spans" `Quick
            test_server_trace_ids;
        ] );
      ( "soak",
        [
          Alcotest.test_case "10k-request chaos storm" `Quick
            test_serve_storm_soak;
        ] );
    ]
