(* Chaos-property tests for the resilient ingestion pipeline: the
   retry/breaker substrate, content-integrity scanning, diagnostic
   lens parsing, the flaky-environment simulator, and the end-to-end
   guarantee that pipeline faults are quarantined — never raised. *)

module Res = Encore_util.Resilience
module Prng = Encore_util.Prng
module Fs = Encore_sysenv.Fs
module Image = Encore_sysenv.Image
module Flaky = Encore_sysenv.Flaky
module Registry = Encore_confparse.Registry
module Ini = Encore_confparse.Ini
module Apache_lens = Encore_confparse.Apache_lens
module Sshd_lens = Encore_confparse.Sshd_lens
module Fault = Encore_inject.Fault
module Chaos = Encore_inject.Chaos
module Conferr = Encore_inject.Conferr
module Population = Encore_workloads.Population
module Profile = Encore_workloads.Profile
module Detector = Encore_detect.Detector
module Pipeline = Encore.Pipeline
module Chaosrun = Encore.Chaosrun

let check = Alcotest.check

let clean_profile = { Profile.ec2 with Profile.latent_error_rate = 0.0 }

let training ?(app = Image.Mysql) ~seed n =
  Population.images (Population.generate ~profile:clean_profile ~seed app ~n)

(* --- retry combinator --------------------------------------------------- *)

let flaky_fn succeed_at ~attempt =
  if attempt >= succeed_at then Ok attempt
  else Error (Res.diag Res.Probe_failure ~subject:"probe" "flap")

let test_retry_eventually_succeeds () =
  let att = Res.with_retries ~rng:(Prng.create 1) (flaky_fn 2) in
  check Alcotest.(result int reject) "succeeds on third attempt" (Ok 2)
    (Result.map_error (fun _ -> "") att.Res.outcome);
  check Alcotest.int "two retries" 2 att.Res.retries;
  check Alcotest.bool "backoff accumulated" true (att.Res.backoff_ms > 0)

let test_retry_deterministic () =
  let run () = Res.with_retries ~rng:(Prng.create 99) (flaky_fn 3) in
  let a = run () and b = run () in
  check Alcotest.int "same retries" a.Res.retries b.Res.retries;
  check Alcotest.int "same virtual backoff" a.Res.backoff_ms b.Res.backoff_ms

let test_retry_exhaustion () =
  let att = Res.with_retries ~max_retries:2 ~rng:(Prng.create 5) (flaky_fn 10) in
  (match att.Res.outcome with
  | Error d -> check Alcotest.string "kind" "probe-failure" (Res.kind_to_string d.Res.kind)
  | Ok _ -> Alcotest.fail "expected exhaustion");
  check Alcotest.int "all retries spent" 2 att.Res.retries

let test_retry_on_filters_kinds () =
  (* a corrupt payload will not heal: no retries spent on it *)
  let att =
    Res.with_retries ~rng:(Prng.create 3) (fun ~attempt:_ ->
        (Error (Res.diag Res.Corrupt_image ~subject:"img" "garbage")
          : (int, Res.diagnostic) result))
  in
  check Alcotest.int "not retried" 0 att.Res.retries;
  check Alcotest.int "no backoff" 0 att.Res.backoff_ms

let test_backoff_grows_exponentially () =
  (* with jitter in [0, base), attempt n costs at least base * 2^n *)
  let att =
    Res.with_retries ~max_retries:3 ~base_delay_ms:10 ~rng:(Prng.create 7)
      (flaky_fn 10)
  in
  check Alcotest.bool "at least the exponential floor" true
    (att.Res.backoff_ms >= 10 + 20 + 40)

let test_backoff_jitter_bounded () =
  (* attempt n costs base*2^n plus jitter drawn from [0, base), so the
     whole schedule is bounded by [sum base*2^n, sum (base*2^n + base)).
     Check the bound across many seeds, not just one. *)
  let base = 10 and retries = 3 in
  let floor_ms = base * ((1 lsl retries) - 1) in
  let ceil_ms = floor_ms + (retries * base) in
  for seed = 0 to 49 do
    let att =
      Res.with_retries ~max_retries:retries ~base_delay_ms:base
        ~rng:(Prng.create seed) (flaky_fn 10)
    in
    check Alcotest.int "exhausted every retry" retries att.Res.retries;
    check Alcotest.bool
      (Printf.sprintf "backoff %d within [%d, %d) for seed %d"
         att.Res.backoff_ms floor_ms ceil_ms seed)
      true
      (att.Res.backoff_ms >= floor_ms && att.Res.backoff_ms < ceil_ms)
  done

(* --- circuit breaker ----------------------------------------------------- *)

let test_breaker_trips_at_threshold () =
  let b = Res.breaker ~threshold:2 () in
  let d = Res.diag Res.Probe_failure ~subject:"img-1" "flap" in
  Res.record_failure b ~subject:"img-1" d;
  check Alcotest.bool "below threshold" false (Res.tripped b ~subject:"img-1");
  Res.record_failure b ~subject:"img-1" d;
  check Alcotest.bool "tripped" true (Res.tripped b ~subject:"img-1");
  check Alcotest.(list string) "quarantined" [ "img-1" ]
    (List.map fst (Res.quarantined b))

let test_breaker_success_closes_circuit () =
  let b = Res.breaker ~threshold:2 () in
  let d = Res.diag Res.Probe_failure ~subject:"img-1" "flap" in
  Res.record_failure b ~subject:"img-1" d;
  Res.record_success b ~subject:"img-1";
  Res.record_failure b ~subject:"img-1" d;
  check Alcotest.bool "count was reset" false (Res.tripped b ~subject:"img-1")

let breaker_state_t =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (Res.breaker_state_to_string s))
    ( = )

(* drive an open circuit through its cooldown: [allow] denies
   [cooldown - 1] probes, then the [cooldown]-th call flips the
   circuit to half-open and admits that probe as the trial *)
let drain_cooldown b ~subject ~cooldown =
  for i = 1 to cooldown - 1 do
    check Alcotest.bool
      (Printf.sprintf "denial %d/%d while open" i (cooldown - 1))
      false (Res.allow b ~subject)
  done;
  check Alcotest.bool "trial probe admitted" true (Res.allow b ~subject);
  check breaker_state_t "half-open for the trial" Res.Half_open
    (Res.state b ~subject)

let test_breaker_half_open_success_closes () =
  let b = Res.breaker ~threshold:2 ~cooldown:3 () in
  let d = Res.diag Res.Probe_failure ~subject:"img-1" "flap" in
  Res.record_failure b ~subject:"img-1" d;
  Res.record_failure b ~subject:"img-1" d;
  check breaker_state_t "open at threshold" Res.Open (Res.state b ~subject:"img-1");
  drain_cooldown b ~subject:"img-1" ~cooldown:3;
  Res.record_success b ~subject:"img-1";
  check breaker_state_t "trial success closes" Res.Closed
    (Res.state b ~subject:"img-1");
  check Alcotest.bool "closed circuit admits" true (Res.allow b ~subject:"img-1")

let test_breaker_half_open_failure_reopens () =
  let b = Res.breaker ~threshold:2 ~cooldown:2 () in
  let d = Res.diag Res.Probe_failure ~subject:"img-1" "flap" in
  Res.record_failure b ~subject:"img-1" d;
  Res.record_failure b ~subject:"img-1" d;
  drain_cooldown b ~subject:"img-1" ~cooldown:2;
  Res.record_failure b ~subject:"img-1" d;
  check breaker_state_t "trial failure re-opens" Res.Open
    (Res.state b ~subject:"img-1");
  (* the re-opened circuit starts a fresh cooldown *)
  check Alcotest.bool "denied again after re-open" false
    (Res.allow b ~subject:"img-1")

let test_breaker_transitions_counted_as_metrics () =
  (* every state transition lands on its own counter, so a dashboard
     can see circuits opening and recovering without scraping logs *)
  let count name =
    Encore_obs.Metrics.count (Encore_obs.Metrics.counter name)
  in
  let opened0 = count "resilience.breaker_to_open" in
  let half0 = count "resilience.breaker_to_half_open" in
  let closed0 = count "resilience.breaker_to_closed" in
  let b = Res.breaker ~threshold:2 ~cooldown:2 () in
  let d = Res.diag Res.Probe_failure ~subject:"img-1" "flap" in
  Res.record_failure b ~subject:"img-1" d;
  check Alcotest.int "no transition below threshold" opened0
    (count "resilience.breaker_to_open");
  Res.record_failure b ~subject:"img-1" d;
  check Alcotest.int "closed -> open counted" (opened0 + 1)
    (count "resilience.breaker_to_open");
  drain_cooldown b ~subject:"img-1" ~cooldown:2;
  check Alcotest.int "open -> half-open counted" (half0 + 1)
    (count "resilience.breaker_to_half_open");
  Res.record_failure b ~subject:"img-1" d;
  check Alcotest.int "trial failure re-opens and counts" (opened0 + 2)
    (count "resilience.breaker_to_open");
  drain_cooldown b ~subject:"img-1" ~cooldown:2;
  Res.record_success b ~subject:"img-1";
  check Alcotest.int "half-open -> closed counted" (closed0 + 1)
    (count "resilience.breaker_to_closed");
  (* a success on an already-closed circuit is not a transition *)
  Res.record_success b ~subject:"img-1";
  check Alcotest.int "steady closed state not re-counted" (closed0 + 1)
    (count "resilience.breaker_to_closed")

let test_breaker_quarantine_excludes_reclosed () =
  let b = Res.breaker ~threshold:1 ~cooldown:1 () in
  let d subject = Res.diag Res.Probe_failure ~subject "flap" in
  Res.record_failure b ~subject:"img-1" (d "img-1");
  Res.record_failure b ~subject:"img-2" (d "img-2");
  check Alcotest.(list string) "both quarantined" [ "img-1"; "img-2" ]
    (List.map fst (Res.quarantined b));
  (* img-1 recovers through its half-open trial; img-2 stays open *)
  drain_cooldown b ~subject:"img-1" ~cooldown:1;
  Res.record_success b ~subject:"img-1";
  check Alcotest.(list string) "recovered circuit excluded" [ "img-2" ]
    (List.map fst (Res.quarantined b))

(* --- integrity scanning --------------------------------------------------- *)

let test_scan_text_clean () =
  check Alcotest.int "clean text has no diagnostics" 0
    (List.length (Res.scan_text ~subject:"f" "key = value\n"))

let test_scan_text_garbage () =
  match Res.scan_text ~subject:"f" "key = va\x00\x01lue\n" with
  | [ d ] ->
      check Alcotest.string "corrupt" "corrupt-image" (Res.kind_to_string d.Res.kind)
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_scan_text_truncated () =
  match Res.scan_text ~subject:"f" "key = value\npartial li" with
  | [ d ] ->
      check Alcotest.string "truncation is a parse error" "parse-error"
        (Res.kind_to_string d.Res.kind)
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_histogram_shape () =
  let diags =
    [ Res.diag Res.Parse_error ~subject:"a" "x";
      Res.diag Res.Parse_error ~subject:"b" "y";
      Res.diag Res.Overflow ~subject:"c" "z" ]
  in
  let h = Res.histogram diags in
  check Alcotest.int "all kinds present" (List.length Res.all_kinds) (List.length h);
  check Alcotest.int "total" 3 (Res.histogram_total h);
  check Alcotest.int "parse errors" 2 (List.assoc Res.Parse_error h);
  check Alcotest.int "zero-filled" 0 (List.assoc Res.Corrupt_image h)

(* --- Fs path canonicalization (satellite: relative-path handling) -------- *)

let test_canonicalize_absorbs_noise () =
  let ok = Alcotest.(result string string) in
  check ok "trailing slash" (Ok "/etc/mysql") (Fs.canonicalize "/etc/mysql/");
  check ok "dot component" (Ok "/etc/mysql") (Fs.canonicalize "/etc/./mysql");
  check ok "dotdot resolved" (Ok "/etc/passwd")
    (Fs.canonicalize "/var/../etc/passwd");
  check ok "doubled slash" (Ok "/etc/mysql") (Fs.canonicalize "//etc//mysql");
  check ok "leading ./ before absolute" (Ok "/etc/mysql")
    (Fs.canonicalize ".//etc/mysql");
  check ok "root" (Ok "/") (Fs.canonicalize "/")

let test_canonicalize_rejects_unsafe () =
  let bad p =
    match Fs.canonicalize p with
    | Error _ -> true
    | Ok _ -> false
  in
  check Alcotest.bool "empty" true (bad "");
  check Alcotest.bool "relative" true (bad "etc/passwd");
  check Alcotest.bool "relative after ./" true (bad "./etc/passwd");
  check Alcotest.bool "escapes root" true (bad "/../etc")

let test_add_still_raises () =
  (* the raising path stays for internal callers with known-good paths *)
  Alcotest.check_raises "relative path raises"
    (Invalid_argument "Fs: path must be absolute: etc")
    (fun () -> ignore (Fs.add_file Fs.empty "etc"))

let test_fs_lookup_tolerates_bad_paths () =
  let fs = Fs.add_file Fs.empty "/etc/passwd" in
  check Alcotest.bool "bad path lookup is None, not an exception" true
    (Fs.lookup fs "not-a-path" = None)

(* --- diagnostic lens parsing ---------------------------------------------- *)

let test_ini_parse_diag () =
  let text = "[mysqld]\nport = 3306\n[broken\n= novalue\nuser = mysql\n" in
  let kvs, diags = Ini.parse_diag ~app:"mysql" text in
  check Alcotest.int "two good entries survive" 2 (List.length kvs);
  check Alcotest.int "two diagnostics" 2 (List.length diags);
  check Alcotest.(list int) "line numbers" [ 3; 4 ] (List.map fst diags);
  (* the plain parser is the diagnostic parser with diags dropped *)
  check Alcotest.int "parse agrees" (List.length (Ini.parse ~app:"mysql" text)) 2

let test_apache_parse_diag () =
  let text = "Listen 80\n</Directory>\n<Directory /var/www>\nOptions None\n" in
  let _, diags = Apache_lens.parse_diag ~app:"apache" text in
  let messages = List.map snd diags in
  check Alcotest.bool "unmatched closing tag reported" true
    (List.exists
       (fun m -> Encore_util.Strutil.contains_sub m "unmatched closing tag")
       messages);
  check Alcotest.bool "unclosed section reported" true
    (List.exists
       (fun m -> Encore_util.Strutil.contains_sub m "unclosed section")
       messages)

let test_sshd_parse_diag () =
  let kvs, diags = Sshd_lens.parse_diag ~app:"sshd" "Port 22\nFragment\n" in
  check Alcotest.int "good entry kept" 1 (List.length kvs);
  check Alcotest.(list int) "bad line reported" [ 2 ] (List.map fst diags)

let test_registry_parse_image_diag_clean () =
  let img = List.hd (training ~seed:3 1) in
  let parsed = Registry.parse_image_diag img in
  check Alcotest.int "no fatal diagnostics" 0 (List.length parsed.Registry.fatal);
  check Alcotest.int "kvs agree with the strict parser"
    (List.length (Registry.parse_image img))
    (List.length parsed.Registry.kvs)

let test_registry_parse_image_diag_corrupt () =
  let img = List.hd (training ~seed:3 1) in
  let cf =
    match Image.config_for img Image.Mysql with
    | Some cf -> cf
    | None -> Alcotest.fail "mysql image lost its config"
  in
  let img = Image.set_config img Image.Mysql (cf.Image.text ^ "\x00\x01") in
  let parsed = Registry.parse_image_diag img in
  check Alcotest.bool "fatal diagnostics" true (parsed.Registry.fatal <> []);
  check Alcotest.int "damaged file contributes no kvs" 0
    (List.length parsed.Registry.kvs)

(* --- flaky environment simulator ------------------------------------------ *)

let test_flaky_reliable_passthrough () =
  let img = List.hd (training ~seed:4 1) in
  let sim = Flaky.reliable ~rng:(Prng.create 1) in
  match Flaky.collect sim img with
  | Ok (records, diags) ->
      check Alcotest.bool "records collected" true (records <> []);
      check Alcotest.int "no diagnostics" 0 (List.length diags)
  | Error _ -> Alcotest.fail "reliable simulator flapped"

let test_flaky_permanent_flap_exhausts_retries () =
  let img = Image.with_flakiness (List.hd (training ~seed:4 1)) 1.0 in
  let sim = Flaky.reliable ~rng:(Prng.create 1) in
  let att = Flaky.collect_with_retries ~max_retries:2 sim img in
  (match att.Res.outcome with
  | Error d ->
      check Alcotest.string "probe failure" "probe-failure"
        (Res.kind_to_string d.Res.kind)
  | Ok _ -> Alcotest.fail "flakiness 1.0 cannot succeed");
  check Alcotest.int "retries spent" 2 att.Res.retries

let test_flaky_drops_records_with_diags () =
  let img = List.hd (training ~seed:4 1) in
  let sim = Flaky.make ~drop_record:1.0 ~rng:(Prng.create 1) () in
  match Flaky.collect sim img with
  | Ok (records, diags) ->
      check Alcotest.int "everything dropped" 0 (List.length records);
      check Alcotest.bool "one diagnostic per drop" true (diags <> [])
  | Error _ -> Alcotest.fail "drop_record does not flap the pass"

(* --- resilient learning ---------------------------------------------------- *)

let mining_cap = 5_000

let test_learn_resilient_clean_matches_learn () =
  let images = training ~seed:7 10 in
  let strict = Pipeline.learn images in
  match Pipeline.learn_resilient ~mining_cap images with
  | Error d -> Alcotest.failf "clean learn failed: %s" (Res.diagnostic_to_string d)
  | Ok (model, report) ->
      check Alcotest.int "same rules" (List.length strict.Detector.rules)
        (List.length model.Detector.rules);
      check Alcotest.int "same types" (List.length strict.Detector.types)
        (List.length model.Detector.types);
      check Alcotest.int "all images ingested" report.Pipeline.total
        report.Pipeline.ok;
      check Alcotest.int "nothing quarantined" 0
        (List.length report.Pipeline.quarantined)

let test_learn_result_custom_file_error () =
  match Pipeline.learn_result ~custom:"$$Template\nbogus %%\n" (training ~seed:7 3) with
  | Error d ->
      check Alcotest.string "typed custom-rule error" "custom-rule-error"
        (Res.kind_to_string d.Res.kind)
  | Ok _ -> Alcotest.fail "malformed customization file must be rejected"

let storm_and_learn ~fault ~seed ~n ~fraction =
  let images = training ~seed n in
  let rng = Prng.create (seed + 1) in
  let stormed = Chaos.storm ~fraction ~faults:[ fault ] ~rng images in
  (stormed, Pipeline.learn_resilient ~mining_cap stormed.Chaos.images)

let assert_chaos_contained fault seed =
  let stormed, outcome = storm_and_learn ~fault ~seed ~n:10 ~fraction:0.3 in
  match outcome with
  | Error d ->
      Alcotest.failf "%s storm killed the run: %s"
        (Fault.fault_to_string (Fault.Pipeline_fault fault))
        (Res.diagnostic_to_string d)
  | Ok (_model, report) ->
      let victim_ids =
        List.sort_uniq compare
          (List.map (fun (v : Chaos.victim) -> v.Chaos.image_id)
             stormed.Chaos.victims)
      in
      let quarantined_ids =
        List.sort_uniq compare (List.map fst report.Pipeline.quarantined)
      in
      check Alcotest.(list string)
        (Printf.sprintf "%s: quarantined exactly the victims (seed %d)"
           (Fault.fault_to_string (Fault.Pipeline_fault fault)) seed)
        victim_ids quarantined_ids;
      check Alcotest.int "ok + quarantined = total"
        report.Pipeline.total
        (report.Pipeline.ok + List.length report.Pipeline.quarantined);
      (* every diagnostic of the run is accounted for in the histogram *)
      let fatal =
        List.length (List.concat_map snd report.Pipeline.quarantined)
      in
      check Alcotest.int "histogram reconciles"
        (fatal + List.length report.Pipeline.warnings)
        (Res.histogram_total report.Pipeline.histogram)

let test_chaos_truncated_file () =
  List.iter (assert_chaos_contained Fault.Truncated_file) [ 11; 12; 13 ]

let test_chaos_garbage_bytes () =
  List.iter (assert_chaos_contained Fault.Garbage_bytes) [ 21; 22; 23 ]

let test_chaos_probe_flap () =
  List.iter (assert_chaos_contained Fault.Probe_flap) [ 31; 32; 33 ]

let test_chaos_probe_flap_retries_counted () =
  let _, outcome = storm_and_learn ~fault:Fault.Probe_flap ~seed:31 ~n:10 ~fraction:0.3 in
  match outcome with
  | Ok (_, report) ->
      check Alcotest.bool "retries were spent on flapping probes" true
        (report.Pipeline.retried > 0);
      check Alcotest.bool "virtual backoff accumulated" true
        (report.Pipeline.total_backoff_ms > 0)
  | Error _ -> Alcotest.fail "keep-going run cannot fail"

let test_fail_fast_surfaces_first_fault () =
  let images = training ~seed:41 10 in
  let rng = Prng.create 42 in
  let stormed =
    Chaos.storm ~fraction:0.3 ~faults:[ Fault.Garbage_bytes ] ~rng images
  in
  match
    Pipeline.learn_resilient ~mode:Pipeline.Fail_fast ~mining_cap
      stormed.Chaos.images
  with
  | Error d ->
      check Alcotest.string "fatal kind surfaced" "corrupt-image"
        (Res.kind_to_string d.Res.kind)
  | Ok _ -> Alcotest.fail "fail-fast must stop on the first damaged image"

let test_all_quarantined_is_error_not_raise () =
  let images = List.map (fun img -> Image.with_flakiness img 1.0) (training ~seed:43 4) in
  match Pipeline.learn_resilient ~mining_cap images with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a fully-flapping population cannot train"

let test_conferr_ignores_pipeline_faults () =
  let img = List.hd (training ~seed:44 1) in
  let rng = Prng.create 1 in
  check Alcotest.bool "pipeline faults are not ConfErr faults" true
    (Conferr.inject_one rng Image.Mysql img
       (Fault.Pipeline_fault Fault.Garbage_bytes)
    = None)

let test_model_io_roundtrips_overflowed () =
  let images = training ~seed:7 6 in
  let model = { (Pipeline.learn images) with Detector.overflowed = true } in
  match Encore_detect.Model_io.of_string (Encore_detect.Model_io.to_string model) with
  | Ok restored ->
      check Alcotest.bool "overflowed preserved" true restored.Detector.overflowed
  | Error e -> Alcotest.failf "roundtrip failed: %s" e

(* --- acceptance: 50-image storm, bounded quality loss (Slow) --------------- *)

let test_chaos_harness_acceptance () =
  match Chaosrun.run ~n:50 ~fraction:0.3 ~seed:42 () with
  | Error d -> Alcotest.failf "harness failed: %s" (Res.diagnostic_to_string d)
  | Ok o ->
      check Alcotest.bool "at least 30%% of the population damaged" true
        (List.length o.Chaosrun.victims >= 15);
      check Alcotest.bool "quarantine exact" true o.Chaosrun.quarantine_exact;
      check Alcotest.bool "chaos-trained model keeps its detection power" true
        (o.Chaosrun.chaos_detected >= o.Chaosrun.clean_detected);
      check Alcotest.bool "degraded-mode notes emitted" true
        (o.Chaosrun.notes <> []);
      check
        Alcotest.(list string)
        "telemetry reconciles with the ingest report" []
        o.Chaosrun.telemetry_notes;
      check Alcotest.bool "telemetry consistent" true
        o.Chaosrun.telemetry_consistent

let () =
  Alcotest.run "encore_resilience"
    [
      ( "retry",
        [
          Alcotest.test_case "eventually succeeds" `Quick test_retry_eventually_succeeds;
          Alcotest.test_case "deterministic" `Quick test_retry_deterministic;
          Alcotest.test_case "exhaustion" `Quick test_retry_exhaustion;
          Alcotest.test_case "retry_on filters kinds" `Quick test_retry_on_filters_kinds;
          Alcotest.test_case "exponential backoff" `Quick test_backoff_grows_exponentially;
          Alcotest.test_case "jitter bounded" `Quick test_backoff_jitter_bounded;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips at threshold" `Quick test_breaker_trips_at_threshold;
          Alcotest.test_case "success closes circuit" `Quick test_breaker_success_closes_circuit;
          Alcotest.test_case "half-open trial success closes" `Quick test_breaker_half_open_success_closes;
          Alcotest.test_case "half-open trial failure re-opens" `Quick test_breaker_half_open_failure_reopens;
          Alcotest.test_case "quarantine excludes re-closed" `Quick test_breaker_quarantine_excludes_reclosed;
          Alcotest.test_case "transitions counted as metrics" `Quick test_breaker_transitions_counted_as_metrics;
        ] );
      ( "scan",
        [
          Alcotest.test_case "clean" `Quick test_scan_text_clean;
          Alcotest.test_case "garbage bytes" `Quick test_scan_text_garbage;
          Alcotest.test_case "truncation" `Quick test_scan_text_truncated;
          Alcotest.test_case "histogram shape" `Quick test_histogram_shape;
        ] );
      ( "fs",
        [
          Alcotest.test_case "absorbs noise" `Quick test_canonicalize_absorbs_noise;
          Alcotest.test_case "rejects unsafe" `Quick test_canonicalize_rejects_unsafe;
          Alcotest.test_case "add raises" `Quick test_add_still_raises;
          Alcotest.test_case "lookup tolerates bad paths" `Quick test_fs_lookup_tolerates_bad_paths;
        ] );
      ( "lens-diag",
        [
          Alcotest.test_case "ini" `Quick test_ini_parse_diag;
          Alcotest.test_case "apache" `Quick test_apache_parse_diag;
          Alcotest.test_case "sshd" `Quick test_sshd_parse_diag;
          Alcotest.test_case "registry clean" `Quick test_registry_parse_image_diag_clean;
          Alcotest.test_case "registry corrupt" `Quick test_registry_parse_image_diag_corrupt;
        ] );
      ( "flaky",
        [
          Alcotest.test_case "reliable passthrough" `Quick test_flaky_reliable_passthrough;
          Alcotest.test_case "permanent flap exhausts" `Quick test_flaky_permanent_flap_exhausts_retries;
          Alcotest.test_case "dropped records" `Quick test_flaky_drops_records_with_diags;
        ] );
      ( "resilient-learn",
        [
          Alcotest.test_case "clean matches strict learn" `Quick test_learn_resilient_clean_matches_learn;
          Alcotest.test_case "custom file typed error" `Quick test_learn_result_custom_file_error;
          Alcotest.test_case "truncated-file storm" `Quick test_chaos_truncated_file;
          Alcotest.test_case "garbage-bytes storm" `Quick test_chaos_garbage_bytes;
          Alcotest.test_case "probe-flap storm" `Quick test_chaos_probe_flap;
          Alcotest.test_case "flap retries counted" `Quick test_chaos_probe_flap_retries_counted;
          Alcotest.test_case "fail-fast surfaces fault" `Quick test_fail_fast_surfaces_first_fault;
          Alcotest.test_case "all-quarantined is Error" `Quick test_all_quarantined_is_error_not_raise;
          Alcotest.test_case "conferr ignores pipeline faults" `Quick test_conferr_ignores_pipeline_faults;
          Alcotest.test_case "model io roundtrips overflow" `Quick test_model_io_roundtrips_overflowed;
        ] );
      ( "acceptance",
        [ Alcotest.test_case "50-image storm" `Slow test_chaos_harness_acceptance ] );
    ]
