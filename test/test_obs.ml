(* Tests for the observability layer (lib/obs): span nesting and
   ordering — including under exceptions — histogram bucket
   boundaries, the JSONL encoder's escaping, nil-sink no-op cost
   paths, event-log emission, trace summarization and snapshot
   determinism of the metric registry under a seeded workload. *)

module Clock = Encore_obs.Clock
module Jsonenc = Encore_obs.Jsonenc
module Metrics = Encore_obs.Metrics
module Trace = Encore_obs.Trace
module Events = Encore_obs.Events
module Summary = Encore_obs.Summary
module Image = Encore_sysenv.Image
module Profile = Encore_workloads.Profile
module Population = Encore_workloads.Population

let check = Alcotest.check

(* Every test that touches the global sinks/registry restores a clean
   slate so suites stay order-independent. *)
let pristine f () =
  Fun.protect
    ~finally:(fun () ->
      Trace.set_sink Trace.Nil;
      Trace.clear ();
      Events.set_sink Events.Nil;
      Metrics.reset ();
      Clock.set_source Clock.default)
    f

(* --- clock ---------------------------------------------------------------- *)

let test_clock_counter () =
  let src = Clock.counter ~start:100L ~step_ns:10L () in
  check Alcotest.int64 "first" 100L (src ());
  check Alcotest.int64 "second" 110L (src ());
  Clock.with_source (Clock.counter ~step_ns:5L ()) (fun () ->
      check Alcotest.int64 "installed source" 0L (Clock.now_ns ());
      check Alcotest.int64 "advances" 5L (Clock.now_ns ()))

let test_clock_monotonic_clamp () =
  let values = ref [ 50L; 30L; 70L ] in
  let src () =
    match !values with
    | v :: rest ->
        values := rest;
        v
    | [] -> 99L
  in
  Clock.with_source src (fun () ->
      check Alcotest.int64 "initial" 50L (Clock.now_ns ());
      check Alcotest.int64 "backwards step clamped" 50L (Clock.now_ns ());
      check Alcotest.int64 "resumes" 70L (Clock.now_ns ()))

(* --- json encoder --------------------------------------------------------- *)

let roundtrip v =
  match Jsonenc.of_string (Jsonenc.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e

let test_json_escaping () =
  check Alcotest.string "quotes and backslash" {|"a\"b\\c"|}
    (Jsonenc.to_string (Jsonenc.Str {|a"b\c|}));
  check Alcotest.string "newline tab cr" {|"a\nb\tc\rd"|}
    (Jsonenc.to_string (Jsonenc.Str "a\nb\tc\rd"));
  check Alcotest.string "control char" {|"x\u0001y"|}
    (Jsonenc.to_string (Jsonenc.Str "x\x01y"));
  (* UTF-8 bytes above 0x7f pass through unescaped *)
  check Alcotest.string "non-ascii passthrough" "\"caf\xc3\xa9\""
    (Jsonenc.to_string (Jsonenc.Str "caf\xc3\xa9"))

let test_json_roundtrip () =
  let v =
    Jsonenc.Obj
      [
        ("s", Jsonenc.Str "he said \"hi\"\n\x02\xe2\x82\xac");
        ("n", Jsonenc.Int (-42));
        ("f", Jsonenc.Float 1.5);
        ("b", Jsonenc.Bool true);
        ("z", Jsonenc.Null);
        ("a", Jsonenc.Arr [ Jsonenc.Int 1; Jsonenc.Str "x" ]);
      ]
  in
  check Alcotest.bool "object round-trips" true (roundtrip v = v);
  (* decoder expands \uXXXX — including surrogate pairs — to UTF-8 *)
  (match Jsonenc.of_string {|"€😀"|} with
  | Ok (Jsonenc.Str s) ->
      check Alcotest.string "unicode escapes decode to UTF-8"
        "\xe2\x82\xac\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape decode failed");
  match Jsonenc.of_string "{\"a\":1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage must be rejected"

let test_json_nonfinite () =
  check Alcotest.string "nan is null" "null"
    (Jsonenc.to_string (Jsonenc.Float Float.nan));
  check Alcotest.string "inf is null" "null"
    (Jsonenc.to_string (Jsonenc.Float Float.infinity))

(* --- metrics -------------------------------------------------------------- *)

let test_histogram_buckets () =
  check Alcotest.int "0.5 -> bucket 0" 0 (Metrics.bucket_of_value 0.5);
  check Alcotest.int "1.0 -> bucket 1" 1 (Metrics.bucket_of_value 1.0);
  check Alcotest.int "1.99 -> bucket 1" 1 (Metrics.bucket_of_value 1.99);
  check Alcotest.int "2.0 -> bucket 2" 2 (Metrics.bucket_of_value 2.0);
  check Alcotest.int "4.0 -> bucket 3" 3 (Metrics.bucket_of_value 4.0);
  check Alcotest.int "huge -> bucket 63" 63 (Metrics.bucket_of_value 1e300);
  let lo, hi = Metrics.bucket_bounds 3 in
  check (Alcotest.float 0.0) "bucket 3 lower" 4.0 lo;
  check (Alcotest.float 0.0) "bucket 3 upper" 8.0 hi;
  (* boundaries land in the bucket whose inclusive lower bound they are *)
  List.iter
    (fun b ->
      let lo, _ = Metrics.bucket_bounds b in
      check Alcotest.int
        (Printf.sprintf "lower bound of bucket %d" b)
        b
        (Metrics.bucket_of_value lo))
    [ 1; 2; 3; 10; 30; 62 ]

let test_metrics_registry () =
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check Alcotest.int "counter" 5 (Metrics.count c);
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.0;
  Metrics.set_max g 1.0;
  Metrics.set_max g 7.0;
  let h = Metrics.histogram "test.hist" in
  Metrics.observe h 3.0;
  Metrics.observe h 3.5;
  let s = Metrics.snapshot () in
  check
    Alcotest.(list (pair string int))
    "counters" [ ("test.counter", 5) ] s.Metrics.counters;
  check
    Alcotest.(list (pair string (float 0.0)))
    "gauges keeps max" [ ("test.gauge", 7.0) ] s.Metrics.gauges;
  (match s.Metrics.histograms with
  | [ ("test.hist", hv) ] ->
      check Alcotest.int "hist count" 2 hv.Metrics.hv_count;
      check (Alcotest.float 1e-9) "hist sum" 6.5 hv.Metrics.hv_sum;
      check
        Alcotest.(list (pair int int))
        "hist buckets" [ (2, 2) ] hv.Metrics.hv_buckets
  | _ -> Alcotest.fail "expected exactly test.hist");
  (match
     try
       ignore (Metrics.gauge "test.counter");
       None
     with Invalid_argument m -> Some m
   with
  | Some _ -> ()
  | None -> Alcotest.fail "kind clash must raise");
  Metrics.reset ();
  check Alcotest.int "reset zeroes handles in place" 0 (Metrics.count c);
  let s = Metrics.snapshot () in
  check Alcotest.int "snapshot omits untouched instruments" 0
    (List.length s.Metrics.counters + List.length s.Metrics.gauges
   + List.length s.Metrics.histograms)

(* --- trace ---------------------------------------------------------------- *)

let span_names spans = List.map (fun (s : Trace.span) -> s.Trace.name) spans

let test_nil_sink_noop () =
  let ran = ref false in
  let out = Trace.with_span "outer" (fun () -> ran := true; 41 + 1) in
  check Alcotest.bool "function ran" true !ran;
  check Alcotest.int "result returned" 42 out;
  check Alcotest.int "no roots collected" 0 (List.length (Trace.roots ()));
  let s = Metrics.snapshot () in
  check Alcotest.bool "no span histograms under nil sink" true
    (not
       (List.exists
          (fun (n, _) -> String.length n >= 8 && String.sub n 0 8 = "span_us.")
          s.Metrics.histograms))

let test_span_nesting () =
  Trace.set_sink Trace.Memory;
  Clock.with_source (Clock.counter ~step_ns:100L ()) (fun () ->
      Trace.with_span "root" (fun () ->
          Trace.with_span "a" (fun () -> Trace.with_span "a1" ignore);
          Trace.with_span "b" ignore));
  match Trace.roots () with
  | [ root ] ->
      check Alcotest.string "root name" "root" root.Trace.name;
      check Alcotest.int "root depth" 0 root.Trace.depth;
      check
        Alcotest.(list string)
        "children in completion order" [ "a"; "b" ]
        (span_names (Trace.children_in_order root));
      let a = List.hd (Trace.children_in_order root) in
      check
        Alcotest.(list string)
        "grandchild" [ "a1" ]
        (span_names (Trace.children_in_order a));
      check (Alcotest.option Alcotest.string) "parent link" (Some "root")
        a.Trace.parent;
      check Alcotest.int "a1 depth" 2
        (List.hd (Trace.children_in_order a)).Trace.depth;
      check Alcotest.bool "durations from the deterministic clock" true
        (root.Trace.dur_ns > a.Trace.dur_ns)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_span_exception () =
  Trace.set_sink Trace.Memory;
  (try
     Trace.with_span "boom-root" (fun () ->
         Trace.with_span "child-ok" ignore;
         Trace.with_span "child-bad" (fun () -> failwith "kaboom"))
   with Failure _ -> ());
  match Trace.roots () with
  | [ root ] ->
      check Alcotest.string "exception recorded on root"
        "error: Failure(\"kaboom\")"
        (Trace.status_to_string root.Trace.status);
      let children = Trace.children_in_order root in
      check
        Alcotest.(list string)
        "both children finished" [ "child-ok"; "child-bad" ]
        (span_names children);
      check Alcotest.string "ok child stays ok" "ok"
        (Trace.status_to_string (List.hd children).Trace.status);
      (* a fresh span can be opened after the failure: current was restored *)
      Trace.with_span "after" ignore;
      check Alcotest.int "tracing still works" 2 (List.length (Trace.roots ()))
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_stream_sink_order () =
  let seen = ref [] in
  Trace.set_sink (Trace.Stream (fun s -> seen := s.Trace.name :: !seen));
  Trace.with_span "outer" (fun () -> Trace.with_span "inner" ignore);
  check
    Alcotest.(list string)
    "children stream before parents" [ "inner"; "outer" ]
    (List.rev !seen)

(* --- events --------------------------------------------------------------- *)

let test_events_buffer () =
  let buf = Buffer.create 256 in
  Events.set_sink (Events.Buffer buf);
  check Alcotest.bool "enabled" true (Events.enabled ());
  Clock.with_source (Clock.counter ~start:5L ~step_ns:1L ()) (fun () ->
      Events.emit "ping" ~fields:[ ("x", Jsonenc.Int 1) ];
      Events.emit_diag ~kind:"parse-error" ~subject:"img-1" ~detail:"d");
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  check Alcotest.int "two lines" 2 (List.length lines);
  List.iter
    (fun line ->
      match Jsonenc.of_string line with
      | Error e -> Alcotest.failf "unparseable event line %S: %s" line e
      | Ok v ->
          check Alcotest.bool "has ts_ns" true
            (Option.is_some
               (Option.bind (Jsonenc.member "ts_ns" v) Jsonenc.to_int_opt)))
    lines;
  match Jsonenc.of_string (List.nth lines 1) with
  | Ok v ->
      check
        (Alcotest.option Alcotest.string)
        "diag kind field" (Some "parse-error")
        (Option.bind (Jsonenc.member "diag_kind" v) Jsonenc.to_string_opt)
  | Error e -> Alcotest.failf "diag line: %s" e

(* --- summary -------------------------------------------------------------- *)

let test_summary_of_lines () =
  let span name parent depth start dur =
    Jsonenc.to_string
      (Jsonenc.Obj
         [
           ("ts_ns", Jsonenc.Int (start + dur));
           ("ev", Jsonenc.Str "span");
           ("name", Jsonenc.Str name);
           ( "parent",
             match parent with Some p -> Jsonenc.Str p | None -> Jsonenc.Null );
           ("depth", Jsonenc.Int depth);
           ("start_ns", Jsonenc.Int start);
           ("dur_ns", Jsonenc.Int dur);
           ("status", Jsonenc.Str "ok");
         ])
  in
  let lines =
    [
      span "ingest" (Some "learn") 1 0 300;
      span "mine" (Some "learn") 1 300 600;
      span "learn" None 0 0 1000;
      {|{"ts_ns":1,"ev":"diag","diag_kind":"parse-error","subject":"i","detail":"d"}|};
      {|{"ts_ns":2,"ev":"diag","diag_kind":"parse-error","subject":"j","detail":"d"}|};
      "this is not json";
      "";
    ]
  in
  let s = Summary.of_lines ~top:2 lines in
  check Alcotest.int "wall from root span" 1000 s.Summary.wall_ns;
  check Alcotest.int "span count" 3 s.Summary.span_count;
  check Alcotest.int "bad lines counted" 1 s.Summary.bad_lines;
  check Alcotest.int "top-k respected" 2 (List.length s.Summary.slowest);
  (match s.Summary.stages with
  | [ m; i ] ->
      check Alcotest.string "stages sorted by time" "mine" m.Summary.stage_name;
      check (Alcotest.float 0.01) "mine pct" 60.0 m.Summary.pct;
      check Alcotest.string "second stage" "ingest" i.Summary.stage_name
  | st -> Alcotest.failf "expected 2 stages, got %d" (List.length st));
  check (Alcotest.float 0.01) "coverage" 90.0 s.Summary.coverage_pct;
  check
    Alcotest.(list (pair string int))
    "diag kinds" [ ("parse-error", 2) ] s.Summary.diag_kinds;
  check Alcotest.int "event kinds include spans" 3
    (Option.value ~default:0 (List.assoc_opt "span" s.Summary.event_kinds))

let test_summary_of_file_tolerates_torn_final_line () =
  (* a kill mid-append leaves the log's last line incomplete: summarize
     must skip the torn record, flag the trace, and keep every whole
     line *)
  let whole =
    [
      {|{"ts_ns":1,"ev":"diag","diag_kind":"parse-error","subject":"i","detail":"d"}|};
      "not json at all";
    ]
  in
  let torn = {|{"ts_ns":2,"ev":"diag","diag_kind":"probe-fa|} in
  let path = Filename.temp_file "encore-test-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc (String.concat "\n" whole ^ "\n" ^ torn);
      close_out oc;
      (match Summary.of_file path with
      | Error e -> Alcotest.failf "of_file failed: %s" e
      | Ok s ->
          check Alcotest.bool "flagged truncated" true s.Summary.truncated;
          check Alcotest.int "torn line skipped, not counted bad" 1
            s.Summary.bad_lines;
          check Alcotest.int "whole events kept" 1
            (Option.value ~default:0
               (List.assoc_opt "diag" s.Summary.event_kinds));
          let rendered = Summary.to_string s in
          check Alcotest.bool "rendering notes the truncation" true
            (let needle = "truncated" in
             let n = String.length needle and l = String.length rendered in
             let rec scan i =
               i + n <= l && (String.sub rendered i n = needle || scan (i + 1))
             in
             scan 0));
      (* the same log with a clean final newline is not truncated *)
      let oc = open_out_bin path in
      output_string oc (String.concat "\n" whole ^ "\n");
      close_out oc;
      match Summary.of_file path with
      | Error e -> Alcotest.failf "clean of_file failed: %s" e
      | Ok s ->
          check Alcotest.bool "clean file not flagged" false s.Summary.truncated)

let test_summary_of_spans_matches_of_lines () =
  Trace.set_sink Trace.Memory;
  Clock.with_source (Clock.counter ~step_ns:50L ()) (fun () ->
      Trace.with_span "learn" (fun () ->
          Trace.with_span "ingest" ignore;
          Trace.with_span "assemble" ignore));
  let s = Summary.of_spans (Trace.roots ()) in
  check Alcotest.int "three spans" 3 s.Summary.span_count;
  check
    Alcotest.(list string)
    "stage names"
    [ "assemble"; "ingest" ]
    (List.sort compare
       (List.map (fun st -> st.Summary.stage_name) s.Summary.stages)
    |> List.sort compare);
  check Alcotest.bool "full coverage of synthetic tree" true
    (s.Summary.coverage_pct > 0.0)

(* --- determinism under a seeded workload ----------------------------------- *)

let seeded_snapshot () =
  Metrics.reset ();
  let profile = { Profile.ec2 with Profile.latent_error_rate = 0.0 } in
  let images =
    Population.images (Population.generate ~profile ~seed:11 Image.Mysql ~n:12)
  in
  match Encore.Pipeline.learn_resilient images with
  | Ok _ -> Jsonenc.to_string (Metrics.snapshot_to_json (Metrics.snapshot ()))
  | Error d ->
      Alcotest.failf "learn failed: %s"
        (Encore_util.Resilience.diagnostic_to_string d)

let test_snapshot_determinism () =
  (* trace sink stays Nil, so no timing histograms leak into the
     snapshot; everything left is a function of the seeded workload *)
  let a = seeded_snapshot () in
  let b = seeded_snapshot () in
  check Alcotest.string "identical snapshots for identical seeded runs" a b

let () =
  let t name f = Alcotest.test_case name `Quick (pristine f) in
  Alcotest.run "encore_obs"
    [
      ( "clock",
        [
          t "deterministic counter source" test_clock_counter;
          t "monotonic clamp" test_clock_monotonic_clamp;
        ] );
      ( "jsonenc",
        [
          t "escaping" test_json_escaping;
          t "roundtrip" test_json_roundtrip;
          t "non-finite floats" test_json_nonfinite;
        ] );
      ( "metrics",
        [
          t "log-scale bucket boundaries" test_histogram_buckets;
          t "registry operations" test_metrics_registry;
        ] );
      ( "trace",
        [
          t "nil sink is a no-op" test_nil_sink_noop;
          t "nesting and ordering" test_span_nesting;
          t "exception safety" test_span_exception;
          t "stream sink ordering" test_stream_sink_order;
        ] );
      ( "events",
        [ t "buffer sink emits parseable JSONL" test_events_buffer ] );
      ( "summary",
        [
          t "of_lines" test_summary_of_lines;
          t "of_file tolerates torn final line"
            test_summary_of_file_tolerates_torn_final_line;
          t "of_spans" test_summary_of_spans_matches_of_lines;
        ] );
      ( "determinism",
        [ t "seeded metric snapshots are identical" test_snapshot_determinism ] );
    ]
