(* Tests for the observability layer (lib/obs): span nesting and
   ordering — including under exceptions — histogram bucket
   boundaries, the JSONL encoder's escaping, nil-sink no-op cost
   paths, event-log emission, trace summarization and snapshot
   determinism of the metric registry under a seeded workload. *)

module Clock = Encore_obs.Clock
module Jsonenc = Encore_obs.Jsonenc
module Metrics = Encore_obs.Metrics
module Window = Encore_obs.Window
module Sampler = Encore_obs.Sampler
module Trace = Encore_obs.Trace
module Events = Encore_obs.Events
module Summary = Encore_obs.Summary
module Image = Encore_sysenv.Image
module Profile = Encore_workloads.Profile
module Population = Encore_workloads.Population

let check = Alcotest.check

(* Every test that touches the global sinks/registry restores a clean
   slate so suites stay order-independent. *)
let pristine f () =
  Fun.protect
    ~finally:(fun () ->
      Trace.set_sink Trace.Nil;
      Trace.clear ();
      Events.set_sink Events.Nil;
      Metrics.reset ();
      Clock.set_source Clock.default)
    f

(* --- clock ---------------------------------------------------------------- *)

let test_clock_counter () =
  let src = Clock.counter ~start:100L ~step_ns:10L () in
  check Alcotest.int64 "first" 100L (src ());
  check Alcotest.int64 "second" 110L (src ());
  Clock.with_source (Clock.counter ~step_ns:5L ()) (fun () ->
      check Alcotest.int64 "installed source" 0L (Clock.now_ns ());
      check Alcotest.int64 "advances" 5L (Clock.now_ns ()))

let test_clock_monotonic_clamp () =
  let values = ref [ 50L; 30L; 70L ] in
  let src () =
    match !values with
    | v :: rest ->
        values := rest;
        v
    | [] -> 99L
  in
  Clock.with_source src (fun () ->
      check Alcotest.int64 "initial" 50L (Clock.now_ns ());
      check Alcotest.int64 "backwards step clamped" 50L (Clock.now_ns ());
      check Alcotest.int64 "resumes" 70L (Clock.now_ns ()))

(* --- json encoder --------------------------------------------------------- *)

let roundtrip v =
  match Jsonenc.of_string (Jsonenc.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e

let test_json_escaping () =
  check Alcotest.string "quotes and backslash" {|"a\"b\\c"|}
    (Jsonenc.to_string (Jsonenc.Str {|a"b\c|}));
  check Alcotest.string "newline tab cr" {|"a\nb\tc\rd"|}
    (Jsonenc.to_string (Jsonenc.Str "a\nb\tc\rd"));
  check Alcotest.string "control char" {|"x\u0001y"|}
    (Jsonenc.to_string (Jsonenc.Str "x\x01y"));
  (* UTF-8 bytes above 0x7f pass through unescaped *)
  check Alcotest.string "non-ascii passthrough" "\"caf\xc3\xa9\""
    (Jsonenc.to_string (Jsonenc.Str "caf\xc3\xa9"))

let test_json_roundtrip () =
  let v =
    Jsonenc.Obj
      [
        ("s", Jsonenc.Str "he said \"hi\"\n\x02\xe2\x82\xac");
        ("n", Jsonenc.Int (-42));
        ("f", Jsonenc.Float 1.5);
        ("b", Jsonenc.Bool true);
        ("z", Jsonenc.Null);
        ("a", Jsonenc.Arr [ Jsonenc.Int 1; Jsonenc.Str "x" ]);
      ]
  in
  check Alcotest.bool "object round-trips" true (roundtrip v = v);
  (* decoder expands \uXXXX — including surrogate pairs — to UTF-8 *)
  (match Jsonenc.of_string {|"€😀"|} with
  | Ok (Jsonenc.Str s) ->
      check Alcotest.string "unicode escapes decode to UTF-8"
        "\xe2\x82\xac\xf0\x9f\x98\x80" s
  | Ok _ | Error _ -> Alcotest.fail "unicode escape decode failed");
  match Jsonenc.of_string "{\"a\":1} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage must be rejected"

let test_json_nonfinite () =
  check Alcotest.string "nan is null" "null"
    (Jsonenc.to_string (Jsonenc.Float Float.nan));
  check Alcotest.string "inf is null" "null"
    (Jsonenc.to_string (Jsonenc.Float Float.infinity))

(* --- metrics -------------------------------------------------------------- *)

let test_histogram_buckets () =
  check Alcotest.int "0.5 -> bucket 0" 0 (Metrics.bucket_of_value 0.5);
  check Alcotest.int "1.0 -> bucket 1" 1 (Metrics.bucket_of_value 1.0);
  check Alcotest.int "1.99 -> bucket 1" 1 (Metrics.bucket_of_value 1.99);
  check Alcotest.int "2.0 -> bucket 2" 2 (Metrics.bucket_of_value 2.0);
  check Alcotest.int "4.0 -> bucket 3" 3 (Metrics.bucket_of_value 4.0);
  check Alcotest.int "huge -> bucket 63" 63 (Metrics.bucket_of_value 1e300);
  let lo, hi = Metrics.bucket_bounds 3 in
  check (Alcotest.float 0.0) "bucket 3 lower" 4.0 lo;
  check (Alcotest.float 0.0) "bucket 3 upper" 8.0 hi;
  (* boundaries land in the bucket whose inclusive lower bound they are *)
  List.iter
    (fun b ->
      let lo, _ = Metrics.bucket_bounds b in
      check Alcotest.int
        (Printf.sprintf "lower bound of bucket %d" b)
        b
        (Metrics.bucket_of_value lo))
    [ 1; 2; 3; 10; 30; 62 ]

let test_metrics_registry () =
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check Alcotest.int "counter" 5 (Metrics.count c);
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.0;
  Metrics.set_max g 1.0;
  Metrics.set_max g 7.0;
  let h = Metrics.histogram "test.hist" in
  Metrics.observe h 3.0;
  Metrics.observe h 3.5;
  let s = Metrics.snapshot () in
  check
    Alcotest.(list (pair string int))
    "counters" [ ("test.counter", 5) ] s.Metrics.counters;
  check
    Alcotest.(list (pair string (float 0.0)))
    "gauges keeps max" [ ("test.gauge", 7.0) ] s.Metrics.gauges;
  (match s.Metrics.histograms with
  | [ ("test.hist", hv) ] ->
      check Alcotest.int "hist count" 2 hv.Metrics.hv_count;
      check (Alcotest.float 1e-9) "hist sum" 6.5 hv.Metrics.hv_sum;
      check
        Alcotest.(list (pair int int))
        "hist buckets" [ (2, 2) ] hv.Metrics.hv_buckets
  | _ -> Alcotest.fail "expected exactly test.hist");
  (match
     try
       ignore (Metrics.gauge "test.counter");
       None
     with Invalid_argument m -> Some m
   with
  | Some _ -> ()
  | None -> Alcotest.fail "kind clash must raise");
  Metrics.reset ();
  check Alcotest.int "reset zeroes handles in place" 0 (Metrics.count c);
  let s = Metrics.snapshot () in
  check Alcotest.int "snapshot omits untouched instruments" 0
    (List.length s.Metrics.counters + List.length s.Metrics.gauges
   + List.length s.Metrics.histograms)

let test_bucket_edge_cases () =
  check Alcotest.int "zero" 0 (Metrics.bucket_of_value 0.0);
  check Alcotest.int "negative zero" 0 (Metrics.bucket_of_value (-0.0));
  check Alcotest.int "negative" 0 (Metrics.bucket_of_value (-1.0));
  check Alcotest.int "very negative" 0 (Metrics.bucket_of_value (-1e300));
  check Alcotest.int "neg infinity" 0 (Metrics.bucket_of_value neg_infinity);
  check Alcotest.int "nan" 0 (Metrics.bucket_of_value Float.nan);
  check Alcotest.int "subnormal" 0
    (Metrics.bucket_of_value (Float.min_float /. 2.0));
  check Alcotest.int "infinity" (Metrics.n_buckets - 1)
    (Metrics.bucket_of_value infinity);
  check Alcotest.int "2^62" (Metrics.n_buckets - 1)
    (Metrics.bucket_of_value (Float.ldexp 1.0 62));
  check Alcotest.int "max float" (Metrics.n_buckets - 1)
    (Metrics.bucket_of_value Float.max_float)

(* property: any value inside [bucket_bounds b) maps back to bucket b.
   For 1 <= b <= 62 the bounds are [2^(b-1), 2^b), so lo *. (1 +. f)
   with f in [0, 1) covers the whole bucket without ever rounding onto
   the upper edge (lo is a power of two: the scaling is exact). *)
let prop_bucket_bounds_roundtrip =
  QCheck.Test.make ~name:"bucket_bounds/bucket_of_value roundtrip" ~count:500
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 (Metrics.n_buckets - 2))
           (float_bound_exclusive 1.0)))
    (fun (b, f) ->
      let lo, hi = Metrics.bucket_bounds b in
      let v = lo *. (1.0 +. f) in
      v >= lo && v < hi && Metrics.bucket_of_value v = b)

let prop_bucket_zero_absorbs =
  QCheck.Test.make ~name:"bucket 0 absorbs everything below 1" ~count:500
    (QCheck.make QCheck.Gen.(float_range (-1e9) 1.0))
    (fun v -> v >= 1.0 || Metrics.bucket_of_value v = 0)

let test_snapshot_to_prom () =
  let c = Metrics.counter (Metrics.labeled "detect.rule_fired" [ ("rule", "a->b") ]) in
  Metrics.incr ~by:3 c;
  let c2 =
    Metrics.counter (Metrics.labeled "detect.rule_fired" [ ("rule", "x\"y") ])
  in
  Metrics.incr c2;
  let g = Metrics.gauge "serve.sampled.breaker" in
  Metrics.set g 2.0;
  let h = Metrics.histogram "serve.request_us" in
  Metrics.observe h 3.0;
  Metrics.observe h 5.0;
  Metrics.observe h 5.0;
  check Alcotest.string "prometheus text"
    "# TYPE detect_rule_fired counter\n\
     detect_rule_fired{rule=\"a->b\"} 3\n\
     detect_rule_fired{rule=\"x\\\"y\"} 1\n\
     # TYPE serve_sampled_breaker gauge\n\
     serve_sampled_breaker 2\n\
     # TYPE serve_request_us histogram\n\
     serve_request_us_bucket{le=\"4\"} 1\n\
     serve_request_us_bucket{le=\"8\"} 3\n\
     serve_request_us_bucket{le=\"+Inf\"} 3\n\
     serve_request_us_sum 13\n\
     serve_request_us_count 3\n"
    (Metrics.snapshot_to_prom (Metrics.snapshot ()))

let test_labeled_names () =
  (* keys are sorted so the same label set always yields the same
     registry name, and values are escaped at construction *)
  check Alcotest.string "sorted keys" "m{a=\"1\",b=\"2\"}"
    (Metrics.labeled "m" [ ("b", "2"); ("a", "1") ]);
  check Alcotest.string "no labels" "m" (Metrics.labeled "m" []);
  check Alcotest.string "escaped value" "m{k=\"a\\\\b\\n\"}"
    (Metrics.labeled "m" [ ("k", "a\\b\n") ])

(* --- window --------------------------------------------------------------- *)

let test_window_quantiles () =
  let now = ref 0L in
  Clock.with_source (fun () -> !now) @@ fun () ->
  let w = Window.create ~intervals:4 ~interval_ns:1_000L () in
  for v = 1 to 100 do
    Window.observe w (float_of_int v)
  done;
  let v = Window.view w in
  check Alcotest.int "count" 100 v.Window.w_count;
  check (Alcotest.float 1e-9) "sum" 5050.0 v.Window.w_sum;
  check (Alcotest.float 1e-9) "max" 100.0 v.Window.w_max;
  (* values 1..100: rank 50 lands in bucket [32, 64) after 31 smaller
     observations -> 32 + (50-31)/32 * 32 = 51 exactly *)
  check (Alcotest.float 1e-9) "interpolated p50" 51.0 v.Window.w_p50;
  check Alcotest.bool "quantiles ordered" true
    (v.Window.w_p50 <= v.Window.w_p90 && v.Window.w_p90 <= v.Window.w_p99);
  check Alcotest.bool "estimates clamped to observed max" true
    (v.Window.w_p99 <= v.Window.w_max);
  check (Alcotest.float 1e-3) "rate = count / window span"
    (float_of_int v.Window.w_count /. v.Window.w_window_s)
    v.Window.w_rate

let test_window_expiry () =
  let now = ref 0L in
  Clock.with_source (fun () -> !now) @@ fun () ->
  let w = Window.create ~intervals:3 ~interval_ns:100L () in
  Window.observe w 10.0 (* interval 0 *);
  now := 150L;
  Window.observe w 20.0 (* interval 1 *);
  now := 250L;
  Window.observe w 30.0 (* interval 2 *);
  let v = Window.view w in
  check Alcotest.int "all three inside the window" 3 v.Window.w_count;
  check (Alcotest.float 1e-9) "merged max" 30.0 v.Window.w_max;
  now := 350L;
  let v = Window.view w in
  check Alcotest.int "oldest interval aged out" 2 v.Window.w_count;
  check (Alcotest.float 1e-9) "expired value gone from sum" 50.0 v.Window.w_sum;
  now := 10_000L;
  let v = Window.view w in
  check Alcotest.int "fully idle window is empty" 0 v.Window.w_count;
  check (Alcotest.float 1e-9) "empty window p99 is 0" 0.0 v.Window.w_p99;
  (* a stale slot is recycled in place by the next observation *)
  Window.observe w 5.0;
  let v = Window.view w in
  check Alcotest.int "recycled slot counts once" 1 v.Window.w_count;
  check (Alcotest.float 1e-9) "single value p99 clamps to it" 5.0
    v.Window.w_p99

let test_window_export () =
  let now = ref 0L in
  Clock.with_source (fun () -> !now) @@ fun () ->
  let w = Window.create ~intervals:2 ~interval_ns:1_000L () in
  Window.observe w 7.0;
  Window.export (Window.view w) ~prefix:"test.win";
  let s = Metrics.snapshot () in
  check
    (Alcotest.option (Alcotest.float 1e-9))
    "count gauge" (Some 1.0)
    (List.assoc_opt "test.win.count" s.Metrics.gauges);
  check
    (Alcotest.option (Alcotest.float 1e-9))
    "max gauge" (Some 7.0)
    (List.assoc_opt "test.win.max" s.Metrics.gauges);
  check Alcotest.bool "p99 gauge exported" true
    (List.mem_assoc "test.win.p99" s.Metrics.gauges)

(* --- sampler -------------------------------------------------------------- *)

let test_sampler_poll_cadence () =
  let now = ref 0L in
  Clock.with_source (fun () -> !now) @@ fun () ->
  let depth = ref 4.0 in
  let s =
    Sampler.create ~interval_ns:100L
      ~gauges:(fun () -> [ ("test.sampled.depth", !depth) ])
      ()
  in
  check Alcotest.bool "first poll always samples" true (Sampler.poll s);
  check Alcotest.bool "cadence not yet elapsed" false (Sampler.poll s);
  now := 99L;
  check Alcotest.bool "one ns short" false (Sampler.poll s);
  now := 100L;
  depth := 9.0;
  check Alcotest.bool "cadence elapsed" true (Sampler.poll s);
  check Alcotest.int "two captures" 2 (Sampler.samples s);
  let snap = Metrics.snapshot () in
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " gauge present") true
        (List.mem_assoc name snap.Metrics.gauges))
    [
      "runtime.gc.minor_collections";
      "runtime.gc.major_collections";
      "runtime.gc.compactions";
      "runtime.gc.heap_words";
      "runtime.gc.minor_words";
    ];
  check
    (Alcotest.option (Alcotest.float 1e-9))
    "caller gauge tracks the latest capture" (Some 9.0)
    (List.assoc_opt "test.sampled.depth" snap.Metrics.gauges)

(* --- trace ---------------------------------------------------------------- *)

let span_names spans = List.map (fun (s : Trace.span) -> s.Trace.name) spans

let test_nil_sink_noop () =
  let ran = ref false in
  let out = Trace.with_span "outer" (fun () -> ran := true; 41 + 1) in
  check Alcotest.bool "function ran" true !ran;
  check Alcotest.int "result returned" 42 out;
  check Alcotest.int "no roots collected" 0 (List.length (Trace.roots ()));
  let s = Metrics.snapshot () in
  check Alcotest.bool "no span histograms under nil sink" true
    (not
       (List.exists
          (fun (n, _) -> String.length n >= 8 && String.sub n 0 8 = "span_us.")
          s.Metrics.histograms))

let test_span_nesting () =
  Trace.set_sink Trace.Memory;
  Clock.with_source (Clock.counter ~step_ns:100L ()) (fun () ->
      Trace.with_span "root" (fun () ->
          Trace.with_span "a" (fun () -> Trace.with_span "a1" ignore);
          Trace.with_span "b" ignore));
  match Trace.roots () with
  | [ root ] ->
      check Alcotest.string "root name" "root" root.Trace.name;
      check Alcotest.int "root depth" 0 root.Trace.depth;
      check
        Alcotest.(list string)
        "children in completion order" [ "a"; "b" ]
        (span_names (Trace.children_in_order root));
      let a = List.hd (Trace.children_in_order root) in
      check
        Alcotest.(list string)
        "grandchild" [ "a1" ]
        (span_names (Trace.children_in_order a));
      check (Alcotest.option Alcotest.string) "parent link" (Some "root")
        a.Trace.parent;
      check Alcotest.int "a1 depth" 2
        (List.hd (Trace.children_in_order a)).Trace.depth;
      check Alcotest.bool "durations from the deterministic clock" true
        (root.Trace.dur_ns > a.Trace.dur_ns)
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_span_exception () =
  Trace.set_sink Trace.Memory;
  (try
     Trace.with_span "boom-root" (fun () ->
         Trace.with_span "child-ok" ignore;
         Trace.with_span "child-bad" (fun () -> failwith "kaboom"))
   with Failure _ -> ());
  match Trace.roots () with
  | [ root ] ->
      check Alcotest.string "exception recorded on root"
        "error: Failure(\"kaboom\")"
        (Trace.status_to_string root.Trace.status);
      let children = Trace.children_in_order root in
      check
        Alcotest.(list string)
        "both children finished" [ "child-ok"; "child-bad" ]
        (span_names children);
      check Alcotest.string "ok child stays ok" "ok"
        (Trace.status_to_string (List.hd children).Trace.status);
      (* a fresh span can be opened after the failure: current was restored *)
      Trace.with_span "after" ignore;
      check Alcotest.int "tracing still works" 2 (List.length (Trace.roots ()))
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_stream_sink_order () =
  let seen = ref [] in
  Trace.set_sink (Trace.Stream (fun s -> seen := s.Trace.name :: !seen));
  Trace.with_span "outer" (fun () -> Trace.with_span "inner" ignore);
  check
    Alcotest.(list string)
    "children stream before parents" [ "inner"; "outer" ]
    (List.rev !seen)

(* --- events --------------------------------------------------------------- *)

let test_events_buffer () =
  let buf = Buffer.create 256 in
  Events.set_sink (Events.Buffer buf);
  check Alcotest.bool "enabled" true (Events.enabled ());
  Clock.with_source (Clock.counter ~start:5L ~step_ns:1L ()) (fun () ->
      Events.emit "ping" ~fields:[ ("x", Jsonenc.Int 1) ];
      Events.emit_diag ~kind:"parse-error" ~subject:"img-1" ~detail:"d");
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  check Alcotest.int "two lines" 2 (List.length lines);
  List.iter
    (fun line ->
      match Jsonenc.of_string line with
      | Error e -> Alcotest.failf "unparseable event line %S: %s" line e
      | Ok v ->
          check Alcotest.bool "has ts_ns" true
            (Option.is_some
               (Option.bind (Jsonenc.member "ts_ns" v) Jsonenc.to_int_opt)))
    lines;
  match Jsonenc.of_string (List.nth lines 1) with
  | Ok v ->
      check
        (Alcotest.option Alcotest.string)
        "diag kind field" (Some "parse-error")
        (Option.bind (Jsonenc.member "diag_kind" v) Jsonenc.to_string_opt)
  | Error e -> Alcotest.failf "diag line: %s" e

(* --- summary -------------------------------------------------------------- *)

let test_summary_of_lines () =
  let span name parent depth start dur =
    Jsonenc.to_string
      (Jsonenc.Obj
         [
           ("ts_ns", Jsonenc.Int (start + dur));
           ("ev", Jsonenc.Str "span");
           ("name", Jsonenc.Str name);
           ( "parent",
             match parent with Some p -> Jsonenc.Str p | None -> Jsonenc.Null );
           ("depth", Jsonenc.Int depth);
           ("start_ns", Jsonenc.Int start);
           ("dur_ns", Jsonenc.Int dur);
           ("status", Jsonenc.Str "ok");
         ])
  in
  let lines =
    [
      span "ingest" (Some "learn") 1 0 300;
      span "mine" (Some "learn") 1 300 600;
      span "learn" None 0 0 1000;
      {|{"ts_ns":1,"ev":"diag","diag_kind":"parse-error","subject":"i","detail":"d"}|};
      {|{"ts_ns":2,"ev":"diag","diag_kind":"parse-error","subject":"j","detail":"d"}|};
      "this is not json";
      "";
    ]
  in
  let s = Summary.of_lines ~top:2 lines in
  check Alcotest.int "wall from root span" 1000 s.Summary.wall_ns;
  check Alcotest.int "span count" 3 s.Summary.span_count;
  check Alcotest.int "bad lines counted" 1 s.Summary.bad_lines;
  check Alcotest.int "top-k respected" 2 (List.length s.Summary.slowest);
  (match s.Summary.stages with
  | [ m; i ] ->
      check Alcotest.string "stages sorted by time" "mine" m.Summary.stage_name;
      check (Alcotest.float 0.01) "mine pct" 60.0 m.Summary.pct;
      check Alcotest.string "second stage" "ingest" i.Summary.stage_name
  | st -> Alcotest.failf "expected 2 stages, got %d" (List.length st));
  check (Alcotest.float 0.01) "coverage" 90.0 s.Summary.coverage_pct;
  check
    Alcotest.(list (pair string int))
    "diag kinds" [ ("parse-error", 2) ] s.Summary.diag_kinds;
  check Alcotest.int "event kinds include spans" 3
    (Option.value ~default:0 (List.assoc_opt "span" s.Summary.event_kinds))

let test_summary_of_file_tolerates_torn_final_line () =
  (* a kill mid-append leaves the log's last line incomplete: summarize
     must skip the torn record, flag the trace, and keep every whole
     line *)
  let whole =
    [
      {|{"ts_ns":1,"ev":"diag","diag_kind":"parse-error","subject":"i","detail":"d"}|};
      "not json at all";
    ]
  in
  let torn = {|{"ts_ns":2,"ev":"diag","diag_kind":"probe-fa|} in
  let path = Filename.temp_file "encore-test-trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc (String.concat "\n" whole ^ "\n" ^ torn);
      close_out oc;
      (match Summary.of_file path with
      | Error e -> Alcotest.failf "of_file failed: %s" e
      | Ok s ->
          check Alcotest.bool "flagged truncated" true s.Summary.truncated;
          check Alcotest.int "torn line skipped, not counted bad" 1
            s.Summary.bad_lines;
          check Alcotest.int "whole events kept" 1
            (Option.value ~default:0
               (List.assoc_opt "diag" s.Summary.event_kinds));
          let rendered = Summary.to_string s in
          check Alcotest.bool "rendering notes the truncation" true
            (let needle = "truncated" in
             let n = String.length needle and l = String.length rendered in
             let rec scan i =
               i + n <= l && (String.sub rendered i n = needle || scan (i + 1))
             in
             scan 0));
      (* the same log with a clean final newline is not truncated *)
      let oc = open_out_bin path in
      output_string oc (String.concat "\n" whole ^ "\n");
      close_out oc;
      match Summary.of_file path with
      | Error e -> Alcotest.failf "clean of_file failed: %s" e
      | Ok s ->
          check Alcotest.bool "clean file not flagged" false s.Summary.truncated)

let test_summary_of_spans_matches_of_lines () =
  Trace.set_sink Trace.Memory;
  Clock.with_source (Clock.counter ~step_ns:50L ()) (fun () ->
      Trace.with_span "learn" (fun () ->
          Trace.with_span "ingest" ignore;
          Trace.with_span "assemble" ignore));
  let s = Summary.of_spans (Trace.roots ()) in
  check Alcotest.int "three spans" 3 s.Summary.span_count;
  check
    Alcotest.(list string)
    "stage names"
    [ "assemble"; "ingest" ]
    (List.sort compare
       (List.map (fun st -> st.Summary.stage_name) s.Summary.stages)
    |> List.sort compare);
  check Alcotest.bool "full coverage of synthetic tree" true
    (s.Summary.coverage_pct > 0.0)

let test_summary_of_spans_truncated () =
  Trace.set_sink Trace.Memory;
  Trace.with_span "learn" ignore;
  let s = Summary.of_spans ~truncated:true (Trace.roots ()) in
  check Alcotest.bool "truncated flag forwarded" true s.Summary.truncated;
  let s = Summary.of_spans (Trace.roots ()) in
  check Alcotest.bool "defaults to not truncated" false s.Summary.truncated

let test_summary_of_file_empty_and_blank () =
  let path = Filename.temp_file "encore-test-blank" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* a zero-byte log: no spans, no bad lines, not truncated *)
      (match Summary.of_file path with
      | Error e -> Alcotest.failf "empty of_file failed: %s" e
      | Ok s ->
          check Alcotest.int "empty file has no spans" 0 s.Summary.span_count;
          check Alcotest.int "empty file has no events" 0 s.Summary.event_count;
          check Alcotest.int "empty file has no bad lines" 0
            s.Summary.bad_lines;
          check Alcotest.bool "empty file not truncated" false
            s.Summary.truncated;
          check Alcotest.int "empty file wall" 0 s.Summary.wall_ns);
      (* whitespace-only lines are skipped, not counted bad *)
      let oc = open_out_bin path in
      output_string oc "   \n\t\n \n";
      close_out oc;
      match Summary.of_file path with
      | Error e -> Alcotest.failf "blank of_file failed: %s" e
      | Ok s ->
          check Alcotest.int "blank lines yield no events" 0
            s.Summary.event_count;
          check Alcotest.int "blank lines are not bad lines" 0
            s.Summary.bad_lines;
          check Alcotest.bool "newline-terminated blanks not truncated" false
            s.Summary.truncated)

(* --- determinism under a seeded workload ----------------------------------- *)

let seeded_snapshot () =
  Metrics.reset ();
  let profile = { Profile.ec2 with Profile.latent_error_rate = 0.0 } in
  let images =
    Population.images (Population.generate ~profile ~seed:11 Image.Mysql ~n:12)
  in
  match Encore.Pipeline.learn_resilient images with
  | Ok _ -> Jsonenc.to_string (Metrics.snapshot_to_json (Metrics.snapshot ()))
  | Error d ->
      Alcotest.failf "learn failed: %s"
        (Encore_util.Resilience.diagnostic_to_string d)

let test_snapshot_determinism () =
  (* trace sink stays Nil, so no timing histograms leak into the
     snapshot; everything left is a function of the seeded workload *)
  let a = seeded_snapshot () in
  let b = seeded_snapshot () in
  check Alcotest.string "identical snapshots for identical seeded runs" a b

let () =
  let t name f = Alcotest.test_case name `Quick (pristine f) in
  Alcotest.run "encore_obs"
    [
      ( "clock",
        [
          t "deterministic counter source" test_clock_counter;
          t "monotonic clamp" test_clock_monotonic_clamp;
        ] );
      ( "jsonenc",
        [
          t "escaping" test_json_escaping;
          t "roundtrip" test_json_roundtrip;
          t "non-finite floats" test_json_nonfinite;
        ] );
      ( "metrics",
        [
          t "log-scale bucket boundaries" test_histogram_buckets;
          t "registry operations" test_metrics_registry;
          t "bucket edge cases" test_bucket_edge_cases;
          QCheck_alcotest.to_alcotest prop_bucket_bounds_roundtrip;
          QCheck_alcotest.to_alcotest prop_bucket_zero_absorbs;
          t "prometheus exposition" test_snapshot_to_prom;
          t "labeled series names" test_labeled_names;
        ] );
      ( "window",
        [
          t "interpolated quantiles" test_window_quantiles;
          t "interval expiry and recycling" test_window_expiry;
          t "export mirrors into gauges" test_window_export;
        ] );
      ( "sampler",
        [ t "poll cadence and gauges" test_sampler_poll_cadence ] );
      ( "trace",
        [
          t "nil sink is a no-op" test_nil_sink_noop;
          t "nesting and ordering" test_span_nesting;
          t "exception safety" test_span_exception;
          t "stream sink ordering" test_stream_sink_order;
        ] );
      ( "events",
        [ t "buffer sink emits parseable JSONL" test_events_buffer ] );
      ( "summary",
        [
          t "of_lines" test_summary_of_lines;
          t "of_file tolerates torn final line"
            test_summary_of_file_tolerates_torn_final_line;
          t "of_spans" test_summary_of_spans_matches_of_lines;
          t "of_spans truncated passthrough" test_summary_of_spans_truncated;
          t "of_file on empty and blank files"
            test_summary_of_file_empty_and_blank;
        ] );
      ( "determinism",
        [ t "seeded metric snapshots are identical" test_snapshot_determinism ] );
    ]
