(* Tests for the adoption-grade extensions: model serialization, the
   repair advisor, rule-guided test generation, collector restore and
   the ablation harness. *)

module Population = Encore_workloads.Population
module Profile = Encore_workloads.Profile
module Detector = Encore_detect.Detector
module Model_io = Encore_detect.Model_io
module Advisor = Encore_detect.Advisor
module Warning = Encore_detect.Warning
module Testgen = Encore.Testgen
module Collector = Encore_sysenv.Collector
module Image = Encore_sysenv.Image
module Fs = Encore_sysenv.Fs
module Prng = Encore_util.Prng
module Strutil = Encore_util.Strutil

let check = Alcotest.check

let trained =
  lazy
    (let images = Population.clean (Population.generate ~seed:11 Image.Mysql ~n:40) in
     (Detector.learn images, images))

let model () = fst (Lazy.force trained)

(* --- Model_io ------------------------------------------------------------- *)

let test_model_roundtrip () =
  let m = model () in
  match Model_io.of_string (Model_io.to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m2 ->
      check Alcotest.int "training count" m.Detector.training_count
        m2.Detector.training_count;
      check Alcotest.int "rules" (List.length m.Detector.rules)
        (List.length m2.Detector.rules);
      check Alcotest.int "types" (List.length m.Detector.types)
        (List.length m2.Detector.types);
      check Alcotest.int "value stats" (List.length m.Detector.value_stats)
        (List.length m2.Detector.value_stats);
      check (Alcotest.list Alcotest.string) "attrs" m.Detector.known_attrs
        m2.Detector.known_attrs;
      (* rule payloads identical, rendered form is canonical *)
      check (Alcotest.list Alcotest.string) "rules content"
        (List.map Encore_rules.Template.rule_to_string m.Detector.rules)
        (List.map Encore_rules.Template.rule_to_string m2.Detector.rules)

let test_model_restored_detects () =
  (* a restored model must behave identically on a faulted target *)
  let m = model () in
  let m2 = Result.get_ok (Model_io.of_string (Model_io.to_string m)) in
  let rng = Prng.create 1234 in
  let target = Population.generator_for Image.Mysql Profile.ec2 rng ~id:"restored" in
  let datadir =
    Option.get
      (Encore_confparse.Kv.find
         (Encore_confparse.Registry.parse_image target)
         "mysql/mysqld/datadir")
  in
  let broken =
    Image.with_fs target (Fs.chown target.Image.fs datadir ~owner:"root" ~group:"root")
  in
  let w1 = List.map (fun w -> w.Warning.message) (Detector.check m broken) in
  let w2 = List.map (fun w -> w.Warning.message) (Detector.check m2 broken) in
  check (Alcotest.list Alcotest.string) "identical reports" w1 w2;
  check Alcotest.bool "fault detected" true (w1 <> [])

let test_model_io_rejects_garbage () =
  check Alcotest.bool "empty" true (Result.is_error (Model_io.of_string ""));
  check Alcotest.bool "bad header" true
    (Result.is_error (Model_io.of_string "NOT-A-MODEL 9\n"));
  check Alcotest.bool "truncated" true
    (Result.is_error (Model_io.of_string "ENCORE-MODEL 1\n@meta\n5\n"))

let test_model_io_file_roundtrip () =
  let m = model () in
  let path = Filename.temp_file "encore" ".model" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Model_io.save path m;
      match Model_io.load path with
      | Ok m2 ->
          check Alcotest.int "rules over file" (List.length m.Detector.rules)
            (List.length m2.Detector.rules)
      | Error e -> Alcotest.fail (Model_io.load_error_to_string e))

(* --- Advisor -------------------------------------------------------------- *)

let faulted_target () =
  let rng = Prng.create 77 in
  let target = Population.generator_for Image.Mysql Profile.ec2 rng ~id:"advice" in
  let datadir =
    Option.get
      (Encore_confparse.Kv.find
         (Encore_confparse.Registry.parse_image target)
         "mysql/mysqld/datadir")
  in
  ( Image.with_fs target
      (Fs.chown target.Image.fs datadir ~owner:"root" ~group:"root"),
    datadir )

let test_advisor_ownership_fix () =
  let m = model () in
  let broken, datadir = faulted_target () in
  let warnings = Detector.check m broken in
  let suggestions = Advisor.advise m broken warnings in
  check Alcotest.int "one suggestion per warning" (List.length warnings)
    (List.length suggestions);
  let chown =
    List.find_opt
      (fun s -> Strutil.starts_with ~prefix:"chown " s.Advisor.action)
      suggestions
  in
  match chown with
  | Some s ->
      check Alcotest.bool "names the path" true
        (Strutil.contains_sub s.Advisor.action datadir)
  | None -> Alcotest.fail "no chown suggestion for an ownership violation"

let test_advisor_name_fix () =
  let m = model () in
  let rng = Prng.create 78 in
  let target = Population.generator_for Image.Mysql Profile.ec2 rng ~id:"typo" in
  let broken =
    match Image.config_for target Image.Mysql with
    | Some cf ->
        Image.set_config target Image.Mysql
          (cf.Image.text ^ "datdir = /var/lib/mysql\n")
    | None -> target
  in
  let warnings = Detector.check m broken in
  let suggestions = Advisor.advise m broken warnings in
  check Alcotest.bool "rename suggestion" true
    (List.exists
       (fun s ->
         Strutil.starts_with ~prefix:"rename " s.Advisor.action
         && Strutil.contains_sub s.Advisor.action "datadir")
       suggestions)

let test_advisor_report_renders () =
  let m = model () in
  let broken, _ = faulted_target () in
  let out = Advisor.to_string (Advisor.advise m broken (Detector.check m broken)) in
  check Alcotest.bool "has fix lines" true (Strutil.contains_sub out "fix:");
  check Alcotest.bool "has why lines" true (Strutil.contains_sub out "why:")

(* --- Testgen -------------------------------------------------------------- *)

let test_testgen_generates_cases () =
  let m = model () in
  let rng = Prng.create 501 in
  let img = Population.generator_for Image.Mysql Profile.ec2 rng ~id:"testgen" in
  let cases = Testgen.generate m img in
  check Alcotest.bool "cases produced" true (List.length cases > 5);
  (* each case mutates the image *)
  List.iter
    (fun (c : Testgen.test_case) ->
      check Alcotest.bool "image differs" true
        (c.Testgen.image <> img || c.Testgen.description <> ""))
    cases

let test_testgen_cases_detected () =
  (* the self-test loop: the detector must re-flag the targeted rule in
     a very high fraction of generated cases *)
  let m = model () in
  let rng = Prng.create 502 in
  let img = Population.generator_for Image.Mysql Profile.ec2 rng ~id:"loop" in
  let cases = Testgen.generate m img in
  let verified = List.filter (Testgen.verify_detected m) cases in
  check Alcotest.bool
    (Printf.sprintf "most cases re-detected (%d/%d)" (List.length verified)
       (List.length cases))
    true
    (List.length verified * 10 >= List.length cases * 7)

let test_testgen_skips_inapplicable () =
  (* an image with no config entries yields no cases *)
  let m = model () in
  let empty = Image.make ~id:"empty" [] in
  check Alcotest.int "no cases" 0 (List.length (Testgen.generate m empty))

(* --- Collector restore ------------------------------------------------------ *)

let test_collector_restore_roundtrip () =
  let rng = Prng.create 91 in
  let img = Population.generator_for Image.Mysql Profile.private_cloud rng ~id:"rt" in
  let records = Collector.collect img in
  let restored = Collector.restore ~id:"rt" ~configs:img.Image.configs records in
  check Alcotest.string "hostname" img.Image.hostname restored.Image.hostname;
  check Alcotest.string "ip" img.Image.ip_address restored.Image.ip_address;
  check Alcotest.bool "hardware" true (restored.Image.hardware = img.Image.hardware);
  (* filesystem equivalence over all paths *)
  let paths = Fs.all_paths img.Image.fs in
  check (Alcotest.list Alcotest.string) "paths" paths (Fs.all_paths restored.Image.fs);
  List.iter
    (fun p ->
      let m1 = Option.get (Fs.lookup img.Image.fs p) in
      let m2 = Option.get (Fs.lookup restored.Image.fs p) in
      check Alcotest.string ("owner " ^ p) m1.Fs.owner m2.Fs.owner;
      check Alcotest.int ("perm " ^ p) m1.Fs.perm m2.Fs.perm)
    paths;
  (* accounts and services preserved *)
  check Alcotest.bool "mysql user" true
    (Encore_sysenv.Accounts.user_exists restored.Image.accounts "mysql");
  check Alcotest.bool "3306 known" true
    (Encore_sysenv.Services.known_port restored.Image.services 3306)

let test_collector_restore_checks_identically () =
  (* the whole point: a dump shipped from a remote machine must check
     exactly like the original image *)
  let m = model () in
  let broken, _ = faulted_target () in
  let records = Collector.collect broken in
  let restored = Collector.restore ~id:"remote" ~configs:broken.Image.configs records in
  let w1 = List.map (fun w -> w.Warning.message) (Detector.check m broken) in
  let w2 = List.map (fun w -> w.Warning.message) (Detector.check m restored) in
  check (Alcotest.list Alcotest.string) "same verdicts" w1 w2

(* --- Ablation -------------------------------------------------------------- *)

let test_ablation_tables_render () =
  let scale = Encore.Experiments.test_scale in
  let tables = Encore.Ablation.all ~scale () in
  check Alcotest.int "five ablations" 5 (List.length tables);
  List.iter
    (fun (t : Encore.Experiments.table) ->
      check Alcotest.bool (t.Encore.Experiments.exp_id ^ " has rows") true
        (t.Encore.Experiments.rows <> []);
      check Alcotest.bool "renders" true
        (String.length (Encore.Experiments.render t) > 0))
    tables

let test_ablation_type_selection_reduces () =
  let t = Encore.Ablation.type_selection ~scale:Encore.Experiments.test_scale () in
  List.iter
    (fun row ->
      match row with
      | [ _; _; typed; untyped; _ ] ->
          check Alcotest.bool "typed < untyped" true
            (int_of_string typed < int_of_string untyped)
      | _ -> Alcotest.fail "bad row")
    t.Encore.Experiments.rows

let () =
  Alcotest.run "encore_extensions"
    [
      ( "model-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_model_roundtrip;
          Alcotest.test_case "restored model detects" `Quick test_model_restored_detects;
          Alcotest.test_case "rejects garbage" `Quick test_model_io_rejects_garbage;
          Alcotest.test_case "file roundtrip" `Quick test_model_io_file_roundtrip;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "ownership fix" `Quick test_advisor_ownership_fix;
          Alcotest.test_case "rename fix" `Quick test_advisor_name_fix;
          Alcotest.test_case "report renders" `Quick test_advisor_report_renders;
        ] );
      ( "testgen",
        [
          Alcotest.test_case "generates cases" `Quick test_testgen_generates_cases;
          Alcotest.test_case "cases re-detected" `Quick test_testgen_cases_detected;
          Alcotest.test_case "skips inapplicable" `Quick test_testgen_skips_inapplicable;
        ] );
      ( "collector-restore",
        [
          Alcotest.test_case "environment roundtrip" `Quick test_collector_restore_roundtrip;
          Alcotest.test_case "checks identically" `Quick
            test_collector_restore_checks_identically;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "tables render" `Slow test_ablation_tables_render;
          Alcotest.test_case "type selection reduces" `Slow
            test_ablation_type_selection_reduces;
        ] );
    ]
