(* Tests for the concurrent serving stack grown in PR 9: the
   write-ahead request journal (framing, torn-tail truncation, replay
   convergence and idempotence), shadow-validated model reload with
   automatic rollback, the select multiplexer's hostile-client bounds
   (slowloris eviction, frame overflow, torn EOF frames, drain byes),
   the filesystem watcher, and a QCheck property that interleaved
   multi-client serving answers each client exactly as a serial run
   would. *)

module Image = Encore_sysenv.Image
module Collector = Encore_sysenv.Collector
module Population = Encore_workloads.Population
module Profile = Encore_workloads.Profile
module Prng = Encore_util.Prng
module Json = Encore_obs.Jsonenc
module Cache = Encore_serve.Cache
module Server = Encore_serve.Server
module Journal = Encore_serve.Journal
module Mux = Encore_serve.Mux
module Fswatch = Encore_serve.Fswatch
module Detector = Encore_detect.Detector
module Conferr = Encore_inject.Conferr
module Chaosrun = Encore.Chaosrun

let check = Alcotest.check

(* --- fixtures -------------------------------------------------------------- *)

let model =
  lazy
    (Detector.learn
       (Population.clean (Population.generate ~seed:11 Image.Mysql ~n:40)))

let target seed id =
  Population.generator_for Image.Mysql Profile.ec2 (Prng.create seed) ~id

let mutate_config rng img =
  let campaign = Conferr.inject rng Image.Mysql img ~n:1 in
  match Image.config_for campaign.Conferr.image Image.Mysql with
  | Some c -> c.Image.text
  | None -> Alcotest.fail "mutant lost its mysql config"

let str_field name j = Option.bind (Json.member name j) Json.to_string_opt

let bool_field name j =
  match Json.member name j with Some (Json.Bool b) -> Some b | _ -> None

let is_ok j = bool_field "ok" j = Some true

let contains hay needle =
  let n = String.length needle and l = String.length hay in
  let rec scan i = i + n <= l && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let line fields = Json.to_string (Json.Obj fields)

let check_line ?id img =
  let id = match id with Some i -> [ ("id", Json.Str i) ] | None -> [] in
  line
    (("op", Json.Str "check")
    :: id
    @ [ ("image", Json.Str (Collector.image_to_text img)) ])

let op_line ?id op =
  let id = match id with Some i -> [ ("id", Json.Str i) ] | None -> [] in
  line (("op", Json.Str op) :: id)

let tmp_name =
  let counter = ref 0 in
  fun stem ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "encore-mux-%d-%d-%s" (Unix.getpid ()) !counter stem)

let write_raw path text =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  ignore (Unix.write_substring fd text 0 (String.length text));
  Unix.close fd

let mk_cache () = Cache.create ~provider:(fun ~app:_ -> Ok (Lazy.force model))

let make_server ?(config = Server.default_config) ?journal () =
  Server.create ~config ?journal (mk_cache ())

(* --- journal framing and recovery ------------------------------------------ *)

let test_journal_roundtrip () =
  let path = tmp_name "roundtrip.wal" in
  (match Journal.open_ ~path with
  | Error e -> Alcotest.fail e
  | Ok (j, r) ->
      check Alcotest.int "fresh journal is empty" 0
        (List.length r.Journal.entries);
      check Alcotest.int "first seq" 1 (Journal.append j "t-000001 alpha");
      check Alcotest.int "second seq" 2 (Journal.append j "t-000002 beta\nwith newline");
      Journal.mark_done j 1;
      Journal.close j);
  (match Journal.open_ ~path with
  | Error e -> Alcotest.fail e
  | Ok (j, r) ->
      check Alcotest.int "both entries recovered" 2
        (List.length r.Journal.entries);
      check
        Alcotest.(list (pair string bool))
        "payloads and completion marks survive"
        [ ("t-000001 alpha", true); ("t-000002 beta\nwith newline", false) ]
        (List.map
           (fun (e : Journal.entry) -> (e.payload, e.completed))
           r.Journal.entries);
      check Alcotest.bool "no torn tail" true (r.Journal.truncated_at = None);
      (* sequence numbering resumes after the recovered tail *)
      check Alcotest.int "next seq continues" 3 (Journal.append j "t-000003 gamma");
      Journal.close j);
  Sys.remove path

let test_journal_torn_tail_truncated () =
  let path = tmp_name "torn.wal" in
  (match Journal.open_ ~path with
  | Error e -> Alcotest.fail e
  | Ok (j, _) ->
      ignore (Journal.append j "t-000001 alpha");
      ignore (Journal.append j "t-000002 beta");
      Journal.close j);
  let good_size = (Unix.stat path).Unix.st_size in
  (* a crash mid-append: valid header, payload cut short *)
  write_raw path "EJRNL1 R 3 64 0123456789abcdef0123456789abcdef\ntorn";
  (match Journal.open_ ~path with
  | Error e -> Alcotest.fail e
  | Ok (j, r) ->
      check Alcotest.int "good records kept" 2 (List.length r.Journal.entries);
      check Alcotest.bool "tear detected" true (r.Journal.truncated_at <> None);
      check Alcotest.int "file physically truncated" good_size
        (Unix.stat path).Unix.st_size;
      Journal.close j);
  (* a digest mismatch ends the scan at the corrupt record *)
  write_raw path
    (Printf.sprintf "EJRNL1 R 3 5 %s\nhello\n"
       (Digest.to_hex (Digest.string "other")));
  (match Journal.open_ ~path with
  | Error e -> Alcotest.fail e
  | Ok (j, r) ->
      check Alcotest.int "corrupt record dropped" 2
        (List.length r.Journal.entries);
      check Alcotest.bool "corruption counted as a tear" true
        (r.Journal.truncated_at <> None);
      Journal.close j);
  Sys.remove path

(* Crash recovery end to end at the server level: journal a mix of
   alert-producing checks, step only part of it, abandon the server,
   then recover.  Replay must converge on the reference (an
   uninterrupted replay of the same entries) byte-for-byte — responses
   and alert ring — and a second recovery must be idempotent. *)
let test_journal_replay_convergence () =
  let path = tmp_name "replay.wal" in
  let config =
    {
      Server.default_config with
      Server.queue_capacity = 64;
      ring_capacity = 3;
      alert_score = 0.0;
    }
  in
  let rng = Prng.create 51 in
  let lines =
    List.init 8 (fun i ->
        let img = target (700 + i) (Printf.sprintf "rp-%d" i) in
        let drifted = Image.set_config img Image.Mysql (mutate_config rng img) in
        check_line ~id:(Printf.sprintf "c%d" i) drifted)
  in
  (match Journal.open_ ~path with
  | Error e -> Alcotest.fail e
  | Ok (j, _) ->
      let srv = make_server ~config ~journal:j () in
      List.iter (fun l -> ignore (Server.offer srv l)) lines;
      (* the "crash": only three requests answered, the rest queued *)
      for _ = 1 to 3 do
        ignore (Server.step srv)
      done;
      Journal.close j);
  let collect journal entries =
    let srv = make_server ~config ?journal () in
    let emitted = ref [] in
    ignore
      (Server.replay srv ~entries ~emit:(fun (e : Journal.entry) resps ->
           emitted :=
             (e.Journal.seq, e.Journal.completed,
              String.concat "\n" (List.map Json.to_string resps))
             :: !emitted));
    (List.rev !emitted, List.map Json.to_string (Server.alerts srv), srv)
  in
  match Journal.open_ ~path with
  | Error e -> Alcotest.fail e
  | Ok (j2, r) ->
      check Alcotest.int "every offered line journaled" 8
        (List.length r.Journal.entries);
      check Alcotest.int "three completion marks survived" 3
        (List.length
           (List.filter (fun (e : Journal.entry) -> e.completed)
              r.Journal.entries));
      let recovered, ring2, srv2 = collect (Some j2) r.Journal.entries in
      let reference, ring3, _ = collect None r.Journal.entries in
      check Alcotest.bool "replayed responses match the uninterrupted run"
        true
        (List.map (fun (s, _, r) -> (s, r)) recovered
        = List.map (fun (s, _, r) -> (s, r)) reference);
      check Alcotest.(list string) "alert ring byte-identical" ring3 ring2;
      (* the 3-slot ring dropped the oldest replay-inserted alerts *)
      check Alcotest.int "ring kept its bound" 3 (List.length ring2);
      check Alcotest.bool "drop-oldest under replay" true
        (Server.ring_dropped srv2 > 0);
      check Alcotest.int "replayed counter" 8 (Server.replayed_count srv2);
      Journal.close j2;
      (* second restart: everything marked complete, same state again *)
      (match Journal.open_ ~path with
      | Error e -> Alcotest.fail e
      | Ok (j4, r2) ->
          Journal.close j4;
          check Alcotest.bool "all entries completed after recovery" true
            (List.for_all
               (fun (e : Journal.entry) -> e.completed)
               r2.Journal.entries);
          let again, ring4, _ = collect None r2.Journal.entries in
          check Alcotest.bool "second replay idempotent" true
            (List.map (fun (s, _, r) -> (s, r)) again
            = List.map (fun (s, _, r) -> (s, r)) recovered);
          check Alcotest.(list string) "ring idempotent" ring2 ring4);
      Sys.remove path

(* --- shadow-validated reload ----------------------------------------------- *)

let test_reload_shadow_rollback () =
  let good = ref true in
  let cache =
    Cache.create
      ~provider:(fun ~app:_ ->
        if !good then Ok (Lazy.force model) else Error "model store corrupted")
  in
  let srv = Server.create cache in
  let img = target 801 "reload-t" in
  let ask l =
    ignore (Server.offer srv l);
    match Server.step srv with [ r ] -> r | _ -> Alcotest.fail "one response"
  in
  check Alcotest.bool "seed check ok" true (is_ok (ask (check_line ~id:"c" img)));
  let gen0 = Cache.generation cache in
  (* healthy provider: reload passes shadow validation, generation bumps *)
  let r1 = ask (op_line ~id:"r1" "reload") in
  check Alcotest.bool "healthy reload ok" true (is_ok r1);
  check Alcotest.int "generation bumped" (gen0 + 1) (Cache.generation cache);
  (* poisoned provider: the candidate fails, the daemon rolls back *)
  good := false;
  let r2 = ask (op_line ~id:"r2" "reload") in
  check Alcotest.bool "poisoned reload refused" true (not (is_ok r2));
  check Alcotest.bool "refusal is typed and explicit" true
    (match str_field "detail" r2 with
    | Some d -> contains d "reload rejected (rolled back"
    | None -> false);
  check Alcotest.int "generation unchanged on rollback" (gen0 + 1)
    (Cache.generation cache);
  check Alcotest.int "rollback counted" 1 (Server.reload_rollback_count srv);
  (* the old model still serves *)
  check Alcotest.bool "checks still served after rollback" true
    (is_ok (ask (check_line ~id:"c2" img)));
  (* the SIGHUP path: an internally requested reload answers with no
     origin and the same rollback semantics *)
  Server.request_reload srv;
  (match Server.step_routed srv with
  | [ (None, resp) ] ->
      check Alcotest.bool "sighup reload refused too" true (not (is_ok resp))
  | _ -> Alcotest.fail "expected one unrouted reload response");
  good := true

(* --- interleaving property -------------------------------------------------- *)

(* Interleaved multi-client serving is observationally per-client
   serial: whatever order clients' (session-disjoint) requests are
   admitted in, each client's response sequence — modulo the global
   trace ids — is byte-identical to running its requests alone on a
   fresh daemon.  Crash/status ops are excluded: they couple clients
   through global supervisor and counter state by design. *)
let strip_trace j =
  match j with
  | Json.Obj fields ->
      Json.to_string (Json.Obj (List.filter (fun (k, _) -> k <> "trace") fields))
  | other -> Json.to_string other

let interleave_prop =
  let open QCheck in
  (* per client: an op sequence over its own image; the schedule picks
     which client admits next *)
  let gen = pair (list_of_size Gen.(1 -- 12) (int_bound 2)) (list_of_size Gen.(0 -- 40) (int_bound 2)) in
  Test.make ~count:40 ~name:"interleaved serving is per-client serial" gen
    (fun (ops_skeleton, schedule) ->
      let nclients = 3 in
      let images =
        Array.init nclients (fun c -> target (860 + c) (Printf.sprintf "il-%d" c))
      in
      let cfg_variants =
        Array.init nclients (fun c ->
            let rng = Prng.create (77 + c) in
            mutate_config rng images.(c))
      in
      (* every client runs the same generated op skeleton against its
         own image: op 0 = check, 1 = watch original, 2 = watch drifted *)
      let line_for c op i =
        let id = Printf.sprintf "cl%d-%d" c i in
        match op with
        | 0 -> check_line ~id images.(c)
        | 1 ->
            line
              [
                ("op", Json.Str "watch");
                ("id", Json.Str id);
                ("image", Json.Str images.(c).Image.image_id);
                ("app", Json.Str (Image.app_to_string Image.Mysql));
                ("config", Json.Str cfg_variants.(c));
              ]
        | _ ->
            line
              [
                ("op", Json.Str "watch");
                ("id", Json.Str id);
                ("image", Json.Str images.(c).Image.image_id);
                ("app", Json.Str (Image.app_to_string Image.Mysql));
                ("config", Json.Str "user=root\n");
              ]
      in
      let scripts =
        Array.init nclients (fun c ->
            ref (List.mapi (fun i op -> line_for c op i) ops_skeleton))
      in
      (* interleaved run on one server, responses routed by origin *)
      let srv = make_server () in
      let got = Array.make nclients [] in
      let feed c =
        match !(scripts.(c)) with
        | [] -> false
        | l :: rest ->
            scripts.(c) := rest;
            ignore (Server.offer_from srv ~origin:c l);
            List.iter
              (fun (origin, resp) ->
                match origin with
                | Some o -> got.(o) <- strip_trace resp :: got.(o)
                | None -> ())
              (Server.step_routed srv);
            true
      in
      (* follow the generated schedule, then drain remaining scripts
         round-robin so every request is admitted *)
      List.iter (fun c -> ignore (feed (c mod nclients))) schedule;
      let rec drain () = if Array.exists (fun s -> feed s) (Array.init nclients Fun.id) then drain () in
      drain ();
      while Server.pending srv > 0 do
        List.iter
          (fun (origin, resp) ->
            match origin with
            | Some o -> got.(o) <- strip_trace resp :: got.(o)
            | None -> ())
          (Server.step_routed srv)
      done;
      (* serial oracle: each client alone on a fresh server *)
      let serial c =
        let srv = make_server () in
        let acc = ref [] in
        List.iteri
          (fun i op ->
            ignore (Server.offer srv (line_for c op i));
            List.iter (fun r -> acc := strip_trace r :: !acc) (Server.step srv))
          ops_skeleton;
        List.rev !acc
      in
      Array.for_all Fun.id
        (Array.init nclients (fun c -> List.rev got.(c) = serial c)))

(* --- the multiplexer over socketpairs --------------------------------------- *)

let mux_fixture ?(mconfig = Mux.default_config) ?(config = Server.default_config)
    nclients =
  let srv = make_server ~config () in
  let orphaned = ref [] in
  let mux =
    Mux.create ~config:mconfig ~orphan:(fun r -> orphaned := r :: !orphaned) srv
  in
  let clients =
    Array.init nclients (fun _ ->
        let cfd, sfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.set_nonblock cfd;
        ignore (Mux.adopt mux sfd);
        cfd)
  in
  (srv, mux, clients, orphaned)

let send_all fd text =
  let rec go off =
    if off < String.length text then
      match Unix.write_substring fd text off (String.length text - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          go off
  in
  go 0

let read_lines fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ();
  List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))

let steps mux n =
  for _ = 1 to n do
    Mux.step ~wait:false mux
  done

let test_mux_routes_two_clients () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let _, mux, cls, _ = mux_fixture 2 in
  let img = target 870 "mux-a" in
  send_all cls.(0) (check_line ~id:"a1" img ^ "\n");
  send_all cls.(1) (op_line ~id:"b1" "status" ^ "\n");
  steps mux 10;
  let l0 = read_lines cls.(0) and l1 = read_lines cls.(1) in
  check Alcotest.bool "client 0 got its check (and only its own)" true
    (List.exists (fun l -> contains l "\"id\":\"a1\"") l0
    && not (List.exists (fun l -> contains l "\"id\":\"b1\"") l0));
  check Alcotest.bool "client 1 got its status" true
    (List.exists (fun l -> contains l "\"id\":\"b1\"") l1
    && not (List.exists (fun l -> contains l "\"id\":\"a1\"") l1));
  (* shutdown from one client: everyone gets the bye *)
  send_all cls.(0) (op_line ~id:"quit" "shutdown" ^ "\n");
  let budget = ref 200 in
  while (not (Mux.stopped mux)) && !budget > 0 do
    decr budget;
    Mux.step ~wait:false mux
  done;
  check Alcotest.bool "mux drained" true (Mux.stopped mux);
  let l0 = read_lines cls.(0) and l1 = read_lines cls.(1) in
  check Alcotest.bool "both clients got the bye" true
    (List.exists (fun l -> contains l "\"op\":\"bye\"") l0
    && List.exists (fun l -> contains l "\"op\":\"bye\"") l1);
  Array.iter Unix.close cls

let test_mux_slowloris_evicted () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let mconfig = { Mux.default_config with Mux.idle_polls_budget = 5 } in
  let _, mux, cls, _ = mux_fixture ~mconfig 2 in
  (* client 0 parks a partial frame and stalls; client 1 is idle with
     no partial frame — only the slowloris is evicted *)
  send_all cls.(0) "{\"op\":\"status\",\"id\":";
  steps mux 30;
  check Alcotest.int "slowloris evicted, idle client kept" 1
    (Mux.connection_count mux);
  check Alcotest.bool "evicted socket reads EOF" true
    (match Unix.read cls.(0) (Bytes.create 1) 0 1 with
    | 0 -> true
    | _ -> false
    | exception Unix.Unix_error _ -> false);
  (* the surviving client still gets service *)
  send_all cls.(1) (op_line ~id:"s" "status" ^ "\n");
  steps mux 10;
  check Alcotest.bool "idle client still served" true
    (List.exists (fun l -> contains l "\"id\":\"s\"") (read_lines cls.(1)));
  Mux.shutdown_fds mux;
  Array.iter Unix.close cls

let test_mux_frame_overflow_resyncs () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let mconfig = { Mux.default_config with Mux.max_line_bytes = 256 } in
  let _, mux, cls, _ = mux_fixture ~mconfig 1 in
  (* an unterminated flood past the bound: typed overflow, stream
     discarded to the next newline, then normal service resumes *)
  send_all cls.(0) (String.make 600 'x');
  steps mux 10;
  let l = read_lines cls.(0) in
  check Alcotest.bool "typed overflow response" true
    (List.exists (fun s -> contains s "unterminated frame exceeds") l);
  send_all cls.(0) ("junk-tail\n" ^ op_line ~id:"after" "status" ^ "\n");
  steps mux 10;
  check Alcotest.bool "stream resyncs after the newline" true
    (List.exists
       (fun s -> contains s "\"id\":\"after\"")
       (read_lines cls.(0)));
  Mux.shutdown_fds mux;
  Unix.close cls.(0)

let test_mux_torn_eof_frame_rejected () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let _, mux, cls, _ = mux_fixture 1 in
  (* half-close with a torn trailing frame: the frame is delivered for
     a typed rejection, and the response still reaches the client *)
  send_all cls.(0) "{\"op\":\"check\",\"id\":\"torn";
  Unix.shutdown cls.(0) Unix.SHUTDOWN_SEND;
  steps mux 10;
  let l = read_lines cls.(0) in
  check Alcotest.bool "torn trailing frame answered with a typed error" true
    (List.exists
       (fun s -> contains s "\"ok\":false" && contains s "parse-error")
       l);
  Mux.shutdown_fds mux;
  Unix.close cls.(0)

(* --- filesystem watcher ------------------------------------------------------ *)

let test_fswatch_deltas () =
  let dir = tmp_name "watchdir" in
  Unix.mkdir dir 0o755;
  let write name text =
    let fd =
      Unix.openfile (Filename.concat dir name)
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
        0o644
    in
    ignore (Unix.write_substring fd text 0 (String.length text));
    Unix.close fd
  in
  write "img-1@mysql.conf" "user=root\n";
  write "README" "not a config\n";
  let w = Fswatch.create ~dir in
  check Alcotest.int "baseline is not a delta" 0 (List.length (Fswatch.poll w));
  (* a new file and a changed file both surface, in name order *)
  write "img-2@httpd.conf" "listen=80\n";
  write "img-1@mysql.conf" "user=root\nport=3307\n";
  (match Fswatch.poll w with
  | [ d1; d2 ] ->
      check Alcotest.string "first delta" "img-1" d1.Fswatch.d_image_id;
      check Alcotest.string "first app" "mysql" d1.Fswatch.d_app;
      check Alcotest.string "contents read" "user=root\nport=3307\n"
        d1.Fswatch.d_text;
      check Alcotest.string "second delta" "img-2" d2.Fswatch.d_image_id;
      check Alcotest.bool "synthesized watch request" true
        (contains (Fswatch.watch_request d2) "\"id\":\"fswatch:img-2\"")
  | ds -> Alcotest.failf "expected 2 deltas, got %d" (List.length ds));
  check Alcotest.int "quiescent poll is empty" 0 (List.length (Fswatch.poll w));
  Sys.readdir dir
  |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
  Unix.rmdir dir

(* --- the transport storm drill ---------------------------------------------- *)

let test_transport_storm_drill () =
  let dir = tmp_name "storm" in
  match
    Chaosrun.transport_storm ~requests:400 ~clients:4 ~n:8 ~dir ~seed:29 ()
  with
  | Error e -> Alcotest.fail e
  | Ok o ->
      if not (Chaosrun.transport_ok o) then
        Alcotest.failf "transport storm contract violated:\n%s"
          (Chaosrun.transport_outcome_to_string o);
      check Alcotest.int "nothing lost" 0 o.Chaosrun.tr_lost;
      check Alcotest.int "nothing misrouted" 0 o.Chaosrun.tr_misrouted;
      check Alcotest.bool "fault mix at least 5%" true
        (o.Chaosrun.tr_faults * 20 >= o.Chaosrun.tr_frames);
      check Alcotest.bool "crash replay converged" true
        (o.Chaosrun.cr_responses_identical && o.Chaosrun.cr_ring_identical);
      Sys.readdir dir
      |> Array.iter (fun f -> Sys.remove (Filename.concat dir f));
      Unix.rmdir dir

let () =
  Alcotest.run "encore_servemux"
    [
      ( "journal",
        [
          Alcotest.test_case "append, mark, recover" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "torn tail truncated" `Quick
            test_journal_torn_tail_truncated;
          Alcotest.test_case "replay convergence and idempotence" `Quick
            test_journal_replay_convergence;
        ] );
      ( "reload",
        [
          Alcotest.test_case "shadow rollback and generation" `Quick
            test_reload_shadow_rollback;
        ] );
      ( "interleaving",
        [ QCheck_alcotest.to_alcotest interleave_prop ] );
      ( "mux",
        [
          Alcotest.test_case "routes two clients and byes both" `Quick
            test_mux_routes_two_clients;
          Alcotest.test_case "slowloris evicted, idle kept" `Quick
            test_mux_slowloris_evicted;
          Alcotest.test_case "frame overflow resyncs" `Quick
            test_mux_frame_overflow_resyncs;
          Alcotest.test_case "torn EOF frame rejected" `Quick
            test_mux_torn_eof_frame_rejected;
        ] );
      ( "fswatch",
        [ Alcotest.test_case "stat-signature deltas" `Quick test_fswatch_deltas ] );
      ( "storm",
        [
          Alcotest.test_case "transport storm and crash replay" `Quick
            test_transport_storm_drill;
        ] );
    ]
