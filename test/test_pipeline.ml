(* Integration tests for the full EnCore pipeline and the experiment
   harness: end-to-end learn/check flows, customization, and the
   qualitative shapes every reproduced paper table must exhibit. *)

module Pipeline = Encore.Pipeline
module Config = Encore.Config
module Experiments = Encore.Experiments
module Population = Encore_workloads.Population
module Profile = Encore_workloads.Profile
module Cases = Encore_workloads.Cases
module Detector = Encore_detect.Detector
module Report = Encore_detect.Report
module Warning = Encore_detect.Warning
module Conferr = Encore_inject.Conferr
module Image = Encore_sysenv.Image
module Prng = Encore_util.Prng

let check = Alcotest.check

let scale = Experiments.test_scale

let training app n = Population.clean (Population.generate ~seed:77 app ~n)

(* --- pipeline ----------------------------------------------------------- *)

let test_learn_produces_rules_and_types () =
  let model = Pipeline.learn (training Image.Mysql 30) in
  check Alcotest.bool "rules learned" true (List.length model.Detector.rules > 5);
  check Alcotest.bool "types inferred" true (List.length model.Detector.types > 30);
  check Alcotest.bool "value stats recorded" true
    (List.length model.Detector.value_stats > 30)

let test_learn_finds_flagship_rules () =
  let model = Pipeline.learn (training Image.Mysql 30) in
  let rendered =
    String.concat "\n"
      (List.map Encore_rules.Template.rule_to_string model.Detector.rules)
  in
  (* the paper's Figure 4(a) rule *)
  check Alcotest.bool "datadir/user ownership" true
    (Encore_util.Strutil.contains_sub rendered "mysql/mysqld/datadir =>");
  (* the client/server socket equality *)
  check Alcotest.bool "socket equality" true
    (Encore_util.Strutil.contains_sub rendered "socket");
  (* the size-ordering family covers net_buffer_length (the direct
     net_buffer < max_allowed_packet edge may be Hasse-reduced through a
     midpoint size, but some ordering rule must bound it) *)
  check Alcotest.bool "net_buffer ordering present" true
    (Encore_util.Strutil.contains_sub rendered "mysql/mysqld/net_buffer_length <#")

let test_check_clean_target_quiet () =
  let model = Pipeline.learn (training Image.Mysql 30) in
  let target =
    Population.generator_for Image.Mysql Profile.ec2 (Prng.create 555) ~id:"held-out"
  in
  let detections = Pipeline.detections model target in
  check Alcotest.bool "few strong warnings on a clean image" true
    (List.length detections <= 2)

(* Determinism contract of the parallel engine: the learned model must
   be byte-identical for every job count, through both the strict and
   the resilient entry points. *)
let test_jobs_model_identical () =
  let images = training Image.Mysql 25 in
  let model_at jobs =
    let config = { Config.default with Config.jobs } in
    Encore_detect.Model_io.to_string (Pipeline.learn ~config images)
  in
  let baseline = model_at 1 in
  List.iter
    (fun jobs ->
      check Alcotest.string
        (Printf.sprintf "jobs=%d model = sequential model" jobs)
        baseline (model_at jobs))
    [ 2; 4 ]

let test_jobs_resilient_identical () =
  let images = training Image.Sshd 20 in
  let run jobs =
    let config = { Config.default with Config.jobs } in
    match Pipeline.learn_resilient ~config images with
    | Ok (model, report) -> (Encore_detect.Model_io.to_string model, report)
    | Error d ->
        Alcotest.failf "resilient learn failed: %s"
          (Encore_util.Resilience.diagnostic_to_string d)
  in
  let model1, report1 = run 1 in
  let model4, report4 = run 4 in
  check Alcotest.string "models identical" model1 model4;
  check Alcotest.int "same survivors" report1.Pipeline.ok report4.Pipeline.ok;
  check Alcotest.int "same retries" report1.Pipeline.retried
    report4.Pipeline.retried;
  check Alcotest.bool "same quarantine" true
    (report1.Pipeline.quarantined = report4.Pipeline.quarantined);
  check Alcotest.bool "same warnings" true
    (report1.Pipeline.warnings = report4.Pipeline.warnings)

(* Randomized extension of the fixed-corpus determinism tests above:
   any workload (study population or reduced-scale synthetic fleet),
   any seed, the learned model must be byte-identical at jobs 1/2/8 —
   sharded rule inference, the parallel mining probe and the forked
   per-image PRNG streams may not let the job count leak into output. *)
let prop_jobs_identical_random =
  let gen =
    QCheck.Gen.(
      triple (oneofl [ `Mysql; `Sshd; `Fleet ]) (int_range 12 36)
        (int_range 0 10_000))
  in
  QCheck.Test.make ~name:"model byte-identical at jobs 1/2/8" ~count:6
    (QCheck.make gen)
    (fun (kind, n, seed) ->
      let images =
        match kind with
        | `Mysql -> Population.clean (Population.generate ~seed Image.Mysql ~n)
        | `Sshd -> Population.clean (Population.generate ~seed Image.Sshd ~n)
        | `Fleet -> Encore_workloads.Synthfleet.generate ~seed ~n ()
      in
      let model_at jobs =
        let config = { Config.default with Config.jobs } in
        Encore_detect.Model_io.to_string (Pipeline.learn ~config images)
      in
      let m1 = model_at 1 in
      String.equal m1 (model_at 2) && String.equal m1 (model_at 8))

let test_end_to_end_injection_detected () =
  let model = Pipeline.learn (training Image.Mysql 30) in
  let target =
    Population.generator_for Image.Mysql Profile.ec2 (Prng.create 556) ~id:"victim"
  in
  let rng = Prng.create 557 in
  match
    Conferr.inject_one rng Image.Mysql target
      (Encore_inject.Fault.Env_fault Encore_inject.Fault.Chown_flip)
  with
  | Some (faulted, injection) ->
      let warnings = Pipeline.check model faulted in
      let base = Encore_confparse.Kv.key_basename injection.Encore_inject.Fault.target_attr in
      check Alcotest.bool "chown detected end to end" true
        (Report.rank_of_attr warnings base <> None)
  | None -> Alcotest.fail "no injectable target"

let test_custom_template_used () =
  (* declare a user type covering the mysql log path and an ownership
     template over it; the learned model must include the custom rule *)
  Encore_typing.Custom_registry.clear ();
  let custom =
    "$$TypeDeclaration\nMysqlLog\n$$TypeInference\nMysqlLog: regex /var/log.+\\.log\n\
     $$TypeValidation\nMysqlLog: is_file\n$$Template\n[A:MysqlLog] => [B:UserName]\n"
  in
  let model = Pipeline.learn ~custom (training Image.Mysql 30) in
  let custom_rules =
    List.filter
      (fun (r : Encore_rules.Template.rule) ->
        Encore_util.Strutil.starts_with ~prefix:"custom:" r.template.Encore_rules.Template.tname)
      model.Detector.rules
  in
  check Alcotest.bool "custom rule instantiated" true (custom_rules <> []);
  Encore_typing.Custom_registry.clear ()

let test_training_soundness () =
  (* soundness bound: a rule learned at confidence c may be violated by
     at most a (1-c) fraction of the training images it was learned
     from; checking the model against its own training set must respect
     that bound for every rule *)
  let images = training Image.Mysql 30 in
  let model = Pipeline.learn images in
  let violations = Hashtbl.create 32 in
  List.iter
    (fun img ->
      List.iter
        (fun (w : Warning.t) ->
          match w.Warning.kind with
          | Warning.Correlation_violation r ->
              let key = Encore_rules.Template.rule_to_string r in
              Hashtbl.replace violations key
                (1 + Option.value ~default:0 (Hashtbl.find_opt violations key))
          | _ -> ())
        (Detector.check model img))
    images;
  let n = float_of_int (List.length images) in
  List.iter
    (fun (r : Encore_rules.Template.rule) ->
      let v =
        float_of_int
          (Option.value ~default:0
             (Hashtbl.find_opt violations (Encore_rules.Template.rule_to_string r)))
      in
      check Alcotest.bool
        (Printf.sprintf "violation rate bounded for %s"
           (Encore_rules.Template.rule_to_string r))
        true
        (v /. n <= (1.0 -. r.Encore_rules.Template.confidence) +. 0.001))
    model.Detector.rules

(* --- exit codes ---------------------------------------------------------- *)

(* The CLI's contract (README): 0 = success, 1 = failure, 3 = degraded
   or timed-out (2 is reserved for usage errors and never produced by
   [exit_code]).  Drive [learn_durable] into each terminal state and
   assert the mapping. *)

(* Generated app populations legitimately overflow the mining cap —
   dozens of fully-correlated columns make the frequent-itemset count
   exponential, which is exactly Table 3's failure mode — so a
   non-degraded exit-0 run needs a small synthetic population with a
   bounded attribute surface. *)
let tiny_image i =
  let text =
    Printf.sprintf "Port 22\nListenAddress 10.0.0.%d\nPermitRootLogin no\n"
      (i + 1)
  in
  Image.make
    ~id:(Printf.sprintf "tiny-%d" i)
    [ { Image.app = Image.Sshd; path = "/etc/ssh/sshd_config"; text } ]

let test_exit_code_ok () =
  let result =
    Pipeline.learn_durable ~mining_cap:10_000_000 (List.init 4 tiny_image)
  in
  (match result with
   | Ok o ->
       check Alcotest.bool "model produced" true (o.Pipeline.model <> None);
       check Alcotest.bool "completed" true
         (o.Pipeline.report.Pipeline.status = Pipeline.Completed)
   | Error d ->
       Alcotest.failf "clean run failed: %s"
         (Encore_util.Resilience.diagnostic_to_string d));
  check Alcotest.int "clean completed run is 0" 0 (Pipeline.exit_code result)

let test_exit_code_degraded () =
  (* a mining cap of 1 always overflows: degraded but still Ok *)
  let result = Pipeline.learn_durable ~mining_cap:1 (training Image.Mysql 10) in
  (match result with
   | Ok o ->
       check Alcotest.bool "still yields a model" true (o.Pipeline.model <> None);
       check Alcotest.bool "overflow recorded" true
         o.Pipeline.report.Pipeline.mining_overflowed
   | Error d ->
       Alcotest.failf "degraded run failed: %s"
         (Encore_util.Resilience.diagnostic_to_string d));
  check Alcotest.int "degraded run is 3" 3 (Pipeline.exit_code result)

let test_exit_code_timed_out () =
  let deadline = Encore_util.Deadline.after_polls 0 in
  let result = Pipeline.learn_durable ~deadline (training Image.Mysql 10) in
  (match result with
   | Ok o ->
       check Alcotest.bool "no model" true (o.Pipeline.model = None);
       check Alcotest.bool "timed out" true
         (o.Pipeline.report.Pipeline.status <> Pipeline.Completed)
   | Error d ->
       Alcotest.failf "timed-out run must be Ok, got: %s"
         (Encore_util.Resilience.diagnostic_to_string d));
  check Alcotest.int "timed-out run is 3" 3 (Pipeline.exit_code result)

let test_exit_code_failed () =
  let result = Pipeline.learn_durable [] in
  check Alcotest.bool "empty population is Error" true (Result.is_error result);
  check Alcotest.int "failed run is 1" 1 (Pipeline.exit_code result)

let test_custom_file_error_raised () =
  Alcotest.check_raises "invalid custom file"
    (Invalid_argument "customization file, line 2: unknown operator: %%")
    (fun () -> ignore (Pipeline.learn ~custom:"$$Template\n[A] %% [B]\n" (training Image.Mysql 6)))

(* --- experiment shapes ---------------------------------------------------- *)

let cell table ~row ~col =
  let t : Experiments.table = table in
  match List.nth_opt t.Experiments.rows row with
  | Some cells -> ( match List.nth_opt cells col with Some c -> c | None -> "")
  | None -> ""

let int_cell table ~row ~col = int_of_string (cell table ~row ~col)

let test_table1_shape () =
  let t = Experiments.table1 () in
  check Alcotest.int "four rows" 4 (List.length t.Experiments.rows)

let test_table2_shape () =
  let t = Experiments.table2 ~scale () in
  (* augmented > original for every app; binomial > augmented *)
  List.iteri
    (fun i _ ->
      let original = int_cell t ~row:i ~col:1 in
      let augmented = int_cell t ~row:i ~col:2 in
      let binomial = int_cell t ~row:i ~col:3 in
      check Alcotest.bool "original < augmented" true (original < augmented);
      check Alcotest.bool "augmented < binomial" true (augmented < binomial))
    t.Experiments.rows

let test_table8_shape () =
  let t = Experiments.table8 ~scale () in
  List.iteri
    (fun i _ ->
      let baseline = int_cell t ~row:i ~col:2 in
      let baseline_env = int_cell t ~row:i ~col:3 in
      let encore = int_cell t ~row:i ~col:4 in
      check Alcotest.bool "baseline <= baseline+env" true (baseline <= baseline_env);
      check Alcotest.bool "baseline+env <= encore" true (baseline_env <= encore);
      check Alcotest.bool "encore detects most faults" true (encore >= 10);
      check Alcotest.bool "encore strictly beats baseline" true (encore > baseline))
    t.Experiments.rows

let test_table9_shape () =
  let t = Experiments.table9 ~scale () in
  check Alcotest.int "ten cases" 10 (List.length t.Experiments.rows);
  List.iter
    (fun row ->
      match row with
      | id :: _ :: _ :: rank :: _ ->
          if id = "8" then check Alcotest.string "case 8 missed" "-" rank
          else
            check Alcotest.bool ("case " ^ id ^ " detected") true (rank <> "-")
      | _ -> Alcotest.fail "malformed row")
    t.Experiments.rows

let test_table11_shape () =
  let t = Experiments.table11 ~scale () in
  List.iteri
    (fun i _ ->
      let entries = int_cell t ~row:i ~col:1 in
      let nontrivial = int_cell t ~row:i ~col:2 in
      let false_types = int_cell t ~row:i ~col:3 in
      let undetected = int_cell t ~row:i ~col:4 in
      check Alcotest.bool "nontrivial <= entries" true (nontrivial <= entries);
      (* accuracy: errors bounded well below the non-trivial population *)
      check Alcotest.bool "false+undetected < nontrivial/2" true
        (2 * (false_types + undetected) < nontrivial))
    t.Experiments.rows

let test_table12_shape () =
  let t = Experiments.table12 ~scale () in
  List.iteri
    (fun i _ ->
      let rules = int_cell t ~row:i ~col:1 in
      let fp = int_cell t ~row:i ~col:2 in
      check Alcotest.bool "rules found" true (rules > 0);
      check Alcotest.bool "fp <= rules" true (fp <= rules))
    t.Experiments.rows

let test_table13_shape () =
  let t = Experiments.table13 ~scale () in
  List.iteri
    (fun i _ ->
      let original = int_cell t ~row:i ~col:1 in
      let fp_reduced = int_cell t ~row:i ~col:2 in
      let fn_introduced = int_cell t ~row:i ~col:3 in
      check Alcotest.bool "filter removes many false rules" true
        (2 * fp_reduced > original);
      check Alcotest.bool "few true rules lost" true (fn_introduced * 4 < original))
    t.Experiments.rows

let test_render_contains_rows () =
  let t = Experiments.table1 () in
  let out = Experiments.render t in
  check Alcotest.bool "title" true (Encore_util.Strutil.contains_sub out "table1");
  check Alcotest.bool "app row" true (Encore_util.Strutil.contains_sub out "MySQL")

let () =
  Alcotest.run "encore_pipeline"
    [
      ( "pipeline",
        [
          Alcotest.test_case "learn rules and types" `Quick test_learn_produces_rules_and_types;
          Alcotest.test_case "flagship rules" `Quick test_learn_finds_flagship_rules;
          Alcotest.test_case "clean target quiet" `Quick test_check_clean_target_quiet;
          Alcotest.test_case "injection detected" `Quick test_end_to_end_injection_detected;
          Alcotest.test_case "jobs: model identical" `Quick test_jobs_model_identical;
          Alcotest.test_case "jobs: resilient identical" `Quick test_jobs_resilient_identical;
          QCheck_alcotest.to_alcotest prop_jobs_identical_random;
          Alcotest.test_case "custom template" `Quick test_custom_template_used;
          Alcotest.test_case "training soundness bound" `Quick test_training_soundness;
          Alcotest.test_case "custom file error" `Quick test_custom_file_error_raised;
        ] );
      ( "exit codes",
        [
          Alcotest.test_case "ok is 0" `Quick test_exit_code_ok;
          Alcotest.test_case "degraded is 3" `Quick test_exit_code_degraded;
          Alcotest.test_case "timed-out is 3" `Quick test_exit_code_timed_out;
          Alcotest.test_case "failed is 1" `Quick test_exit_code_failed;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 shape" `Quick test_table1_shape;
          Alcotest.test_case "table2 shape" `Slow test_table2_shape;
          Alcotest.test_case "table8 shape" `Slow test_table8_shape;
          Alcotest.test_case "table9 shape" `Slow test_table9_shape;
          Alcotest.test_case "table11 shape" `Slow test_table11_shape;
          Alcotest.test_case "table12 shape" `Slow test_table12_shape;
          Alcotest.test_case "table13 shape" `Slow test_table13_shape;
          Alcotest.test_case "render" `Quick test_render_contains_rows;
        ] );
    ]
