(* Durability tests: the atomic snapshot layer and its typed errors,
   the versioned model store with rollback, deadline tokens and their
   propagation through the pool, stage checkpoints, and the end-to-end
   guarantee that a killed or timed-out learn run resumes onto a
   byte-identical model. *)

module Snapshot = Encore_util.Snapshot
module Deadline = Encore_util.Deadline
module Pool = Encore_util.Pool
module Res = Encore_util.Resilience
module Prng = Encore_util.Prng
module Image = Encore_sysenv.Image
module Assemble = Encore_dataset.Assemble
module Table = Encore_dataset.Table
module Detector = Encore_detect.Detector
module Model_io = Encore_detect.Model_io
module Chaos = Encore_inject.Chaos
module Checkpoint = Encore.Checkpoint
module Pipeline = Encore.Pipeline
module Config = Encore.Config
module Chaosrun = Encore.Chaosrun
module Population = Encore_workloads.Population
module Profile = Encore_workloads.Profile

let check = Alcotest.check

(* --- scratch directories -------------------------------------------------- *)

let fresh_dir () =
  let path = Filename.temp_file "encore-durability" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_raw path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let header_length raw =
  match String.index_opt raw '\n' with
  | Some i -> i + 1
  | None -> String.length raw

(* --- snapshot envelope ---------------------------------------------------- *)

let test_snapshot_roundtrip () =
  with_dir @@ fun dir ->
  Snapshot.mkdir_p dir;
  let path = Filename.concat dir "blob.snap" in
  Snapshot.write_atomic ~kind:"blob" path "hello durable world\n";
  match Snapshot.read ~kind:"blob" path with
  | Ok payload -> check Alcotest.string "payload" "hello durable world\n" payload
  | Error e -> Alcotest.fail (Snapshot.error_to_string e)

let test_snapshot_kind_mismatch () =
  with_dir @@ fun dir ->
  Snapshot.mkdir_p dir;
  let path = Filename.concat dir "blob.snap" in
  Snapshot.write_atomic ~kind:"blob" path "payload\n";
  match Snapshot.read ~kind:"other" path with
  | Error (Snapshot.Version_mismatch _) -> ()
  | Error e ->
      Alcotest.failf "expected Version_mismatch, got %s"
        (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "foreign kind verified"

let test_snapshot_missing_file () =
  match Snapshot.read ~kind:"blob" "/nonexistent/encore.snap" with
  | Error (Snapshot.Io_error _) -> ()
  | Error e ->
      Alcotest.failf "expected Io_error, got %s" (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "missing file verified"

let test_snapshot_truncation_detected () =
  with_dir @@ fun dir ->
  Snapshot.mkdir_p dir;
  let path = Filename.concat dir "blob.snap" in
  Snapshot.write_atomic ~kind:"blob" path "0123456789abcdef\n";
  let raw = read_raw path in
  let cut = header_length raw + 4 in
  write_raw path (String.sub raw 0 cut);
  match Snapshot.read ~kind:"blob" path with
  | Error (Snapshot.Truncated { offset; expected; actual; _ }) ->
      check Alcotest.int "offset = where the data stops" cut offset;
      check Alcotest.int "expected full payload" 17 expected;
      check Alcotest.int "actual bytes present" 4 actual
  | Error e ->
      Alcotest.failf "expected Truncated, got %s" (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "torn snapshot verified"

let test_snapshot_bitflip_detected () =
  with_dir @@ fun dir ->
  Snapshot.mkdir_p dir;
  let path = Filename.concat dir "blob.snap" in
  Snapshot.write_atomic ~kind:"blob" path "0123456789abcdef\n";
  let raw = read_raw path in
  let flip_at = header_length raw + 3 in
  let bytes = Bytes.of_string raw in
  Bytes.set bytes flip_at (Char.chr (Char.code (Bytes.get bytes flip_at) lxor 1));
  write_raw path (Bytes.to_string bytes);
  match Snapshot.read ~kind:"blob" path with
  | Error (Snapshot.Corrupt _) -> ()
  | Error e ->
      Alcotest.failf "expected Corrupt, got %s" (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "bit-flipped snapshot verified"

let test_snapshot_trailing_bytes_detected () =
  with_dir @@ fun dir ->
  Snapshot.mkdir_p dir;
  let path = Filename.concat dir "blob.snap" in
  Snapshot.write_atomic ~kind:"blob" path "payload\n";
  write_raw path (read_raw path ^ "junk");
  match Snapshot.read ~kind:"blob" path with
  | Error (Snapshot.Corrupt { offset; _ }) ->
      check Alcotest.bool "offset past the payload" true (offset > 0)
  | Error e ->
      Alcotest.failf "expected Corrupt, got %s" (Snapshot.error_to_string e)
  | Ok _ -> Alcotest.fail "trailing bytes verified"

let test_error_strings_name_variants () =
  List.iter
    (fun (err, needle) ->
      let s = Snapshot.error_to_string err in
      check Alcotest.bool (needle ^ " named in: " ^ s) true
        (Encore_util.Strutil.contains_sub s needle))
    [
      (Snapshot.Io_error { path = "p"; detail = "d" }, "Io_error");
      ( Snapshot.Truncated { path = "p"; offset = 3; expected = 9; actual = 3 },
        "Truncated" );
      (Snapshot.Corrupt { path = "p"; offset = 7; detail = "d" }, "Corrupt");
      ( Snapshot.Version_mismatch { path = "p"; found = "f"; expected = "e" },
        "Version_mismatch" );
      (Snapshot.Malformed { path = "p"; offset = 11; detail = "d" }, "Malformed");
    ]

(* --- generic snapshot store ------------------------------------------------ *)

let test_store_prunes_and_tracks_latest () =
  with_dir @@ fun dir ->
  let store = Snapshot.Store.create ~keep:2 ~kind:"blob" ~dir () in
  List.iter
    (fun p -> ignore (Snapshot.Store.save store (p ^ "\n")))
    [ "a"; "b"; "c"; "d" ];
  check Alcotest.int "pruned to keep" 2
    (List.length (Snapshot.Store.snapshots store));
  match Snapshot.Store.load_latest store with
  | Ok (payload, path) ->
      check Alcotest.string "latest payload" "d\n" payload;
      check Alcotest.bool "latest pointer agrees" true
        (Snapshot.Store.latest_path store = Some path)
  | Error e -> Alcotest.fail (Snapshot.error_to_string e)

let test_store_rolls_back_past_corrupt_head () =
  with_dir @@ fun dir ->
  let store = Snapshot.Store.create ~keep:3 ~kind:"blob" ~dir () in
  ignore (Snapshot.Store.save store "older\n");
  let head = Snapshot.Store.save store "newer\n" in
  Chaos.truncate_file ~rng:(Prng.create 11) head;
  (match Snapshot.Store.load_latest store with
   | Ok (payload, path) ->
       check Alcotest.string "older payload restored" "older\n" payload;
       check Alcotest.bool "not the torn head" true (path <> head);
       check Alcotest.bool "latest repointed" true
         (Snapshot.Store.latest_path store = Some path)
   | Error e -> Alcotest.fail (Snapshot.error_to_string e))

let test_store_all_corrupt_is_error () =
  with_dir @@ fun dir ->
  let store = Snapshot.Store.create ~keep:3 ~kind:"blob" ~dir () in
  let rng = Prng.create 13 in
  ignore (Snapshot.Store.save store "one\n");
  ignore (Snapshot.Store.save store "two\n");
  List.iter (Chaos.truncate_file ~rng) (Snapshot.Store.snapshots store);
  check Alcotest.bool "no verifiable snapshot left" true
    (Result.is_error (Snapshot.Store.load_latest store))

(* --- model persistence ------------------------------------------------------ *)

let clean_profile = { Profile.ec2 with Profile.latent_error_rate = 0.0 }

let training ?(seed = 7) n =
  Population.images
    (Population.generate ~profile:clean_profile ~seed Image.Mysql ~n)

let small_model = lazy (Pipeline.learn (training 8))

let test_model_save_load_roundtrip () =
  with_dir @@ fun dir ->
  Snapshot.mkdir_p dir;
  let model = Lazy.force small_model in
  let path = Filename.concat dir "model.snap" in
  Model_io.save path model;
  match Model_io.load path with
  | Ok m ->
      check Alcotest.string "byte-identical" (Model_io.to_string model)
        (Model_io.to_string m)
  | Error e -> Alcotest.fail (Model_io.load_error_to_string e)

let test_model_legacy_payload_loads () =
  with_dir @@ fun dir ->
  Snapshot.mkdir_p dir;
  let model = Lazy.force small_model in
  let path = Filename.concat dir "legacy.model" in
  (* a pre-envelope save: the bare payload, no snapshot header *)
  write_raw path (Model_io.to_string model);
  match Model_io.load path with
  | Ok m ->
      check Alcotest.string "legacy load byte-identical"
        (Model_io.to_string model) (Model_io.to_string m)
  | Error e -> Alcotest.fail (Model_io.load_error_to_string e)

let test_model_malformed_payload_offset () =
  with_dir @@ fun dir ->
  Snapshot.mkdir_p dir;
  let path = Filename.concat dir "bad.snap" in
  (* the envelope verifies, the payload is not a model *)
  Snapshot.write_atomic ~kind:Model_io.snapshot_kind path "not a model\n";
  match Model_io.load path with
  | Error (Snapshot.Malformed { offset; _ }) ->
      check Alcotest.bool "offset anchored" true (offset >= 0)
  | Error e ->
      Alcotest.failf "expected Malformed, got %s"
        (Model_io.load_error_to_string e)
  | Ok _ -> Alcotest.fail "garbage parsed as a model"

let test_model_store_rollback_returns_model () =
  with_dir @@ fun dir ->
  let model = Lazy.force small_model in
  let store = Model_io.Store.create ~keep:3 ~dir () in
  ignore (Model_io.Store.save store model);
  let head = Model_io.Store.save store model in
  Chaos.bitflip_file ~rng:(Prng.create 5) head;
  match Model_io.Store.load_latest store with
  | Ok (m, path) ->
      check Alcotest.bool "rolled past the damaged head" true (path <> head);
      check Alcotest.string "model intact" (Model_io.to_string model)
        (Model_io.to_string m)
  | Error e -> Alcotest.fail (Model_io.load_error_to_string e)

(* --- deadlines -------------------------------------------------------------- *)

let test_deadline_after_polls () =
  let d = Deadline.after_polls 2 in
  check Alcotest.bool "poll 1 alive" true (Deadline.status d = None);
  check Alcotest.bool "poll 2 alive" true (Deadline.status d = None);
  check Alcotest.bool "poll 3 expired" true
    (Deadline.status d = Some Deadline.Timed_out);
  Alcotest.check_raises "raise_if_expired" (Deadline.Expired Deadline.Timed_out)
    (fun () -> Deadline.raise_if_expired d)

let test_deadline_cancel_wins () =
  let d = Deadline.after_polls 0 in
  Deadline.cancel d;
  check Alcotest.bool "cancellation wins over timeout" true
    (Deadline.status d = Some Deadline.Cancelled)

let test_deadline_budgets () =
  check Alcotest.bool "non-positive budget is expired" true
    (Deadline.expired (Deadline.of_budget_s 0.0));
  let d = Deadline.of_budget_s 3600.0 in
  check Alcotest.bool "hour budget alive" false (Deadline.expired d);
  (match Deadline.remaining_ns d with
   | Some ns -> check Alcotest.bool "budget remaining" true (ns > 0L)
   | None -> Alcotest.fail "clock budget reports no remaining time");
  check Alcotest.bool "none is unlimited" true (Deadline.is_unlimited Deadline.none);
  check Alcotest.bool "budget is not unlimited" false (Deadline.is_unlimited d)

let test_pool_deadline_aborts_map () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let d = Deadline.after_polls 3 in
          let ran = Atomic.make 0 in
          let aborted =
            match
              Pool.with_deadline pool d (fun () ->
                  Pool.map pool
                    (fun x ->
                      Atomic.incr ran;
                      x * 2)
                    [ 1; 2; 3; 4; 5; 6; 7; 8 ])
            with
            | _results -> false
            | exception Deadline.Expired Deadline.Timed_out -> true
          in
          check Alcotest.bool
            (Printf.sprintf "map aborted with Expired (jobs=%d)" jobs)
            true aborted;
          check Alcotest.bool
            (Printf.sprintf "not every item ran (jobs=%d)" jobs)
            true
            (Atomic.get ran < 8);
          (* the pool stays usable after an abort, without the token *)
          check
            Alcotest.(list int)
            "pool usable afterwards" [ 2; 4 ]
            (Pool.map pool (fun x -> x * 2) [ 1; 2 ])))
    [ 1; 4 ]

(* --- stage checkpoints ------------------------------------------------------- *)

let sample_ingest_state () =
  {
    Checkpoint.survivor_ids = [ "img-a"; "img-b" ];
    quarantined =
      [
        ( "img-c",
          [
            Res.diag Res.Probe_failure ~subject:"img-c" "flap; gave up";
            Res.diag Res.Parse_error ~subject:"img-c/my.cnf" "line 3: junk";
          ] );
        ("img-d", []);
      ];
    warnings = [ Res.diag Res.Overflow ~subject:"meta" "record dropped" ];
    retried = 4;
    total_backoff_ms = 130;
  }

let test_checkpoint_ingest_roundtrip () =
  with_dir @@ fun dir ->
  let ck = Checkpoint.create ~dir in
  let st = sample_ingest_state () in
  Checkpoint.save_ingest ck ~fingerprint:"fp-1" st;
  (match Checkpoint.load_ingest ck ~fingerprint:"fp-1" with
   | Some restored ->
       check Alcotest.bool "ingest state round-trips" true (restored = st)
   | None -> Alcotest.fail "checkpoint did not load");
  check Alcotest.bool "fingerprint mismatch treated as absent" true
    (Checkpoint.load_ingest ck ~fingerprint:"fp-2" = None)

let test_checkpoint_assemble_roundtrip () =
  with_dir @@ fun dir ->
  let ck = Checkpoint.create ~dir in
  let assembled = Assemble.assemble_training (training 6) in
  Checkpoint.save_assemble ck ~fingerprint:"fp" assembled;
  match Checkpoint.load_assemble ck ~fingerprint:"fp" with
  | Some restored ->
      check Alcotest.string "table round-trips verbatim"
        (Table.to_csv assembled.Assemble.table)
        (Table.to_csv restored.Assemble.table);
      check Alcotest.bool "type environment bit-identical" true
        (restored.Assemble.types = assembled.Assemble.types)
  | None -> Alcotest.fail "assemble checkpoint did not load"

let test_checkpoint_damaged_is_absent () =
  with_dir @@ fun dir ->
  let ck = Checkpoint.create ~dir in
  let model = Lazy.force small_model in
  Checkpoint.save_model ck ~fingerprint:"fp" model;
  Chaos.bitflip_file ~rng:(Prng.create 3)
    (Checkpoint.stage_path ck Checkpoint.Model);
  check Alcotest.bool "damaged checkpoint treated as absent" true
    (Checkpoint.load_model ck ~fingerprint:"fp" = None)

let test_fingerprint_sensitivity () =
  let images = training 4 in
  let fp ~config ~mode images =
    Checkpoint.fingerprint ~config ~custom:None ~mode ~max_retries:None
      ~mining_cap:100 images
  in
  let base = fp ~config:Config.default ~mode:"keep-going" images in
  check Alcotest.string "deterministic" base
    (fp ~config:Config.default ~mode:"keep-going" images);
  check Alcotest.bool "mode changes it" true
    (base <> fp ~config:Config.default ~mode:"fail-fast" images);
  check Alcotest.bool "config changes it" true
    (base
    <> fp
         ~config:{ Config.default with Config.min_confidence = 0.123 }
         ~mode:"keep-going" images);
  check Alcotest.bool "population changes it" true
    (base <> fp ~config:Config.default ~mode:"keep-going" (training ~seed:8 4))

(* --- timed-out and resumed runs ---------------------------------------------- *)

(* Sequential poll schedule (jobs=1): one guard per stage plus one poll
   per probed image, so [after_polls (1 + n)] survives the ingest stage
   and expires at the assemble guard. *)
let test_deadline_degrades_then_resume_completes () =
  with_dir @@ fun dir ->
  let images = training 6 in
  let reference =
    match Pipeline.learn_durable images with
    | Ok { Pipeline.model = Some m; _ } -> Model_io.to_string m
    | Ok { Pipeline.model = None; _ } -> Alcotest.fail "reference timed out"
    | Error d ->
        Alcotest.failf "reference failed: %s" (Res.diagnostic_to_string d)
  in
  let ck = Checkpoint.create ~dir in
  let deadline = Deadline.after_polls (1 + List.length images) in
  (match Pipeline.learn_durable ~checkpoint:ck ~deadline images with
   | Ok o ->
       check Alcotest.bool "no model" true (o.Pipeline.model = None);
       check Alcotest.bool "timed out at assemble" true
         (o.Pipeline.report.Pipeline.status
         = Pipeline.Timed_out_at Checkpoint.Assemble);
       check Alcotest.bool "ingest checkpointed before expiry" true
         (List.mem Checkpoint.Ingest o.Pipeline.checkpointed);
       check Alcotest.bool "ingest checkpoint on disk" true
         (Sys.file_exists (Checkpoint.stage_path ck Checkpoint.Ingest));
       check Alcotest.int "timed-out exit code" 3 (Pipeline.exit_code (Ok o));
       check Alcotest.bool "timed-out diagnostic in histogram" true
         (List.assoc Res.Timed_out o.Pipeline.report.Pipeline.histogram = 1)
   | Error d ->
       Alcotest.failf "timed-out run must degrade, not fail: %s"
         (Res.diagnostic_to_string d));
  (* resume with no deadline: ingest restored, model byte-identical *)
  match Pipeline.learn_durable ~resume:ck images with
  | Ok { Pipeline.model = Some m; resumed; _ } ->
      check Alcotest.bool "ingest stage resumed" true
        (List.mem Checkpoint.Ingest resumed);
      check Alcotest.string "resumed model = uninterrupted model" reference
        (Model_io.to_string m)
  | Ok { Pipeline.model = None; _ } -> Alcotest.fail "resume timed out"
  | Error d ->
      Alcotest.failf "resume failed: %s" (Res.diagnostic_to_string d)

let test_kill_and_resume_each_stage () =
  with_dir @@ fun dir ->
  let images = training 6 in
  let reference =
    match Pipeline.learn_durable images with
    | Ok { Pipeline.model = Some m; _ } -> Model_io.to_string m
    | _ -> Alcotest.fail "reference run failed"
  in
  List.iter
    (fun stage ->
      let name = Checkpoint.stage_to_string stage in
      let ck =
        Checkpoint.create ~dir:(Filename.concat dir ("kill-" ^ name))
      in
      (match
         Pipeline.learn_durable ~checkpoint:ck ~kill_after:stage images
       with
       | exception Checkpoint.Simulated_crash s ->
           check Alcotest.bool ("crashed at " ^ name) true (s = stage)
       | _ -> Alcotest.failf "kill hook did not fire at %s" name);
      match Pipeline.learn_durable ~resume:ck images with
      | Ok { Pipeline.model = Some m; resumed; _ } ->
          check Alcotest.bool (name ^ " restored, not recomputed") true
            (List.mem stage resumed);
          check Alcotest.string
            (name ^ ": resumed model byte-identical")
            reference (Model_io.to_string m)
      | _ -> Alcotest.failf "resume after kill at %s failed" name)
    Checkpoint.all_stages

let test_durability_drill_converges () =
  with_dir @@ fun dir ->
  match Chaosrun.durability ~n:10 ~dir ~seed:42 () with
  | Error d -> Alcotest.failf "drill failed: %s" (Res.diagnostic_to_string d)
  | Ok o ->
      List.iter
        (fun (stage, ok) ->
          check Alcotest.bool ("kill+resume converged at " ^ stage) true ok)
        o.Chaosrun.kill_stages;
      check Alcotest.bool "torn snapshot detected" true
        o.Chaosrun.truncate_detected;
      check Alcotest.bool "bit-flip detected" true o.Chaosrun.bitflip_detected;
      check Alcotest.bool "store rollback ok" true o.Chaosrun.rollback_ok;
      check Alcotest.(list string) "no discrepancies" []
        o.Chaosrun.durability_notes

let () =
  Alcotest.run "encore_durability"
    [
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "kind mismatch" `Quick test_snapshot_kind_mismatch;
          Alcotest.test_case "missing file" `Quick test_snapshot_missing_file;
          Alcotest.test_case "truncation detected" `Quick test_snapshot_truncation_detected;
          Alcotest.test_case "bit flip detected" `Quick test_snapshot_bitflip_detected;
          Alcotest.test_case "trailing bytes detected" `Quick test_snapshot_trailing_bytes_detected;
          Alcotest.test_case "errors name their variant" `Quick test_error_strings_name_variants;
        ] );
      ( "store",
        [
          Alcotest.test_case "prunes and tracks latest" `Quick test_store_prunes_and_tracks_latest;
          Alcotest.test_case "rolls back past corrupt head" `Quick test_store_rolls_back_past_corrupt_head;
          Alcotest.test_case "all corrupt is error" `Quick test_store_all_corrupt_is_error;
        ] );
      ( "model io",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_model_save_load_roundtrip;
          Alcotest.test_case "legacy payload loads" `Quick test_model_legacy_payload_loads;
          Alcotest.test_case "malformed payload offset" `Quick test_model_malformed_payload_offset;
          Alcotest.test_case "store rollback returns model" `Quick test_model_store_rollback_returns_model;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "after_polls" `Quick test_deadline_after_polls;
          Alcotest.test_case "cancel wins" `Quick test_deadline_cancel_wins;
          Alcotest.test_case "budgets" `Quick test_deadline_budgets;
          Alcotest.test_case "pool map aborts" `Quick test_pool_deadline_aborts_map;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "ingest roundtrip" `Quick test_checkpoint_ingest_roundtrip;
          Alcotest.test_case "assemble roundtrip" `Quick test_checkpoint_assemble_roundtrip;
          Alcotest.test_case "damaged is absent" `Quick test_checkpoint_damaged_is_absent;
          Alcotest.test_case "fingerprint sensitivity" `Quick test_fingerprint_sensitivity;
        ] );
      ( "resume",
        [
          Alcotest.test_case "deadline degrades, resume completes" `Quick test_deadline_degrades_then_resume_completes;
          Alcotest.test_case "kill and resume each stage" `Quick test_kill_and_resume_each_stage;
          Alcotest.test_case "durability drill" `Slow test_durability_drill_converges;
        ] );
    ]
